//! Zip/city/state cleaning — the paper's Table 3, block D5
//! (ZIP → CITY and ZIP → STATE).
//!
//! Reproduces the paper's error types: truncated cities (`Chicag`, `C`),
//! transposed cities (`Chciago`), case-flipped states (`lL`) and wrong
//! states (`MI`), then shows which PFDs catch them and the suggested
//! repairs.
//!
//! ```sh
//! cargo run --example zip_cleaning
//! ```

use anmat::datagen::{zipcity, GenConfig};
use anmat::prelude::*;

fn run(target: zipcity::ZipTarget, label: &str, rhs_attr: &str) {
    let data = zipcity::generate(
        &GenConfig {
            rows: 4000,
            seed: 0xD5,
            error_rate: 0.01,
        },
        target,
    );
    println!("──────────────────────────────────────────");
    println!(
        "{label}: {} rows, {} injected errors",
        data.table.row_count(),
        data.errors.len()
    );
    let config = DiscoveryConfig {
        relation: "Zip".into(),
        min_support: 3,
        min_coverage: 0.5,
        max_violation_ratio: 0.1,
        ..DiscoveryConfig::default()
    };
    let pfds: Vec<Pfd> = discover(&data.table, &config)
        .into_iter()
        .filter(|p| p.lhs_attr == "zip" && p.rhs_attr == rhs_attr)
        .collect();
    for pfd in &pfds {
        println!("\n{pfd}");
    }
    let violations: Vec<Violation> = detect_all(&data.table, &pfds)
        .into_iter()
        .filter(|v| v.rhs_attr == rhs_attr)
        .collect();
    println!("\nSample detections (zip | wrong value → repair):");
    for v in violations.iter().take(6) {
        let found = match &v.kind {
            ViolationKind::Constant { found, .. } | ViolationKind::Variable { found, .. } => {
                found.clone().unwrap_or_else(|| "∅".into())
            }
        };
        let repair = v
            .repair
            .as_ref()
            .map_or_else(|| "?".into(), |r| r.to.clone());
        println!("  {} | {} → {}", v.lhs_value, found, repair);
    }
    let flagged: Vec<usize> = violations.iter().map(|v| v.row).collect();
    let score = data.score(&flagged);
    println!(
        "Precision {:.3}  Recall {:.3}  F1 {:.3}",
        score.precision(),
        score.recall(),
        score.f1()
    );
}

fn main() {
    run(zipcity::ZipTarget::City, "D5 ZIP → CITY", "city");
    run(zipcity::ZipTarget::State, "D5 ZIP → STATE", "state");
}
