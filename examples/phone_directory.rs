//! Phone directory cleaning — the paper's Table 3, block D1
//! (Phone Number → State).
//!
//! Generates a synthetic NANP phone/state table with 1% injected wrong
//! states, discovers area-code PFDs (`850\D{7} → FL`, …), and scores the
//! detected violations against the injection ground truth.
//!
//! ```sh
//! cargo run --example phone_directory [rows]
//! ```

use anmat::datagen::{phone, GenConfig};
use anmat::prelude::*;

fn main() {
    let rows = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5000);
    let data = phone::generate(&GenConfig {
        rows,
        seed: 0xD1,
        error_rate: 0.01,
    });
    println!(
        "Generated {} phone records with {} injected wrong states.",
        data.table.row_count(),
        data.errors.len()
    );

    let config = DiscoveryConfig {
        relation: "PhoneDir".into(),
        min_support: 3,
        min_coverage: 0.5,
        max_violation_ratio: 0.1,
        ..DiscoveryConfig::default()
    };
    let pfds = discover(&data.table, &config);
    println!("\nDiscovered {} PFD(s):", pfds.len());
    for pfd in &pfds {
        println!("{pfd}\n");
    }

    let violations = detect_all(&data.table, &pfds);
    // Table 3 style: "8505467600 | CA".
    println!("Sample detected errors (Table 3 format):");
    for v in violations.iter().take(5) {
        let found = match &v.kind {
            ViolationKind::Constant { found, .. } | ViolationKind::Variable { found, .. } => {
                found.clone().unwrap_or_else(|| "∅".into())
            }
        };
        println!("  {} | {}", v.lhs_value, found);
    }

    let flagged: Vec<usize> = violations.iter().map(|v| v.row).collect();
    let score = data.score(&flagged);
    println!(
        "\nPrecision {:.3}  Recall {:.3}  F1 {:.3}  ({} tp / {} fp / {} fn)",
        score.precision(),
        score.recall(),
        score.f1(),
        score.true_positives,
        score.false_positives,
        score.false_negatives
    );
}
