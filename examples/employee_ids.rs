//! Employee IDs — the paper's §1 motivating example.
//!
//! "ID `F-9-107`: `F` determines the financial department, and `9`
//! determines one's grade." This example shows the n-gram/prefix path on
//! single-token code columns: both the prefix letter → department and the
//! mid-string grade digit → grade dependencies are discovered.
//!
//! ```sh
//! cargo run --example employee_ids
//! ```

use anmat::datagen::{employee, GenConfig};
use anmat::prelude::*;

fn main() {
    let data = employee::generate(&GenConfig {
        rows: 3000,
        seed: 0xE7,
        error_rate: 0.01,
    });
    println!(
        "Generated {} employee records with {} corrupted departments.",
        data.table.row_count(),
        data.errors.len()
    );

    let config = DiscoveryConfig {
        relation: "Employee".into(),
        min_support: 3,
        min_coverage: 0.5,
        max_violation_ratio: 0.1,
        ..DiscoveryConfig::default()
    };
    let pfds = discover(&data.table, &config);

    println!("\nDiscovered dependencies from emp_id fragments:");
    for pfd in pfds.iter().filter(|p| p.lhs_attr == "emp_id") {
        println!("\n{pfd}");
    }

    let dept_pfds: Vec<Pfd> = pfds
        .iter()
        .filter(|p| p.lhs_attr == "emp_id" && p.rhs_attr == "department")
        .cloned()
        .collect();
    let violations = detect_all(&data.table, &dept_pfds);
    let flagged: Vec<usize> = violations.iter().map(|v| v.row).collect();
    let score = data.score(&flagged);
    println!(
        "\nDepartment-error detection: precision {:.3}, recall {:.3}",
        score.precision(),
        score.recall()
    );
    print!(
        "\n{}",
        report::violations_view(
            &data.table,
            &violations.into_iter().take(3).collect::<Vec<_>>()
        )
    );
}
