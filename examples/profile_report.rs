//! The profiling view (Figure 3 of the paper) on every synthetic dataset,
//! plus CSV ingestion from a path if one is given.
//!
//! ```sh
//! cargo run --example profile_report [file.csv]
//! ```

use anmat::datagen::{chembl, employee, names, phone, zipcity, GenConfig};
use anmat::prelude::*;

fn main() {
    if let Some(path) = std::env::args().nth(1) {
        match csv::read_path(&path) {
            Ok(table) => {
                let profile = TableProfile::profile(&table);
                print!("{}", report::profiling_view(&table, &profile));
            }
            Err(e) => eprintln!("cannot read {path}: {e}"),
        }
        return;
    }
    let gen = GenConfig {
        rows: 500,
        seed: 0xF16,
        error_rate: 0.01,
    };
    let tables = vec![
        ("phone/state (D1)", phone::generate(&gen).table),
        ("full name/gender (D2)", names::generate(&gen).table),
        (
            "zip/city/state (D5)",
            zipcity::generate(&gen, zipcity::ZipTarget::City).table,
        ),
        ("employee ids (§1)", employee::generate(&gen).table),
        ("chembl ids", chembl::generate(&gen).table),
    ];
    for (name, table) in tables {
        println!("\n════════ {name} ════════");
        let profile = TableProfile::profile(&table);
        print!("{}", report::profiling_view(&table, &profile));
    }
}
