//! PFD vs FD vs CFD — the paper's positioning claim, measured.
//!
//! Runs all three detectors on the same injected-error datasets and
//! prints a recall/precision table. FDs need two rows sharing the entire
//! LHS value; CFDs need the erroneous row's exact LHS value to be
//! frequent; PFDs key on partial-value patterns and catch both.
//!
//! ```sh
//! cargo run --example baseline_comparison
//! ```

use anmat::datagen::{names, phone, zipcity, Dataset, GenConfig};
use anmat::prelude::*;

struct Row {
    dataset: &'static str,
    method: &'static str,
    precision: f64,
    recall: f64,
}

fn score_pfd(data: &Dataset) -> (f64, f64) {
    let config = DiscoveryConfig {
        min_support: 3,
        min_coverage: 0.5,
        max_violation_ratio: 0.1,
        ..DiscoveryConfig::default()
    };
    let pfds = discover(&data.table, &config);
    let flagged: Vec<usize> = detect_all(&data.table, &pfds)
        .iter()
        .map(|v| v.row)
        .collect();
    let s = data.score(&flagged);
    (s.precision(), s.recall())
}

fn score_fd(data: &Dataset) -> (f64, f64) {
    let miner = FdMiner::new(FdConfig {
        max_error: 0.05,
        ..FdConfig::default()
    });
    let fds = miner.discover(&data.table);
    let flagged: Vec<usize> = fds
        .iter()
        .flat_map(|f| miner.detect(&data.table, f))
        .map(|v| v.row)
        .collect();
    let s = data.score(&flagged);
    (s.precision(), s.recall())
}

fn score_cfd(data: &Dataset) -> (f64, f64) {
    let miner = CfdMiner::new(CfdConfig {
        min_support: 3,
        min_confidence: 0.9,
    });
    let rules = miner.discover(&data.table);
    let flagged: Vec<usize> = miner
        .detect_all(&data.table, &rules)
        .iter()
        .map(|v| v.row)
        .collect();
    let s = data.score(&flagged);
    (s.precision(), s.recall())
}

fn main() {
    let gen = GenConfig {
        rows: 3000,
        seed: 0xB15,
        error_rate: 0.01,
    };
    let datasets: Vec<(&'static str, Dataset)> = vec![
        ("phone→state", phone::generate(&gen)),
        ("name→gender", names::generate(&gen)),
        (
            "zip→city",
            zipcity::generate(&gen, zipcity::ZipTarget::City),
        ),
    ];
    let mut rows: Vec<Row> = Vec::new();
    for (name, data) in &datasets {
        for (method, f) in [
            ("PFD", score_pfd as fn(&Dataset) -> (f64, f64)),
            ("FD", score_fd),
            ("CFD", score_cfd),
        ] {
            let (precision, recall) = f(data);
            rows.push(Row {
                dataset: name,
                method,
                precision,
                recall,
            });
        }
    }
    println!(
        "{:<14} {:<6} {:>9} {:>7}",
        "dataset", "method", "precision", "recall"
    );
    println!("{}", "-".repeat(40));
    for r in rows {
        println!(
            "{:<14} {:<6} {:>9.3} {:>7.3}",
            r.dataset, r.method, r.precision, r.recall
        );
    }
    println!(
        "\nExpected shape (paper): PFD recall ≫ FD/CFD recall on partial-value\n\
         dependencies; FD recall ≈ 0 on key-like LHS columns."
    );
}
