//! Quickstart: discover PFDs on the paper's own Tables 1 and 2 and detect
//! the seeded errors.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use anmat::prelude::*;

fn main() {
    // Table 1 of the paper (D1: a Name table). r4's gender should be F.
    let names = Table::from_str_rows(
        Schema::new(["name", "gender"]).unwrap(),
        [
            ["John Charles", "M"],
            ["John Bosco", "M"],
            ["Susan Orlean", "F"],
            ["Susan Boyle", "M"], // ← the error
        ],
    )
    .unwrap();

    // Table 2 of the paper (D2: a Zip table). s4's city should be LA.
    let zips = Table::from_str_rows(
        Schema::new(["zip", "city"]).unwrap(),
        [
            ["90001", "Los Angeles"],
            ["90002", "Los Angeles"],
            ["90003", "Los Angeles"],
            ["90004", "New York"], // ← the error
        ],
    )
    .unwrap();

    // The demo's two knobs: minimum coverage and allowed violations.
    let config = DiscoveryConfig {
        relation: "Name".into(),
        min_coverage: 0.5,
        max_violation_ratio: 0.4,
        min_support: 2,
        ..DiscoveryConfig::default()
    };

    for (label, table) in [("Name", &names), ("Zip", &zips)] {
        println!("──────────────────────────────────────────");
        println!("Dataset {label}:");
        let cfg = DiscoveryConfig {
            relation: label.into(),
            ..config.clone()
        };
        let pfds = discover(table, &cfg);
        for pfd in &pfds {
            println!("\nDiscovered PFD ({:?}):\n{pfd}", pfd.kind());
            print!("{}", report::tableau_view(table, pfd));
        }
        let violations = detect_all(table, &pfds);
        print!("\n{}", report::violations_view(table, &violations));
    }
}
