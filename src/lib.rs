//! # ANMAT — pattern functional dependencies in Rust
//!
//! A from-scratch reproduction of *ANMAT: Automatic Knowledge Discovery
//! and Error Detection through Pattern Functional Dependencies* (Qahtan,
//! Tang, Ouzzani, Cao, Stonebraker — SIGMOD 2019 demo).
//!
//! A **pattern functional dependency** (PFD) couples a functional
//! dependency with a tableau of regex-like patterns over *partial*
//! attribute values: `900\D{2} → city = Los Angeles` says any five-digit
//! zip starting `900` maps to Los Angeles; `[\LU\LL*\ ]\A* → gender` says
//! rows sharing a first name share a gender. PFDs are discovered
//! automatically from dirty data and then used to flag (and suggest
//! repairs for) violating cells.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`pattern`] — the restricted pattern language (generalization tree,
//!   matching, containment, induction, constrained patterns);
//! * [`table`] — the relational substrate (columnar tables, CSV,
//!   profiling, tokenization);
//! * [`index`] — inverted lists, the pattern index, and blocking (batch
//!   and incrementally updatable);
//! * [`core`] — PFD model, discovery, detection, FD/CFD baselines,
//!   violation ledger, report rendering;
//! * [`stream`] — the incremental violation engine for *mutable*
//!   streams: apply inserts/deletes/updates, receive violation
//!   creations *and retractions*, monitor rule drift;
//! * [`obs`] — the lock-free metrics registry the hot paths report
//!   into (counters, gauges, log₂ latency histograms, span timers),
//!   surfaced via `anmat stream --stats-every/--metrics-out`;
//! * [`datagen`] — seeded synthetic datasets mirroring the paper's demo
//!   data, with ground-truth error labels.
//!
//! ## Batch vs. streaming
//!
//! `detect_all` recomputes the violation set from scratch — right for a
//! one-shot audit. When the data changes continuously, seed a
//! [`StreamEngine`](stream::StreamEngine) with the confirmed rules
//! instead and feed it [`RowOp`](table::RowOp)s — inserts, deletes, and
//! in-place updates. Each op costs `O(tableau)` on the constant-PFD
//! path and `O(affected block)` on the variable path, never `O(table)`,
//! and the final state provably equals batch detection on the surviving
//! rows, whatever the interleaving.
//!
//! ## Quickstart
//!
//! ```
//! use anmat::prelude::*;
//! use anmat::table::{Schema, Table};
//!
//! // The paper's Table 2: a zip table with one seeded error.
//! let table = Table::from_str_rows(
//!     Schema::new(["zip", "city"]).unwrap(),
//!     [
//!         ["90001", "Los Angeles"],
//!         ["90002", "Los Angeles"],
//!         ["90003", "Los Angeles"],
//!         ["90004", "New York"], // ← s4, the error
//!     ],
//! )
//! .unwrap();
//!
//! let config = DiscoveryConfig {
//!     max_violation_ratio: 0.3,
//!     ..DiscoveryConfig::default()
//! };
//! let pfds = discover(&table, &config);
//! let violations = detect_all(&table, &pfds);
//! assert!(violations.iter().any(|v| v.row == 3));
//! ```

pub use anmat_core as core;
pub use anmat_datagen as datagen;
pub use anmat_index as index;
pub use anmat_obs as obs;
pub use anmat_pattern as pattern;
pub use anmat_stream as stream;
pub use anmat_table as table;

/// One-stop imports for the common workflow.
pub mod prelude {
    pub use anmat_core::baselines::cfd::{CfdConfig, CfdMiner};
    pub use anmat_core::baselines::fd::{FdConfig, FdMiner};
    pub use anmat_core::store::{DatasetRecord, RuleStatus, RuleStore, StoredRule};
    pub use anmat_core::{
        apply_repairs, detect_all, detect_pfd, discover, discover_pair, repair_to_fixpoint, report,
        ContextStyle, Detector, DiscoveryConfig, LedgerChange, LedgerEvent, LhsCell, PatternTuple,
        Pfd, PfdKind, RepairReport, RhsCell, Violation, ViolationKind, ViolationLedger,
    };
    pub use anmat_pattern::{ConstrainedPattern, Pattern, PatternEngine};
    pub use anmat_stream::{
        BatchEvents, CompactionStats, DriftReport, EngineSnapshot, ShardBy, ShardedEngine,
        StreamConfig, StreamEngine,
    };
    pub use anmat_table::{
        csv, MemFootprint, NullPolicy, ReclaimStats, RowId, RowIdRemap, RowOp, Schema, Table,
        TableProfile, Value, ValueId, ValuePool,
    };
}
