//! `anmat` — command-line interface to the ANMAT pipeline.
//!
//! The demo ships a GUI and a Jupyter notebook; this CLI is the
//! library-native equivalent of that workflow:
//!
//! ```text
//! anmat profile  data.csv                     # Figure 3 view
//! anmat discover data.csv [--store DIR] [--coverage 0.6] [--violations 0.1]
//! anmat rules    --store DIR --dataset data [--confirm N | --reject N]
//! anmat detect   data.csv [--store DIR | --rules FILE] [--repair out.csv]
//! ```
//!
//! `discover` saves profile + rules into a [`RuleStore`] project directory
//! (the MongoDB substitution); `rules` lists them and records the
//! Figure-4 confirm/reject decisions; `detect` runs the active rules and
//! optionally writes a repaired copy of the data.

use anmat::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("profile") => cmd_profile(&args[1..]),
        Some("discover") => cmd_discover(&args[1..]),
        Some("rules") => cmd_rules(&args[1..]),
        Some("detect") => cmd_detect(&args[1..]),
        Some("help") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}` (try `anmat help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "anmat — pattern functional dependencies (SIGMOD'19 reproduction)\n\
         \n\
         USAGE:\n\
         \x20 anmat profile  <data.csv>\n\
         \x20 anmat discover <data.csv> [--store DIR] [--coverage F] [--violations F]\n\
         \x20                [--min-support N] [--paper-style]\n\
         \x20 anmat rules    --store DIR --dataset NAME [--confirm N | --reject N]\n\
         \x20 anmat detect   <data.csv> (--store DIR | --rules FILE)\n\
         \x20                [--confirmed-only] [--repair OUT.csv]\n"
    );
}

/// Pull `--flag value` out of an argument list; returns remaining args.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let idx = args.iter().position(|a| a == flag)?;
    if idx + 1 >= args.len() {
        return None;
    }
    let value = args.remove(idx + 1);
    args.remove(idx);
    Some(value)
}

/// Pull a boolean `--flag`.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(idx) = args.iter().position(|a| a == flag) {
        args.remove(idx);
        true
    } else {
        false
    }
}

fn dataset_name(path: &str) -> String {
    std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("dataset")
        .to_string()
}

fn cmd_profile(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("profile: missing <data.csv>")?;
    let table = csv::read_path(path).map_err(|e| format!("reading {path}: {e}"))?;
    let profile = TableProfile::profile(&table);
    print!("{}", report::profiling_view(&table, &profile));
    Ok(())
}

fn cmd_discover(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let store_dir = take_flag(&mut args, "--store");
    let coverage = take_flag(&mut args, "--coverage");
    let violations = take_flag(&mut args, "--violations");
    let min_support = take_flag(&mut args, "--min-support");
    let paper_style = take_switch(&mut args, "--paper-style");
    let path = args.first().ok_or("discover: missing <data.csv>")?;
    let table = csv::read_path(path).map_err(|e| format!("reading {path}: {e}"))?;

    let mut config = DiscoveryConfig {
        relation: dataset_name(path),
        ..DiscoveryConfig::default()
    };
    if let Some(c) = coverage {
        config.min_coverage = c.parse().map_err(|_| format!("bad --coverage `{c}`"))?;
    }
    if let Some(v) = violations {
        config.max_violation_ratio =
            v.parse().map_err(|_| format!("bad --violations `{v}`"))?;
    }
    if let Some(s) = min_support {
        config.min_support = s.parse().map_err(|_| format!("bad --min-support `{s}`"))?;
    }
    if paper_style {
        config.context_style = ContextStyle::AnyString;
    }

    let profile = TableProfile::profile(&table);
    let pfds = discover(&table, &config);
    println!("discovered {} PFD(s):", pfds.len());
    for (i, pfd) in pfds.iter().enumerate() {
        println!("\n[{i}] {:?}", pfd.kind());
        for line in pfd.to_string().lines() {
            println!("    {line}");
        }
        println!("    coverage {:.3}", pfd.coverage(&table));
    }

    if let Some(dir) = store_dir {
        let store = RuleStore::open(&dir).map_err(|e| format!("opening store {dir}: {e}"))?;
        let record = DatasetRecord {
            name: dataset_name(path),
            profile: Some(profile),
            rules: pfds
                .into_iter()
                .map(|pfd| StoredRule {
                    pfd,
                    status: RuleStatus::Pending,
                })
                .collect(),
        };
        store.save(&record).map_err(|e| format!("saving: {e}"))?;
        println!("\nsaved to store `{dir}` as dataset `{}`", record.name);
    }
    Ok(())
}

fn cmd_rules(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let dir = take_flag(&mut args, "--store").ok_or("rules: missing --store DIR")?;
    let dataset = take_flag(&mut args, "--dataset").ok_or("rules: missing --dataset NAME")?;
    let confirm = take_flag(&mut args, "--confirm");
    let reject = take_flag(&mut args, "--reject");
    let store = RuleStore::open(&dir).map_err(|e| format!("opening store {dir}: {e}"))?;

    if let Some(n) = confirm {
        let idx: usize = n.parse().map_err(|_| format!("bad --confirm `{n}`"))?;
        store
            .set_status(&dataset, idx, RuleStatus::Confirmed)
            .map_err(|e| e.to_string())?;
        println!("rule {idx} confirmed");
    }
    if let Some(n) = reject {
        let idx: usize = n.parse().map_err(|_| format!("bad --reject `{n}`"))?;
        store
            .set_status(&dataset, idx, RuleStatus::Rejected)
            .map_err(|e| e.to_string())?;
        println!("rule {idx} rejected");
    }

    let record = store
        .load(&dataset)
        .map_err(|e| format!("loading `{dataset}`: {e}"))?;
    println!("dataset `{}` — {} rule(s):", record.name, record.rules.len());
    for (i, rule) in record.rules.iter().enumerate() {
        println!("\n[{i}] {:?}", rule.status);
        for line in rule.pfd.to_string().lines() {
            println!("    {line}");
        }
    }
    Ok(())
}

fn cmd_detect(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let store_dir = take_flag(&mut args, "--store");
    let rules_file = take_flag(&mut args, "--rules");
    let confirmed_only = take_switch(&mut args, "--confirmed-only");
    let repair_out = take_flag(&mut args, "--repair");
    let path = args.first().ok_or("detect: missing <data.csv>")?;
    let mut table = csv::read_path(path).map_err(|e| format!("reading {path}: {e}"))?;

    let pfds: Vec<Pfd> = if let Some(dir) = store_dir {
        let store = RuleStore::open(&dir).map_err(|e| format!("opening store {dir}: {e}"))?;
        store
            .active_rules(&dataset_name(path), !confirmed_only)
            .map_err(|e| format!("loading rules: {e}"))?
    } else if let Some(file) = rules_file {
        let text =
            std::fs::read_to_string(&file).map_err(|e| format!("reading {file}: {e}"))?;
        serde_json::from_str(&text).map_err(|e| format!("parsing {file}: {e}"))?
    } else {
        return Err("detect: need --store DIR or --rules FILE".into());
    };
    if pfds.is_empty() {
        return Err("no active rules (confirm some with `anmat rules --confirm N`)".into());
    }

    let violations = detect_all(&table, &pfds);
    print!("{}", report::violations_view(&table, &violations));

    if let Some(out) = repair_out {
        let reports = repair_to_fixpoint(&mut table, &pfds, 5);
        let applied: usize = reports.iter().map(RepairReport::applied_count).sum();
        let conflicts: usize = reports.iter().map(|r| r.conflicts.len()).sum();
        csv::write_path(&table, &out).map_err(|e| format!("writing {out}: {e}"))?;
        println!(
            "\nrepaired {applied} cell(s) ({conflicts} conflict(s) left untouched) → {out}"
        );
    }
    Ok(())
}
