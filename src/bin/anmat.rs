//! `anmat` — command-line interface to the ANMAT pipeline.
//!
//! The demo ships a GUI and a Jupyter notebook; this CLI is the
//! library-native equivalent of that workflow:
//!
//! ```text
//! anmat profile  data.csv                     # Figure 3 view
//! anmat discover data.csv [--store DIR] [--coverage 0.6] [--violations 0.1]
//! anmat rules    --store DIR --dataset data [--confirm N | --reject N]
//! anmat detect   data.csv [--store DIR | --rules FILE] [--repair out.csv]
//! anmat stream   data.csv [--store DIR | --rules FILE] [--batch N]
//! ```
//!
//! `discover` saves profile + rules into a [`RuleStore`] project directory
//! (the MongoDB substitution); `rules` lists them and records the
//! Figure-4 confirm/reject decisions; `detect` runs the active rules and
//! optionally writes a repaired copy of the data. `stream` replays the
//! CSV as an append stream through the incremental engine, printing
//! violations (and retractions) as rows arrive — the online-monitoring
//! scenario the demo GUI hints at. With `--ops FILE` it then replays a
//! *mutation* op-log against the accumulated state: one op per record,
//! `+,cell,…` inserts a row, `-,rowid` deletes one, `~,rowid,cell,…`
//! updates one in place (RFC-4180 quoting, row ids as printed in event
//! lines).

use anmat::obs;
use anmat::prelude::*;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("profile") => cmd_profile(&args[1..]),
        Some("discover") => cmd_discover(&args[1..]),
        Some("rules") => cmd_rules(&args[1..]),
        Some("detect") => cmd_detect(&args[1..]),
        Some("stream") => cmd_stream(&args[1..]),
        Some("help" | "--help" | "-h") => {
            print!("{}", usage());
            Ok(())
        }
        None => {
            // No command: usage is diagnostic output, and the invocation
            // failed — same contract as an unknown command.
            eprint!("{}", usage());
            return ExitCode::FAILURE;
        }
        Some(other) => {
            eprintln!("error: unknown command `{other}`");
            eprint!("{}", usage());
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    "anmat — pattern functional dependencies (SIGMOD'19 reproduction)\n\
     \n\
     USAGE:\n\
     \x20 anmat profile  <data.csv>\n\
     \x20 anmat discover <data.csv> [--store DIR] [--coverage F] [--violations F]\n\
     \x20                [--min-support N] [--paper-style]\n\
     \x20 anmat rules    --store DIR --dataset NAME [--confirm N | --reject N]\n\
     \x20 anmat detect   <data.csv> (--store DIR | --rules FILE)\n\
     \x20                [--confirmed-only] [--repair OUT.csv]\n\
     \x20 anmat stream   <data.csv> (--store DIR | --rules FILE) [--batch N]\n\
     \x20                [--shards N] [--shard-by rule|key] [--run-ahead N]\n\
     \x20                [--ops FILE] [--confirmed-only] [--quiet]\n\
     \x20                [--demote-drifted] [--violations F] [--min-support N]\n\
     \x20                [--compact-ratio R] [--reclaim] [--checkpoint]\n\
     \x20                [--stats-every N] [--metrics-out FILE]\n\
     \x20                [--pattern-engine interp|vm|fused]\n\
     \x20                (--pattern-engine picks the execution tier: `fused`\n\
     \x20                — the default — runs backtrack-free patterns on the\n\
     \x20                single-pass fused matcher and the rest on the\n\
     \x20                bytecode VM; `vm` forces the VM; `interp` runs the\n\
     \x20                AST interpreter — the measured baseline (also\n\
     \x20                spelled --interpret); output is bit-for-bit\n\
     \x20                identical across all three;\n\
     \x20                drift thresholds: pass the values the rules were\n\
     \x20                discovered with; --shards N > 1 spreads rule state\n\
     \x20                over N worker threads, same output bit-for-bit;\n\
     \x20                --shard-by key hashes blocking keys across the\n\
     \x20                workers instead, so even one heavy rule uses every\n\
     \x20                core; --run-ahead N lets workers run up to N\n\
     \x20                batches ahead of the merge — output is still\n\
     \x20                bit-for-bit identical for any axis and window;\n\
     \x20                --compact-ratio R reclaims tombstoned slots once\n\
     \x20                they exceed fraction R of the table, renumbering\n\
     \x20                rows via an epoch-stamped remap;\n\
     \x20                --reclaim additionally sweeps interned strings no\n\
     \x20                longer referenced by any live row at each\n\
     \x20                compaction barrier, recycling their pool ids —\n\
     \x20                output is bit-for-bit identical either way;\n\
     \x20                --checkpoint (needs --store) writes a consistent\n\
     \x20                {epoch, table, live violations} JSON checkpoint\n\
     \x20                into the store from a copy-on-write snapshot;\n\
     \x20                --stats-every N prints a one-line stats snapshot\n\
     \x20                every N batches; --metrics-out FILE writes the\n\
     \x20                full metrics registry as JSON at exit; timing\n\
     \x20                lines are suppressed by --quiet or ANMAT_NO_TIMING=1)\n\
     \n\
     OP-LOG (--ops FILE; one op per CSV record):\n\
     \x20 +,cell,…        insert a row\n\
     \x20 -,rowid         delete the row in that slot\n\
     \x20 ~,rowid,cell,…  update the row in place (slot id preserved)\n"
        .to_string()
}

/// Pull `--flag value` out of an argument list; returns remaining args.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let idx = args.iter().position(|a| a == flag)?;
    if idx + 1 >= args.len() {
        return None;
    }
    let value = args.remove(idx + 1);
    args.remove(idx);
    Some(value)
}

/// Pull a boolean `--flag`.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(idx) = args.iter().position(|a| a == flag) {
        args.remove(idx);
        true
    } else {
        false
    }
}

fn dataset_name(path: &str) -> String {
    std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("dataset")
        .to_string()
}

fn cmd_profile(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("profile: missing <data.csv>")?;
    let table = csv::read_path(path).map_err(|e| format!("reading {path}: {e}"))?;
    let profile = TableProfile::profile(&table);
    print!("{}", report::profiling_view(&table, &profile));
    Ok(())
}

fn cmd_discover(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let store_dir = take_flag(&mut args, "--store");
    let coverage = take_flag(&mut args, "--coverage");
    let violations = take_flag(&mut args, "--violations");
    let min_support = take_flag(&mut args, "--min-support");
    let paper_style = take_switch(&mut args, "--paper-style");
    let path = args.first().ok_or("discover: missing <data.csv>")?;
    let table = csv::read_path(path).map_err(|e| format!("reading {path}: {e}"))?;

    let mut config = DiscoveryConfig {
        relation: dataset_name(path),
        ..DiscoveryConfig::default()
    };
    if let Some(c) = coverage {
        config.min_coverage = c.parse().map_err(|_| format!("bad --coverage `{c}`"))?;
    }
    if let Some(v) = violations {
        config.max_violation_ratio = v.parse().map_err(|_| format!("bad --violations `{v}`"))?;
    }
    if let Some(s) = min_support {
        config.min_support = s.parse().map_err(|_| format!("bad --min-support `{s}`"))?;
    }
    if paper_style {
        config.context_style = ContextStyle::AnyString;
    }

    let profile = TableProfile::profile(&table);
    let pfds = discover(&table, &config);
    println!("discovered {} PFD(s):", pfds.len());
    for (i, pfd) in pfds.iter().enumerate() {
        println!("\n[{i}] {:?}", pfd.kind());
        for line in pfd.to_string().lines() {
            println!("    {line}");
        }
        println!("    coverage {:.3}", pfd.coverage(&table));
    }

    if let Some(dir) = store_dir {
        let store = RuleStore::open(&dir).map_err(|e| format!("opening store {dir}: {e}"))?;
        let record = DatasetRecord {
            name: dataset_name(path),
            profile: Some(profile),
            rules: pfds
                .into_iter()
                .map(|pfd| StoredRule {
                    pfd,
                    status: RuleStatus::Pending,
                })
                .collect(),
        };
        store.save(&record).map_err(|e| format!("saving: {e}"))?;
        println!("\nsaved to store `{dir}` as dataset `{}`", record.name);
    }
    Ok(())
}

fn cmd_rules(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let dir = take_flag(&mut args, "--store").ok_or("rules: missing --store DIR")?;
    let dataset = take_flag(&mut args, "--dataset").ok_or("rules: missing --dataset NAME")?;
    let confirm = take_flag(&mut args, "--confirm");
    let reject = take_flag(&mut args, "--reject");
    let store = RuleStore::open(&dir).map_err(|e| format!("opening store {dir}: {e}"))?;

    if let Some(n) = confirm {
        let idx: usize = n.parse().map_err(|_| format!("bad --confirm `{n}`"))?;
        store
            .set_status(&dataset, idx, RuleStatus::Confirmed)
            .map_err(|e| e.to_string())?;
        println!("rule {idx} confirmed");
    }
    if let Some(n) = reject {
        let idx: usize = n.parse().map_err(|_| format!("bad --reject `{n}`"))?;
        store
            .set_status(&dataset, idx, RuleStatus::Rejected)
            .map_err(|e| e.to_string())?;
        println!("rule {idx} rejected");
    }

    let record = store
        .load(&dataset)
        .map_err(|e| format!("loading `{dataset}`: {e}"))?;
    println!(
        "dataset `{}` — {} rule(s):",
        record.name,
        record.rules.len()
    );
    for (i, rule) in record.rules.iter().enumerate() {
        println!("\n[{i}] {:?}", rule.status);
        for line in rule.pfd.to_string().lines() {
            println!("    {line}");
        }
    }
    Ok(())
}

/// Load the active rules for a dataset from a store dir or a rules file.
///
/// Alongside each rule, returns its index in the *stored* rule list
/// (identity for a rules file), so callers that write back — drift
/// demotion — address the same `[N]` the `anmat rules` listing shows.
fn load_rules(
    command: &str,
    data_path: &str,
    store_dir: Option<&str>,
    rules_file: Option<&str>,
    confirmed_only: bool,
) -> Result<(Vec<Pfd>, Vec<usize>), String> {
    let (pfds, indices): (Vec<Pfd>, Vec<usize>) = if let Some(dir) = store_dir {
        let store = RuleStore::open(dir).map_err(|e| format!("opening store {dir}: {e}"))?;
        let record = store
            .load(&dataset_name(data_path))
            .map_err(|e| format!("loading rules: {e}"))?;
        record
            .rules
            .into_iter()
            .enumerate()
            .filter(|(_, r)| {
                r.status == RuleStatus::Confirmed
                    || (!confirmed_only && r.status == RuleStatus::Pending)
            })
            .map(|(i, r)| (r.pfd, i))
            .unzip()
    } else if let Some(file) = rules_file {
        let text = std::fs::read_to_string(file).map_err(|e| format!("reading {file}: {e}"))?;
        let pfds: Vec<Pfd> =
            serde_json::from_str(&text).map_err(|e| format!("parsing {file}: {e}"))?;
        let indices = (0..pfds.len()).collect();
        (pfds, indices)
    } else {
        return Err(format!("{command}: need --store DIR or --rules FILE"));
    };
    if pfds.is_empty() {
        return Err("no active rules (confirm some with `anmat rules --confirm N`)".into());
    }
    Ok((pfds, indices))
}

fn cmd_detect(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let store_dir = take_flag(&mut args, "--store");
    let rules_file = take_flag(&mut args, "--rules");
    let confirmed_only = take_switch(&mut args, "--confirmed-only");
    let repair_out = take_flag(&mut args, "--repair");
    let path = args.first().ok_or("detect: missing <data.csv>")?;
    let mut table = csv::read_path(path).map_err(|e| format!("reading {path}: {e}"))?;

    let (pfds, _) = load_rules(
        "detect",
        path,
        store_dir.as_deref(),
        rules_file.as_deref(),
        confirmed_only,
    )?;

    let violations = detect_all(&table, &pfds);
    print!("{}", report::violations_view(&table, &violations));

    if let Some(out) = repair_out {
        let reports = repair_to_fixpoint(&mut table, &pfds, 5);
        let applied: usize = reports.iter().map(RepairReport::applied_count).sum();
        let conflicts: usize = reports.iter().map(|r| r.conflicts.len()).sum();
        csv::write_path(&table, &out).map_err(|e| format!("writing {out}: {e}"))?;
        println!("\nrepaired {applied} cell(s) ({conflicts} conflict(s) left untouched) → {out}");
    }
    Ok(())
}

/// Parse an op-log (see `usage`): each CSV record is one [`RowOp`].
fn parse_ops(text: &str) -> Result<Vec<RowOp>, String> {
    let records = csv::parse_raw_records(text, ',').map_err(|e| format!("parsing op-log: {e}"))?;
    let mut ops = Vec::with_capacity(records.len());
    for (i, record) in records.into_iter().enumerate() {
        let line = i + 1;
        let Some((code, rest)) = record.split_first() else {
            continue;
        };
        let cells = |fields: &[String]| -> Vec<Value> {
            fields.iter().map(|f| Value::from_field(f)).collect()
        };
        let rowid = |field: &String| -> Result<RowId, String> {
            field
                .parse()
                .map_err(|_| format!("op-log record {line}: bad row id `{field}`"))
        };
        match code.as_str() {
            "+" => ops.push(RowOp::Insert(cells(rest))),
            "-" => match rest {
                [id] => ops.push(RowOp::Delete(rowid(id)?)),
                _ => {
                    return Err(format!(
                        "op-log record {line}: `-` wants exactly one row id"
                    ))
                }
            },
            "~" => match rest.split_first() {
                Some((id, cells_rest)) => ops.push(RowOp::Update(rowid(id)?, cells(cells_rest))),
                None => {
                    return Err(format!(
                        "op-log record {line}: `~` wants a row id and cells"
                    ))
                }
            },
            other => {
                return Err(format!(
                    "op-log record {line}: unknown op `{other}` (want `+`, `-` or `~`)"
                ))
            }
        }
    }
    Ok(ops)
}

/// The two engine flavours behind `anmat stream`, dispatched on
/// `--shards`: identical observable behaviour (the sharded engine's
/// determinism contract), different execution.
enum AnyEngine {
    Single(StreamEngine),
    Sharded(ShardedEngine),
}

impl AnyEngine {
    /// Ingest one replay batch. The sharded engine goes through its
    /// pipelined `submit` path — with `--run-ahead 0` that merges
    /// synchronously (identical to the classic call), with a window it
    /// returns whichever older batches completed; either way events
    /// come back in submission order. Callers must [`AnyEngine::flush`]
    /// at end of stream.
    fn push_id_batch(&mut self, rows: Vec<Vec<ValueId>>) -> Result<Vec<LedgerEvent>, String> {
        match self {
            AnyEngine::Single(e) => e.push_id_batch(rows),
            AnyEngine::Sharded(e) => e
                .submit_id_batch(rows)
                .map(|batches| batches.into_iter().flat_map(|b| b.events).collect()),
        }
        .map_err(|e| e.to_string())
    }

    /// Drain any pipelined batches still in flight; their events come
    /// back in submission order. No-op for the single-threaded engine.
    fn flush(&mut self) -> Vec<LedgerEvent> {
        match self {
            AnyEngine::Single(_) => Vec::new(),
            AnyEngine::Sharded(e) => e.flush().into_iter().flat_map(|b| b.events).collect(),
        }
    }

    fn apply(&mut self, ops: Vec<RowOp>) -> Result<Vec<LedgerEvent>, String> {
        match self {
            AnyEngine::Single(e) => e.apply(ops),
            AnyEngine::Sharded(e) => e.apply(ops),
        }
        .map_err(|e| e.to_string())
    }

    fn ledger(&self) -> &ViolationLedger {
        match self {
            AnyEngine::Single(e) => e.ledger(),
            AnyEngine::Sharded(e) => e.ledger(),
        }
    }

    fn live_rows(&self) -> usize {
        match self {
            AnyEngine::Single(e) => e.live_rows(),
            AnyEngine::Sharded(e) => e.live_rows(),
        }
    }

    fn row_count(&self) -> usize {
        match self {
            AnyEngine::Single(e) => e.row_count(),
            AnyEngine::Sharded(e) => e.row_count(),
        }
    }

    fn drift_report(&self) -> Vec<DriftReport> {
        match self {
            AnyEngine::Single(e) => e.drift_report(),
            AnyEngine::Sharded(e) => e.drift_report(),
        }
    }

    fn compaction_stats(&self) -> CompactionStats {
        match self {
            AnyEngine::Single(e) => e.compaction_stats(),
            AnyEngine::Sharded(e) => e.compaction_stats(),
        }
    }

    fn mem_footprint(&self) -> MemFootprint {
        match self {
            AnyEngine::Single(e) => e.table().mem_footprint(),
            AnyEngine::Sharded(e) => e.table().mem_footprint(),
        }
    }

    fn publish_metrics(&mut self) {
        match self {
            AnyEngine::Single(e) => e.publish_metrics(),
            AnyEngine::Sharded(e) => e.publish_metrics(),
        }
    }

    /// Lifetime string reclamation by this engine's sweeps.
    fn reclaim_stats(&self) -> ReclaimStats {
        match self {
            AnyEngine::Single(e) => e.reclaim_stats(),
            AnyEngine::Sharded(e) => e.reclaim_stats(),
        }
    }

    /// A copy-on-write snapshot of the table + ledger. The sharded
    /// engine drains its pipeline first, so the view sits at a clean
    /// epoch barrier on every replica.
    fn snapshot(&mut self) -> EngineSnapshot {
        match self {
            AnyEngine::Single(e) => e.snapshot(),
            AnyEngine::Sharded(e) => e.snapshot(),
        }
    }
}

/// One `stats:` line from the live metrics registry — the deterministic
/// figures always, the wall-clock rate only when timing output is
/// allowed (it is nondeterministic, so `--quiet`/`ANMAT_NO_TIMING`
/// suppress it).
fn print_stats_line(engine: &mut AnyEngine, started: Instant, timing: bool) {
    // Note the stats round-trip drains the pipeline, so the figures are
    // a consistent point-in-time snapshot; `merge.lag_batches` still
    // records how deep the run-ahead window actually got.
    engine.publish_metrics();
    let snap = obs::MetricsSnapshot::capture();
    let slots = snap.gauge("table.slots").unwrap_or(0);
    let live = snap.gauge("table.live").unwrap_or(0);
    let violations = snap.gauge("ledger.live").unwrap_or(0);
    let pool = snap.gauge("pool.bytes").unwrap_or(0);
    let fused_evals = snap.counter("pattern.fused_evals").unwrap_or(0);
    let vm_evals = snap.counter("pattern.vm_evals").unwrap_or(0);
    let interp_evals = snap.counter("pattern.interp_evals").unwrap_or(0);
    let mut line = format!(
        "stats: {slots} slot(s) ({live} live), {violations} live violation(s), \
         pool {pool} byte(s), pattern evals {fused_evals} fused / {vm_evals} vm / \
         {interp_evals} interp"
    );
    // Reclamation figures ride along only once a sweep has actually
    // freed something — the line stays byte-identical to the historic
    // format for non-reclaiming runs.
    let freed_strings = snap.gauge("pool.freed_strings").unwrap_or(0);
    if freed_strings > 0 {
        line.push_str(&format!(
            ", {} live string(s), {freed_strings} freed ({} byte(s))",
            snap.gauge("pool.live_strings").unwrap_or(0),
            snap.gauge("pool.freed_bytes").unwrap_or(0)
        ));
    }
    if let Some(h) = snap.histogram("merge.lag_batches") {
        if h.count > 0 {
            line.push_str(&format!(
                ", pipeline lag avg {:.2} batch(es) over {} merge(s)",
                h.sum as f64 / h.count as f64,
                h.count
            ));
        }
    }
    if timing {
        let secs = started.elapsed().as_secs_f64();
        let ops = snap.counter("engine.ops").unwrap_or(0);
        if secs > 0.0 {
            line.push_str(&format!(", {:.0} rows/s", ops as f64 / secs));
        }
    }
    println!("{line}");
}

fn cmd_stream(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let store_dir = take_flag(&mut args, "--store");
    let rules_file = take_flag(&mut args, "--rules");
    let ops_file = take_flag(&mut args, "--ops");
    let confirmed_only = take_switch(&mut args, "--confirmed-only");
    let quiet = take_switch(&mut args, "--quiet");
    let demote_drifted = take_switch(&mut args, "--demote-drifted");
    let reclaim = take_switch(&mut args, "--reclaim");
    let checkpoint = take_switch(&mut args, "--checkpoint");
    let interpret = take_switch(&mut args, "--interpret");
    let pattern_engine = match take_flag(&mut args, "--pattern-engine") {
        Some(s) => s
            .parse::<PatternEngine>()
            .map_err(|e| format!("bad --pattern-engine: {e}"))?,
        // --interpret survives as the baseline alias from before the
        // three-tier flag existed.
        None if interpret => PatternEngine::Interp,
        None => PatternEngine::Fused,
    };
    let metrics_out = take_flag(&mut args, "--metrics-out");
    let stats_every: Option<usize> = match take_flag(&mut args, "--stats-every") {
        Some(n) => Some(
            n.parse()
                .ok()
                .filter(|&n| n > 0)
                .ok_or(format!("bad --stats-every `{n}` (want a positive integer)"))?,
        ),
        None => None,
    };
    let batch: usize = match take_flag(&mut args, "--batch") {
        Some(n) => n
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or(format!("bad --batch `{n}` (want a positive integer)"))?,
        None => 1,
    };
    // Drift thresholds: pass the values the rules were discovered with
    // (mirrors `discover`'s flags); defaults match StreamConfig.
    let mut stream_config = StreamConfig {
        pattern_engine,
        reclaim,
        ..StreamConfig::default()
    };
    if let Some(v) = take_flag(&mut args, "--violations") {
        stream_config.max_violation_ratio =
            v.parse().map_err(|_| format!("bad --violations `{v}`"))?;
    }
    if let Some(s) = take_flag(&mut args, "--min-support") {
        stream_config.min_support = s.parse().map_err(|_| format!("bad --min-support `{s}`"))?;
    }
    if let Some(n) = take_flag(&mut args, "--shards") {
        stream_config.shards = n
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or(format!("bad --shards `{n}` (want a positive integer)"))?;
    }
    if let Some(axis) = take_flag(&mut args, "--shard-by") {
        stream_config.shard_by = match axis.as_str() {
            "rule" => ShardBy::Rule,
            "key" => ShardBy::Key,
            other => return Err(format!("bad --shard-by `{other}` (want rule|key)")),
        };
    }
    if let Some(n) = take_flag(&mut args, "--run-ahead") {
        stream_config.run_ahead = n.parse().ok().ok_or(format!(
            "bad --run-ahead `{n}` (want a non-negative integer)"
        ))?;
    }
    if let Some(r) = take_flag(&mut args, "--compact-ratio") {
        stream_config.compact_ratio =
            r.parse()
                .ok()
                .filter(|&r: &f64| r > 0.0 && r < 1.0)
                .ok_or(format!(
                    "bad --compact-ratio `{r}` (want a tombstone ratio in (0, 1))"
                ))?;
    }
    if demote_drifted && store_dir.is_none() {
        return Err("--demote-drifted needs --store DIR".into());
    }
    if checkpoint && store_dir.is_none() {
        return Err("--checkpoint needs --store DIR".into());
    }
    let path = args.first().ok_or("stream: missing <data.csv>")?;
    // Timing output is wall-clock and thus nondeterministic; --quiet and
    // the ANMAT_NO_TIMING env hook (used by the CLI test suite, whose
    // assertions compare exact output) suppress it.
    let timing = !quiet && std::env::var_os("ANMAT_NO_TIMING").is_none();
    // Any consumer of the metrics registry turns the recorder on; with
    // all three off the instrumented call sites cost one relaxed atomic
    // load each.
    let recording = timing || stats_every.is_some() || metrics_out.is_some();
    if recording {
        obs::Recorder::enable();
    }
    let table = csv::read_path(path).map_err(|e| format!("reading {path}: {e}"))?;

    let (pfds, store_indices) = load_rules(
        "stream",
        path,
        store_dir.as_deref(),
        rules_file.as_deref(),
        confirmed_only,
    )?;
    let rule_count = pfds.len();
    let mut engine = if stream_config.shards > 1 {
        AnyEngine::Sharded(ShardedEngine::with_config(
            table.schema().clone(),
            pfds,
            stream_config,
        ))
    } else {
        AnyEngine::Single(StreamEngine::with_config(
            table.schema().clone(),
            pfds,
            stream_config,
        ))
    };
    // Report the *effective* worker count (the engine clamps --shards
    // to the rule count in rule mode, to the key-slot count in key
    // mode) plus any non-default axis/pipelining choices.
    let sharding = match &engine {
        AnyEngine::Sharded(e) => {
            let mut s = format!(", {} shard(s)", e.shard_count());
            if e.shard_by() == ShardBy::Key {
                s.push_str(" by key");
            }
            if e.run_ahead() > 0 {
                s.push_str(&format!(", run-ahead {}", e.run_ahead()));
            }
            s
        }
        AnyEngine::Single(_) => String::new(),
    };
    println!(
        "streaming {} row(s) from {path} through {rule_count} rule(s), batch size \
         {batch}{sharding}",
        table.row_count()
    );
    // Rows are already interned by the CSV read; stream them as ids so
    // replay is clone-free.
    let started = Instant::now();
    let replayed_rows = table.row_count();
    let mut pending: Vec<Vec<ValueId>> = Vec::with_capacity(batch);
    let mut batches_done = 0usize;
    for r in 0..table.row_count() {
        pending.push(table.row_ids(r));
        if pending.len() == batch || r + 1 == table.row_count() {
            let full = std::mem::replace(&mut pending, Vec::with_capacity(batch));
            let events = engine
                .push_id_batch(full)
                .map_err(|e| format!("row {r}: {e}"))?;
            if !quiet {
                for event in &events {
                    println!("{}", render_event(event));
                }
            }
            batches_done += 1;
            if stats_every.is_some_and(|every| batches_done.is_multiple_of(every)) {
                print_stats_line(&mut engine, started, timing);
            }
        }
    }
    // With --run-ahead > 0 the last few batches may still be in flight:
    // drain them so their events print and the timing figure covers the
    // whole stream.
    let tail = engine.flush();
    if !quiet {
        for event in &tail {
            println!("{}", render_event(event));
        }
    }
    // Elapsed replay time flows through the obs layer (the summary
    // reads it back out of the histogram), so it lands in --metrics-out
    // snapshots too.
    obs::histogram!("cli.replay_ns")
        .record(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));

    let mut applied_ops = 0usize;
    if let Some(path) = ops_file {
        let text = std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
        let ops = parse_ops(&text)?;
        applied_ops = ops.len();
        println!("applying {} op(s) from {path}", ops.len());
        let ops_started = Instant::now();
        let events = engine
            .apply(ops)
            .map_err(|e| format!("applying ops: {e}"))?;
        obs::histogram!("cli.apply_ns")
            .record(u64::try_from(ops_started.elapsed().as_nanos()).unwrap_or(u64::MAX));
        if !quiet {
            for event in &events {
                println!("{}", render_event(event));
            }
        }
    }

    // Snapshot-backed checkpoint: the capture is O(chunks) chunk-handle
    // clones behind the epoch barrier (the sharded engine drains its
    // pipeline first), so a service would keep ingesting while the
    // serialization below reads the frozen view.
    if checkpoint {
        let dir = store_dir.as_deref().expect("validated before replay");
        let snap = engine.snapshot();
        let table_json = serde_json::to_string(snap.table())
            .map_err(|e| format!("serializing checkpoint table: {e}"))?;
        let violations_json = serde_json::to_string(&snap.ledger().snapshot())
            .map_err(|e| format!("serializing checkpoint violations: {e}"))?;
        let json = format!(
            "{{\"epoch\":{},\"table\":{table_json},\"violations\":{violations_json}}}",
            snap.epoch()
        );
        let out = format!("{dir}/{}.checkpoint.json", dataset_name(path));
        std::fs::write(&out, json).map_err(|e| format!("writing {out}: {e}"))?;
        println!(
            "checkpoint: epoch {}, {} live row(s), {} live violation(s) written to {out} \
             (copy-on-write snapshot; ingest may continue)",
            snap.epoch(),
            snap.table().live_rows(),
            snap.ledger().live_count()
        );
    }

    let ledger = engine.ledger();
    let compaction = engine.compaction_stats();
    // Live rows, not raw push count: tombstoned slots are not data.
    // Compaction drops slots, so "ingested" adds the reclaimed ones
    // back — the figure stays the lifetime slot count either way.
    println!(
        "\nfinal: {} live violation(s) ({} created, {} retracted) over {} live row(s) \
         ({} slot(s) ingested)",
        ledger.live_count(),
        ledger.created_total(),
        ledger.retracted_total(),
        engine.live_rows(),
        engine.row_count() + compaction.reclaimed_slots
    );
    // Reclamation observability: epochs run, slots dropped, and the
    // table's own memory. "Per table replica" states the scope exactly:
    // the shared ValuePool is excluded (string bytes live once,
    // process-wide), and under --shards the coordinator plus each of
    // the N workers holds one replica this size — compaction shrinks
    // all of them in lockstep. The line itself is shard-invariant, like
    // everything below the header.
    let footprint = engine.mem_footprint();
    println!(
        "compaction: {} epoch(s) run, {} slot(s) reclaimed; table memory {} byte(s) \
         per table replica over {} slot(s) ({} live)",
        compaction.epochs,
        compaction.reclaimed_slots,
        footprint.bytes,
        footprint.total_slots,
        footprint.live_slots
    );
    // The interning pool is process-global and shared by every replica,
    // so unlike the table line it is counted once — and it is identical
    // whatever --shards says (the coordinator interns once).
    let pool = ValuePool::mem_footprint();
    println!(
        "pool: {} byte(s) interned over {} string(s) ({} chunk, {} entry, {} string, \
         {} map byte(s); shared process-wide)",
        pool.bytes,
        pool.strings,
        pool.chunk_bytes,
        pool.entry_bytes,
        pool.string_bytes,
        pool.map_bytes
    );
    // Reclamation summary: pool-wide lifetime figures (every reclaiming
    // engine in the process contributes) plus this engine's own sweeps.
    // Only printed when --reclaim was on — without it both are zero and
    // the line would be noise.
    if reclaim {
        let (freed_strings, freed_bytes) = ValuePool::reclaimed();
        let swept = engine.reclaim_stats();
        println!(
            "reclaim: {} string(s) / {} byte(s) freed process-wide ({} live string(s) \
             remain); this engine swept {} string(s) / {} byte(s)",
            freed_strings,
            freed_bytes,
            ValuePool::live_strings(),
            swept.strings,
            swept.bytes
        );
    }
    // The three-way engine split (which execution tier actually ran the
    // evals). Counters only move while the recorder is on, so the line
    // is printed only then; it is deterministic for a given engine mode
    // but naturally differs across --pattern-engine modes.
    if recording {
        let snap = obs::MetricsSnapshot::capture();
        println!(
            "pattern tiers: {} fused / {} vm / {} interp eval(s), engine {}",
            snap.counter("pattern.fused_evals").unwrap_or(0),
            snap.counter("pattern.vm_evals").unwrap_or(0),
            snap.counter("pattern.interp_evals").unwrap_or(0),
            stream_config.pattern_engine
        );
        // Pipelining summary, only when a run-ahead window was in play:
        // how deep the window actually ran (deterministic for a given
        // batch size, unlike the wall-clock lines).
        if let AnyEngine::Sharded(e) = &engine {
            if e.run_ahead() > 0 {
                if let Some(h) = snap.histogram("merge.lag_batches") {
                    println!(
                        "pipeline: run-ahead {}, {} merge(s), mean lag {:.2} batch(es), \
                         max lag {}",
                        e.run_ahead(),
                        h.count,
                        if h.count > 0 {
                            h.sum as f64 / h.count as f64
                        } else {
                            0.0
                        },
                        h.max
                    );
                }
            }
        }
    }
    if timing {
        // Both figures come back out of the obs registry rather than a
        // local stopwatch — the same numbers --metrics-out serializes.
        let snap = obs::MetricsSnapshot::capture();
        if let Some(h) = snap.histogram("cli.replay_ns") {
            let secs = h.sum as f64 / 1e9;
            let rate = if secs > 0.0 {
                replayed_rows as f64 / secs
            } else {
                0.0
            };
            println!("timing: streamed {replayed_rows} row(s) in {secs:.3}s ({rate:.0} rows/s)");
        }
        if applied_ops > 0 {
            if let Some(h) = snap.histogram("cli.apply_ns") {
                let secs = h.sum as f64 / 1e9;
                let rate = if secs > 0.0 {
                    applied_ops as f64 / secs
                } else {
                    0.0
                };
                println!("timing: applied {applied_ops} op(s) in {secs:.3}s ({rate:.0} ops/s)");
            }
        }
    }
    if let Some(out) = &metrics_out {
        engine.publish_metrics();
        let snap = obs::MetricsSnapshot::capture();
        std::fs::write(out, snap.to_json()).map_err(|e| format!("writing {out}: {e}"))?;
        println!("metrics: full registry snapshot written to {out}");
    }

    let drifted = engine.drift_report();
    if !drifted.is_empty() {
        println!("\ndrifted rule(s) — confidence fell below the drift threshold:");
        for d in &drifted {
            println!(
                "  [{}] {}: confidence {:.3} < {:.3} ({} violation(s) in {} matched row(s))",
                store_indices[d.rule],
                d.dependency,
                d.confidence,
                d.min_confidence,
                d.live_violations,
                d.matched_rows
            );
        }
        if demote_drifted {
            let dir = store_dir.as_deref().expect("validated before replay");
            let store = RuleStore::open(dir).map_err(|e| format!("opening store {dir}: {e}"))?;
            let dataset = dataset_name(path);
            let mut demoted = 0usize;
            for d in &drifted {
                let store_idx = store_indices[d.rule];
                if store
                    .set_status(&dataset, store_idx, RuleStatus::Pending)
                    .map_err(|e| format!("demoting rule {store_idx}: {e}"))?
                {
                    demoted += 1;
                }
            }
            println!(
                "  demoted {demoted} rule(s) to Pending in store `{dir}` \
                 (re-review with `anmat rules`)"
            );
        }
    }
    Ok(())
}

fn render_event(event: &LedgerEvent) -> String {
    let (sign, v) = match &event.change {
        LedgerChange::Created(v) => ('+', v),
        LedgerChange::Retracted(v) => ('-', v),
    };
    let detail = match &v.kind {
        ViolationKind::Constant {
            expected, found, ..
        } => format!(
            "expected {expected:?}, found {}",
            found
                .as_deref()
                .map_or("∅".to_string(), |f| format!("{f:?}"))
        ),
        ViolationKind::Variable {
            key,
            majority,
            found,
            ..
        } => format!(
            "block {key:?} majority {majority:?}, found {}",
            found
                .as_deref()
                .map_or("∅".to_string(), |f| format!("{f:?}"))
        ),
    };
    format!(
        "{sign} row {} [{}] {}={:?}: {detail}",
        v.row, v.dependency, v.lhs_attr, v.lhs_value
    )
}
