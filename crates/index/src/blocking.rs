//! Blocking for variable-PFD detection (§3 of the paper).
//!
//! A variable PFD (`tp[B] = ⊥`) is violated by a *pair* of tuples that
//! match `tp[A]`, agree on its constrained captures, and differ on `B`.
//! The brute-force check is quadratic; the paper avoids it "using
//! blocking" (citing BigDansing). Because
//! [`ConstrainedPattern::key`](anmat_pattern::ConstrainedPattern::key)
//! characterizes `≡_Q` exactly, grouping rows by key is a *lossless*
//! blocking scheme: every violating pair lies within one block, and the
//! pair enumeration cost drops from `O(n²)` to `Σ |block|²` — and further
//! to `O(n)` for the common case where each block's RHS is checked by
//! value counts rather than explicit pairs.
//!
//! Blocking keys and RHS values are interned [`ValueId`]s: capture
//! extraction (the hot cost) runs at most once per *distinct* LHS value
//! — the per-`(pattern, ValueId)` memo the incremental engine relies on —
//! and every map in this module hashes a 4-byte id instead of a string.

use crate::inverted::{sort_rhs_counts, EntryStats};
use anmat_pattern::ConstrainedPattern;
use anmat_table::{RowId, Table, ValueId, ValuePool};
use fxhash::FxHashMap;

/// Rows grouped by constrained-capture key.
#[derive(Debug)]
pub struct Blocks {
    /// Key → rows, sorted by resolved key string for determinism.
    pub blocks: Vec<(ValueId, Vec<RowId>)>,
    /// Rows whose LHS did not match the pattern at all.
    pub unmatched: Vec<RowId>,
    /// Rows with a null LHS.
    pub null_rows: Vec<RowId>,
}

impl Blocks {
    /// Number of blocks.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Total rows across blocks.
    #[must_use]
    pub fn matched_rows(&self) -> usize {
        self.blocks.iter().map(|(_, r)| r.len()).sum()
    }

    /// Number of within-block pairs (the work blocking actually does).
    #[must_use]
    pub fn pair_count(&self) -> usize {
        self.blocks
            .iter()
            .map(|(_, r)| r.len() * (r.len().saturating_sub(1)) / 2)
            .sum()
    }

    /// Number of pairs brute force would enumerate over matched rows.
    #[must_use]
    pub fn brute_force_pair_count(&self) -> usize {
        let n = self.matched_rows();
        n * n.saturating_sub(1) / 2
    }
}

/// Builder for [`Blocks`].
#[derive(Debug)]
pub struct BlockingIndex;

impl BlockingIndex {
    /// Group the rows of column `col` by their constrained-capture key
    /// under `q`.
    #[must_use]
    pub fn block(table: &Table, col: usize, q: &ConstrainedPattern) -> Blocks {
        let mut map: FxHashMap<ValueId, Vec<RowId>> = FxHashMap::default();
        let mut unmatched = Vec::new();
        let mut null_rows = Vec::new();
        // Capture extraction runs once per distinct LHS value id.
        let mut key_cache: FxHashMap<ValueId, Option<ValueId>> = FxHashMap::default();
        for (row, v) in table.iter_column(col) {
            let Some(s) = v.as_str() else {
                null_rows.push(row);
                continue;
            };
            let key = key_cache
                .entry(v)
                .or_insert_with(|| q.key(s).map(|k| ValuePool::intern(&k)));
            match key {
                Some(k) => map.entry(*k).or_default().push(row),
                None => unmatched.push(row),
            }
        }
        let mut blocks: Vec<(ValueId, Vec<RowId>)> = map.into_iter().collect();
        blocks.sort_by_cached_key(|(k, _)| k.render());
        Blocks {
            blocks,
            unmatched,
            null_rows,
        }
    }
}

/// One block of an incrementally maintained partition: the rows sharing a
/// key, their RHS values, and a delta-maintained RHS distribution.
#[derive(Debug, Clone, Default)]
pub struct KeyBlock {
    /// Rows in insertion (= row id) order.
    rows: Vec<RowId>,
    /// RHS cell per row, parallel to `rows` ([`ValueId::NULL`] = null RHS).
    rhs: Vec<ValueId>,
    /// RHS value → row count (null tracked separately).
    counts: FxHashMap<ValueId, usize>,
    /// Rows whose RHS is null.
    null_rhs: usize,
    /// Incrementally maintained `(majority value, its count)`. Only the
    /// value whose count just grew can displace the current leader, so
    /// each insert updates this in `O(1)`.
    majority: Option<(ValueId, usize)>,
}

impl KeyBlock {
    /// The rows of this block, in insertion order.
    #[must_use]
    pub fn rows(&self) -> &[RowId] {
        &self.rows
    }

    /// `(row, rhs)` pairs in insertion order.
    pub fn rows_with_rhs(&self) -> impl Iterator<Item = (RowId, Option<&'static str>)> + '_ {
        self.rows_with_rhs_ids().map(|(r, v)| (r, v.as_str()))
    }

    /// `(row, rhs id)` pairs in insertion order (the `Copy` hot path).
    pub fn rows_with_rhs_ids(&self) -> impl Iterator<Item = (RowId, ValueId)> + '_ {
        self.rows.iter().zip(&self.rhs).map(|(&r, &v)| (r, v))
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the block empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The majority RHS value (most rows; ties break to the
    /// lexicographically smallest value, matching batch detection). Null
    /// RHS cells never win the vote. `O(1)`: maintained per insert.
    #[must_use]
    pub fn majority(&self) -> Option<&'static str> {
        self.majority_id().and_then(ValueId::as_str)
    }

    /// The majority RHS value as an interned id.
    #[must_use]
    pub fn majority_id(&self) -> Option<ValueId> {
        self.majority.as_ref().map(|(v, _)| *v)
    }

    /// Does every non-null RHS cell agree (and no nulls dissent)?
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        self.counts.len() <= 1 && self.null_rhs == 0
    }

    /// The block's aggregate statistics, assembled from the maintained
    /// deltas in `O(distinct RHS values)`.
    #[must_use]
    pub fn stats(&self) -> EntryStats {
        let mut rhs_counts: Vec<(ValueId, usize)> =
            self.counts.iter().map(|(v, c)| (*v, *c)).collect();
        sort_rhs_counts(&mut rhs_counts);
        EntryStats {
            support: self.rows.len(),
            rhs_counts,
        }
    }

    fn push(&mut self, row: RowId, rhs: ValueId) {
        self.rows.push(row);
        self.rhs.push(rhs);
        if rhs.is_null() {
            self.null_rhs += 1;
            return;
        }
        let count = self.counts.entry(rhs).or_insert(0);
        *count += 1;
        let count = *count;
        // Only `rhs` gained a row, so only `rhs` can displace the
        // leader; ties go to the lexicographically smaller value.
        match &mut self.majority {
            Some((leader, leader_count)) => {
                if count > *leader_count
                    || (count == *leader_count && rhs.render() < leader.render())
                {
                    *leader = rhs;
                    *leader_count = count;
                }
            }
            None => self.majority = Some((rhs, count)),
        }
    }
}

/// Where an inserted row landed in a [`BlockingPartition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// The LHS matched; the row joined the block with this key.
    Block(ValueId),
    /// The LHS value did not match the pattern.
    Unmatched,
    /// The LHS cell was null.
    NullLhs,
}

/// An incrementally updatable blocking partition — the streaming
/// counterpart of [`BlockingIndex::block`].
///
/// Rows arrive one at a time via [`BlockingPartition::insert`]; each
/// insert touches exactly one block (`O(1)` amortized, independent of how
/// many rows the partition already holds), and per-key [`EntryStats`]
/// deltas are maintained as rows land. `None` as the keyer blocks on the
/// whole LHS value (the wildcard-LHS fallback of variable detection).
#[derive(Debug)]
pub struct BlockingPartition {
    keyer: Option<ConstrainedPattern>,
    blocks: FxHashMap<ValueId, KeyBlock>,
    unmatched: Vec<RowId>,
    null_rows: Vec<RowId>,
    /// LHS value id → key memo: the per-`(pattern, ValueId)` memo that
    /// bounds capture extraction to once per distinct LHS value.
    key_cache: FxHashMap<ValueId, Option<ValueId>>,
    /// Number of actual capture extractions performed (cache misses) —
    /// the call-counting test hook for the memoization guarantee.
    key_evals: usize,
}

impl BlockingPartition {
    /// An empty partition keyed by the constrained captures of `q`, or by
    /// the whole LHS value when `q` is `None`.
    #[must_use]
    pub fn new(q: Option<ConstrainedPattern>) -> BlockingPartition {
        BlockingPartition {
            keyer: q,
            blocks: FxHashMap::default(),
            unmatched: Vec::new(),
            null_rows: Vec::new(),
            key_cache: FxHashMap::default(),
            key_evals: 0,
        }
    }

    /// Insert one row (interned cells). Rows must arrive in nondecreasing
    /// `RowId` order.
    pub fn insert(&mut self, row: RowId, lhs: ValueId, rhs: ValueId) -> Placement {
        if lhs.is_null() {
            self.null_rows.push(row);
            return Placement::NullLhs;
        }
        let key = match &self.keyer {
            Some(q) => *self.key_cache.entry(lhs).or_insert_with(|| {
                self.key_evals += 1;
                q.key(lhs.render()).map(|k| ValuePool::intern(&k))
            }),
            None => Some(lhs),
        };
        match key {
            Some(k) => {
                self.blocks.entry(k).or_default().push(row, rhs);
                Placement::Block(k)
            }
            None => {
                self.unmatched.push(row);
                Placement::Unmatched
            }
        }
    }

    /// The block for a key, if any row produced it.
    #[must_use]
    pub fn block(&self, key: ValueId) -> Option<&KeyBlock> {
        self.blocks.get(&key)
    }

    /// The block for a key string, if any row produced it.
    #[must_use]
    pub fn block_by_str(&self, key: &str) -> Option<&KeyBlock> {
        self.blocks.get(&ValuePool::lookup(key)?)
    }

    /// Number of blocks.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Rows whose LHS did not match the pattern.
    #[must_use]
    pub fn unmatched(&self) -> &[RowId] {
        &self.unmatched
    }

    /// Rows with a null LHS.
    #[must_use]
    pub fn null_rows(&self) -> &[RowId] {
        &self.null_rows
    }

    /// Number of actual capture extractions performed. Bounded by the
    /// number of distinct non-null LHS values inserted — the memoization
    /// guarantee's test hook.
    #[must_use]
    pub fn key_evals(&self) -> usize {
        self.key_evals
    }

    /// Snapshot into the batch [`Blocks`] shape (sorted keys), for parity
    /// checks against [`BlockingIndex::block`].
    #[must_use]
    pub fn freeze(&self) -> Blocks {
        let mut blocks: Vec<(ValueId, Vec<RowId>)> = self
            .blocks
            .iter()
            .map(|(k, b)| (*k, b.rows.clone()))
            .collect();
        blocks.sort_by_cached_key(|(k, _)| k.render());
        Blocks {
            blocks,
            unmatched: self.unmatched.clone(),
            null_rows: self.null_rows.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anmat_table::Schema;

    fn name_table() -> Table {
        let schema = Schema::new(["name"]).unwrap();
        Table::from_str_rows(
            schema,
            [
                ["John Charles"],
                ["John Bosco"],
                ["Susan Orlean"],
                ["Susan Boyle"],
                ["lowercase name"],
                [""],
            ],
        )
        .unwrap()
    }

    fn q_first_name() -> ConstrainedPattern {
        "[\\LU\\LL*\\ ]\\A*".parse().unwrap()
    }

    fn id(s: &str) -> ValueId {
        ValuePool::intern(s)
    }

    #[test]
    fn blocks_group_by_first_name() {
        let blocks = BlockingIndex::block(&name_table(), 0, &q_first_name());
        assert_eq!(blocks.block_count(), 2);
        assert_eq!(blocks.blocks[0].0.as_str(), Some("John "));
        assert_eq!(blocks.blocks[0].1, vec![0, 1]);
        assert_eq!(blocks.blocks[1].0.as_str(), Some("Susan "));
        assert_eq!(blocks.blocks[1].1, vec![2, 3]);
        assert_eq!(blocks.unmatched, vec![4]);
        assert_eq!(blocks.null_rows, vec![5]);
    }

    #[test]
    fn pair_counts() {
        let blocks = BlockingIndex::block(&name_table(), 0, &q_first_name());
        // 2 blocks of 2 rows: 1 pair each.
        assert_eq!(blocks.pair_count(), 2);
        // Brute force over 4 matched rows: 6 pairs.
        assert_eq!(blocks.brute_force_pair_count(), 6);
        assert_eq!(blocks.matched_rows(), 4);
    }

    #[test]
    fn zip_prefix_blocking() {
        let schema = Schema::new(["zip"]).unwrap();
        let t = Table::from_str_rows(schema, [["90001"], ["90002"], ["90101"], ["60601"]]).unwrap();
        let q: ConstrainedPattern = "[\\D{3}]\\D{2}".parse().unwrap();
        let blocks = BlockingIndex::block(&t, 0, &q);
        let keys: Vec<&str> = blocks.blocks.iter().map(|(k, _)| k.render()).collect();
        assert_eq!(keys, vec!["606", "900", "901"]);
        assert_eq!(blocks.blocks[1].1, vec![0, 1]);
    }

    #[test]
    fn duplicate_values_share_cache() {
        let schema = Schema::new(["x"]).unwrap();
        let t = Table::from_str_rows(schema, [["ab"], ["ab"], ["ab"]]).unwrap();
        let q = ConstrainedPattern::whole("\\LL+".parse().unwrap());
        let blocks = BlockingIndex::block(&t, 0, &q);
        assert_eq!(blocks.block_count(), 1);
        assert_eq!(blocks.blocks[0].1.len(), 3);
        assert_eq!(blocks.pair_count(), 3);
    }

    #[test]
    fn all_unmatched() {
        let schema = Schema::new(["x"]).unwrap();
        let t = Table::from_str_rows(schema, [["123"], ["456"]]).unwrap();
        let q = ConstrainedPattern::whole("\\LL+".parse().unwrap());
        let blocks = BlockingIndex::block(&t, 0, &q);
        assert_eq!(blocks.block_count(), 0);
        assert_eq!(blocks.unmatched.len(), 2);
    }

    #[test]
    fn partition_matches_batch_blocking() {
        let t = name_table();
        let q = q_first_name();
        let batch = BlockingIndex::block(&t, 0, &q);
        let mut partition = BlockingPartition::new(Some(q.clone()));
        for (row, v) in t.iter_column(0) {
            partition.insert(row, v, ValueId::NULL);
        }
        let frozen = partition.freeze();
        assert_eq!(frozen.blocks, batch.blocks);
        assert_eq!(frozen.unmatched, batch.unmatched);
        assert_eq!(frozen.null_rows, batch.null_rows);
    }

    #[test]
    fn partition_tracks_rhs_deltas() {
        let q: ConstrainedPattern = "[\\D{3}]\\D{2}".parse().unwrap();
        let mut p = BlockingPartition::new(Some(q));
        assert_eq!(
            p.insert(0, id("90001"), id("Los Angeles")),
            Placement::Block(id("900"))
        );
        p.insert(1, id("90002"), id("Los Angeles"));
        p.insert(2, id("90003"), id("New York"));
        p.insert(3, id("90004"), ValueId::NULL);
        let block = p.block_by_str("900").unwrap();
        assert_eq!(block.len(), 4);
        assert_eq!(block.majority(), Some("Los Angeles"));
        assert!(!block.is_consistent());
        let stats = block.stats();
        assert_eq!(stats.support, 4);
        assert_eq!(stats.rhs_counts[0], (id("Los Angeles"), 2));
        // Majority tie breaks to the lexicographically smaller value,
        // matching batch detection's vote.
        p.insert(4, id("90005"), id("New York"));
        assert_eq!(
            p.block_by_str("900").unwrap().majority(),
            Some("Los Angeles")
        );
    }

    #[test]
    fn whole_value_partition() {
        let mut p = BlockingPartition::new(None);
        p.insert(0, id("x"), id("1"));
        p.insert(1, id("x"), id("2"));
        p.insert(2, ValueId::NULL, id("3"));
        assert_eq!(p.block_count(), 1);
        assert_eq!(p.block_by_str("x").unwrap().rows(), &[0, 1]);
        assert_eq!(p.null_rows(), &[2]);
        let pairs: Vec<_> = p.block_by_str("x").unwrap().rows_with_rhs().collect();
        assert_eq!(pairs, vec![(0, Some("1")), (1, Some("2"))]);
    }

    #[test]
    fn key_evals_bounded_by_distinct_values() {
        let q: ConstrainedPattern = "[\\D{3}]\\D{2}".parse().unwrap();
        let mut p = BlockingPartition::new(Some(q));
        // 1000 rows over 10 distinct zips: capture extraction must run
        // exactly 10 times.
        for row in 0..1000 {
            let zip = format!("900{:02}", row % 10);
            p.insert(row, id(&zip), id("LA"));
        }
        assert_eq!(p.key_evals(), 10);
    }

    #[test]
    fn majority_tie_deterministic_under_any_arrival_order() {
        // A 2–2 tie must elect the lexicographically smaller string in
        // both arrival orders (and hence both interning orders).
        for (first, second) in [("m-tie", "b-tie"), ("b-tie", "m-tie")] {
            let mut p = BlockingPartition::new(None);
            p.insert(0, id("k"), id(first));
            p.insert(1, id("k"), id(second));
            p.insert(2, id("k"), id(first));
            p.insert(3, id("k"), id(second));
            assert_eq!(p.block_by_str("k").unwrap().majority(), Some("b-tie"));
        }
    }
}
