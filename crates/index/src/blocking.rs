//! Blocking for variable-PFD detection (§3 of the paper).
//!
//! A variable PFD (`tp[B] = ⊥`) is violated by a *pair* of tuples that
//! match `tp[A]`, agree on its constrained captures, and differ on `B`.
//! The brute-force check is quadratic; the paper avoids it "using
//! blocking" (citing BigDansing). Because
//! [`ConstrainedPattern::key`](anmat_pattern::ConstrainedPattern::key)
//! characterizes `≡_Q` exactly, grouping rows by key is a *lossless*
//! blocking scheme: every violating pair lies within one block, and the
//! pair enumeration cost drops from `O(n²)` to `Σ |block|²` — and further
//! to `O(n)` for the common case where each block's RHS is checked by
//! value counts rather than explicit pairs.

use crate::inverted::EntryStats;
use anmat_pattern::ConstrainedPattern;
use anmat_table::{RowId, Table};
use std::collections::HashMap;

/// Rows grouped by constrained-capture key.
#[derive(Debug)]
pub struct Blocks {
    /// Key → rows, sorted by key for determinism.
    pub blocks: Vec<(String, Vec<RowId>)>,
    /// Rows whose LHS did not match the pattern at all.
    pub unmatched: Vec<RowId>,
    /// Rows with a null LHS.
    pub null_rows: Vec<RowId>,
}

impl Blocks {
    /// Number of blocks.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Total rows across blocks.
    #[must_use]
    pub fn matched_rows(&self) -> usize {
        self.blocks.iter().map(|(_, r)| r.len()).sum()
    }

    /// Number of within-block pairs (the work blocking actually does).
    #[must_use]
    pub fn pair_count(&self) -> usize {
        self.blocks
            .iter()
            .map(|(_, r)| r.len() * (r.len().saturating_sub(1)) / 2)
            .sum()
    }

    /// Number of pairs brute force would enumerate over matched rows.
    #[must_use]
    pub fn brute_force_pair_count(&self) -> usize {
        let n = self.matched_rows();
        n * n.saturating_sub(1) / 2
    }
}

/// Builder for [`Blocks`].
#[derive(Debug)]
pub struct BlockingIndex;

impl BlockingIndex {
    /// Group the rows of column `col` by their constrained-capture key
    /// under `q`.
    #[must_use]
    pub fn block(table: &Table, col: usize, q: &ConstrainedPattern) -> Blocks {
        let mut map: HashMap<String, Vec<RowId>> = HashMap::new();
        let mut unmatched = Vec::new();
        let mut null_rows = Vec::new();
        // Deduplicate capture extraction per distinct value.
        let mut key_cache: HashMap<&str, Option<String>> = HashMap::new();
        for (row, v) in table.iter_column(col) {
            let Some(s) = v.as_str() else {
                null_rows.push(row);
                continue;
            };
            let key = key_cache.entry(s).or_insert_with(|| q.key(s));
            match key {
                Some(k) => map.entry(k.clone()).or_default().push(row),
                None => unmatched.push(row),
            }
        }
        let mut blocks: Vec<(String, Vec<RowId>)> = map.into_iter().collect();
        blocks.sort_by(|(a, _), (b, _)| a.cmp(b));
        Blocks {
            blocks,
            unmatched,
            null_rows,
        }
    }
}

/// One block of an incrementally maintained partition: the rows sharing a
/// key, their RHS values, and a delta-maintained RHS distribution.
#[derive(Debug, Clone, Default)]
pub struct KeyBlock {
    /// Rows in insertion (= row id) order.
    rows: Vec<RowId>,
    /// RHS cell per row, parallel to `rows` (`None` = null RHS).
    rhs: Vec<Option<String>>,
    /// RHS value → row count (null tracked separately).
    counts: HashMap<String, usize>,
    /// Rows whose RHS is null.
    null_rhs: usize,
    /// Incrementally maintained `(majority value, its count)`. Only the
    /// value whose count just grew can displace the current leader, so
    /// each insert updates this in `O(1)`.
    majority: Option<(String, usize)>,
}

impl KeyBlock {
    /// The rows of this block, in insertion order.
    #[must_use]
    pub fn rows(&self) -> &[RowId] {
        &self.rows
    }

    /// `(row, rhs)` pairs in insertion order.
    pub fn rows_with_rhs(&self) -> impl Iterator<Item = (RowId, Option<&str>)> {
        self.rows
            .iter()
            .zip(&self.rhs)
            .map(|(&r, v)| (r, v.as_deref()))
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the block empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The majority RHS value (most rows; ties break to the
    /// lexicographically smallest value, matching batch detection). Null
    /// RHS cells never win the vote. `O(1)`: maintained per insert.
    #[must_use]
    pub fn majority(&self) -> Option<&str> {
        self.majority.as_ref().map(|(v, _)| v.as_str())
    }

    /// Does every non-null RHS cell agree (and no nulls dissent)?
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        self.counts.len() <= 1 && self.null_rhs == 0
    }

    /// The block's aggregate statistics, assembled from the maintained
    /// deltas in `O(distinct RHS values)`.
    #[must_use]
    pub fn stats(&self) -> EntryStats {
        let mut rhs_counts: Vec<(String, usize)> =
            self.counts.iter().map(|(v, c)| (v.clone(), *c)).collect();
        rhs_counts.sort_by(|(va, ca), (vb, cb)| cb.cmp(ca).then_with(|| va.cmp(vb)));
        EntryStats {
            support: self.rows.len(),
            rhs_counts,
        }
    }

    fn push(&mut self, row: RowId, rhs: Option<&str>) {
        self.rows.push(row);
        self.rhs.push(rhs.map(str::to_string));
        match rhs {
            Some(v) => {
                let count = self.counts.entry(v.to_string()).or_insert(0);
                *count += 1;
                let count = *count;
                // Only `v` gained a row, so only `v` can displace the
                // leader; ties go to the lexicographically smaller value.
                match &mut self.majority {
                    Some((leader, leader_count)) => {
                        if count > *leader_count || (count == *leader_count && v < leader.as_str())
                        {
                            *leader = v.to_string();
                            *leader_count = count;
                        }
                    }
                    None => self.majority = Some((v.to_string(), count)),
                }
            }
            None => self.null_rhs += 1,
        }
    }
}

/// Where an inserted row landed in a [`BlockingPartition`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Placement {
    /// The LHS matched; the row joined the block with this key.
    Block(String),
    /// The LHS value did not match the pattern.
    Unmatched,
    /// The LHS cell was null.
    NullLhs,
}

/// An incrementally updatable blocking partition — the streaming
/// counterpart of [`BlockingIndex::block`].
///
/// Rows arrive one at a time via [`BlockingPartition::insert`]; each
/// insert touches exactly one block (`O(1)` amortized, independent of how
/// many rows the partition already holds), and per-key [`EntryStats`]
/// deltas are maintained as rows land. `None` as the keyer blocks on the
/// whole LHS value (the wildcard-LHS fallback of variable detection).
#[derive(Debug)]
pub struct BlockingPartition {
    keyer: Option<ConstrainedPattern>,
    blocks: HashMap<String, KeyBlock>,
    unmatched: Vec<RowId>,
    null_rows: Vec<RowId>,
    /// LHS value → key memo (capture extraction is the hot cost).
    key_cache: HashMap<String, Option<String>>,
}

impl BlockingPartition {
    /// An empty partition keyed by the constrained captures of `q`, or by
    /// the whole LHS value when `q` is `None`.
    #[must_use]
    pub fn new(q: Option<ConstrainedPattern>) -> BlockingPartition {
        BlockingPartition {
            keyer: q,
            blocks: HashMap::new(),
            unmatched: Vec::new(),
            null_rows: Vec::new(),
            key_cache: HashMap::new(),
        }
    }

    /// Insert one row. Rows must arrive in nondecreasing `RowId` order.
    pub fn insert(&mut self, row: RowId, lhs: Option<&str>, rhs: Option<&str>) -> Placement {
        let Some(value) = lhs else {
            self.null_rows.push(row);
            return Placement::NullLhs;
        };
        let key = match &self.keyer {
            Some(q) => self
                .key_cache
                .entry(value.to_string())
                .or_insert_with(|| q.key(value))
                .clone(),
            None => Some(value.to_string()),
        };
        match key {
            Some(k) => {
                self.blocks.entry(k.clone()).or_default().push(row, rhs);
                Placement::Block(k)
            }
            None => {
                self.unmatched.push(row);
                Placement::Unmatched
            }
        }
    }

    /// The block for a key, if any row produced it.
    #[must_use]
    pub fn block(&self, key: &str) -> Option<&KeyBlock> {
        self.blocks.get(key)
    }

    /// Number of blocks.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Rows whose LHS did not match the pattern.
    #[must_use]
    pub fn unmatched(&self) -> &[RowId] {
        &self.unmatched
    }

    /// Rows with a null LHS.
    #[must_use]
    pub fn null_rows(&self) -> &[RowId] {
        &self.null_rows
    }

    /// Snapshot into the batch [`Blocks`] shape (sorted keys), for parity
    /// checks against [`BlockingIndex::block`].
    #[must_use]
    pub fn freeze(&self) -> Blocks {
        let mut blocks: Vec<(String, Vec<RowId>)> = self
            .blocks
            .iter()
            .map(|(k, b)| (k.clone(), b.rows.clone()))
            .collect();
        blocks.sort_by(|(a, _), (b, _)| a.cmp(b));
        Blocks {
            blocks,
            unmatched: self.unmatched.clone(),
            null_rows: self.null_rows.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anmat_table::Schema;

    fn name_table() -> Table {
        let schema = Schema::new(["name"]).unwrap();
        Table::from_str_rows(
            schema,
            [
                ["John Charles"],
                ["John Bosco"],
                ["Susan Orlean"],
                ["Susan Boyle"],
                ["lowercase name"],
                [""],
            ],
        )
        .unwrap()
    }

    fn q_first_name() -> ConstrainedPattern {
        "[\\LU\\LL*\\ ]\\A*".parse().unwrap()
    }

    #[test]
    fn blocks_group_by_first_name() {
        let blocks = BlockingIndex::block(&name_table(), 0, &q_first_name());
        assert_eq!(blocks.block_count(), 2);
        assert_eq!(blocks.blocks[0].0, "John ");
        assert_eq!(blocks.blocks[0].1, vec![0, 1]);
        assert_eq!(blocks.blocks[1].0, "Susan ");
        assert_eq!(blocks.blocks[1].1, vec![2, 3]);
        assert_eq!(blocks.unmatched, vec![4]);
        assert_eq!(blocks.null_rows, vec![5]);
    }

    #[test]
    fn pair_counts() {
        let blocks = BlockingIndex::block(&name_table(), 0, &q_first_name());
        // 2 blocks of 2 rows: 1 pair each.
        assert_eq!(blocks.pair_count(), 2);
        // Brute force over 4 matched rows: 6 pairs.
        assert_eq!(blocks.brute_force_pair_count(), 6);
        assert_eq!(blocks.matched_rows(), 4);
    }

    #[test]
    fn zip_prefix_blocking() {
        let schema = Schema::new(["zip"]).unwrap();
        let t = Table::from_str_rows(schema, [["90001"], ["90002"], ["90101"], ["60601"]]).unwrap();
        let q: ConstrainedPattern = "[\\D{3}]\\D{2}".parse().unwrap();
        let blocks = BlockingIndex::block(&t, 0, &q);
        let keys: Vec<&str> = blocks.blocks.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["606", "900", "901"]);
        assert_eq!(blocks.blocks[1].1, vec![0, 1]);
    }

    #[test]
    fn duplicate_values_share_cache() {
        let schema = Schema::new(["x"]).unwrap();
        let t = Table::from_str_rows(schema, [["ab"], ["ab"], ["ab"]]).unwrap();
        let q = ConstrainedPattern::whole("\\LL+".parse().unwrap());
        let blocks = BlockingIndex::block(&t, 0, &q);
        assert_eq!(blocks.block_count(), 1);
        assert_eq!(blocks.blocks[0].1.len(), 3);
        assert_eq!(blocks.pair_count(), 3);
    }

    #[test]
    fn all_unmatched() {
        let schema = Schema::new(["x"]).unwrap();
        let t = Table::from_str_rows(schema, [["123"], ["456"]]).unwrap();
        let q = ConstrainedPattern::whole("\\LL+".parse().unwrap());
        let blocks = BlockingIndex::block(&t, 0, &q);
        assert_eq!(blocks.block_count(), 0);
        assert_eq!(blocks.unmatched.len(), 2);
    }

    #[test]
    fn partition_matches_batch_blocking() {
        let t = name_table();
        let q = q_first_name();
        let batch = BlockingIndex::block(&t, 0, &q);
        let mut partition = BlockingPartition::new(Some(q.clone()));
        for (row, v) in t.iter_column(0) {
            partition.insert(row, v.as_str(), None);
        }
        let frozen = partition.freeze();
        assert_eq!(frozen.blocks, batch.blocks);
        assert_eq!(frozen.unmatched, batch.unmatched);
        assert_eq!(frozen.null_rows, batch.null_rows);
    }

    #[test]
    fn partition_tracks_rhs_deltas() {
        let q: ConstrainedPattern = "[\\D{3}]\\D{2}".parse().unwrap();
        let mut p = BlockingPartition::new(Some(q));
        assert_eq!(
            p.insert(0, Some("90001"), Some("Los Angeles")),
            Placement::Block("900".into())
        );
        p.insert(1, Some("90002"), Some("Los Angeles"));
        p.insert(2, Some("90003"), Some("New York"));
        p.insert(3, Some("90004"), None);
        let block = p.block("900").unwrap();
        assert_eq!(block.len(), 4);
        assert_eq!(block.majority(), Some("Los Angeles"));
        assert!(!block.is_consistent());
        let stats = block.stats();
        assert_eq!(stats.support, 4);
        assert_eq!(stats.rhs_counts[0], ("Los Angeles".to_string(), 2));
        // Majority tie breaks to the lexicographically smaller value,
        // matching batch detection's vote.
        p.insert(4, Some("90005"), Some("New York"));
        assert_eq!(p.block("900").unwrap().majority(), Some("Los Angeles"));
    }

    #[test]
    fn whole_value_partition() {
        let mut p = BlockingPartition::new(None);
        p.insert(0, Some("x"), Some("1"));
        p.insert(1, Some("x"), Some("2"));
        p.insert(2, None, Some("3"));
        assert_eq!(p.block_count(), 1);
        assert_eq!(p.block("x").unwrap().rows(), &[0, 1]);
        assert_eq!(p.null_rows(), &[2]);
        let pairs: Vec<_> = p.block("x").unwrap().rows_with_rhs().collect();
        assert_eq!(pairs, vec![(0, Some("1")), (1, Some("2"))]);
    }
}
