//! Blocking for variable-PFD detection (§3 of the paper).
//!
//! A variable PFD (`tp[B] = ⊥`) is violated by a *pair* of tuples that
//! match `tp[A]`, agree on its constrained captures, and differ on `B`.
//! The brute-force check is quadratic; the paper avoids it "using
//! blocking" (citing BigDansing). Because
//! [`ConstrainedPattern::key`](anmat_pattern::ConstrainedPattern::key)
//! characterizes `≡_Q` exactly, grouping rows by key is a *lossless*
//! blocking scheme: every violating pair lies within one block, and the
//! pair enumeration cost drops from `O(n²)` to `Σ |block|²` — and further
//! to `O(n)` for the common case where each block's RHS is checked by
//! value counts rather than explicit pairs.

use anmat_pattern::ConstrainedPattern;
use anmat_table::{RowId, Table};
use std::collections::HashMap;

/// Rows grouped by constrained-capture key.
#[derive(Debug)]
pub struct Blocks {
    /// Key → rows, sorted by key for determinism.
    pub blocks: Vec<(String, Vec<RowId>)>,
    /// Rows whose LHS did not match the pattern at all.
    pub unmatched: Vec<RowId>,
    /// Rows with a null LHS.
    pub null_rows: Vec<RowId>,
}

impl Blocks {
    /// Number of blocks.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Total rows across blocks.
    #[must_use]
    pub fn matched_rows(&self) -> usize {
        self.blocks.iter().map(|(_, r)| r.len()).sum()
    }

    /// Number of within-block pairs (the work blocking actually does).
    #[must_use]
    pub fn pair_count(&self) -> usize {
        self.blocks
            .iter()
            .map(|(_, r)| r.len() * (r.len().saturating_sub(1)) / 2)
            .sum()
    }

    /// Number of pairs brute force would enumerate over matched rows.
    #[must_use]
    pub fn brute_force_pair_count(&self) -> usize {
        let n = self.matched_rows();
        n * n.saturating_sub(1) / 2
    }
}

/// Builder for [`Blocks`].
#[derive(Debug)]
pub struct BlockingIndex;

impl BlockingIndex {
    /// Group the rows of column `col` by their constrained-capture key
    /// under `q`.
    #[must_use]
    pub fn block(table: &Table, col: usize, q: &ConstrainedPattern) -> Blocks {
        let mut map: HashMap<String, Vec<RowId>> = HashMap::new();
        let mut unmatched = Vec::new();
        let mut null_rows = Vec::new();
        // Deduplicate capture extraction per distinct value.
        let mut key_cache: HashMap<&str, Option<String>> = HashMap::new();
        for (row, v) in table.iter_column(col) {
            let Some(s) = v.as_str() else {
                null_rows.push(row);
                continue;
            };
            let key = key_cache.entry(s).or_insert_with(|| q.key(s));
            match key {
                Some(k) => map.entry(k.clone()).or_default().push(row),
                None => unmatched.push(row),
            }
        }
        let mut blocks: Vec<(String, Vec<RowId>)> = map.into_iter().collect();
        blocks.sort_by(|(a, _), (b, _)| a.cmp(b));
        Blocks {
            blocks,
            unmatched,
            null_rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anmat_table::Schema;

    fn name_table() -> Table {
        let schema = Schema::new(["name"]).unwrap();
        Table::from_str_rows(
            schema,
            [
                ["John Charles"],
                ["John Bosco"],
                ["Susan Orlean"],
                ["Susan Boyle"],
                ["lowercase name"],
                [""],
            ],
        )
        .unwrap()
    }

    fn q_first_name() -> ConstrainedPattern {
        "[\\LU\\LL*\\ ]\\A*".parse().unwrap()
    }

    #[test]
    fn blocks_group_by_first_name() {
        let blocks = BlockingIndex::block(&name_table(), 0, &q_first_name());
        assert_eq!(blocks.block_count(), 2);
        assert_eq!(blocks.blocks[0].0, "John ");
        assert_eq!(blocks.blocks[0].1, vec![0, 1]);
        assert_eq!(blocks.blocks[1].0, "Susan ");
        assert_eq!(blocks.blocks[1].1, vec![2, 3]);
        assert_eq!(blocks.unmatched, vec![4]);
        assert_eq!(blocks.null_rows, vec![5]);
    }

    #[test]
    fn pair_counts() {
        let blocks = BlockingIndex::block(&name_table(), 0, &q_first_name());
        // 2 blocks of 2 rows: 1 pair each.
        assert_eq!(blocks.pair_count(), 2);
        // Brute force over 4 matched rows: 6 pairs.
        assert_eq!(blocks.brute_force_pair_count(), 6);
        assert_eq!(blocks.matched_rows(), 4);
    }

    #[test]
    fn zip_prefix_blocking() {
        let schema = Schema::new(["zip"]).unwrap();
        let t = Table::from_str_rows(
            schema,
            [["90001"], ["90002"], ["90101"], ["60601"]],
        )
        .unwrap();
        let q: ConstrainedPattern = "[\\D{3}]\\D{2}".parse().unwrap();
        let blocks = BlockingIndex::block(&t, 0, &q);
        let keys: Vec<&str> = blocks.blocks.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["606", "900", "901"]);
        assert_eq!(blocks.blocks[1].1, vec![0, 1]);
    }

    #[test]
    fn duplicate_values_share_cache() {
        let schema = Schema::new(["x"]).unwrap();
        let t = Table::from_str_rows(schema, [["ab"], ["ab"], ["ab"]]).unwrap();
        let q = ConstrainedPattern::whole("\\LL+".parse().unwrap());
        let blocks = BlockingIndex::block(&t, 0, &q);
        assert_eq!(blocks.block_count(), 1);
        assert_eq!(blocks.blocks[0].1.len(), 3);
        assert_eq!(blocks.pair_count(), 3);
    }

    #[test]
    fn all_unmatched() {
        let schema = Schema::new(["x"]).unwrap();
        let t = Table::from_str_rows(schema, [["123"], ["456"]]).unwrap();
        let q = ConstrainedPattern::whole("\\LL+".parse().unwrap());
        let blocks = BlockingIndex::block(&t, 0, &q);
        assert_eq!(blocks.block_count(), 0);
        assert_eq!(blocks.unmatched.len(), 2);
    }
}
