//! Blocking for variable-PFD detection (§3 of the paper).
//!
//! A variable PFD (`tp[B] = ⊥`) is violated by a *pair* of tuples that
//! match `tp[A]`, agree on its constrained captures, and differ on `B`.
//! The brute-force check is quadratic; the paper avoids it "using
//! blocking" (citing BigDansing). Because
//! [`ConstrainedPattern::key`](anmat_pattern::ConstrainedPattern::key)
//! characterizes `≡_Q` exactly, grouping rows by key is a *lossless*
//! blocking scheme: every violating pair lies within one block, and the
//! pair enumeration cost drops from `O(n²)` to `Σ |block|²` — and further
//! to `O(n)` for the common case where each block's RHS is checked by
//! value counts rather than explicit pairs.
//!
//! Blocking keys and RHS values are interned [`ValueId`]s: capture
//! extraction (the hot cost) runs at most once per *distinct* LHS value
//! — the per-`(pattern, ValueId)` memo the incremental engine relies on —
//! and every map in this module hashes a 4-byte id instead of a string.

use crate::inverted::{sort_rhs_counts, EntryStats};
use anmat_pattern::{CompiledConstrained, ConstrainedPattern, PatternEngine};
use anmat_table::{RowId, RowIdRemap, Table, ValueId, ValuePool};
use fxhash::FxHashMap;
use std::sync::Arc;

/// Rows grouped by constrained-capture key.
#[derive(Debug)]
pub struct Blocks {
    /// Key → rows, sorted by resolved key string for determinism.
    pub blocks: Vec<(ValueId, Vec<RowId>)>,
    /// Rows whose LHS did not match the pattern at all.
    pub unmatched: Vec<RowId>,
    /// Rows with a null LHS.
    pub null_rows: Vec<RowId>,
}

impl Blocks {
    /// Number of blocks.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Total rows across blocks.
    #[must_use]
    pub fn matched_rows(&self) -> usize {
        self.blocks.iter().map(|(_, r)| r.len()).sum()
    }

    /// Number of within-block pairs (the work blocking actually does).
    #[must_use]
    pub fn pair_count(&self) -> usize {
        self.blocks
            .iter()
            .map(|(_, r)| r.len() * (r.len().saturating_sub(1)) / 2)
            .sum()
    }

    /// Number of pairs brute force would enumerate over matched rows.
    #[must_use]
    pub fn brute_force_pair_count(&self) -> usize {
        let n = self.matched_rows();
        n * n.saturating_sub(1) / 2
    }
}

/// Builder for [`Blocks`].
#[derive(Debug)]
pub struct BlockingIndex;

impl BlockingIndex {
    /// Group the rows of column `col` by their constrained-capture key
    /// under `q`.
    #[must_use]
    pub fn block(table: &Table, col: usize, q: &ConstrainedPattern) -> Blocks {
        // The compiled keyer pays one compile for at most
        // `distinct(column)` span-VM extractions.
        let compiled = CompiledConstrained::compile(q);
        let mut key_buf = String::new();
        let mut map: FxHashMap<ValueId, Vec<RowId>> = FxHashMap::default();
        let mut unmatched = Vec::new();
        let mut null_rows = Vec::new();
        // Capture extraction runs once per distinct LHS value id.
        let mut key_cache: FxHashMap<ValueId, Option<ValueId>> = FxHashMap::default();
        for (row, v) in table.iter_column(col) {
            let Some(s) = v.as_str() else {
                null_rows.push(row);
                continue;
            };
            let key = key_cache.entry(v).or_insert_with(|| {
                compiled
                    .key_into(s, &mut key_buf)
                    .then(|| ValuePool::intern(&key_buf))
            });
            match key {
                Some(k) => map.entry(*k).or_default().push(row),
                None => unmatched.push(row),
            }
        }
        let mut blocks: Vec<(ValueId, Vec<RowId>)> = map.into_iter().collect();
        blocks.sort_by_cached_key(|(k, _)| k.render());
        Blocks {
            blocks,
            unmatched,
            null_rows,
        }
    }
}

/// One block of an incrementally maintained partition: the rows sharing a
/// key, their RHS values, and a delta-maintained RHS distribution.
///
/// Blocks are *mutable*: a removal (via
/// [`BlockingPartition::remove`]) is the exact inverse of an insert —
/// `O(1)` count decrements, with the majority re-derived (same
/// count-desc/string-asc tie-break, so interning-order-independent) only
/// when the removed value was the leader.
#[derive(Debug, Clone, Default)]
pub struct KeyBlock {
    /// Rows in ascending `RowId` order (updates can re-insert an old id,
    /// so inserts place at the sorted position — `O(1)` for the common
    /// append case where the id is the largest yet).
    rows: Vec<RowId>,
    /// RHS cell per row, parallel to `rows` ([`ValueId::NULL`] = null RHS).
    rhs: Vec<ValueId>,
    /// RHS value → row count (null tracked separately).
    counts: FxHashMap<ValueId, usize>,
    /// Rows whose RHS is null.
    null_rhs: usize,
    /// Incrementally maintained `(majority value, its count)`. Only the
    /// value whose count just grew can displace the current leader, so
    /// each insert updates this in `O(1)`; a removal re-derives it in
    /// `O(distinct RHS)` only when the leader's own count shrank.
    majority: Option<(ValueId, usize)>,
}

impl KeyBlock {
    /// The rows of this block, in ascending row order.
    #[must_use]
    pub fn rows(&self) -> &[RowId] {
        &self.rows
    }

    /// `(row, rhs)` pairs in ascending row order.
    pub fn rows_with_rhs(&self) -> impl Iterator<Item = (RowId, Option<&'static str>)> + '_ {
        self.rows_with_rhs_ids().map(|(r, v)| (r, v.as_str()))
    }

    /// `(row, rhs id)` pairs in ascending row order (the `Copy` hot path).
    pub fn rows_with_rhs_ids(&self) -> impl Iterator<Item = (RowId, ValueId)> + '_ {
        self.rows.iter().zip(&self.rhs).map(|(&r, &v)| (r, v))
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the block empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The majority RHS value (most rows; ties break to the
    /// lexicographically smallest value, matching batch detection). Null
    /// RHS cells never win the vote. `O(1)`: maintained per insert.
    #[must_use]
    pub fn majority(&self) -> Option<&'static str> {
        self.majority_id().and_then(ValueId::as_str)
    }

    /// The majority RHS value as an interned id.
    #[must_use]
    pub fn majority_id(&self) -> Option<ValueId> {
        self.majority.as_ref().map(|(v, _)| *v)
    }

    /// Does every non-null RHS cell agree (and no nulls dissent)?
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        self.counts.len() <= 1 && self.null_rhs == 0
    }

    /// The block's aggregate statistics, assembled from the maintained
    /// deltas in `O(distinct RHS values)`.
    #[must_use]
    pub fn stats(&self) -> EntryStats {
        let mut rhs_counts: Vec<(ValueId, usize)> =
            self.counts.iter().map(|(v, c)| (*v, *c)).collect();
        sort_rhs_counts(&mut rhs_counts);
        EntryStats {
            support: self.rows.len(),
            rhs_counts,
        }
    }

    fn push(&mut self, row: RowId, rhs: ValueId) {
        // Keep `rows` in ascending id order: appends land at the end in
        // `O(1)`; an update re-inserting an older id pays a binary
        // search + shift (`O(block)`, the same bound as a removal).
        match self.rows.last() {
            Some(&last) if last >= row => {
                let pos = self.rows.partition_point(|&r| r < row);
                self.rows.insert(pos, row);
                self.rhs.insert(pos, rhs);
            }
            _ => {
                self.rows.push(row);
                self.rhs.push(rhs);
            }
        }
        if rhs.is_null() {
            self.null_rhs += 1;
            return;
        }
        let count = self.counts.entry(rhs).or_insert(0);
        *count += 1;
        let count = *count;
        // Only `rhs` gained a row, so only `rhs` can displace the
        // leader; ties go to the lexicographically smaller value.
        match &mut self.majority {
            Some((leader, leader_count)) => {
                if count > *leader_count
                    || (count == *leader_count && rhs.render() < leader.render())
                {
                    *leader = rhs;
                    *leader_count = count;
                }
            }
            None => self.majority = Some((rhs, count)),
        }
    }

    /// Remove one row; returns its RHS id, or `None` if the row was not
    /// in this block. Count decrements are `O(1)`; the majority is
    /// re-derived (in `O(distinct RHS)`, with the same deterministic
    /// count-desc/string-asc tie-break as inserts and batch detection)
    /// only when the removed value was the current leader.
    fn remove(&mut self, row: RowId) -> Option<ValueId> {
        let pos = self.rows.binary_search(&row).ok()?;
        self.rows.remove(pos);
        let rhs = self.rhs.remove(pos);
        if rhs.is_null() {
            self.null_rhs -= 1;
            return Some(rhs);
        }
        let count = self
            .counts
            .get_mut(&rhs)
            .expect("non-null rhs was counted on insert");
        *count -= 1;
        if *count == 0 {
            self.counts.remove(&rhs);
        }
        // A non-leader losing a row can never change the vote; a leader
        // losing one can now be tied or beaten, so re-derive.
        if self.majority.map(|(leader, _)| leader) == Some(rhs) {
            self.majority = self
                .counts
                .iter()
                .map(|(v, c)| (*v, *c))
                .max_by(|(va, ca), (vb, cb)| ca.cmp(cb).then_with(|| vb.render().cmp(va.render())));
        }
        Some(rhs)
    }

    /// Rewrite the block's row ids through a compaction remap. The RHS
    /// column, counts, and majority are row-id-free and stay untouched;
    /// monotonicity keeps `rows` ascending (and `rhs` stays parallel
    /// because nothing is reordered).
    fn remap(&mut self, remap: &RowIdRemap) {
        remap.remap_sorted_in_place(&mut self.rows);
    }
}

/// Insert `row` into an ascending id list (`O(1)` for the append case).
fn insert_sorted(rows: &mut Vec<RowId>, row: RowId) {
    match rows.last() {
        Some(&last) if last >= row => {
            let pos = rows.partition_point(|&r| r < row);
            rows.insert(pos, row);
        }
        _ => rows.push(row),
    }
}

/// Remove `row` from an ascending id list (no-op if absent).
fn remove_sorted(rows: &mut Vec<RowId>, row: RowId) {
    if let Ok(pos) = rows.binary_search(&row) {
        rows.remove(pos);
    }
}

/// Where an inserted row landed in a [`BlockingPartition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// The LHS matched; the row joined the block with this key.
    Block(ValueId),
    /// The LHS value did not match the pattern.
    Unmatched,
    /// The LHS cell was null.
    NullLhs,
}

/// An incrementally updatable blocking partition — the streaming
/// counterpart of [`BlockingIndex::block`].
///
/// Rows arrive one at a time via [`BlockingPartition::insert`] and leave
/// via [`BlockingPartition::remove`]; each op touches exactly one block
/// (`O(1)` amortized for appends, `O(affected block)` for removals and
/// out-of-order re-inserts — never `O(partition)`), and per-key
/// [`EntryStats`] deltas are maintained as rows come and go. `None` as
/// the keyer blocks on the whole LHS value (the wildcard-LHS fallback of
/// variable detection).
#[derive(Debug)]
pub struct BlockingPartition {
    /// The keyer, pre-compiled to span bytecode and shared (`Arc`) so
    /// sharded engines compile each rule once; `None` blocks on the
    /// whole LHS value.
    keyer: Option<Arc<CompiledConstrained>>,
    /// Which execution tier evaluates cache misses: fused-capable (the
    /// default), the forced VM, or the AST interpreter (the measured
    /// baseline). Either way extraction runs at most once per distinct
    /// LHS value, so `key_evals` is invariant.
    engine: PatternEngine,
    /// Key-string scratch reused across extractions, so a cache miss
    /// allocates nothing beyond interning a genuinely new key.
    key_buf: String,
    blocks: FxHashMap<ValueId, KeyBlock>,
    unmatched: Vec<RowId>,
    null_rows: Vec<RowId>,
    /// LHS value id → key memo: the per-`(pattern, ValueId)` memo that
    /// bounds capture extraction to once per distinct LHS value.
    key_cache: FxHashMap<ValueId, Option<ValueId>>,
    /// Number of actual capture extractions performed (cache misses) —
    /// the call-counting test hook for the memoization guarantee.
    key_evals: usize,
    /// Number of key-cache consultations (hits + misses) — the
    /// denominator that turns `key_evals` into a hit rate.
    key_lookups: usize,
}

impl BlockingPartition {
    /// An empty partition keyed by the constrained captures of `q`, or by
    /// the whole LHS value when `q` is `None`.
    #[must_use]
    pub fn new(q: Option<ConstrainedPattern>) -> BlockingPartition {
        BlockingPartition::with_engine(q, PatternEngine::Fused)
    }

    /// An empty partition whose cache misses run on the AST interpreter
    /// instead of the compiled tiers — the measured baseline for the
    /// compiled-vs-interpreted comparison. Behaviour and eval counts are
    /// identical; only the per-extraction cost differs.
    #[must_use]
    pub fn new_interpreted(q: Option<ConstrainedPattern>) -> BlockingPartition {
        BlockingPartition::with_engine(q, PatternEngine::Interp)
    }

    /// An empty partition evaluating cache misses on an explicit
    /// execution tier (compiling the keyer here).
    #[must_use]
    pub fn with_engine(q: Option<ConstrainedPattern>, engine: PatternEngine) -> BlockingPartition {
        BlockingPartition::with_shared(
            q.map(|q| Arc::new(CompiledConstrained::compile(&q))),
            engine,
        )
    }

    /// An empty partition over an already-compiled, shared keyer — the
    /// sharded engines' path, where each rule's keyer is compiled once
    /// and every replica holds an `Arc` (so `pattern.compile_ns` counts
    /// one compile regardless of `--shards N`).
    #[must_use]
    pub fn with_shared(
        keyer: Option<Arc<CompiledConstrained>>,
        engine: PatternEngine,
    ) -> BlockingPartition {
        BlockingPartition {
            keyer,
            engine,
            key_buf: String::new(),
            blocks: FxHashMap::default(),
            unmatched: Vec::new(),
            null_rows: Vec::new(),
            key_cache: FxHashMap::default(),
            key_evals: 0,
            key_lookups: 0,
        }
    }

    /// Derive the blocking key for `lhs` on the partition's execution
    /// tier. Counts one eval (in the tier's `pattern.*_evals` counter)
    /// either way.
    fn derive_key(
        q: &CompiledConstrained,
        engine: PatternEngine,
        key_buf: &mut String,
        lhs: ValueId,
    ) -> Option<ValueId> {
        q.key_into_with(lhs.render(), key_buf, engine)
            .then(|| ValuePool::intern(key_buf))
    }

    /// Insert one row (interned cells). Appends (nondecreasing `RowId`)
    /// are `O(1)` amortized; re-inserting an older id — an update
    /// landing back on its slot — pays the affected block's shift cost.
    pub fn insert(&mut self, row: RowId, lhs: ValueId, rhs: ValueId) -> Placement {
        if lhs.is_null() {
            insert_sorted(&mut self.null_rows, row);
            return Placement::NullLhs;
        }
        let key = match &self.keyer {
            Some(q) => {
                self.key_lookups += 1;
                *self.key_cache.entry(lhs).or_insert_with(|| {
                    self.key_evals += 1;
                    BlockingPartition::derive_key(q, self.engine, &mut self.key_buf, lhs)
                })
            }
            None => Some(lhs),
        };
        match key {
            Some(k) => {
                self.blocks.entry(k).or_default().push(row, rhs);
                Placement::Block(k)
            }
            None => {
                insert_sorted(&mut self.unmatched, row);
                Placement::Unmatched
            }
        }
    }

    /// Remove one row, given the LHS id it was inserted under — the exact
    /// inverse of [`BlockingPartition::insert`], same `Placement` answer.
    /// Cost is `O(affected block)`; empty blocks are dropped so
    /// [`BlockingPartition::freeze`] keeps agreeing with batch blocking.
    pub fn remove(&mut self, row: RowId, lhs: ValueId) -> Placement {
        if lhs.is_null() {
            remove_sorted(&mut self.null_rows, row);
            return Placement::NullLhs;
        }
        // The key cache is per distinct LHS value, so the entry from the
        // row's insert is still warm; a miss (possible only if the caller
        // never inserted this value) re-derives it.
        let key = match &self.keyer {
            Some(q) => {
                self.key_lookups += 1;
                *self.key_cache.entry(lhs).or_insert_with(|| {
                    self.key_evals += 1;
                    BlockingPartition::derive_key(q, self.engine, &mut self.key_buf, lhs)
                })
            }
            None => Some(lhs),
        };
        match key {
            Some(k) => {
                if let Some(block) = self.blocks.get_mut(&k) {
                    block.remove(row);
                    if block.is_empty() {
                        self.blocks.remove(&k);
                    }
                }
                Placement::Block(k)
            }
            None => {
                remove_sorted(&mut self.unmatched, row);
                Placement::Unmatched
            }
        }
    }

    /// Batch-classify: derive and cache the blocking key for every
    /// *uncached* non-null LHS id in one tight pass, ahead of per-row
    /// inserts. Each new distinct id costs exactly the one extraction
    /// the lazy path would have paid on first sighting, so
    /// [`BlockingPartition::key_evals`] is invariant;
    /// [`BlockingPartition::key_lookups`] does not advance (priming is
    /// not a query — the per-row probes that follow count as usual, and
    /// hit).
    pub fn prime<I>(&mut self, ids: I)
    where
        I: IntoIterator<Item = ValueId>,
    {
        let Some(q) = &self.keyer else { return };
        for lhs in ids {
            if lhs.is_null() || self.key_cache.contains_key(&lhs) {
                continue;
            }
            self.key_evals += 1;
            let key = BlockingPartition::derive_key(q, self.engine, &mut self.key_buf, lhs);
            self.key_cache.insert(lhs, key);
        }
    }

    /// Derive (and memoize) the blocking key for `lhs` without placing
    /// any row — the coordinator-side *routing* hook for key-granular
    /// sharding. Returns `None` for a null LHS or a non-matching value
    /// (no block ⇒ nothing to route); a partition without a keyer blocks
    /// on the whole value, so any non-null LHS routes to itself.
    ///
    /// Counting matches the lazy insert path exactly: one lookup per
    /// call on a keyed partition, one eval per distinct uncached LHS —
    /// so a router that sees the same LHS sequence as a single-threaded
    /// partition reports identical `key_evals`.
    pub fn key_for(&mut self, lhs: ValueId) -> Option<ValueId> {
        if lhs.is_null() {
            return None;
        }
        match &self.keyer {
            Some(q) => {
                self.key_lookups += 1;
                *self.key_cache.entry(lhs).or_insert_with(|| {
                    self.key_evals += 1;
                    BlockingPartition::derive_key(q, self.engine, &mut self.key_buf, lhs)
                })
            }
            None => Some(lhs),
        }
    }

    /// Drop every key-cache entry whose LHS id *or* cached derived-key
    /// id satisfies `dead`, leaving counters and blocks untouched.
    ///
    /// The reclamation hook: when the pool frees a string, its id is
    /// recycled for a different string later. A cache entry keyed on a
    /// dead LHS would answer for the wrong value, and an entry whose
    /// *derived key* died would route a fresh row into a stale block —
    /// so the engine purges both at the epoch barrier that reclaims
    /// them. Blocks themselves never hold dead ids: live blocks pin
    /// their key and RHS ids through live table cells.
    pub fn purge_cached_keys(&mut self, mut dead: impl FnMut(ValueId) -> bool) {
        self.key_cache
            .retain(|&lhs, key| !dead(lhs) && !key.is_some_and(&mut dead));
    }

    /// Insert one row under an externally derived `key`, bypassing the
    /// keyer and the key cache entirely — the worker-side half of the
    /// key-granular sharding split, where the coordinator has already
    /// paid for (and memoized) the key via [`BlockingPartition::key_for`]
    /// and ships it with the op. Performs zero pattern work, so
    /// [`BlockingPartition::key_evals`] stays 0 on pure key-fed
    /// partitions and the global eval tally matches single-threaded runs.
    pub fn insert_with_key(&mut self, row: RowId, key: ValueId, rhs: ValueId) {
        self.blocks.entry(key).or_default().push(row, rhs);
    }

    /// Remove one row from the block under an externally derived `key` —
    /// the exact inverse of [`BlockingPartition::insert_with_key`].
    /// Empty blocks are dropped, mirroring [`BlockingPartition::remove`].
    pub fn remove_with_key(&mut self, row: RowId, key: ValueId) {
        if let Some(block) = self.blocks.get_mut(&key) {
            block.remove(row);
            if block.is_empty() {
                self.blocks.remove(&key);
            }
        }
    }

    /// Move out every block whose key satisfies `pred` — the partition's
    /// half of the key-range migration protocol (a sharded engine
    /// reassigning a hash range of keys to another worker). The extracted
    /// `(key, block)` pairs re-install losslessly via
    /// [`BlockingPartition::install_blocks`]; counters and the key cache
    /// stay put (migration performs no pattern work, and routing state
    /// lives with the coordinator).
    pub fn extract_blocks_if(
        &mut self,
        mut pred: impl FnMut(ValueId) -> bool,
    ) -> Vec<(ValueId, KeyBlock)> {
        let mut out = Vec::new();
        self.blocks.retain(|&key, block| {
            if pred(key) {
                out.push((key, std::mem::take(block)));
                false
            } else {
                true
            }
        });
        out
    }

    /// Install blocks previously moved out by
    /// [`BlockingPartition::extract_blocks_if`]. Keys must not collide
    /// with blocks already present (key ranges are disjoint across
    /// workers by construction); a collision replaces the resident block.
    pub fn install_blocks(&mut self, blocks: impl IntoIterator<Item = (ValueId, KeyBlock)>) {
        for (key, block) in blocks {
            self.blocks.insert(key, block);
        }
    }

    /// Iterate the keys of all live blocks (arbitrary order) — the census
    /// hook key-granular rebalancing uses to weigh hash ranges.
    pub fn block_keys(&self) -> impl Iterator<Item = ValueId> + '_ {
        self.blocks.keys().copied()
    }

    /// The block for a key, if any row produced it.
    #[must_use]
    pub fn block(&self, key: ValueId) -> Option<&KeyBlock> {
        self.blocks.get(&key)
    }

    /// The block for a key string, if any row produced it.
    #[must_use]
    pub fn block_by_str(&self, key: &str) -> Option<&KeyBlock> {
        self.blocks.get(&ValuePool::lookup(key)?)
    }

    /// Number of blocks.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Rows whose LHS did not match the pattern.
    #[must_use]
    pub fn unmatched(&self) -> &[RowId] {
        &self.unmatched
    }

    /// Rows with a null LHS.
    #[must_use]
    pub fn null_rows(&self) -> &[RowId] {
        &self.null_rows
    }

    /// Number of actual capture extractions performed. Bounded by the
    /// number of distinct non-null LHS values inserted — the memoization
    /// guarantee's test hook.
    #[must_use]
    pub fn key_evals(&self) -> usize {
        self.key_evals
    }

    /// Number of key-cache consultations (hits + misses). Together with
    /// [`BlockingPartition::key_evals`] this yields the memo hit rate
    /// the observability layer reports.
    #[must_use]
    pub fn key_lookups(&self) -> usize {
        self.key_lookups
    }

    /// Apply a compaction [`RowIdRemap`] in place — the partition's side
    /// of the remap protocol.
    ///
    /// Block row lists, the unmatched list, and the null-LHS list are
    /// rewritten through the remap (monotone, so all three stay
    /// ascending). Everything value-keyed survives verbatim: the block
    /// map's keys, RHS counts, majorities, the key cache, and —
    /// critically — `key_evals`: compaction renumbers rows, it never
    /// re-extracts a capture, so the memoization counter must not move.
    pub fn apply_remap(&mut self, remap: &RowIdRemap) {
        for block in self.blocks.values_mut() {
            block.remap(remap);
        }
        remap.remap_sorted_in_place(&mut self.unmatched);
        remap.remap_sorted_in_place(&mut self.null_rows);
    }

    /// Snapshot into the batch [`Blocks`] shape (sorted keys), for parity
    /// checks against [`BlockingIndex::block`].
    #[must_use]
    pub fn freeze(&self) -> Blocks {
        let mut blocks: Vec<(ValueId, Vec<RowId>)> = self
            .blocks
            .iter()
            .map(|(k, b)| (*k, b.rows.clone()))
            .collect();
        blocks.sort_by_cached_key(|(k, _)| k.render());
        Blocks {
            blocks,
            unmatched: self.unmatched.clone(),
            null_rows: self.null_rows.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anmat_table::Schema;

    fn name_table() -> Table {
        let schema = Schema::new(["name"]).unwrap();
        Table::from_str_rows(
            schema,
            [
                ["John Charles"],
                ["John Bosco"],
                ["Susan Orlean"],
                ["Susan Boyle"],
                ["lowercase name"],
                [""],
            ],
        )
        .unwrap()
    }

    fn q_first_name() -> ConstrainedPattern {
        "[\\LU\\LL*\\ ]\\A*".parse().unwrap()
    }

    fn id(s: &str) -> ValueId {
        ValuePool::intern(s)
    }

    #[test]
    fn blocks_group_by_first_name() {
        let blocks = BlockingIndex::block(&name_table(), 0, &q_first_name());
        assert_eq!(blocks.block_count(), 2);
        assert_eq!(blocks.blocks[0].0.as_str(), Some("John "));
        assert_eq!(blocks.blocks[0].1, vec![0, 1]);
        assert_eq!(blocks.blocks[1].0.as_str(), Some("Susan "));
        assert_eq!(blocks.blocks[1].1, vec![2, 3]);
        assert_eq!(blocks.unmatched, vec![4]);
        assert_eq!(blocks.null_rows, vec![5]);
    }

    #[test]
    fn pair_counts() {
        let blocks = BlockingIndex::block(&name_table(), 0, &q_first_name());
        // 2 blocks of 2 rows: 1 pair each.
        assert_eq!(blocks.pair_count(), 2);
        // Brute force over 4 matched rows: 6 pairs.
        assert_eq!(blocks.brute_force_pair_count(), 6);
        assert_eq!(blocks.matched_rows(), 4);
    }

    #[test]
    fn zip_prefix_blocking() {
        let schema = Schema::new(["zip"]).unwrap();
        let t = Table::from_str_rows(schema, [["90001"], ["90002"], ["90101"], ["60601"]]).unwrap();
        let q: ConstrainedPattern = "[\\D{3}]\\D{2}".parse().unwrap();
        let blocks = BlockingIndex::block(&t, 0, &q);
        let keys: Vec<&str> = blocks.blocks.iter().map(|(k, _)| k.render()).collect();
        assert_eq!(keys, vec!["606", "900", "901"]);
        assert_eq!(blocks.blocks[1].1, vec![0, 1]);
    }

    #[test]
    fn duplicate_values_share_cache() {
        let schema = Schema::new(["x"]).unwrap();
        let t = Table::from_str_rows(schema, [["ab"], ["ab"], ["ab"]]).unwrap();
        let q = ConstrainedPattern::whole("\\LL+".parse().unwrap());
        let blocks = BlockingIndex::block(&t, 0, &q);
        assert_eq!(blocks.block_count(), 1);
        assert_eq!(blocks.blocks[0].1.len(), 3);
        assert_eq!(blocks.pair_count(), 3);
    }

    #[test]
    fn all_unmatched() {
        let schema = Schema::new(["x"]).unwrap();
        let t = Table::from_str_rows(schema, [["123"], ["456"]]).unwrap();
        let q = ConstrainedPattern::whole("\\LL+".parse().unwrap());
        let blocks = BlockingIndex::block(&t, 0, &q);
        assert_eq!(blocks.block_count(), 0);
        assert_eq!(blocks.unmatched.len(), 2);
    }

    #[test]
    fn partition_matches_batch_blocking() {
        let t = name_table();
        let q = q_first_name();
        let batch = BlockingIndex::block(&t, 0, &q);
        let mut partition = BlockingPartition::new(Some(q.clone()));
        for (row, v) in t.iter_column(0) {
            partition.insert(row, v, ValueId::NULL);
        }
        let frozen = partition.freeze();
        assert_eq!(frozen.blocks, batch.blocks);
        assert_eq!(frozen.unmatched, batch.unmatched);
        assert_eq!(frozen.null_rows, batch.null_rows);
    }

    #[test]
    fn partition_tracks_rhs_deltas() {
        let q: ConstrainedPattern = "[\\D{3}]\\D{2}".parse().unwrap();
        let mut p = BlockingPartition::new(Some(q));
        assert_eq!(
            p.insert(0, id("90001"), id("Los Angeles")),
            Placement::Block(id("900"))
        );
        p.insert(1, id("90002"), id("Los Angeles"));
        p.insert(2, id("90003"), id("New York"));
        p.insert(3, id("90004"), ValueId::NULL);
        let block = p.block_by_str("900").unwrap();
        assert_eq!(block.len(), 4);
        assert_eq!(block.majority(), Some("Los Angeles"));
        assert!(!block.is_consistent());
        let stats = block.stats();
        assert_eq!(stats.support, 4);
        assert_eq!(stats.rhs_counts[0], (id("Los Angeles"), 2));
        // Majority tie breaks to the lexicographically smaller value,
        // matching batch detection's vote.
        p.insert(4, id("90005"), id("New York"));
        assert_eq!(
            p.block_by_str("900").unwrap().majority(),
            Some("Los Angeles")
        );
    }

    #[test]
    fn whole_value_partition() {
        let mut p = BlockingPartition::new(None);
        p.insert(0, id("x"), id("1"));
        p.insert(1, id("x"), id("2"));
        p.insert(2, ValueId::NULL, id("3"));
        assert_eq!(p.block_count(), 1);
        assert_eq!(p.block_by_str("x").unwrap().rows(), &[0, 1]);
        assert_eq!(p.null_rows(), &[2]);
        let pairs: Vec<_> = p.block_by_str("x").unwrap().rows_with_rhs().collect();
        assert_eq!(pairs, vec![(0, Some("1")), (1, Some("2"))]);
    }

    #[test]
    fn key_evals_bounded_by_distinct_values() {
        let q: ConstrainedPattern = "[\\D{3}]\\D{2}".parse().unwrap();
        let mut p = BlockingPartition::new(Some(q));
        // 1000 rows over 10 distinct zips: capture extraction must run
        // exactly 10 times.
        for row in 0..1000 {
            let zip = format!("900{:02}", row % 10);
            p.insert(row, id(&zip), id("LA"));
        }
        assert_eq!(p.key_evals(), 10);
    }

    #[test]
    fn prime_counts_like_lazy_misses() {
        let q: ConstrainedPattern = "[\\D{3}]\\D{2}".parse().unwrap();
        let mut lazy = BlockingPartition::new(Some(q.clone()));
        let mut primed = BlockingPartition::new(Some(q));
        let zips: Vec<ValueId> = (0..10).map(|i| id(&format!("900{i:02}"))).collect();
        primed.prime(zips.iter().copied().chain([ValueId::NULL, id("bad")]));
        for row in 0..1000u32 {
            let lhs = zips[(row % 10) as usize];
            lazy.insert(row as RowId, lhs, id("LA"));
            primed.insert(row as RowId, lhs, id("LA"));
        }
        // Priming evaluated each distinct id once (plus the unmatched
        // one); the lazy twin pays the same evals for the zips on first
        // sighting. Lookup counts agree exactly.
        assert_eq!(lazy.key_evals(), 10);
        assert_eq!(primed.key_evals(), 11);
        assert_eq!(lazy.key_lookups(), primed.key_lookups());
        let (a, b) = (lazy.freeze(), primed.freeze());
        assert_eq!(a.blocks, b.blocks);
    }

    #[test]
    fn interpreted_mode_matches_compiled() {
        let q: ConstrainedPattern = "[\\D{3}]\\D{2}".parse().unwrap();
        let mut compiled = BlockingPartition::new(Some(q.clone()));
        let mut interp = BlockingPartition::new_interpreted(Some(q));
        for row in 0..100u32 {
            let lhs = id(&format!("90{:03}", row % 7));
            compiled.insert(row as RowId, lhs, id("LA"));
            interp.insert(row as RowId, lhs, id("LA"));
        }
        assert_eq!(compiled.key_evals(), interp.key_evals());
        assert_eq!(compiled.key_lookups(), interp.key_lookups());
        let (a, b) = (compiled.freeze(), interp.freeze());
        assert_eq!(a.blocks, b.blocks);
        assert_eq!(a.unmatched, b.unmatched);
    }

    #[test]
    fn remove_is_inverse_of_insert() {
        let q: ConstrainedPattern = "[\\D{3}]\\D{2}".parse().unwrap();
        let mut p = BlockingPartition::new(Some(q.clone()));
        p.insert(0, id("90001"), id("Los Angeles"));
        p.insert(1, id("90002"), id("New York"));
        p.insert(2, id("90003"), id("Los Angeles"));
        assert_eq!(p.remove(1, id("90002")), Placement::Block(id("900")));
        let block = p.block_by_str("900").unwrap();
        assert_eq!(block.rows(), &[0, 2]);
        assert_eq!(block.majority(), Some("Los Angeles"));
        assert!(block.is_consistent());
        let stats = block.stats();
        assert_eq!(stats.support, 2);
        assert_eq!(stats.rhs_counts, vec![(id("Los Angeles"), 2)]);
        // Draining the block drops it entirely (freeze parity with batch).
        p.remove(0, id("90001"));
        p.remove(2, id("90003"));
        assert_eq!(p.block_count(), 0);
        assert!(p.block_by_str("900").is_none());
    }

    #[test]
    fn remove_tracks_unmatched_and_null_rows() {
        let q = ConstrainedPattern::whole("\\LL+".parse().unwrap());
        let mut p = BlockingPartition::new(Some(q));
        p.insert(0, id("123"), id("x"));
        p.insert(1, ValueId::NULL, id("y"));
        p.insert(2, id("abc"), id("z"));
        assert_eq!(p.remove(0, id("123")), Placement::Unmatched);
        assert_eq!(p.remove(1, ValueId::NULL), Placement::NullLhs);
        assert!(p.unmatched().is_empty());
        assert!(p.null_rows().is_empty());
        assert_eq!(p.block_count(), 1);
    }

    #[test]
    fn reinserting_an_old_row_id_keeps_row_order() {
        // An update = remove + re-insert on the same slot: the block's
        // row list must stay ascending so witnesses match batch order.
        let mut p = BlockingPartition::new(None);
        for row in 0..5 {
            p.insert(row, id("k"), id("v1"));
        }
        p.remove(2, id("k"));
        p.insert(2, id("k"), id("v2"));
        let block = p.block_by_str("k").unwrap();
        assert_eq!(block.rows(), &[0, 1, 2, 3, 4]);
        let pairs: Vec<_> = block.rows_with_rhs().collect();
        assert_eq!(pairs[2], (2, Some("v2")));
        assert_eq!(block.majority(), Some("v1"));
    }

    #[test]
    fn majority_reelected_after_leader_removal() {
        let mut p = BlockingPartition::new(None);
        p.insert(0, id("k"), id("alpha"));
        p.insert(1, id("k"), id("alpha"));
        p.insert(2, id("k"), id("alpha"));
        p.insert(3, id("k"), id("beta"));
        p.insert(4, id("k"), id("beta"));
        assert_eq!(p.block_by_str("k").unwrap().majority(), Some("alpha"));
        // Two leader removals: 1–2, beta takes over.
        p.remove(0, id("k"));
        p.remove(1, id("k"));
        let block = p.block_by_str("k").unwrap();
        assert_eq!(block.majority(), Some("beta"));
        assert_eq!(block.majority_id().and_then(ValueId::as_str), Some("beta"));
        // Removing the last alpha leaves a consistent beta block.
        p.remove(2, id("k"));
        assert!(p.block_by_str("k").unwrap().is_consistent());
    }

    #[test]
    fn null_rhs_removal_decrements_without_vote_change() {
        let mut p = BlockingPartition::new(None);
        p.insert(0, id("k"), id("v"));
        p.insert(1, id("k"), ValueId::NULL);
        assert!(!p.block_by_str("k").unwrap().is_consistent());
        p.remove(1, id("k"));
        let block = p.block_by_str("k").unwrap();
        assert!(block.is_consistent());
        assert_eq!(block.majority(), Some("v"));
        assert_eq!(block.len(), 1);
    }

    /// Satellite: `majority`/`majority_id` must stay in lockstep after
    /// decrements too, and a deletion-induced tie must elect the
    /// count-desc/string-asc winner regardless of interning (= arrival)
    /// order.
    #[test]
    fn majority_tie_after_deletions_is_interning_order_independent() {
        for (first, second) in [("m-del-tie", "b-del-tie"), ("b-del-tie", "m-del-tie")] {
            let mut p = BlockingPartition::new(None);
            // 3 × first vs 2 × second: `first` leads outright.
            for (row, v) in [(0, first), (1, first), (2, first), (3, second), (4, second)] {
                p.insert(row, id("k"), id(v));
            }
            assert_eq!(p.block_by_str("k").unwrap().majority(), Some(first));
            // Delete one leader row: 2–2 tie → lexicographically smaller
            // string wins, in both interning orders.
            p.remove(0, id("k"));
            let block = p.block_by_str("k").unwrap();
            assert_eq!(block.majority(), Some("b-del-tie"));
            assert_eq!(
                block.majority_id().and_then(ValueId::as_str),
                block.majority(),
                "majority and majority_id must agree after decrements"
            );
            // And the derived stats order agrees with the vote.
            assert_eq!(block.stats().rhs_counts[0].0, id("b-del-tie"));
        }
    }

    /// The remap protocol: removing the deleted rows, compacting the
    /// table, and applying the remap must leave the partition identical
    /// to one built fresh from the compacted table — with zero new
    /// capture extractions.
    #[test]
    fn apply_remap_matches_partition_over_compacted_table() {
        let schema = Schema::new(["zip", "city"]).unwrap();
        let mut t = Table::from_str_rows(
            schema,
            [
                ["90001", "Los Angeles"],
                ["90002", "New York"],
                ["90101", "Pasadena"],
                ["bad-zip", "Nowhere"],
                ["", "Null Town"],
                ["90003", "Los Angeles"],
            ],
        )
        .unwrap();
        let q: ConstrainedPattern = "[\\D{3}]\\D{2}".parse().unwrap();
        let mut p = BlockingPartition::new(Some(q.clone()));
        for (row, v) in t.iter_column(0) {
            p.insert(row, v, t.cell_id(row, 1));
        }
        // Delete rows 1 (a block member) and 3 (unmatched): partition
        // first, then table, then compact + remap.
        p.remove(1, t.cell_id(1, 0));
        p.remove(3, t.cell_id(3, 0));
        t.delete_row(1).unwrap();
        t.delete_row(3).unwrap();
        let evals_before = p.key_evals();
        let remap = t.compact();
        p.apply_remap(&remap);
        assert_eq!(
            p.key_evals(),
            evals_before,
            "remap must not re-extract captures"
        );

        let mut fresh = BlockingPartition::new(Some(q));
        for (row, v) in t.iter_column(0) {
            fresh.insert(row, v, t.cell_id(row, 1));
        }
        let (a, b) = (p.freeze(), fresh.freeze());
        assert_eq!(a.blocks, b.blocks);
        assert_eq!(a.unmatched, b.unmatched);
        assert_eq!(a.null_rows, b.null_rows);
        // Per-block stats survived the renumbering untouched.
        let block = p.block_by_str("900").unwrap();
        assert_eq!(block.majority(), Some("Los Angeles"));
        assert_eq!(block.stats(), fresh.block_by_str("900").unwrap().stats());
    }

    #[test]
    fn majority_tie_deterministic_under_any_arrival_order() {
        // A 2–2 tie must elect the lexicographically smaller string in
        // both arrival orders (and hence both interning orders).
        for (first, second) in [("m-tie", "b-tie"), ("b-tie", "m-tie")] {
            let mut p = BlockingPartition::new(None);
            p.insert(0, id("k"), id(first));
            p.insert(1, id("k"), id(second));
            p.insert(2, id("k"), id(first));
            p.insert(3, id("k"), id(second));
            assert_eq!(p.block_by_str("k").unwrap().majority(), Some("b-tie"));
        }
    }
}
