//! The per-column pattern index of §3.
//!
//! For constant-PFD detection the paper "create\[s\] an index supporting
//! regular expressions for each column present on the LHS of the PFDs", so
//! that the violation scan only touches tuples matching `tp[A]`. This
//! implementation:
//!
//! * deduplicates the column into distinct values with row postings
//!   (low-cardinality columns collapse dramatically);
//! * buckets distinct values by their class-exact pattern signature;
//! * answers a pattern lookup by first testing each bucket's signature
//!   against the query with exact language operations —
//!   [`intersects`] to skip buckets wholesale,
//!   [`contains`] to accept buckets wholesale —
//!   and only match-testing individual values in the remaining buckets;
//! * keeps a [`CharTrie`] so queries with a literal prefix (`900\D{2}`)
//!   descend directly to the matching subtree.

use crate::trie::CharTrie;
use anmat_pattern::{
    contains, intersects, match_pattern, signature, CompiledPattern, Pattern, PatternLevel,
};
use anmat_table::{RowId, Table, ValueId, ValuePool};
use fxhash::FxHashMap;
use std::collections::HashMap;

/// An index over one column supporting pattern lookups.
///
/// The column is deduplicated into interned distinct values
/// ([`ValueId`]-keyed postings), so a pattern is ever matched against at
/// most `distinct(column)` strings, and row-posting probes hash a 4-byte
/// id.
#[derive(Debug)]
pub struct PatternIndex {
    /// Distinct value → rows holding it.
    values: FxHashMap<ValueId, Vec<RowId>>,
    /// Signature → distinct values in that bucket.
    buckets: Vec<(Pattern, Vec<ValueId>)>,
    /// Literal-prefix accelerator over distinct values (value → pseudo-row
    /// = index into `distinct`).
    trie: CharTrie,
    /// Distinct values in insertion order (trie payload indirection).
    distinct: Vec<ValueId>,
    /// Rows with a non-null value.
    pub indexed_rows: usize,
}

impl PatternIndex {
    /// Build the index over column `col` of `table`.
    #[must_use]
    pub fn build(table: &Table, col: usize) -> PatternIndex {
        let mut values: FxHashMap<ValueId, Vec<RowId>> = FxHashMap::default();
        let mut indexed_rows = 0usize;
        for (row, v) in table.iter_column(col) {
            if v.is_null() {
                continue;
            }
            indexed_rows += 1;
            values.entry(v).or_default().push(row);
        }
        let mut by_sig: HashMap<Pattern, Vec<ValueId>> = HashMap::new();
        let mut distinct: Vec<ValueId> = Vec::with_capacity(values.len());
        let mut trie = CharTrie::new();
        let mut sorted: Vec<ValueId> = values.keys().copied().collect();
        sorted.sort_by_cached_key(|v| v.render());
        for v in sorted {
            let s = v.render();
            let sig = signature(s, PatternLevel::ClassExact);
            by_sig.entry(sig).or_default().push(v);
            trie.insert(s, distinct.len());
            distinct.push(v);
        }
        let mut buckets: Vec<(Pattern, Vec<ValueId>)> = by_sig.into_iter().collect();
        buckets.sort_by_key(|(a, _)| a.to_string());
        PatternIndex {
            values,
            buckets,
            trie,
            distinct,
            indexed_rows,
        }
    }

    /// Number of distinct values.
    #[must_use]
    pub fn distinct_count(&self) -> usize {
        self.values.len()
    }

    /// Number of signature buckets.
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Rows whose value matches `pattern`, sorted ascending.
    #[must_use]
    pub fn lookup(&self, pattern: &Pattern) -> Vec<RowId> {
        let mut rows: Vec<RowId> = Vec::new();
        for v in self.matching_ids(pattern) {
            rows.extend_from_slice(&self.values[&v]);
        }
        rows.sort_unstable();
        rows
    }

    /// Distinct values matching `pattern`.
    #[must_use]
    pub fn matching_values(&self, pattern: &Pattern) -> Vec<&'static str> {
        self.matching_ids(pattern)
            .into_iter()
            .map(ValueId::render)
            .collect()
    }

    /// Interned distinct values matching `pattern`.
    #[must_use]
    pub fn matching_ids(&self, pattern: &Pattern) -> Vec<ValueId> {
        let mut out = Vec::new();
        // One compile amortized over every distinct value the screens
        // fail to decide.
        let compiled = CompiledPattern::compile(pattern);
        // Literal-prefix fast path: descend the trie, then verify.
        let prefix = literal_prefix(pattern);
        if !prefix.is_empty() {
            let mut ids: Vec<usize> = self.trie.rows_with_prefix(&prefix);
            ids.sort_unstable();
            for id in ids {
                let v = self.distinct[id];
                if compiled.matches(v.render()) {
                    out.push(v);
                }
            }
            return out;
        }
        for (sig, vals) in &self.buckets {
            if !intersects(sig, pattern) {
                continue; // no value with this signature can match
            }
            if contains(pattern, sig) {
                // Every value with this signature matches.
                out.extend_from_slice(vals);
                continue;
            }
            for &v in vals {
                if compiled.matches(v.render()) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Rows holding exactly `value`.
    #[must_use]
    pub fn rows_for_value(&self, value: &str) -> &[RowId] {
        ValuePool::lookup(value).map_or(&[], |id| self.rows_for_id(id))
    }

    /// Rows holding exactly the interned value.
    #[must_use]
    pub fn rows_for_id(&self, value: ValueId) -> &[RowId] {
        self.values.get(&value).map_or(&[], Vec::as_slice)
    }

    /// Full scan fallback (for the ablation benchmark): match every
    /// distinct value with no bucket pruning (and no bytecode — this is
    /// the pure-interpreter baseline).
    #[must_use]
    pub fn lookup_scan(&self, pattern: &Pattern) -> Vec<RowId> {
        let mut rows: Vec<RowId> = Vec::new();
        for (v, ids) in &self.values {
            if match_pattern(pattern, v.render()) {
                rows.extend_from_slice(ids);
            }
        }
        rows.sort_unstable();
        rows
    }
}

/// The longest literal prefix of a pattern (maximal run of exactly-once
/// literal elements at the start).
fn literal_prefix(p: &Pattern) -> String {
    let mut out = String::new();
    for e in p.elements() {
        match (e.class, e.quant.interval()) {
            (anmat_pattern::SymbolClass::Literal(c), (1, Some(1))) => out.push(c),
            (anmat_pattern::SymbolClass::Literal(c), (min, _)) if min >= 1 => {
                out.push(c);
                break; // repetition: only the first copy is certain
            }
            _ => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use anmat_table::Schema;

    fn zip_table() -> Table {
        let schema = Schema::new(["zip"]).unwrap();
        Table::from_str_rows(
            schema,
            [
                ["90001"],
                ["90002"],
                ["90003"],
                ["60601"],
                ["60601"],
                ["606-01"],
                ["abcde"],
                [""],
            ],
        )
        .unwrap()
    }

    fn pat(s: &str) -> Pattern {
        s.parse().unwrap()
    }

    #[test]
    fn build_stats() {
        let t = zip_table();
        let idx = PatternIndex::build(&t, 0);
        assert_eq!(idx.indexed_rows, 7);
        assert_eq!(idx.distinct_count(), 6);
        // Signatures: \D{5} (x4 values... 90001/90002/90003/60601), \D{3}-\D{2}, \LL{5}.
        assert_eq!(idx.bucket_count(), 3);
    }

    #[test]
    fn lookup_with_literal_prefix() {
        let t = zip_table();
        let idx = PatternIndex::build(&t, 0);
        assert_eq!(idx.lookup(&pat("900\\D{2}")), vec![0, 1, 2]);
        assert_eq!(idx.lookup(&pat("606\\D{2}")), vec![3, 4]);
    }

    #[test]
    fn lookup_class_pattern() {
        let t = zip_table();
        let idx = PatternIndex::build(&t, 0);
        assert_eq!(idx.lookup(&pat("\\D{5}")), vec![0, 1, 2, 3, 4]);
        assert_eq!(idx.lookup(&pat("\\LL{5}")), vec![6]);
        assert_eq!(idx.lookup(&pat("\\D{3}-\\D{2}")), vec![5]);
    }

    #[test]
    fn lookup_agrees_with_scan() {
        let t = zip_table();
        let idx = PatternIndex::build(&t, 0);
        for p in ["900\\D{2}", "\\D{5}", "\\A*", "\\D+", "x\\D*"] {
            let p = pat(p);
            assert_eq!(idx.lookup(&p), idx.lookup_scan(&p), "pattern {p}");
        }
    }

    #[test]
    fn rows_for_value_duplicates() {
        let t = zip_table();
        let idx = PatternIndex::build(&t, 0);
        assert_eq!(idx.rows_for_value("60601"), &[3, 4]);
        assert!(idx.rows_for_value("nope").is_empty());
    }

    #[test]
    fn literal_prefix_extraction() {
        assert_eq!(literal_prefix(&pat("900\\D{2}")), "900");
        assert_eq!(literal_prefix(&pat("\\D{5}")), "");
        assert_eq!(literal_prefix(&pat("ab+c")), "ab");
        assert_eq!(literal_prefix(&pat("a{0,1}bc")), "");
    }

    #[test]
    fn empty_pattern_lookup() {
        let schema = Schema::new(["x"]).unwrap();
        let t = Table::from_str_rows(schema, [["a"], [""]]).unwrap();
        let idx = PatternIndex::build(&t, 0);
        assert!(idx.lookup(&Pattern::empty()).is_empty());
    }
}
