//! The hash-based inverted list `H` of the discovery algorithm
//! (Figure 2, lines 4–12).
//!
//! For a candidate dependency `A → B`, every token (or n-gram, or prefix)
//! `s` of `t[A]` maps to a posting `(id(t), pos_s, u, pos_u)` for each
//! token/n-gram `u` of `t[B]` — exactly line 8 of the paper's algorithm.
//! On top of the raw lists this module computes per-entry statistics
//! ([`EntryStats`]): support, the RHS full-value distribution, and the
//! dominant RHS — the inputs of the PFD decision function `f`.
//!
//! All maps are keyed on interned [`ValueId`]s (keys and RHS values are
//! interned into the global `ValuePool`), so probing and posting-list
//! maintenance hash a 4-byte `Copy` id under `FxHasher` instead of
//! re-hashing strings per row. The public `&str`-keyed accessors remain
//! for callers holding raw text; they resolve through the pool without
//! interning.

use anmat_obs as obs;
use anmat_table::{
    for_each_ngram, for_each_prefix, for_each_token, RowId, RowIdRemap, Table, ValueId, ValuePool,
};
use fxhash::FxHashMap;
use std::sync::Arc;

/// How LHS/RHS strings are decomposed into inverted-list keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExtractionMode {
    /// Whitespace tokens (`Tokenize` in the paper).
    Tokens,
    /// Character n-grams of the given length (`NGrams`).
    NGrams(usize),
    /// String prefixes up to the given length — the variant that finds
    /// determining prefixes such as `900` in `90001`. (The paper folds
    /// this into its n-gram mode by using positions; a dedicated prefix
    /// mode keeps positions trivially 0 and avoids redundant keys.)
    Prefixes(usize),
}

impl ExtractionMode {
    /// Visit each `(key text, position)` pair of one cell string, with the
    /// key borrowed from `s` — the allocation-free path used by index
    /// construction ([`InvertedIndex::insert_row`] interns each key
    /// directly off the borrow, so no per-cell `Vec<String>` is built).
    ///
    /// Positions follow the paper's display convention: token index for
    /// token mode, character offset for n-gram/prefix modes.
    pub fn for_each_key(&self, s: &str, f: impl FnMut(&str, usize)) {
        match *self {
            ExtractionMode::Tokens => for_each_token(s, f),
            ExtractionMode::NGrams(n) => for_each_ngram(s, n, f),
            ExtractionMode::Prefixes(max) => for_each_prefix(s, max, f),
        }
    }

    /// Decompose one cell string into owned `(key text, position)` pairs.
    ///
    /// Convenience wrapper over [`ExtractionMode::for_each_key`] for
    /// callers that want owned keys; hot paths use the callback form.
    #[must_use]
    pub fn extract(&self, s: &str) -> Vec<(String, usize)> {
        let mut out = Vec::new();
        self.for_each_key(s, |key, pos| out.push((key.to_string(), pos)));
        out
    }
}

/// One posting: where a key occurred and what the RHS held there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Posting {
    /// Tuple id.
    pub row: RowId,
    /// Position of the key within `t[A]` (token index or char offset).
    pub lhs_pos: usize,
    /// One RHS token/n-gram of `t[B]`, interned. [`ValueId::NULL`] stands
    /// in for an RHS cell that produced no tokens at all.
    pub rhs_token: ValueId,
    /// Its position within `t[B]`.
    pub rhs_pos: usize,
    /// The full RHS cell value (what constant-PFD tableaux store),
    /// interned.
    pub rhs_full: ValueId,
}

/// Aggregate statistics for one inverted-list entry (one LHS key).
#[derive(Debug, Clone, PartialEq)]
pub struct EntryStats {
    /// Number of distinct rows containing the key.
    pub support: usize,
    /// Distinct full RHS values (interned) with their row counts,
    /// descending; ties break to the lexicographically smaller *string*
    /// (not the smaller id), so the ordering is identical across runs
    /// and platforms regardless of interning order.
    pub rhs_counts: Vec<(ValueId, usize)>,
}

impl EntryStats {
    /// The most frequent full RHS value, if any.
    #[must_use]
    pub fn dominant_rhs(&self) -> Option<&'static str> {
        self.rhs_counts.first().and_then(|(v, _)| v.as_str())
    }

    /// The most frequent full RHS value as an interned id.
    #[must_use]
    pub fn dominant_rhs_id(&self) -> Option<ValueId> {
        self.rhs_counts.first().map(|(v, _)| *v)
    }

    /// Confidence of the dominant RHS: `max_count / support`.
    #[must_use]
    pub fn confidence(&self) -> f64 {
        if self.support == 0 {
            return 0.0;
        }
        self.rhs_counts
            .first()
            .map_or(0.0, |(_, c)| *c as f64 / self.support as f64)
    }

    /// Number of rows that disagree with the dominant RHS.
    #[must_use]
    pub fn violations(&self) -> usize {
        self.support - self.rhs_counts.first().map_or(0, |(_, c)| *c)
    }
}

/// Sort an RHS distribution: count descending, ties by ascending resolved
/// string (deterministic across runs/platforms; see [`EntryStats`]).
pub(crate) fn sort_rhs_counts(rhs_counts: &mut [(ValueId, usize)]) {
    rhs_counts.sort_by(|(va, ca), (vb, cb)| cb.cmp(ca).then_with(|| va.render().cmp(vb.render())));
}

/// The inverted list for one candidate dependency `A → B`.
///
/// The index is *incrementally updatable*: [`InvertedIndex::insert_row`]
/// appends one row in `O(keys in the row)`, maintaining per-key
/// [`EntryStats`] deltas alongside the raw postings. Batch discovery
/// builds through the same insert path, and the incremental API is what
/// an online (re-)discovery pass over an append stream would sit on —
/// today's `StreamEngine` detection path uses its sibling,
/// [`BlockingPartition`](crate::BlockingPartition).
/// The three maps sit behind [`Arc`]s so [`InvertedIndex::freeze`]
/// captures a consistent snapshot in `O(1)`; the first mutation after a
/// capture copies each touched map once (map-granular copy-on-write).
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    /// LHS decomposition mode (kept so inserts match the build mode).
    lhs_mode: ExtractionMode,
    /// RHS decomposition mode.
    rhs_mode: ExtractionMode,
    /// Key → postings (one per (row, lhs occurrence, rhs token)).
    entries: Arc<FxHashMap<ValueId, Vec<Posting>>>,
    /// Key → distinct rows containing it (deduplicated, sorted).
    rows_by_key: Arc<FxHashMap<ValueId, Vec<RowId>>>,
    /// Key → full-RHS-value → distinct-row count, maintained per insert
    /// (the Δ behind [`InvertedIndex::stats`]).
    rhs_counts_by_key: Arc<FxHashMap<ValueId, FxHashMap<ValueId, usize>>>,
    /// Scratch buffer for the RHS keys of the row being inserted (reused
    /// across inserts so the hot path performs no allocation once warm).
    rhs_scratch: Vec<(ValueId, usize)>,
    /// Number of rows with non-null values on both sides.
    pub considered_rows: usize,
}

/// A frozen, read-only view of an [`InvertedIndex`] captured by
/// [`InvertedIndex::freeze`] — shares the postings/rows/stats maps with
/// the live index until it next mutates. Derefs to [`InvertedIndex`],
/// so the whole read API (`postings`, `rows`, `stats`, `iter_stats`)
/// works on it.
#[derive(Debug, Clone)]
pub struct IndexSnapshot {
    inner: InvertedIndex,
}

impl IndexSnapshot {
    /// The frozen view, as an `&InvertedIndex`.
    #[must_use]
    pub fn index(&self) -> &InvertedIndex {
        &self.inner
    }
}

impl std::ops::Deref for IndexSnapshot {
    type Target = InvertedIndex;

    fn deref(&self) -> &InvertedIndex {
        &self.inner
    }
}

/// `Arc::make_mut` with the `snapshot.map_copies` counter: copies the
/// map first when a snapshot still shares it.
fn map_mut<M: Clone>(map: &mut Arc<M>) -> &mut M {
    if Arc::strong_count(map) > 1 {
        obs::counter!("snapshot.map_copies").incr();
    }
    Arc::make_mut(map)
}

impl InvertedIndex {
    /// An empty index that decomposes cells with the given modes.
    #[must_use]
    pub fn empty(lhs_mode: ExtractionMode, rhs_mode: ExtractionMode) -> InvertedIndex {
        InvertedIndex {
            lhs_mode,
            rhs_mode,
            entries: Arc::new(FxHashMap::default()),
            rows_by_key: Arc::new(FxHashMap::default()),
            rhs_counts_by_key: Arc::new(FxHashMap::default()),
            rhs_scratch: Vec::new(),
            considered_rows: 0,
        }
    }

    /// Capture a copy-on-write snapshot: `O(1)` — the handle shares all
    /// three maps until this index next mutates (the first mutation then
    /// pays one copy per touched map, counted as `snapshot.map_copies`).
    #[must_use]
    pub fn freeze(&self) -> IndexSnapshot {
        obs::counter!("snapshot.index_captures").incr();
        IndexSnapshot {
            inner: self.clone(),
        }
    }

    /// Build the inverted list for the column pair `(lhs, rhs)` of `table`.
    ///
    /// Implements lines 4–8 of Figure 2. Rows with a null on either side
    /// are skipped (they can neither support nor violate a PFD).
    #[must_use]
    pub fn build(
        table: &Table,
        lhs: usize,
        rhs: usize,
        lhs_mode: ExtractionMode,
        rhs_mode: ExtractionMode,
    ) -> InvertedIndex {
        let mut index = InvertedIndex::empty(lhs_mode, rhs_mode);
        for (row, a, b) in table.iter_pair(lhs, rhs) {
            index.insert_row(row, a, b);
        }
        index
    }

    /// Append one row's non-null `(lhs, rhs)` cell pair.
    ///
    /// Cost is proportional to the number of keys extracted from the row,
    /// independent of how many rows the index already holds. Rows must
    /// arrive in nondecreasing `RowId` order (append-only streams do).
    pub fn insert_row(&mut self, row: RowId, lhs: &str, rhs: &str) {
        self.considered_rows += 1;
        obs::counter!("index.insert").incr();
        let rhs_full = ValuePool::intern(rhs);
        let mut rhs_keys = std::mem::take(&mut self.rhs_scratch);
        rhs_keys.clear();
        self.rhs_mode
            .for_each_key(rhs, |u, pos| rhs_keys.push((ValuePool::intern(u), pos)));
        let lhs_mode = self.lhs_mode;
        lhs_mode.for_each_key(lhs, |key, lhs_pos| {
            let key = ValuePool::intern(key);
            let postings = map_mut(&mut self.entries).entry(key).or_default();
            for &(rhs_token, rhs_pos) in &rhs_keys {
                postings.push(Posting {
                    row,
                    lhs_pos,
                    rhs_token,
                    rhs_pos,
                    rhs_full,
                });
            }
            // RHS cells with no tokens at all still count the row.
            if rhs_keys.is_empty() {
                postings.push(Posting {
                    row,
                    lhs_pos,
                    rhs_token: ValueId::NULL,
                    rhs_pos: 0,
                    rhs_full,
                });
            }
            let rows = map_mut(&mut self.rows_by_key).entry(key).or_default();
            if rows.last() != Some(&row) {
                rows.push(row);
                // First sighting of this key in this row: one delta to
                // the key's RHS distribution.
                *map_mut(&mut self.rhs_counts_by_key)
                    .entry(key)
                    .or_default()
                    .entry(rhs_full)
                    .or_insert(0) += 1;
            }
        });
        self.rhs_scratch = rhs_keys;
    }

    /// Remove one row's `(lhs, rhs)` cell pair — the exact inverse of
    /// [`InvertedIndex::insert_row`]. The caller passes the same strings
    /// the row was inserted under (a tombstoning table still holds
    /// them). Per-key [`EntryStats`] shrink by exactly the deltas the
    /// insert added (support −1, the row's full-RHS count −1), postings
    /// for the row are dropped, and keys left with no rows disappear
    /// entirely, so the index is indistinguishable from one built
    /// without the row. Cost is `O(keys in the row)` hash probes plus
    /// the shift cost of the removed list entries (postings are
    /// row-sorted, so the row's range is binary-searched, not scanned).
    ///
    /// Like [`InvertedIndex::insert_row`], this is the maintenance hook
    /// for *online re-discovery* over a mutating stream; the detection
    /// engine itself mutates its sibling,
    /// [`BlockingPartition`](crate::BlockingPartition).
    pub fn remove_row(&mut self, row: RowId, lhs: &str, rhs: &str) {
        self.considered_rows -= 1;
        obs::counter!("index.remove").incr();
        let rhs_full = ValuePool::lookup(rhs);
        let lhs_mode = self.lhs_mode;
        lhs_mode.for_each_key(lhs, |key, _| {
            let Some(key) = ValuePool::lookup(key) else {
                return;
            };
            let rows_map = map_mut(&mut self.rows_by_key);
            let Some(rows) = rows_map.get_mut(&key) else {
                return;
            };
            // Gate every delta on the distinct-rows list, exactly like
            // the insert path: a key occurring twice in `lhs` undoes its
            // deltas once.
            let Ok(pos) = rows.binary_search(&row) else {
                return;
            };
            rows.remove(pos);
            if rows.is_empty() {
                rows_map.remove(&key);
            }
            if let Some(rhs_full) = rhs_full {
                let counts_map = map_mut(&mut self.rhs_counts_by_key);
                if let Some(counts) = counts_map.get_mut(&key) {
                    if let Some(c) = counts.get_mut(&rhs_full) {
                        *c -= 1;
                        if *c == 0 {
                            counts.remove(&rhs_full);
                        }
                    }
                    if counts.is_empty() {
                        counts_map.remove(&key);
                    }
                }
            }
            let entries = map_mut(&mut self.entries);
            if let Some(postings) = entries.get_mut(&key) {
                // Postings are appended in nondecreasing row order, so
                // the row's entries form one contiguous run.
                let start = postings.partition_point(|p| p.row < row);
                let end = postings.partition_point(|p| p.row <= row);
                postings.drain(start..end);
                if postings.is_empty() {
                    entries.remove(&key);
                }
            }
        });
    }

    /// Apply a compaction [`RowIdRemap`] in place — the index's side of
    /// the remap protocol.
    ///
    /// Every posting's `row` and every per-key distinct-row list is
    /// rewritten through the remap; because the remap is monotone, the
    /// lists stay sorted without re-sorting. Nothing else moves: per-key
    /// RHS distributions, supports, and `considered_rows` are counts
    /// over the same surviving rows, so no statistic is re-derived and
    /// no pattern/tokenization work is repeated. Cost is `O(postings)`
    /// pointer-chasing, zero hashing.
    ///
    /// The protocol's precondition holds here as everywhere: deleted
    /// rows were already removed via [`InvertedIndex::remove_row`], so
    /// every id the index holds is live and maps to `Some` (a dead id
    /// panics — it means a maintenance bug, not a remap problem).
    pub fn apply_remap(&mut self, remap: &RowIdRemap) {
        for postings in map_mut(&mut self.entries).values_mut() {
            for p in postings {
                p.row = remap.live_id(p.row);
            }
        }
        for rows in map_mut(&mut self.rows_by_key).values_mut() {
            remap.remap_sorted_in_place(rows);
        }
    }

    /// Number of distinct keys.
    #[must_use]
    pub fn key_count(&self) -> usize {
        self.entries.len()
    }

    /// The id of a key string, if the index ever saw it.
    fn key_id(&self, key: &str) -> Option<ValueId> {
        let id = ValuePool::lookup(key)?;
        self.entries.contains_key(&id).then_some(id)
    }

    /// The postings for a key.
    #[must_use]
    pub fn postings(&self, key: &str) -> &[Posting] {
        self.key_id(key).map_or(&[], |id| self.postings_id(id))
    }

    /// The postings for an interned key.
    #[must_use]
    pub fn postings_id(&self, key: ValueId) -> &[Posting] {
        self.entries.get(&key).map_or(&[], Vec::as_slice)
    }

    /// The distinct rows containing a key.
    #[must_use]
    pub fn rows(&self, key: &str) -> &[RowId] {
        self.key_id(key).map_or(&[], |id| self.rows_id(id))
    }

    /// The distinct rows containing an interned key.
    #[must_use]
    pub fn rows_id(&self, key: ValueId) -> &[RowId] {
        self.rows_by_key.get(&key).map_or(&[], Vec::as_slice)
    }

    /// Aggregate statistics for one key.
    #[must_use]
    pub fn stats(&self, key: &str) -> EntryStats {
        match self.key_id(key) {
            Some(id) => self.stats_id(id),
            None => EntryStats {
                support: 0,
                rhs_counts: Vec::new(),
            },
        }
    }

    /// Aggregate statistics for one interned key.
    ///
    /// Reads the per-key deltas maintained by
    /// [`InvertedIndex::insert_row`], so cost is `O(distinct RHS values)`
    /// for the key rather than `O(postings)`. A row contributes once
    /// regardless of how many RHS tokens it produced.
    #[must_use]
    pub fn stats_id(&self, key: ValueId) -> EntryStats {
        let support = self.rows_id(key).len();
        let mut rhs_counts: Vec<(ValueId, usize)> = self
            .rhs_counts_by_key
            .get(&key)
            .map(|counts| counts.iter().map(|(v, c)| (*v, *c)).collect())
            .unwrap_or_default();
        sort_rhs_counts(&mut rhs_counts);
        EntryStats {
            support,
            rhs_counts,
        }
    }

    /// Iterate keys in deterministic (sorted) order with their stats.
    pub fn iter_stats(&self) -> impl Iterator<Item = (&'static str, EntryStats)> + '_ {
        let mut keys: Vec<ValueId> = self.entries.keys().copied().collect();
        keys.sort_by_cached_key(|k| k.render());
        keys.into_iter().map(|k| (k.render(), self.stats_id(k)))
    }

    /// Keys whose support is at least `min_support`, sorted by descending
    /// support (ties: ascending key).
    #[must_use]
    pub fn frequent_keys(&self, min_support: usize) -> Vec<(&'static str, usize)> {
        let mut out: Vec<(&'static str, usize)> = self
            .rows_by_key
            .iter()
            .filter(|(_, rows)| rows.len() >= min_support)
            .map(|(k, rows)| (k.render(), rows.len()))
            .collect();
        out.sort_by(|(ka, sa), (kb, sb)| sb.cmp(sa).then_with(|| ka.cmp(kb)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anmat_table::{Schema, Table};

    fn name_gender_table() -> Table {
        // Table 1 of the paper (D1), including the seeded error in r4.
        let schema = Schema::new(["name", "gender"]).unwrap();
        Table::from_str_rows(
            schema,
            [
                ["John Charles", "M"],
                ["John Bosco", "M"],
                ["Susan Orlean", "F"],
                ["Susan Boyle", "M"], // error: should be F
            ],
        )
        .unwrap()
    }

    #[test]
    fn token_extraction_builds_postings() {
        let t = name_gender_table();
        let idx = InvertedIndex::build(&t, 0, 1, ExtractionMode::Tokens, ExtractionMode::Tokens);
        assert_eq!(idx.considered_rows, 4);
        assert_eq!(idx.rows("John"), &[0, 1]);
        assert_eq!(idx.rows("Susan"), &[2, 3]);
        let p = idx.postings("John");
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].lhs_pos, 0);
        assert_eq!(p[0].rhs_full.as_str(), Some("M"));
    }

    #[test]
    fn stats_detect_paper_error() {
        let t = name_gender_table();
        let idx = InvertedIndex::build(&t, 0, 1, ExtractionMode::Tokens, ExtractionMode::Tokens);
        let john = idx.stats("John");
        assert_eq!(john.support, 2);
        assert_eq!(john.dominant_rhs(), Some("M"));
        assert_eq!(john.violations(), 0);
        assert!((john.confidence() - 1.0).abs() < 1e-9);
        let susan = idx.stats("Susan");
        assert_eq!(susan.support, 2);
        assert_eq!(susan.violations(), 1);
        assert!((susan.confidence() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn prefix_mode_zip_codes() {
        // Table 2 of the paper (D2).
        let schema = Schema::new(["zip", "city"]).unwrap();
        let t = Table::from_str_rows(
            schema,
            [
                ["90001", "Los Angeles"],
                ["90002", "Los Angeles"],
                ["90003", "Los Angeles"],
                ["90004", "New York"], // error
            ],
        )
        .unwrap();
        let idx = InvertedIndex::build(
            &t,
            0,
            1,
            ExtractionMode::Prefixes(3),
            ExtractionMode::Tokens,
        );
        let s = idx.stats("900");
        assert_eq!(s.support, 4);
        assert_eq!(s.dominant_rhs(), Some("Los Angeles"));
        assert_eq!(s.violations(), 1);
    }

    #[test]
    fn ngram_mode_positions() {
        let schema = Schema::new(["id", "dept"]).unwrap();
        let t =
            Table::from_str_rows(schema, [["F-9-107", "Finance"], ["F-3-220", "Finance"]]).unwrap();
        let idx = InvertedIndex::build(&t, 0, 1, ExtractionMode::NGrams(2), ExtractionMode::Tokens);
        // "F-" occurs at char 0 in both ids.
        let p = idx.postings("F-");
        assert_eq!(p.len(), 2);
        assert!(p.iter().all(|p| p.lhs_pos == 0));
        assert_eq!(idx.stats("F-").support, 2);
    }

    #[test]
    fn multi_occurrence_key_counts_row_once() {
        let schema = Schema::new(["a", "b"]).unwrap();
        let t = Table::from_str_rows(schema, [["x x x", "1"]]).unwrap();
        let idx = InvertedIndex::build(&t, 0, 1, ExtractionMode::Tokens, ExtractionMode::Tokens);
        assert_eq!(idx.stats("x").support, 1);
        assert_eq!(idx.postings("x").len(), 3);
    }

    #[test]
    fn nulls_skipped() {
        let schema = Schema::new(["a", "b"]).unwrap();
        let t = Table::from_str_rows(schema, [["x", "1"], ["", "2"], ["y", ""]]).unwrap();
        let idx = InvertedIndex::build(&t, 0, 1, ExtractionMode::Tokens, ExtractionMode::Tokens);
        assert_eq!(idx.considered_rows, 1);
        assert!(idx.rows("y").is_empty());
    }

    #[test]
    fn frequent_keys_sorted() {
        let t = name_gender_table();
        let idx = InvertedIndex::build(&t, 0, 1, ExtractionMode::Tokens, ExtractionMode::Tokens);
        let freq = idx.frequent_keys(2);
        assert_eq!(freq, vec![("John", 2), ("Susan", 2)]);
        assert!(idx.frequent_keys(3).is_empty());
    }

    #[test]
    fn incremental_insert_matches_build() {
        let t = name_gender_table();
        let batch = InvertedIndex::build(&t, 0, 1, ExtractionMode::Tokens, ExtractionMode::Tokens);
        let mut inc = InvertedIndex::empty(ExtractionMode::Tokens, ExtractionMode::Tokens);
        for (row, a, b) in t.iter_pair(0, 1) {
            inc.insert_row(row, a, b);
        }
        assert_eq!(inc.considered_rows, batch.considered_rows);
        assert_eq!(inc.key_count(), batch.key_count());
        for (key, stats) in batch.iter_stats() {
            assert_eq!(inc.stats(key), stats, "stats diverge for key {key:?}");
            assert_eq!(inc.rows(key), batch.rows(key));
        }
    }

    #[test]
    fn insert_row_is_constant_per_row() {
        // The per-key RHS distribution updates by delta: support grows by
        // one per containing row and the dominant value tracks the counts.
        let mut idx = InvertedIndex::empty(ExtractionMode::Tokens, ExtractionMode::Tokens);
        for row in 0..100 {
            idx.insert_row(row, "John Smith", if row % 10 == 0 { "F" } else { "M" });
            let s = idx.stats("John");
            assert_eq!(s.support, row + 1);
        }
        let s = idx.stats("John");
        assert_eq!(s.dominant_rhs(), Some("M"));
        assert_eq!(s.violations(), 10);
    }

    #[test]
    fn iter_stats_deterministic() {
        let t = name_gender_table();
        let idx = InvertedIndex::build(&t, 0, 1, ExtractionMode::Tokens, ExtractionMode::Tokens);
        let keys: Vec<&str> = idx.iter_stats().map(|(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn dominant_rhs_tie_breaks_to_smaller_string() {
        // Two RHS values with equal counts must pick the same winner on
        // every run and platform: the lexicographically smaller string,
        // independent of pool id assignment order.
        let mut a = InvertedIndex::empty(ExtractionMode::Tokens, ExtractionMode::Tokens);
        a.insert_row(0, "key", "zzz-tie");
        a.insert_row(1, "key", "aaa-tie");
        assert_eq!(a.stats("key").dominant_rhs(), Some("aaa-tie"));
        // Reversed ingest (and hence reversed interning order): same
        // winner.
        let mut b = InvertedIndex::empty(ExtractionMode::Tokens, ExtractionMode::Tokens);
        b.insert_row(0, "key", "aaa-tie");
        b.insert_row(1, "key", "zzz-tie");
        assert_eq!(b.stats("key").dominant_rhs(), Some("aaa-tie"));
        assert_eq!(a.stats("key").rhs_counts, b.stats("key").rhs_counts);
    }

    #[test]
    fn remove_row_is_exact_inverse_of_insert() {
        let t = name_gender_table();
        // Insert all four rows, remove row 3: stats must equal an index
        // built from rows 0–2 alone — exact EntryStats decrement deltas.
        let mut idx = InvertedIndex::empty(ExtractionMode::Tokens, ExtractionMode::Tokens);
        for (row, a, b) in t.iter_pair(0, 1) {
            idx.insert_row(row, a, b);
        }
        idx.remove_row(3, "Susan Boyle", "M");
        let expected = {
            let mut i = InvertedIndex::empty(ExtractionMode::Tokens, ExtractionMode::Tokens);
            for (row, a, b) in t.iter_pair(0, 1).take(3) {
                i.insert_row(row, a, b);
            }
            i
        };
        assert_eq!(idx.considered_rows, expected.considered_rows);
        assert_eq!(idx.key_count(), expected.key_count());
        for (key, stats) in expected.iter_stats() {
            assert_eq!(idx.stats(key), stats, "stats diverge for key {key:?}");
            assert_eq!(idx.rows(key), expected.rows(key));
            assert_eq!(idx.postings(key).len(), expected.postings(key).len());
        }
        // The Susan entry lost its violation with the erroneous row gone.
        assert_eq!(idx.stats("Susan").support, 1);
        assert_eq!(idx.stats("Susan").violations(), 0);
    }

    #[test]
    fn remove_last_row_of_a_key_drops_the_key() {
        let mut idx = InvertedIndex::empty(ExtractionMode::Tokens, ExtractionMode::Tokens);
        idx.insert_row(0, "solo", "X");
        idx.insert_row(1, "other", "Y");
        idx.remove_row(0, "solo", "X");
        assert_eq!(idx.key_count(), 1);
        assert!(idx.rows("solo").is_empty());
        assert!(idx.postings("solo").is_empty());
        assert_eq!(idx.stats("solo").support, 0);
        assert_eq!(idx.considered_rows, 1);
    }

    #[test]
    fn remove_multi_occurrence_key_undoes_deltas_once() {
        let mut idx = InvertedIndex::empty(ExtractionMode::Tokens, ExtractionMode::Tokens);
        idx.insert_row(0, "x x x", "1");
        idx.insert_row(1, "x", "1");
        idx.remove_row(0, "x x x", "1");
        let s = idx.stats("x");
        assert_eq!(s.support, 1);
        assert_eq!(s.rhs_counts, vec![(anmat_table::ValuePool::intern("1"), 1)]);
        assert_eq!(idx.postings("x").len(), 1);
    }

    #[test]
    fn churn_keeps_stats_consistent() {
        // Insert/remove interleaving over one key: dominant RHS tracks
        // the surviving rows at every step.
        let mut idx = InvertedIndex::empty(ExtractionMode::Tokens, ExtractionMode::Tokens);
        for row in 0..50 {
            idx.insert_row(row, "John Smith", if row % 2 == 0 { "M" } else { "F" });
        }
        for row in (0..50).filter(|r| r % 2 == 1) {
            idx.remove_row(row, "John Smith", "F");
        }
        let s = idx.stats("John");
        assert_eq!(s.support, 25);
        assert_eq!(s.dominant_rhs(), Some("M"));
        assert_eq!(s.violations(), 0);
        assert_eq!(idx.considered_rows, 25);
    }

    /// The remap protocol: remove deleted rows, compact, remap — the
    /// index must equal one built from the compacted table, stats
    /// included, with no stat re-derivation (the counts are untouched).
    #[test]
    fn apply_remap_matches_index_over_compacted_table() {
        let schema = Schema::new(["name", "gender"]).unwrap();
        let mut t = Table::from_str_rows(
            schema,
            [
                ["John Charles", "M"],
                ["John Bosco", "M"],
                ["Susan Orlean", "F"],
                ["Susan Boyle", "M"],
                ["John Doe", "M"],
            ],
        )
        .unwrap();
        let mut idx = InvertedIndex::empty(ExtractionMode::Tokens, ExtractionMode::Tokens);
        for (row, a, b) in t.iter_pair(0, 1) {
            idx.insert_row(row, a, b);
        }
        idx.remove_row(1, "John Bosco", "M");
        idx.remove_row(2, "Susan Orlean", "F");
        t.delete_row(1).unwrap();
        t.delete_row(2).unwrap();
        let remap = t.compact();
        idx.apply_remap(&remap);

        let expected =
            InvertedIndex::build(&t, 0, 1, ExtractionMode::Tokens, ExtractionMode::Tokens);
        assert_eq!(idx.considered_rows, expected.considered_rows);
        assert_eq!(idx.key_count(), expected.key_count());
        for (key, stats) in expected.iter_stats() {
            assert_eq!(idx.stats(key), stats, "stats diverge for key {key:?}");
            assert_eq!(
                idx.rows(key),
                expected.rows(key),
                "rows diverge for {key:?}"
            );
            assert_eq!(idx.postings(key), expected.postings(key));
        }
    }

    #[test]
    fn freeze_is_isolated_from_later_mutation() {
        let t = name_gender_table();
        let mut idx =
            InvertedIndex::build(&t, 0, 1, ExtractionMode::Tokens, ExtractionMode::Tokens);
        let snap = idx.freeze();
        // Mutate the live index every way it can move: insert, remove.
        idx.insert_row(4, "Susan Sontag", "F");
        idx.remove_row(0, "John Charles", "M");
        // The frozen view still answers as of capture time.
        assert_eq!(snap.considered_rows, 4);
        assert_eq!(snap.rows("John"), &[0, 1]);
        assert_eq!(snap.index().stats("Susan").support, 2);
        assert_eq!(snap.stats("Susan").violations(), 1);
        assert!(snap.rows("Sontag").is_empty());
        // The live index moved on.
        assert_eq!(idx.rows("John"), &[1]);
        assert_eq!(idx.stats("Susan").support, 3);
        assert_eq!(idx.rows("Sontag"), &[4]);
    }

    #[test]
    fn unseen_key_is_empty() {
        let idx = InvertedIndex::empty(ExtractionMode::Tokens, ExtractionMode::Tokens);
        assert!(idx.postings("never-seen-inverted-key").is_empty());
        assert!(idx.rows("never-seen-inverted-key").is_empty());
        assert_eq!(idx.stats("never-seen-inverted-key").support, 0);
    }
}
