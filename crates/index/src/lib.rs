//! Indexing substrates for PFD discovery and error detection.
//!
//! Three access paths from §3 of the paper:
//!
//! * [`inverted`] — the hash-based inverted list `H` of the discovery
//!   algorithm (Figure 2, lines 4–12): LHS token/n-gram → postings of
//!   `(tuple id, LHS position, RHS token, RHS position)`, with per-entry
//!   support/confidence statistics that feed the decision function `f`;
//! * [`pattern_index`] — the "index supporting regular expressions for
//!   each column present on the LHS of the PFDs": distinct values are
//!   bucketed by pattern signature, and a pattern lookup prunes whole
//!   buckets via exact language-intersection tests before touching
//!   individual values;
//! * [`blocking`] — the blocking strategy (cf. BigDansing) that avoids the
//!   quadratic tuple-pair enumeration for variable PFDs: rows are grouped
//!   by their constrained-capture key, and pairs are enumerated within
//!   blocks only.
//!
//! [`trie`] provides the character trie the pattern index uses to
//! accelerate literal-prefix lookups.
//!
//! The inverted list and blocking structures are *incrementally
//! updatable in both directions* — mutable streams, not just appends:
//! [`InvertedIndex::insert_row`] / [`InvertedIndex::remove_row`] apply
//! one row's deltas in `O(keys per row)` with exact per-key
//! [`EntryStats`] increments and decrements (the hook for online
//! re-discovery), and [`BlockingPartition::insert`] /
//! [`BlockingPartition::remove`] touch exactly the affected block, with
//! an `O(1)` majority update per insert and a majority re-derivation
//! only when a removal dethrones the leader — the substrate of the
//! `anmat-stream` engine's variable-PFD delta pipeline.
//!
//! All three indexes key their maps on interned
//! [`ValueId`](anmat_table::ValueId)s from the global
//! [`ValuePool`](anmat_table::ValuePool): probes hash a 4-byte `Copy` id
//! under the vendored `FxHasher` rather than re-hashing strings, and
//! per-value work (pattern matching, capture extraction) is bounded by
//! the column's *distinct-value* count via id-keyed memos
//! ([`BlockingPartition::key_evals`] counts the actual evaluations).

pub mod blocking;
pub mod inverted;
pub mod pattern_index;
pub mod trie;

pub use blocking::{BlockingIndex, BlockingPartition, Blocks, KeyBlock, Placement};
pub use inverted::{EntryStats, ExtractionMode, IndexSnapshot, InvertedIndex, Posting};
pub use pattern_index::PatternIndex;
pub use trie::CharTrie;
