//! Indexing substrates for PFD discovery and error detection.
//!
//! Three access paths from §3 of the paper:
//!
//! * [`inverted`] — the hash-based inverted list `H` of the discovery
//!   algorithm (Figure 2, lines 4–12): LHS token/n-gram → postings of
//!   `(tuple id, LHS position, RHS token, RHS position)`, with per-entry
//!   support/confidence statistics that feed the decision function `f`;
//! * [`pattern_index`] — the "index supporting regular expressions for
//!   each column present on the LHS of the PFDs": distinct values are
//!   bucketed by pattern signature, and a pattern lookup prunes whole
//!   buckets via exact language-intersection tests before touching
//!   individual values;
//! * [`blocking`] — the blocking strategy (cf. BigDansing) that avoids the
//!   quadratic tuple-pair enumeration for variable PFDs: rows are grouped
//!   by their constrained-capture key, and pairs are enumerated within
//!   blocks only.
//!
//! [`trie`] provides the character trie the pattern index uses to
//! accelerate literal-prefix lookups.
//!
//! The inverted list and blocking structures are *incrementally
//! updatable* for append-heavy workloads:
//! [`InvertedIndex::insert_row`] appends one row in `O(keys per row)`
//! with per-key [`EntryStats`] deltas (the hook for online
//! re-discovery), and [`BlockingPartition`] places each arriving row
//! into exactly one block with an `O(1)` majority update — the
//! substrate of the `anmat-stream` engine's variable-PFD path.
//!
//! All three indexes key their maps on interned
//! [`ValueId`](anmat_table::ValueId)s from the global
//! [`ValuePool`](anmat_table::ValuePool): probes hash a 4-byte `Copy` id
//! under the vendored `FxHasher` rather than re-hashing strings, and
//! per-value work (pattern matching, capture extraction) is bounded by
//! the column's *distinct-value* count via id-keyed memos
//! ([`BlockingPartition::key_evals`] counts the actual evaluations).

pub mod blocking;
pub mod inverted;
pub mod pattern_index;
pub mod trie;

pub use blocking::{BlockingIndex, BlockingPartition, Blocks, KeyBlock, Placement};
pub use inverted::{EntryStats, ExtractionMode, InvertedIndex, Posting};
pub use pattern_index::PatternIndex;
pub use trie::CharTrie;
