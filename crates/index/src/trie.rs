//! A character trie mapping string prefixes to row-id postings.

use anmat_table::RowId;
use std::collections::HashMap;

/// A trie over characters; each node stores the rows whose value passes
/// through it. Supports exact-prefix postings retrieval.
#[derive(Debug, Default)]
pub struct CharTrie {
    root: Node,
    len: usize,
}

#[derive(Debug, Default)]
struct Node {
    children: HashMap<char, Node>,
    /// Rows whose value ends exactly here.
    terminal: Vec<RowId>,
    /// Number of rows in this subtree (terminal counts included).
    subtree_rows: usize,
}

impl CharTrie {
    /// An empty trie.
    #[must_use]
    pub fn new() -> CharTrie {
        CharTrie::default()
    }

    /// Number of inserted (value, row) pairs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the trie empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a value for a row.
    pub fn insert(&mut self, value: &str, row: RowId) {
        let mut node = &mut self.root;
        node.subtree_rows += 1;
        for c in value.chars() {
            node = node.children.entry(c).or_default();
            node.subtree_rows += 1;
        }
        node.terminal.push(row);
        self.len += 1;
    }

    /// All rows whose value starts with `prefix` (empty prefix = all rows).
    #[must_use]
    pub fn rows_with_prefix(&self, prefix: &str) -> Vec<RowId> {
        let Some(node) = self.descend(prefix) else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(node.subtree_rows);
        collect(node, &mut out);
        out.sort_unstable();
        out
    }

    /// Rows whose value equals `value` exactly.
    #[must_use]
    pub fn rows_exact(&self, value: &str) -> &[RowId] {
        self.descend(value).map_or(&[], |n| &n.terminal)
    }

    /// Number of rows below a prefix without materializing them.
    #[must_use]
    pub fn count_with_prefix(&self, prefix: &str) -> usize {
        self.descend(prefix).map_or(0, |n| n.subtree_rows)
    }

    fn descend(&self, path: &str) -> Option<&Node> {
        let mut node = &self.root;
        for c in path.chars() {
            node = node.children.get(&c)?;
        }
        Some(node)
    }
}

fn collect(node: &Node, out: &mut Vec<RowId>) {
    out.extend_from_slice(&node.terminal);
    for child in node.children.values() {
        collect(child, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CharTrie {
        let mut t = CharTrie::new();
        for (i, v) in ["90001", "90002", "90003", "60601", "606", ""]
            .iter()
            .enumerate()
        {
            t.insert(v, i);
        }
        t
    }

    #[test]
    fn prefix_lookup() {
        let t = sample();
        assert_eq!(t.rows_with_prefix("900"), vec![0, 1, 2]);
        assert_eq!(t.rows_with_prefix("606"), vec![3, 4]);
        assert_eq!(t.rows_with_prefix("60601"), vec![3]);
        assert!(t.rows_with_prefix("7").is_empty());
    }

    #[test]
    fn empty_prefix_returns_all() {
        let t = sample();
        assert_eq!(t.rows_with_prefix(""), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn exact_lookup() {
        let t = sample();
        assert_eq!(t.rows_exact("606"), &[4]);
        assert_eq!(t.rows_exact("90001"), &[0]);
        assert!(t.rows_exact("9000").is_empty());
        assert_eq!(t.rows_exact(""), &[5]);
    }

    #[test]
    fn counts_match_lookups() {
        let t = sample();
        assert_eq!(t.count_with_prefix("900"), 3);
        assert_eq!(t.count_with_prefix(""), 6);
        assert_eq!(t.count_with_prefix("x"), 0);
    }

    #[test]
    fn duplicate_values_accumulate() {
        let mut t = CharTrie::new();
        t.insert("ab", 1);
        t.insert("ab", 2);
        assert_eq!(t.rows_exact("ab"), &[1, 2]);
        assert_eq!(t.len(), 2);
    }
}
