//! E9 — Figure 3: the profiling view.
//!
//! Prints the `pattern::position, frequency` listing for each synthetic
//! dataset and measures profiling throughput.

use anmat_bench::criterion;
use anmat_core::report;
use anmat_datagen::{names, phone, zipcity};
use anmat_table::TableProfile;
use criterion::{black_box, BenchmarkId, Criterion, Throughput};

fn bench(c: &mut Criterion) {
    let small = phone::generate(&anmat_bench::gen(200, 0xF3));
    let profile = TableProfile::profile(&small.table);
    println!("{}", report::profiling_view(&small.table, &profile));

    let mut g = c.benchmark_group("fig3_profiling");
    for &rows in &[1_000usize, 10_000, 50_000] {
        let phones = phone::generate(&anmat_bench::gen(rows, 1));
        let namesd = names::generate(&anmat_bench::gen(rows, 2));
        let zips = zipcity::generate(&anmat_bench::gen(rows, 3), zipcity::ZipTarget::City);
        g.throughput(Throughput::Elements(rows as u64));
        g.bench_with_input(BenchmarkId::new("phone", rows), &phones, |b, d| {
            b.iter(|| TableProfile::profile(black_box(&d.table)));
        });
        g.bench_with_input(BenchmarkId::new("names", rows), &namesd, |b, d| {
            b.iter(|| TableProfile::profile(black_box(&d.table)));
        });
        g.bench_with_input(BenchmarkId::new("zip", rows), &zips, |b, d| {
            b.iter(|| TableProfile::profile(black_box(&d.table)));
        });
    }
    g.finish();
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
