//! E9 — Figure 3: the profiling view.
//!
//! Prints the `pattern::position, frequency` listing for each synthetic
//! dataset and measures profiling throughput.
//!
//! Also sweeps the *distinct-value ratio* (1%, 10%, 50% distinct values
//! at fixed row count): with dictionary-encoded interning, per-row work
//! in profiling and streaming detection collapses onto per-distinct-value
//! work, so throughput should rise super-linearly as the ratio drops.
//! The seed (pre-interning) code paid string hashing and pattern
//! matching per row at every ratio — this sweep is where that win shows
//! up in the bench trajectory.

use anmat_bench::criterion;
use anmat_core::{report, PatternTuple, Pfd};
use anmat_datagen::{names, phone, zipcity};
use anmat_pattern::ConstrainedPattern;
use anmat_stream::StreamEngine;
use anmat_table::{Schema, Table, TableProfile};
use criterion::{black_box, BenchmarkId, Criterion, Throughput};

/// A zip→city style table with exactly `rows * ratio` distinct LHS
/// values, shuffled deterministically. The city is a function of the
/// zip's 3-digit prefix, so the sweep rules' blocks stay consistent and
/// the measurement isolates ingest + matching cost (interning, memo
/// probes, block placement) rather than violation-ledger churn.
fn distinct_ratio_table(rows: usize, ratio: f64) -> Table {
    let distinct = ((rows as f64 * ratio) as usize).max(1);
    let schema = Schema::new(["zip", "city"]).expect("static schema");
    let mut t = Table::empty(schema);
    for r in 0..rows {
        // Multiplicative stepping spreads the distinct values over the
        // row order without RNG (deterministic across runs).
        let k = (r * 7 + r / distinct) % distinct;
        let zip = format!("9{k:04}");
        let city = format!("City {}", k / 100);
        t.push_row(vec![zip.into(), city.into()]).expect("arity");
    }
    t
}

fn sweep_rules() -> Vec<Pfd> {
    vec![Pfd::new(
        "Zip",
        "zip",
        "city",
        vec![
            // Matches zips 90000–90009, whose city is always "City 0".
            PatternTuple::constant(
                ConstrainedPattern::unconstrained("9000\\D".parse().expect("pattern")),
                "City 0",
            ),
            // Blocks on the 3-digit prefix, which determines the city by
            // construction.
            PatternTuple::variable("[\\D{3}]\\D{2}".parse::<ConstrainedPattern>().expect("q")),
        ],
    )]
}

fn bench_distinct_ratio_sweep(c: &mut Criterion) {
    const ROWS: usize = 20_000;
    let mut g = c.benchmark_group("fig3_distinct_ratio");
    g.throughput(Throughput::Elements(ROWS as u64));
    for &pct in &[1usize, 10, 50] {
        let table = distinct_ratio_table(ROWS, pct as f64 / 100.0);
        let rules = sweep_rules();
        // Artifact: the memoization bound in action — pattern evaluations
        // per ingest stay at (tuples × distinct), not (tuples × rows).
        let mut probe = StreamEngine::new(table.schema().clone(), rules.clone());
        probe.replay_table(&table).expect("schema matches");
        println!(
            "── fig3 sweep artifact: {pct}% distinct → {} pattern evals for {ROWS} rows ──",
            probe.pattern_evals()
        );
        g.bench_with_input(BenchmarkId::new("profile", pct), &table, |b, t| {
            b.iter(|| TableProfile::profile(black_box(t)));
        });
        g.bench_with_input(
            BenchmarkId::new("stream_ingest", pct),
            &(&table, &rules),
            |b, (t, rules)| {
                b.iter(|| {
                    let mut engine = StreamEngine::new(t.schema().clone(), rules.to_vec());
                    engine.replay_table(t).expect("schema matches");
                    black_box(engine.ledger().live_count())
                });
            },
        );
    }
    g.finish();
}

fn bench(c: &mut Criterion) {
    let small = phone::generate(&anmat_bench::gen(200, 0xF3));
    let profile = TableProfile::profile(&small.table);
    println!("{}", report::profiling_view(&small.table, &profile));

    let mut g = c.benchmark_group("fig3_profiling");
    for &rows in &[1_000usize, 10_000, 50_000] {
        let phones = phone::generate(&anmat_bench::gen(rows, 1));
        let namesd = names::generate(&anmat_bench::gen(rows, 2));
        let zips = zipcity::generate(&anmat_bench::gen(rows, 3), zipcity::ZipTarget::City);
        g.throughput(Throughput::Elements(rows as u64));
        g.bench_with_input(BenchmarkId::new("phone", rows), &phones, |b, d| {
            b.iter(|| TableProfile::profile(black_box(&d.table)));
        });
        g.bench_with_input(BenchmarkId::new("names", rows), &namesd, |b, d| {
            b.iter(|| TableProfile::profile(black_box(&d.table)));
        });
        g.bench_with_input(BenchmarkId::new("zip", rows), &zips, |b, d| {
            b.iter(|| TableProfile::profile(black_box(&d.table)));
        });
    }
    g.finish();
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    bench_distinct_ratio_sweep(&mut c);
    c.final_summary();
}
