//! E9 — Figure 3: the profiling view.
//!
//! Prints the `pattern::position, frequency` listing for each synthetic
//! dataset and measures profiling throughput.
//!
//! Also sweeps the *distinct-value ratio* (1%, 10%, 50% distinct values
//! at fixed row count): with dictionary-encoded interning, per-row work
//! in profiling and streaming detection collapses onto per-distinct-value
//! work, so throughput should rise super-linearly as the ratio drops.
//! The per-distinct cost itself is measured across all three pattern
//! execution tiers — AST interpreter, bytecode VM, fused single-pass
//! matcher — and a *field-length* sweep (8/64/512-byte fields) isolates
//! the SWAR class-scan kernel against its byte-at-a-time scalar twin.

use anmat_bench::criterion;
use anmat_core::{report, PatternTuple, Pfd};
use anmat_datagen::{names, phone, zipcity};
use anmat_obs as obs;
use anmat_pattern::{
    scan, AsciiSet, CompiledConstrained, CompiledPattern, ConstrainedPattern, PatternEngine,
    SymbolClass,
};
use anmat_stream::{StreamConfig, StreamEngine};
use anmat_table::{Schema, Table, TableProfile};
use criterion::{black_box, BenchmarkId, Criterion, Throughput};
use std::time::Instant;

/// A zip→city style table with exactly `rows * ratio` distinct LHS
/// values, shuffled deterministically. The city is a function of the
/// zip's 3-digit prefix, so the sweep rules' blocks stay consistent and
/// the measurement isolates ingest + matching cost (interning, memo
/// probes, block placement) rather than violation-ledger churn.
fn distinct_ratio_table(rows: usize, ratio: f64) -> Table {
    let distinct = ((rows as f64 * ratio) as usize).max(1);
    let schema = Schema::new(["zip", "city"]).expect("static schema");
    let mut t = Table::empty(schema);
    for r in 0..rows {
        // Multiplicative stepping spreads the distinct values over the
        // row order without RNG (deterministic across runs).
        let k = (r * 7 + r / distinct) % distinct;
        let zip = format!("9{k:04}");
        let city = format!("City {}", k / 100);
        t.push_row(vec![zip.into(), city.into()]).expect("arity");
    }
    t
}

fn sweep_rules() -> Vec<Pfd> {
    vec![Pfd::new(
        "Zip",
        "zip",
        "city",
        vec![
            // Matches zips 90000–90009, whose city is always "City 0".
            PatternTuple::constant(
                ConstrainedPattern::unconstrained("9000\\D".parse().expect("pattern")),
                "City 0",
            ),
            // Blocks on the 3-digit prefix, which determines the city by
            // construction.
            PatternTuple::variable("[\\D{3}]\\D{2}".parse::<ConstrainedPattern>().expect("q")),
        ],
    )]
}

/// The distinct LHS values a `distinct_ratio_table` contains, in first-
/// sighting order — the population the per-distinct eval measurement
/// runs over.
fn distinct_lhs(rows: usize, ratio: f64) -> Vec<String> {
    let distinct = ((rows as f64 * ratio) as usize).max(1);
    (0..distinct).map(|k| format!("9{k:04}")).collect()
}

/// ns per distinct value for the per-distinct work the memoized engines
/// actually do once per new value: one constant-pattern match plus one
/// blocking-key derivation, evaluated on the requested execution tier.
/// The interp/vm/fused ratios are the tentpole's headline numbers.
fn eval_ns_per_distinct(values: &[String], engine: PatternEngine) -> f64 {
    let pattern = "9000\\D".parse().expect("pattern");
    let keyer: ConstrainedPattern = "[\\D{3}]\\D{2}".parse().expect("q");
    let cp = CompiledPattern::compile(&pattern);
    let cq = CompiledConstrained::compile(&keyer);
    assert!(
        cp.is_fused() && cq.program().is_fused(),
        "sweep patterns are fixed-width and must take the fused tier"
    );
    let mut key_buf = String::new();
    // Enough repetitions that the fast tiers still accumulate a
    // wall-clock signal well above timer noise.
    let reps = (500_000 / values.len()).max(1);
    let total = (reps * values.len()) as f64;
    let start = Instant::now();
    for _ in 0..reps {
        for v in values {
            black_box(cp.matches_with(v, engine));
            black_box(cq.key_into_with(v, &mut key_buf, engine));
        }
    }
    start.elapsed().as_secs_f64() * 1e9 / total
}

/// One timed full replay; returns (rows/s, pattern_evals).
fn ingest_rate(table: &Table, rules: &[Pfd], engine: PatternEngine) -> (f64, usize) {
    let config = StreamConfig {
        pattern_engine: engine,
        ..StreamConfig::default()
    };
    let mut engine = StreamEngine::with_config(table.schema().clone(), rules.to_vec(), config);
    let start = Instant::now();
    engine.replay_table(table).expect("schema matches");
    let rate = table.row_count() as f64 / start.elapsed().as_secs_f64();
    black_box(engine.ledger().live_count());
    (rate, engine.pattern_evals())
}

/// Per-field ns for an unbounded digit-run (`\D{1,}`) match on
/// `len`-byte fields, per execution tier. The run scan *is* the whole
/// field here, so this isolates the `AtLeast` scan loop the SWAR kernel
/// accelerates.
fn long_field_eval_ns(len: usize, engine: PatternEngine) -> f64 {
    let pattern = "\\D{1,}".parse().expect("pattern");
    let cp = CompiledPattern::compile(&pattern);
    let field = "7".repeat(len);
    let reps = (40_000_000 / len).max(1_000);
    let start = Instant::now();
    for _ in 0..reps {
        black_box(cp.matches_with(black_box(&field), engine));
    }
    start.elapsed().as_secs_f64() * 1e9 / reps as f64
}

/// Raw scan-kernel ns per `len`-byte field: the SWAR 8-bytes-per-step
/// word loop vs the byte-at-a-time scalar loop, on the same digit set.
fn scan_kernel_ns(len: usize) -> (f64, f64) {
    let set = AsciiSet::of_class(SymbolClass::Digit);
    let field = "7".repeat(len);
    let bytes = field.as_bytes();
    let reps = (80_000_000 / len).max(1_000);
    let swar = {
        let start = Instant::now();
        for _ in 0..reps {
            black_box(scan::run_len(&set, black_box(bytes), 0, len));
        }
        start.elapsed().as_secs_f64() * 1e9 / reps as f64
    };
    let scalar = {
        let start = Instant::now();
        for _ in 0..reps {
            black_box(scan::run_len_scalar(&set, black_box(bytes), 0, len));
        }
        start.elapsed().as_secs_f64() * 1e9 / reps as f64
    };
    (swar, scalar)
}

const TIERS: [PatternEngine; 3] = [
    PatternEngine::Interp,
    PatternEngine::Vm,
    PatternEngine::Fused,
];

/// The machine-readable artifact (mirrors `BENCH_fig6.json`): for each
/// distinct-ratio point, per-tier ingest rows/s and per-distinct eval
/// ns; for each field length, per-tier `AtLeast`-scan eval ns plus the
/// raw SWAR-vs-scalar kernel figures; and the end-of-run metrics
/// registry of a default-engine replay (which carries
/// `pattern.fused_evals` / `pattern.vm_evals` / `pattern.interp_evals`
/// / `pattern.compile_ns`).
fn write_fig3_json(rows: usize, sweep: &[SweepPoint], fields: &[FieldPoint]) {
    obs::Recorder::enable();
    let table = distinct_ratio_table(rows, 0.10);
    let rules = sweep_rules();
    let mut engine = StreamEngine::new(table.schema().clone(), rules);
    engine.replay_table(&table).expect("schema matches");
    engine.publish_metrics();
    let snapshot = obs::MetricsSnapshot::capture();
    obs::Recorder::disable();
    let mut points = String::new();
    for p in sweep {
        if !points.is_empty() {
            points.push_str(",\n");
        }
        points.push_str(&format!(
            "    {{\n      \"pct_distinct\": {},\n      \"distinct\": {},\n      \
             \"pattern_evals\": {},\n      \"interp\": {{\n        \
             \"ingest_rows_per_sec\": {:.0},\n        \"eval_ns_per_distinct\": {:.1}\n      \
             }},\n      \"vm\": {{\n        \"ingest_rows_per_sec\": {:.0},\n        \
             \"eval_ns_per_distinct\": {:.1}\n      }},\n      \
             \"fused\": {{\n        \"ingest_rows_per_sec\": {:.0},\n        \
             \"eval_ns_per_distinct\": {:.1}\n      }},\n      \
             \"fused_vs_vm_eval_speedup\": {:.2},\n      \
             \"fused_vs_interp_eval_speedup\": {:.2},\n      \
             \"fused_ingest_speedup\": {:.2}\n    }}",
            p.pct,
            p.distinct,
            p.pattern_evals,
            p.rows_per_sec[0],
            p.eval_ns[0],
            p.rows_per_sec[1],
            p.eval_ns[1],
            p.rows_per_sec[2],
            p.eval_ns[2],
            p.eval_ns[1] / p.eval_ns[2],
            p.eval_ns[0] / p.eval_ns[2],
            p.rows_per_sec[2] / p.rows_per_sec[0],
        ));
    }
    let mut field_points = String::new();
    for f in fields {
        if !field_points.is_empty() {
            field_points.push_str(",\n");
        }
        field_points.push_str(&format!(
            "    {{\n      \"field_bytes\": {},\n      \
             \"eval_ns\": {{ \"interp\": {:.1}, \"vm\": {:.1}, \"fused\": {:.1} }},\n      \
             \"scan_kernel_ns\": {{ \"swar\": {:.1}, \"scalar\": {:.1} }},\n      \
             \"swar_speedup\": {:.2}\n    }}",
            f.len,
            f.eval_ns[0],
            f.eval_ns[1],
            f.eval_ns[2],
            f.swar_ns,
            f.scalar_ns,
            f.scalar_ns / f.swar_ns,
        ));
    }
    let json = format!(
        "{{\n  \"rows\": {rows},\n  \"sweep\": [\n{points}\n  ],\n  \
         \"field_len_sweep\": [\n{field_points}\n  ],\n  \"metrics\": {}\n}}\n",
        snapshot.to_json()
    );
    // Anchor the artifact at the workspace root regardless of the cwd
    // cargo hands the bench binary.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fig3.json");
    std::fs::write(out, &json).expect("write BENCH_fig3.json");
    println!("  machine-readable artifact → BENCH_fig3.json");
}

struct SweepPoint {
    pct: usize,
    distinct: usize,
    pattern_evals: usize,
    /// Indexed like [`TIERS`]: interp, vm, fused.
    rows_per_sec: [f64; 3],
    eval_ns: [f64; 3],
}

struct FieldPoint {
    len: usize,
    /// Indexed like [`TIERS`]: interp, vm, fused.
    eval_ns: [f64; 3],
    swar_ns: f64,
    scalar_ns: f64,
}

fn bench_field_len_sweep() -> Vec<FieldPoint> {
    let mut out = Vec::new();
    for &len in &[8usize, 64, 512] {
        let mut eval_ns = [0.0f64; 3];
        for (i, &tier) in TIERS.iter().enumerate() {
            eval_ns[i] = long_field_eval_ns(len, tier);
        }
        let (swar_ns, scalar_ns) = scan_kernel_ns(len);
        println!(
            "── fig3 field-length artifact: {len:>3}-byte `\\D{{1,}}` field ──\n  \
             per-field eval : {:>7.1} ns interp / {:>6.1} ns vm / {:>6.1} ns fused\n  \
             raw scan kernel: {swar_ns:>7.1} ns swar vs {scalar_ns:>6.1} ns scalar ({:.2}×)",
            eval_ns[0],
            eval_ns[1],
            eval_ns[2],
            scalar_ns / swar_ns,
        );
        out.push(FieldPoint {
            len,
            eval_ns,
            swar_ns,
            scalar_ns,
        });
    }
    out
}

fn bench_distinct_ratio_sweep(c: &mut Criterion) {
    const ROWS: usize = 20_000;
    let mut sweep = Vec::new();
    let mut g = c.benchmark_group("fig3_distinct_ratio");
    g.throughput(Throughput::Elements(ROWS as u64));
    for &pct in &[1usize, 10, 50] {
        let ratio = pct as f64 / 100.0;
        let table = distinct_ratio_table(ROWS, ratio);
        let rules = sweep_rules();
        // Artifact: the memoization bound in action — pattern evaluations
        // per ingest stay at (tuples × distinct), not (tuples × rows) —
        // plus the per-distinct cost itself across all three tiers.
        let values = distinct_lhs(ROWS, ratio);
        let mut eval_ns = [0.0f64; 3];
        let mut rows_per_sec = [0.0f64; 3];
        let mut evals = [0usize; 3];
        for (i, &tier) in TIERS.iter().enumerate() {
            eval_ns[i] = eval_ns_per_distinct(&values, tier);
            let (rate, n) = ingest_rate(&table, &rules, tier);
            rows_per_sec[i] = rate;
            evals[i] = n;
        }
        assert!(
            evals[1] == evals[0] && evals[2] == evals[0],
            "execution tier must not change the eval count"
        );
        println!(
            "── fig3 sweep artifact: {pct}% distinct → {} pattern evals for {ROWS} rows ──",
            evals[0]
        );
        println!(
            "  per-distinct eval: {:>7.1} ns interp / {:>6.1} ns vm / {:>6.1} ns fused \
             (fused {:.2}× over vm, {:.2}× over interp)",
            eval_ns[0],
            eval_ns[1],
            eval_ns[2],
            eval_ns[1] / eval_ns[2],
            eval_ns[0] / eval_ns[2],
        );
        println!(
            "  full ingest      : {:>7.0} rows/s interp / {:>7.0} rows/s vm / \
             {:>7.0} rows/s fused ({:.2}×)",
            rows_per_sec[0],
            rows_per_sec[1],
            rows_per_sec[2],
            rows_per_sec[2] / rows_per_sec[0],
        );
        sweep.push(SweepPoint {
            pct,
            distinct: values.len(),
            pattern_evals: evals[0],
            rows_per_sec,
            eval_ns,
        });
        g.bench_with_input(BenchmarkId::new("profile", pct), &table, |b, t| {
            b.iter(|| TableProfile::profile(black_box(t)));
        });
        g.bench_with_input(
            BenchmarkId::new("stream_ingest", pct),
            &(&table, &rules),
            |b, (t, rules)| {
                b.iter(|| {
                    let mut engine = StreamEngine::new(t.schema().clone(), rules.to_vec());
                    engine.replay_table(t).expect("schema matches");
                    black_box(engine.ledger().live_count())
                });
            },
        );
        // The interpreter baseline on the identical workload — the
        // criterion-tracked twin of the artifact's rows/s figures.
        g.bench_with_input(
            BenchmarkId::new("stream_ingest_interp", pct),
            &(&table, &rules),
            |b, (t, rules)| {
                b.iter(|| {
                    let config = StreamConfig {
                        pattern_engine: PatternEngine::Interp,
                        ..StreamConfig::default()
                    };
                    let mut engine =
                        StreamEngine::with_config(t.schema().clone(), rules.to_vec(), config);
                    engine.replay_table(t).expect("schema matches");
                    black_box(engine.ledger().live_count())
                });
            },
        );
    }
    g.finish();
    let fields = bench_field_len_sweep();
    write_fig3_json(ROWS, &sweep, &fields);
}

fn bench(c: &mut Criterion) {
    let small = phone::generate(&anmat_bench::gen(200, 0xF3));
    let profile = TableProfile::profile(&small.table);
    println!("{}", report::profiling_view(&small.table, &profile));

    let mut g = c.benchmark_group("fig3_profiling");
    for &rows in &[1_000usize, 10_000, 50_000] {
        let phones = phone::generate(&anmat_bench::gen(rows, 1));
        let namesd = names::generate(&anmat_bench::gen(rows, 2));
        let zips = zipcity::generate(&anmat_bench::gen(rows, 3), zipcity::ZipTarget::City);
        g.throughput(Throughput::Elements(rows as u64));
        g.bench_with_input(BenchmarkId::new("phone", rows), &phones, |b, d| {
            b.iter(|| TableProfile::profile(black_box(&d.table)));
        });
        g.bench_with_input(BenchmarkId::new("names", rows), &namesd, |b, d| {
            b.iter(|| TableProfile::profile(black_box(&d.table)));
        });
        g.bench_with_input(BenchmarkId::new("zip", rows), &zips, |b, d| {
            b.iter(|| TableProfile::profile(black_box(&d.table)));
        });
    }
    g.finish();
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    bench_distinct_ratio_sweep(&mut c);
    c.final_summary();
}
