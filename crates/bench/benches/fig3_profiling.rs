//! E9 — Figure 3: the profiling view.
//!
//! Prints the `pattern::position, frequency` listing for each synthetic
//! dataset and measures profiling throughput.
//!
//! Also sweeps the *distinct-value ratio* (1%, 10%, 50% distinct values
//! at fixed row count): with dictionary-encoded interning, per-row work
//! in profiling and streaming detection collapses onto per-distinct-value
//! work, so throughput should rise super-linearly as the ratio drops.
//! The seed (pre-interning) code paid string hashing and pattern
//! matching per row at every ratio — this sweep is where that win shows
//! up in the bench trajectory.

use anmat_bench::criterion;
use anmat_core::{report, PatternTuple, Pfd};
use anmat_datagen::{names, phone, zipcity};
use anmat_obs as obs;
use anmat_pattern::{match_pattern, CompiledConstrained, CompiledPattern, ConstrainedPattern};
use anmat_stream::{StreamConfig, StreamEngine};
use anmat_table::{Schema, Table, TableProfile};
use criterion::{black_box, BenchmarkId, Criterion, Throughput};
use std::time::Instant;

/// A zip→city style table with exactly `rows * ratio` distinct LHS
/// values, shuffled deterministically. The city is a function of the
/// zip's 3-digit prefix, so the sweep rules' blocks stay consistent and
/// the measurement isolates ingest + matching cost (interning, memo
/// probes, block placement) rather than violation-ledger churn.
fn distinct_ratio_table(rows: usize, ratio: f64) -> Table {
    let distinct = ((rows as f64 * ratio) as usize).max(1);
    let schema = Schema::new(["zip", "city"]).expect("static schema");
    let mut t = Table::empty(schema);
    for r in 0..rows {
        // Multiplicative stepping spreads the distinct values over the
        // row order without RNG (deterministic across runs).
        let k = (r * 7 + r / distinct) % distinct;
        let zip = format!("9{k:04}");
        let city = format!("City {}", k / 100);
        t.push_row(vec![zip.into(), city.into()]).expect("arity");
    }
    t
}

fn sweep_rules() -> Vec<Pfd> {
    vec![Pfd::new(
        "Zip",
        "zip",
        "city",
        vec![
            // Matches zips 90000–90009, whose city is always "City 0".
            PatternTuple::constant(
                ConstrainedPattern::unconstrained("9000\\D".parse().expect("pattern")),
                "City 0",
            ),
            // Blocks on the 3-digit prefix, which determines the city by
            // construction.
            PatternTuple::variable("[\\D{3}]\\D{2}".parse::<ConstrainedPattern>().expect("q")),
        ],
    )]
}

/// The distinct LHS values a `distinct_ratio_table` contains, in first-
/// sighting order — the population the per-distinct eval measurement
/// runs over.
fn distinct_lhs(rows: usize, ratio: f64) -> Vec<String> {
    let distinct = ((rows as f64 * ratio) as usize).max(1);
    (0..distinct).map(|k| format!("9{k:04}")).collect()
}

/// ns per distinct value for the per-distinct work the memoized engines
/// actually do once per new value: one constant-pattern match plus one
/// blocking-key derivation. `compiled` selects the bytecode VM or the
/// AST interpreter — the ratio of the two figures is the tentpole's
/// headline number.
fn eval_ns_per_distinct(values: &[String], compiled: bool) -> f64 {
    let pattern = "9000\\D".parse().expect("pattern");
    let keyer: ConstrainedPattern = "[\\D{3}]\\D{2}".parse().expect("q");
    // Enough repetitions that the fast mode still accumulates a
    // wall-clock signal well above timer noise.
    let reps = (500_000 / values.len()).max(1);
    let total = (reps * values.len()) as f64;
    if compiled {
        let cp = CompiledPattern::compile(&pattern);
        let cq = CompiledConstrained::compile(&keyer);
        let mut key_buf = String::new();
        let start = Instant::now();
        for _ in 0..reps {
            for v in values {
                black_box(cp.matches(v));
                black_box(cq.key_into(v, &mut key_buf));
            }
        }
        start.elapsed().as_secs_f64() * 1e9 / total
    } else {
        let start = Instant::now();
        for _ in 0..reps {
            for v in values {
                black_box(match_pattern(&pattern, v));
                black_box(keyer.key(v));
            }
        }
        start.elapsed().as_secs_f64() * 1e9 / total
    }
}

/// One timed full replay; returns (rows/s, pattern_evals).
fn ingest_rate(table: &Table, rules: &[Pfd], use_compiled: bool) -> (f64, usize) {
    let config = StreamConfig {
        use_compiled,
        ..StreamConfig::default()
    };
    let mut engine = StreamEngine::with_config(table.schema().clone(), rules.to_vec(), config);
    let start = Instant::now();
    engine.replay_table(table).expect("schema matches");
    let rate = table.row_count() as f64 / start.elapsed().as_secs_f64();
    black_box(engine.ledger().live_count());
    (rate, engine.pattern_evals())
}

/// The machine-readable artifact (mirrors `BENCH_fig6.json`): for each
/// distinct-ratio point, interpreted-vs-compiled ingest rows/s and
/// per-distinct eval ns, plus the end-of-run metrics registry of a
/// compiled replay (which carries `pattern.vm_evals` /
/// `pattern.interp_evals` / `pattern.compile_ns`).
fn write_fig3_json(rows: usize, sweep: &[SweepPoint]) {
    obs::Recorder::enable();
    let table = distinct_ratio_table(rows, 0.10);
    let rules = sweep_rules();
    let mut engine = StreamEngine::new(table.schema().clone(), rules);
    engine.replay_table(&table).expect("schema matches");
    engine.publish_metrics();
    let snapshot = obs::MetricsSnapshot::capture();
    obs::Recorder::disable();
    let mut points = String::new();
    for p in sweep {
        if !points.is_empty() {
            points.push_str(",\n");
        }
        points.push_str(&format!(
            "    {{\n      \"pct_distinct\": {},\n      \"distinct\": {},\n      \
             \"pattern_evals\": {},\n      \"interpreted\": {{\n        \
             \"ingest_rows_per_sec\": {:.0},\n        \"eval_ns_per_distinct\": {:.1}\n      \
             }},\n      \"compiled\": {{\n        \"ingest_rows_per_sec\": {:.0},\n        \
             \"eval_ns_per_distinct\": {:.1}\n      }},\n      \
             \"eval_speedup\": {:.2},\n      \"ingest_speedup\": {:.2}\n    }}",
            p.pct,
            p.distinct,
            p.pattern_evals,
            p.interp_rows_per_sec,
            p.interp_eval_ns,
            p.compiled_rows_per_sec,
            p.compiled_eval_ns,
            p.interp_eval_ns / p.compiled_eval_ns,
            p.compiled_rows_per_sec / p.interp_rows_per_sec,
        ));
    }
    let json = format!(
        "{{\n  \"rows\": {rows},\n  \"sweep\": [\n{points}\n  ],\n  \"metrics\": {}\n}}\n",
        snapshot.to_json()
    );
    // Anchor the artifact at the workspace root regardless of the cwd
    // cargo hands the bench binary.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fig3.json");
    std::fs::write(out, &json).expect("write BENCH_fig3.json");
    println!("  machine-readable artifact → BENCH_fig3.json");
}

struct SweepPoint {
    pct: usize,
    distinct: usize,
    pattern_evals: usize,
    interp_rows_per_sec: f64,
    compiled_rows_per_sec: f64,
    interp_eval_ns: f64,
    compiled_eval_ns: f64,
}

fn bench_distinct_ratio_sweep(c: &mut Criterion) {
    const ROWS: usize = 20_000;
    let mut sweep = Vec::new();
    let mut g = c.benchmark_group("fig3_distinct_ratio");
    g.throughput(Throughput::Elements(ROWS as u64));
    for &pct in &[1usize, 10, 50] {
        let ratio = pct as f64 / 100.0;
        let table = distinct_ratio_table(ROWS, ratio);
        let rules = sweep_rules();
        // Artifact: the memoization bound in action — pattern evaluations
        // per ingest stay at (tuples × distinct), not (tuples × rows) —
        // plus the per-distinct cost itself, interpreted vs compiled.
        let values = distinct_lhs(ROWS, ratio);
        let interp_eval_ns = eval_ns_per_distinct(&values, false);
        let compiled_eval_ns = eval_ns_per_distinct(&values, true);
        let (interp_rate, interp_evals) = ingest_rate(&table, &rules, false);
        let (compiled_rate, compiled_evals) = ingest_rate(&table, &rules, true);
        assert_eq!(
            compiled_evals, interp_evals,
            "compiled mode must not change the eval count"
        );
        println!(
            "── fig3 sweep artifact: {pct}% distinct → {interp_evals} pattern evals for \
             {ROWS} rows ──"
        );
        println!(
            "  per-distinct eval: {interp_eval_ns:>7.1} ns interpreted vs \
             {compiled_eval_ns:>7.1} ns compiled ({:.2}×)",
            interp_eval_ns / compiled_eval_ns
        );
        println!(
            "  full ingest      : {interp_rate:>7.0} rows/s interpreted vs \
             {compiled_rate:>7.0} rows/s compiled ({:.2}×)",
            compiled_rate / interp_rate
        );
        sweep.push(SweepPoint {
            pct,
            distinct: values.len(),
            pattern_evals: interp_evals,
            interp_rows_per_sec: interp_rate,
            compiled_rows_per_sec: compiled_rate,
            interp_eval_ns,
            compiled_eval_ns,
        });
        g.bench_with_input(BenchmarkId::new("profile", pct), &table, |b, t| {
            b.iter(|| TableProfile::profile(black_box(t)));
        });
        g.bench_with_input(
            BenchmarkId::new("stream_ingest", pct),
            &(&table, &rules),
            |b, (t, rules)| {
                b.iter(|| {
                    let mut engine = StreamEngine::new(t.schema().clone(), rules.to_vec());
                    engine.replay_table(t).expect("schema matches");
                    black_box(engine.ledger().live_count())
                });
            },
        );
        // The interpreter baseline on the identical workload — the
        // criterion-tracked twin of the artifact's rows/s pair.
        g.bench_with_input(
            BenchmarkId::new("stream_ingest_interp", pct),
            &(&table, &rules),
            |b, (t, rules)| {
                b.iter(|| {
                    let config = StreamConfig {
                        use_compiled: false,
                        ..StreamConfig::default()
                    };
                    let mut engine =
                        StreamEngine::with_config(t.schema().clone(), rules.to_vec(), config);
                    engine.replay_table(t).expect("schema matches");
                    black_box(engine.ledger().live_count())
                });
            },
        );
    }
    g.finish();
    write_fig3_json(ROWS, &sweep);
}

fn bench(c: &mut Criterion) {
    let small = phone::generate(&anmat_bench::gen(200, 0xF3));
    let profile = TableProfile::profile(&small.table);
    println!("{}", report::profiling_view(&small.table, &profile));

    let mut g = c.benchmark_group("fig3_profiling");
    for &rows in &[1_000usize, 10_000, 50_000] {
        let phones = phone::generate(&anmat_bench::gen(rows, 1));
        let namesd = names::generate(&anmat_bench::gen(rows, 2));
        let zips = zipcity::generate(&anmat_bench::gen(rows, 3), zipcity::ZipTarget::City);
        g.throughput(Throughput::Elements(rows as u64));
        g.bench_with_input(BenchmarkId::new("phone", rows), &phones, |b, d| {
            b.iter(|| TableProfile::profile(black_box(&d.table)));
        });
        g.bench_with_input(BenchmarkId::new("names", rows), &namesd, |b, d| {
            b.iter(|| TableProfile::profile(black_box(&d.table)));
        });
        g.bench_with_input(BenchmarkId::new("zip", rows), &zips, |b, d| {
            b.iter(|| TableProfile::profile(black_box(&d.table)));
        });
    }
    g.finish();
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    bench_distinct_ratio_sweep(&mut c);
    c.final_summary();
}
