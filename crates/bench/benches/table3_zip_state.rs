//! E6 — Table 3, block D5: ZIP → STATE.
//!
//! Expect `60\D{3} → IL` / `95\D{3} → CA`-shaped tableaux and the paper's
//! case-flip (`60603 | lL`) and wrong-constant (`95603 | MI`) errors.

use anmat_bench::{criterion, experiment_config, print_table3_block};
use anmat_core::{detect_all, discover};
use anmat_datagen::zipcity;
use criterion::{black_box, Criterion};

fn bench(c: &mut Criterion) {
    let data = zipcity::generate(&anmat_bench::gen(10_000, 0x5A), zipcity::ZipTarget::State);
    let cfg = experiment_config();
    let pfds: Vec<_> = discover(&data.table, &cfg)
        .into_iter()
        .filter(|p| p.lhs_attr == "zip" && p.rhs_attr == "state")
        .collect();
    print_table3_block("D5 ZIP → STATE", &data, &pfds);

    let mut g = c.benchmark_group("table3_zip_state");
    g.bench_function("discover_10k", |b| {
        b.iter(|| discover(black_box(&data.table), &cfg));
    });
    g.bench_function("detect_10k", |b| {
        b.iter(|| detect_all(black_box(&data.table), &pfds));
    });
    g.finish();
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
