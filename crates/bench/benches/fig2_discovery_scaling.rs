//! E8 — Figure 2: the discovery algorithm, measured.
//!
//! The paper gives pseudo-code, not runtimes; the reproducible artifact is
//! the scaling behaviour: discovery time vs rows (token and n-gram/prefix
//! extraction modes) should grow near-linearly thanks to the inverted
//! list.

use anmat_bench::{criterion, experiment_config};
use anmat_core::discover;
use anmat_datagen::{employee, names};
use criterion::{black_box, BenchmarkId, Criterion, Throughput};

fn bench(c: &mut Criterion) {
    println!("── Figure 2: discovery scaling (rows vs wall time, see Criterion output) ──");
    let cfg = experiment_config();
    let mut g = c.benchmark_group("fig2_discovery_scaling");
    for &rows in &[1_000usize, 5_000, 20_000] {
        // Token mode: multi-token name column.
        let tokens = names::generate(&anmat_bench::gen(rows, 0xF2));
        g.throughput(Throughput::Elements(rows as u64));
        g.bench_with_input(BenchmarkId::new("tokens", rows), &tokens, |b, d| {
            b.iter(|| discover(black_box(&d.table), &cfg));
        });
        // N-gram/prefix mode: single-token employee ids.
        let codes = employee::generate(&anmat_bench::gen(rows, 0xF3));
        g.bench_with_input(BenchmarkId::new("ngrams", rows), &codes, |b, d| {
            b.iter(|| discover(black_box(&d.table), &cfg));
        });
    }
    g.finish();

    // Parallel vs sequential on the widest table.
    let data = employee::generate(&anmat_bench::gen(10_000, 0xF4));
    let mut g = c.benchmark_group("fig2_parallel");
    g.bench_function("sequential_10k", |b| {
        b.iter(|| discover(black_box(&data.table), &cfg));
    });
    let par = anmat_core::DiscoveryConfig {
        parallel: true,
        ..cfg.clone()
    };
    g.bench_function("parallel_10k", |b| {
        b.iter(|| discover(black_box(&data.table), &par));
    });
    g.finish();
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
