//! E14 — streaming ingest throughput: `StreamEngine` vs repeated batch
//! `detect_all`.
//!
//! The claim under test: incremental maintenance makes per-row cost
//! independent of accumulated table size (constant-PFD path exactly,
//! variable path `O(affected block)`), while the naive "re-run batch
//! detection after every append" strategy degrades quadratically. The
//! artifact prints per-row ingest cost at two prefix sizes so the
//! flatness of the streaming line is visible in one run.

use anmat_bench::{criterion, experiment_config};
use anmat_core::{detect_all, discover, Pfd};
use anmat_datagen::{zipcity, Dataset};
use anmat_stream::StreamEngine;
use anmat_table::{Table, Value, ValueId};
use criterion::{black_box, BenchmarkId, Criterion, Throughput};
use std::time::Instant;

fn dataset(rows: usize) -> (Dataset, Vec<Pfd>) {
    let data = zipcity::generate(&anmat_bench::gen(rows, 0xF6), zipcity::ZipTarget::City);
    let rules = discover(&data.table, &experiment_config());
    (data, rules)
}

fn rows_of(table: &Table) -> Vec<Vec<Value>> {
    (0..table.row_count()).map(|r| table.row(r)).collect()
}

fn id_rows_of(table: &Table) -> Vec<Vec<ValueId>> {
    (0..table.row_count()).map(|r| table.row_ids(r)).collect()
}

/// Per-row ingest cost with `prefix` rows already accumulated — the
/// number that must *not* grow with `prefix` on the incremental path.
/// Shown for the full discovered rule set and for its constant-PFD
/// subset (the path with a strict size-independence guarantee).
fn marginal_cost_artifact(data: &Dataset, rules: &[Pfd]) {
    println!("── E14 artifact: marginal per-row cost vs accumulated size ──");
    let constant_rules: Vec<Pfd> = rules
        .iter()
        .filter(|p| p.kind() == anmat_core::PfdKind::Constant)
        .cloned()
        .collect();
    let rows = rows_of(&data.table);
    for (label, rules) in [("all rules", rules), ("constant only", &constant_rules[..])] {
        for &prefix in &[10_000usize, 100_000] {
            let mut engine = StreamEngine::new(data.table.schema().clone(), rules.to_vec());
            for row in rows.iter().take(prefix - 1_000).cloned() {
                engine.push_row(row).expect("schema matches");
            }
            let start = Instant::now();
            for row in rows.iter().skip(prefix - 1_000).take(1_000).cloned() {
                engine.push_row(row).expect("schema matches");
            }
            let per_row = start.elapsed().as_secs_f64() * 1e9 / 1_000.0;
            println!(
                "  stream ({label:>13}): next 1k rows after {prefix:>6} accumulated: \
                 {per_row:>8.0} ns/row ({} live violations)",
                engine.ledger().live_count()
            );
        }
    }
}

fn bench(c: &mut Criterion) {
    // Discovery over 100k rows dominates setup; do it once and share it
    // between the artifact and the 100k benchmark cases.
    let big = dataset(100_000);
    marginal_cost_artifact(&big.0, &big.1);
    let small = dataset(10_000);
    for (rows, (data, rules)) in [(10_000usize, &small), (100_000, &big)] {
        let prebuilt = rows_of(&data.table);
        let mut g = c.benchmark_group("fig6_streaming");
        g.throughput(Throughput::Elements(rows as u64));
        g.bench_with_input(
            BenchmarkId::new("stream_ingest", rows),
            &prebuilt,
            |b, prebuilt| {
                b.iter(|| {
                    let mut engine = StreamEngine::new(data.table.schema().clone(), rules.to_vec());
                    for row in prebuilt.iter().cloned() {
                        engine.push_row(row).expect("schema matches");
                    }
                    black_box(engine.ledger().live_count())
                });
            },
        );
        // The clone-free path: rows arrive as interned ids (what
        // `replay_table` and the CLI stream command use).
        let prebuilt_ids = id_rows_of(&data.table);
        g.bench_with_input(
            BenchmarkId::new("stream_ingest_ids", rows),
            &prebuilt_ids,
            |b, prebuilt_ids| {
                b.iter(|| {
                    let mut engine = StreamEngine::new(data.table.schema().clone(), rules.to_vec());
                    for row in prebuilt_ids.iter().cloned() {
                        engine.push_id_row(row).expect("schema matches");
                    }
                    black_box(engine.ledger().live_count())
                });
            },
        );
        // The naive alternative: re-run batch detection after each of 100
        // appends of rows/100 (full per-append batch re-detection at 1:1
        // row granularity is too slow to even measure at 100k).
        let append_chunk = rows / 100;
        g.bench_with_input(
            BenchmarkId::new("repeated_batch_detect", rows),
            &prebuilt,
            |b, prebuilt| {
                b.iter(|| {
                    let mut table = Table::empty(data.table.schema().clone());
                    let mut total = 0usize;
                    for (i, row) in prebuilt.iter().cloned().enumerate() {
                        table.push_row(row).expect("schema matches");
                        if (i + 1) % append_chunk == 0 {
                            total = detect_all(black_box(&table), rules).len();
                        }
                    }
                    black_box(total)
                });
            },
        );
        g.finish();
    }
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
