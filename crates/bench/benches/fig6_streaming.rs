//! E14 — streaming ingest throughput: `StreamEngine` vs repeated batch
//! `detect_all`, for pure appends *and* mutation churn.
//!
//! The claim under test: incremental maintenance makes per-op cost
//! independent of accumulated table size (constant-PFD path exactly,
//! variable path `O(affected block)`), while the naive "re-run batch
//! detection after every append" strategy degrades quadratically. The
//! artifact prints per-op cost at two prefix sizes so the flatness of
//! the streaming line is visible in one run — for inserts and, since
//! the delta pipeline, for deletes/updates too (`O(block)`, not
//! `O(table)`). The `stream_churn` benchmark measures a 90% insert /
//! 10% delete+update mix so the recorded rows/s trajectory covers
//! mutation, not just append.

use anmat_bench::{criterion, experiment_config};
use anmat_core::{detect_all, discover, Pfd};
use anmat_datagen::{zipcity, Dataset};
use anmat_obs as obs;
use anmat_stream::{ShardedEngine, StreamConfig, StreamEngine};
use anmat_table::{RowOp, Table, Value, ValueId};
use criterion::{black_box, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn dataset(rows: usize) -> (Dataset, Vec<Pfd>) {
    let data = zipcity::generate(&anmat_bench::gen(rows, 0xF6), zipcity::ZipTarget::City);
    let rules = discover(&data.table, &experiment_config());
    (data, rules)
}

fn rows_of(table: &Table) -> Vec<Vec<Value>> {
    (0..table.row_count()).map(|r| table.row(r)).collect()
}

fn id_rows_of(table: &Table) -> Vec<Vec<ValueId>> {
    (0..table.row_count()).map(|r| table.row_ids(r)).collect()
}

/// Per-row ingest cost with `prefix` rows already accumulated — the
/// number that must *not* grow with `prefix` on the incremental path.
/// Shown for the full discovered rule set and for its constant-PFD
/// subset (the path with a strict size-independence guarantee).
fn marginal_cost_artifact(data: &Dataset, rules: &[Pfd]) {
    println!("── E14 artifact: marginal per-row cost vs accumulated size ──");
    let constant_rules: Vec<Pfd> = rules
        .iter()
        .filter(|p| p.kind() == anmat_core::PfdKind::Constant)
        .cloned()
        .collect();
    let rows = rows_of(&data.table);
    for (label, rules) in [("all rules", rules), ("constant only", &constant_rules[..])] {
        for &prefix in &[10_000usize, 100_000] {
            let mut engine = StreamEngine::new(data.table.schema().clone(), rules.to_vec());
            for row in rows.iter().take(prefix - 1_000).cloned() {
                engine.push_row(row).expect("schema matches");
            }
            let start = Instant::now();
            for row in rows.iter().skip(prefix - 1_000).take(1_000).cloned() {
                engine.push_row(row).expect("schema matches");
            }
            let per_row = start.elapsed().as_secs_f64() * 1e9 / 1_000.0;
            println!(
                "  stream ({label:>13}): next 1k rows after {prefix:>6} accumulated: \
                 {per_row:>8.0} ns/row ({} live violations)",
                engine.ledger().live_count()
            );
        }
    }
    // Mutation cost must be `O(affected block)`, not `O(table)`: time 1k
    // delete+update ops with 10k vs 100k rows accumulated — the two
    // numbers must be of the same order for the claim to hold.
    for &prefix in &[10_000usize, 100_000] {
        let mut engine = StreamEngine::new(data.table.schema().clone(), rules.to_vec());
        for row in rows.iter().take(prefix).cloned() {
            engine.push_row(row).expect("schema matches");
        }
        let start = Instant::now();
        for i in 0..1_000 {
            // Spread mutations across the accumulated slots; alternate
            // delete and in-place update (donor cells from a live row).
            let target = (i * 97) % (prefix / 2);
            if i % 2 == 0 {
                // Deletes address the lower half of the slots …
                engine.delete_row(target).expect("target is live");
            } else {
                // … updates the upper half, so the two never collide.
                let slot = target + prefix / 2;
                let donor = engine.table().row(prefix / 2);
                engine.update_row(slot, donor).expect("target is live");
            }
        }
        let per_op = start.elapsed().as_secs_f64() * 1e9 / 1_000.0;
        println!(
            "  churn  ({:>13}): 1k delete/update ops at {prefix:>6} accumulated: \
             {per_op:>8.0} ns/op ({} live violations)",
            "all rules",
            engine.ledger().live_count()
        );
    }
}

/// 90% insert / 10% delete+update op mix over the dataset — the churn
/// workload the delta pipeline opened. Throughput is reported in
/// ops/s (criterion `Elements`), directly comparable with the
/// append-only `stream_ingest` rows/s numbers.
fn churn_ops(data: &Dataset) -> Vec<RowOp> {
    let rows = rows_of(&data.table);
    let mut ops = Vec::with_capacity(rows.len() + rows.len() / 5);
    for (r, row) in rows.iter().enumerate() {
        ops.push(RowOp::Insert(row.clone()));
        // Every 10th arrival: delete an old slot; every 10th (offset 5):
        // rewrite one in place with a donor row's cells.
        if r % 10 == 9 {
            ops.push(RowOp::Delete(r - 4));
        } else if r % 10 == 4 && r > 10 {
            ops.push(RowOp::Update(r - 3, rows[r - 1].clone()));
        }
    }
    ops
}

/// Sustained-churn memory sweep: a 50% delete workload (every op is a
/// coin flip between inserting the next dataset row and deleting a
/// random live one) run for `total_ops` ops in 256-op batches, with and
/// without `compact_ratio` 0.3. The artifact prints peak total slots vs
/// peak live rows, the worst observed slots/live ratio at a batch
/// boundary, and the final table footprint — the bounded-growth claim:
/// with the ratio trigger, slots stay within 2× live for the whole run
/// while the uncompacted twin's slot count grows with *history*.
fn churn_memory_artifact(data: &Dataset, rules: &[Pfd], total_ops: usize) {
    println!("── E14 artifact: sustained-churn memory (50% delete mix, {total_ops} ops) ──");
    let rows = rows_of(&data.table);
    for ratio in [0.0f64, 0.3] {
        let config = StreamConfig {
            compact_ratio: ratio,
            ..StreamConfig::default()
        };
        let mut engine =
            StreamEngine::with_config(data.table.schema().clone(), rules.to_vec(), config);
        let mut rng = StdRng::seed_from_u64(0x3AC7);
        let mut live: Vec<usize> = Vec::new();
        let (mut peak_slots, mut peak_live) = (0usize, 0usize);
        let mut worst_ratio = 1.0f64;
        let mut done = 0usize;
        let mut src = 0usize;
        let start = Instant::now();
        while done < total_ops {
            let mut slots = engine.row_count();
            let epoch = engine.epoch();
            let batch = 256.min(total_ops - done);
            let mut ops = Vec::with_capacity(batch);
            for _ in 0..batch {
                if !live.is_empty() && rng.random_bool(0.5) {
                    let pick = rng.random_range(0..live.len());
                    ops.push(RowOp::Delete(live.swap_remove(pick)));
                } else {
                    ops.push(RowOp::Insert(rows[src % rows.len()].clone()));
                    src += 1;
                    live.push(slots);
                    slots += 1;
                }
            }
            done += ops.len();
            engine.apply(ops).expect("ops are valid");
            if engine.epoch() != epoch {
                // Compaction renumbered the slots: refresh the id cache.
                live = engine.table().iter_live().collect();
            }
            // `slots` is the pre-compaction count for this batch — the
            // honest peak even when the boundary check then compacts.
            peak_slots = peak_slots.max(slots);
            peak_live = peak_live.max(engine.live_rows());
            worst_ratio =
                worst_ratio.max(engine.row_count() as f64 / engine.live_rows().max(1) as f64);
        }
        let secs = start.elapsed().as_secs_f64();
        let footprint = engine.table().mem_footprint();
        let stats = engine.compaction_stats();
        println!(
            "  compact-ratio {:>4}: peak {peak_slots:>6} slot(s) vs {peak_live:>6} peak live \
             (worst slots/live {worst_ratio:.2}×); {} epoch(s), {} slot(s) reclaimed; final \
             {} slot(s) / {} live, {} B table; {:.0} ops/s",
            if ratio > 0.0 {
                format!("{ratio}")
            } else {
                "off".to_string()
            },
            stats.epochs,
            stats.reclaimed_slots,
            footprint.total_slots,
            footprint.live_slots,
            footprint.bytes,
            total_ops as f64 / secs
        );
    }
}

/// Shard-count sweep on the 90/10 churn workload: ops/s for the
/// single-threaded engine and for `ShardedEngine` at 1/2/4/8 workers.
/// Rule processing is the parallel fraction, so the curve is bounded by
/// the rule count *and* by the host's cores — both are printed so the
/// artifact is interpretable wherever it was produced (a single-core
/// container timeslices the workers and shows a flat line; the speedup
/// materializes on multi-core hosts).
fn shard_sweep_artifact(data: &Dataset, rules: &[Pfd], rows: usize) {
    let ops = churn_ops(data);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    println!(
        "── E14 artifact: shard sweep (90/10 churn, {rows} rows, {} ops; \
         {} rule(s) shardable, {cores} core(s) available) ──",
        ops.len(),
        rules.len()
    );
    let ops_per_sec = |secs: f64| ops.len() as f64 / secs;
    let start = Instant::now();
    let mut engine = StreamEngine::new(data.table.schema().clone(), rules.to_vec());
    engine.apply(ops.iter().cloned()).expect("ops are valid");
    let single = ops_per_sec(start.elapsed().as_secs_f64());
    println!(
        "  single-threaded   : {single:>9.0} ops/s ({} live violations)",
        engine.ledger().live_count()
    );
    let mut one_shard = single;
    for shards in [1usize, 2, 4, 8] {
        let mut engine = ShardedEngine::new(data.table.schema().clone(), rules.to_vec(), shards);
        let start = Instant::now();
        engine.apply(ops.iter().cloned()).expect("ops are valid");
        let rate = ops_per_sec(start.elapsed().as_secs_f64());
        if shards == 1 {
            one_shard = rate;
        }
        println!(
            "  sharded ×{:<2}       : {rate:>9.0} ops/s ({:.2}× vs 1 shard, {} worker(s), \
             {} live violations)",
            shards,
            rate / one_shard,
            engine.shard_count(),
            engine.ledger().live_count()
        );
    }
}

/// Recorder-overhead check: the 90/10 churn workload with the metrics
/// recorder off vs on, interleaved best-of-3 so ambient load hits both
/// modes alike. The acceptance bound is 3% — reported here, asserted by
/// a human reading the artifact (a loaded CI box is allowed to flap).
/// Returns `(off_ops_per_sec, on_ops_per_sec, overhead_pct)`.
fn recorder_overhead_artifact(data: &Dataset, rules: &[Pfd]) -> (f64, f64, f64) {
    let ops = churn_ops(data);
    let run = || {
        let mut engine = StreamEngine::new(data.table.schema().clone(), rules.to_vec());
        let start = Instant::now();
        engine.apply(ops.iter().cloned()).expect("ops are valid");
        let secs = start.elapsed().as_secs_f64();
        black_box(engine.ledger().live_count());
        secs
    };
    run(); // warm the pool/caches outside the timed region
    let (mut best_off, mut best_on) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..3 {
        obs::Recorder::disable();
        best_off = best_off.min(run());
        obs::Recorder::enable();
        best_on = best_on.min(run());
    }
    obs::Recorder::disable();
    let off = ops.len() as f64 / best_off;
    let on = ops.len() as f64 / best_on;
    let overhead = (off - on) / off * 100.0;
    println!(
        "── E14 artifact: recorder overhead (90/10 churn, {} ops) ──",
        ops.len()
    );
    println!("  recorder off: {off:>9.0} ops/s");
    println!("  recorder on : {on:>9.0} ops/s ({overhead:+.2}% overhead; acceptance bound 3%)");
    (off, on, overhead)
}

/// The machine-readable artifact: ingest + churn throughput plus the
/// full end-of-run metrics registry, as one JSON document. The metrics
/// section is exactly what `anmat stream --metrics-out` writes, so
/// downstream tooling parses one schema for both producers.
fn write_fig6_json(data: &Dataset, rules: &[Pfd], churn: (f64, f64, f64)) {
    obs::Recorder::enable();
    let ids = id_rows_of(&data.table);
    let mut engine = StreamEngine::new(data.table.schema().clone(), rules.to_vec());
    let start = Instant::now();
    for row in ids.iter().cloned() {
        engine.push_id_row(row).expect("schema matches");
    }
    let ingest = ids.len() as f64 / start.elapsed().as_secs_f64();
    engine.publish_metrics();
    let snapshot = obs::MetricsSnapshot::capture();
    obs::Recorder::disable();
    let (off, on, overhead) = churn;
    let json = format!(
        "{{\n  \"rows\": {},\n  \"ingest_rows_per_sec\": {ingest:.0},\n  \
         \"churn_ops_per_sec\": {{\n    \"uninstrumented\": {off:.0},\n    \
         \"instrumented\": {on:.0},\n    \"overhead_pct\": {overhead:.3}\n  }},\n  \
         \"metrics\": {}\n}}\n",
        ids.len(),
        snapshot.to_json()
    );
    // Anchor the artifact at the workspace root regardless of the cwd
    // cargo hands the bench binary (it is the package dir, not the
    // workspace root).
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fig6.json");
    std::fs::write(out, &json).expect("write BENCH_fig6.json");
    println!(
        "  machine-readable artifact → BENCH_fig6.json ({ingest:.0} rows/s instrumented ingest)"
    );
}

fn bench(c: &mut Criterion) {
    // Discovery over 100k rows dominates setup; do it once and share it
    // between the artifact and the 100k benchmark cases.
    let big = dataset(100_000);
    marginal_cost_artifact(&big.0, &big.1);
    churn_memory_artifact(&big.0, &big.1, 100_000);
    let small = dataset(10_000);
    let churn_rates = recorder_overhead_artifact(&small.0, &small.1);
    write_fig6_json(&small.0, &small.1, churn_rates);
    shard_sweep_artifact(&small.0, &small.1, 10_000);
    shard_sweep_artifact(&big.0, &big.1, 100_000);
    for (rows, (data, rules)) in [(10_000usize, &small), (100_000, &big)] {
        let prebuilt = rows_of(&data.table);
        let mut g = c.benchmark_group("fig6_streaming");
        g.throughput(Throughput::Elements(rows as u64));
        g.bench_with_input(
            BenchmarkId::new("stream_ingest", rows),
            &prebuilt,
            |b, prebuilt| {
                b.iter(|| {
                    let mut engine = StreamEngine::new(data.table.schema().clone(), rules.to_vec());
                    for row in prebuilt.iter().cloned() {
                        engine.push_row(row).expect("schema matches");
                    }
                    black_box(engine.ledger().live_count())
                });
            },
        );
        // The clone-free path: rows arrive as interned ids (what
        // `replay_table` and the CLI stream command use).
        let prebuilt_ids = id_rows_of(&data.table);
        g.bench_with_input(
            BenchmarkId::new("stream_ingest_ids", rows),
            &prebuilt_ids,
            |b, prebuilt_ids| {
                b.iter(|| {
                    let mut engine = StreamEngine::new(data.table.schema().clone(), rules.to_vec());
                    for row in prebuilt_ids.iter().cloned() {
                        engine.push_id_row(row).expect("schema matches");
                    }
                    black_box(engine.ledger().live_count())
                });
            },
        );
        // The churn mix: 90% inserts, 10% deletes/updates, through the
        // delta pipeline's `apply`. Per-op cost is `O(block)` for the
        // mutations, so throughput must stay in the same regime as pure
        // append ingest.
        let ops = churn_ops(data);
        g.throughput(Throughput::Elements(ops.len() as u64));
        g.bench_with_input(BenchmarkId::new("stream_churn", rows), &ops, |b, ops| {
            b.iter(|| {
                let mut engine = StreamEngine::new(data.table.schema().clone(), rules.to_vec());
                engine.apply(ops.iter().cloned()).expect("ops are valid");
                black_box(engine.ledger().live_count())
            });
        });
        // The shard sweep on the same churn mix: scaling is bounded by
        // min(shards, rules, cores) — see the artifact header for the
        // host's figures.
        for shards in [1usize, 2, 4, 8] {
            g.bench_with_input(
                BenchmarkId::new("stream_churn_sharded", format!("{rows}r/{shards}s")),
                &ops,
                |b, ops| {
                    b.iter(|| {
                        let mut engine =
                            ShardedEngine::new(data.table.schema().clone(), rules.to_vec(), shards);
                        engine.apply(ops.iter().cloned()).expect("ops are valid");
                        black_box(engine.ledger().live_count())
                    });
                },
            );
        }
        g.throughput(Throughput::Elements(rows as u64));
        // The naive alternative: re-run batch detection after each of 100
        // appends of rows/100 (full per-append batch re-detection at 1:1
        // row granularity is too slow to even measure at 100k).
        let append_chunk = rows / 100;
        g.bench_with_input(
            BenchmarkId::new("repeated_batch_detect", rows),
            &prebuilt,
            |b, prebuilt| {
                b.iter(|| {
                    let mut table = Table::empty(data.table.schema().clone());
                    let mut total = 0usize;
                    for (i, row) in prebuilt.iter().cloned().enumerate() {
                        table.push_row(row).expect("schema matches");
                        if (i + 1) % append_chunk == 0 {
                            total = detect_all(black_box(&table), rules).len();
                        }
                    }
                    black_box(total)
                });
            },
        );
        g.finish();
    }
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
