//! E14 — streaming ingest throughput: `StreamEngine` vs repeated batch
//! `detect_all`, for pure appends *and* mutation churn.
//!
//! The claim under test: incremental maintenance makes per-op cost
//! independent of accumulated table size (constant-PFD path exactly,
//! variable path `O(affected block)`), while the naive "re-run batch
//! detection after every append" strategy degrades quadratically. The
//! artifact prints per-op cost at two prefix sizes so the flatness of
//! the streaming line is visible in one run — for inserts and, since
//! the delta pipeline, for deletes/updates too (`O(block)`, not
//! `O(table)`). The `stream_churn` benchmark measures a 90% insert /
//! 10% delete+update mix so the recorded rows/s trajectory covers
//! mutation, not just append.

use anmat_bench::{criterion, experiment_config};
use anmat_core::{detect_all, discover, Pfd};
use anmat_datagen::{zipcity, Dataset};
use anmat_obs as obs;
use anmat_stream::{ShardBy, ShardedEngine, StreamConfig, StreamEngine};
use anmat_table::{RowOp, Table, Value, ValueId};
use criterion::{black_box, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn dataset(rows: usize) -> (Dataset, Vec<Pfd>) {
    let data = zipcity::generate(&anmat_bench::gen(rows, 0xF6), zipcity::ZipTarget::City);
    let rules = discover(&data.table, &experiment_config());
    (data, rules)
}

fn rows_of(table: &Table) -> Vec<Vec<Value>> {
    (0..table.row_count()).map(|r| table.row(r)).collect()
}

fn id_rows_of(table: &Table) -> Vec<Vec<ValueId>> {
    (0..table.row_count()).map(|r| table.row_ids(r)).collect()
}

/// Per-row ingest cost with `prefix` rows already accumulated — the
/// number that must *not* grow with `prefix` on the incremental path.
/// Shown for the full discovered rule set and for its constant-PFD
/// subset (the path with a strict size-independence guarantee).
fn marginal_cost_artifact(data: &Dataset, rules: &[Pfd]) {
    println!("── E14 artifact: marginal per-row cost vs accumulated size ──");
    let constant_rules: Vec<Pfd> = rules
        .iter()
        .filter(|p| p.kind() == anmat_core::PfdKind::Constant)
        .cloned()
        .collect();
    let rows = rows_of(&data.table);
    for (label, rules) in [("all rules", rules), ("constant only", &constant_rules[..])] {
        for &prefix in &[10_000usize, 100_000] {
            let mut engine = StreamEngine::new(data.table.schema().clone(), rules.to_vec());
            for row in rows.iter().take(prefix - 1_000).cloned() {
                engine.push_row(row).expect("schema matches");
            }
            let start = Instant::now();
            for row in rows.iter().skip(prefix - 1_000).take(1_000).cloned() {
                engine.push_row(row).expect("schema matches");
            }
            let per_row = start.elapsed().as_secs_f64() * 1e9 / 1_000.0;
            println!(
                "  stream ({label:>13}): next 1k rows after {prefix:>6} accumulated: \
                 {per_row:>8.0} ns/row ({} live violations)",
                engine.ledger().live_count()
            );
        }
    }
    // Mutation cost must be `O(affected block)`, not `O(table)`: time 1k
    // delete+update ops with 10k vs 100k rows accumulated — the two
    // numbers must be of the same order for the claim to hold.
    for &prefix in &[10_000usize, 100_000] {
        let mut engine = StreamEngine::new(data.table.schema().clone(), rules.to_vec());
        for row in rows.iter().take(prefix).cloned() {
            engine.push_row(row).expect("schema matches");
        }
        let start = Instant::now();
        for i in 0..1_000 {
            // Spread mutations across the accumulated slots; alternate
            // delete and in-place update (donor cells from a live row).
            let target = (i * 97) % (prefix / 2);
            if i % 2 == 0 {
                // Deletes address the lower half of the slots …
                engine.delete_row(target).expect("target is live");
            } else {
                // … updates the upper half, so the two never collide.
                let slot = target + prefix / 2;
                let donor = engine.table().row(prefix / 2);
                engine.update_row(slot, donor).expect("target is live");
            }
        }
        let per_op = start.elapsed().as_secs_f64() * 1e9 / 1_000.0;
        println!(
            "  churn  ({:>13}): 1k delete/update ops at {prefix:>6} accumulated: \
             {per_op:>8.0} ns/op ({} live violations)",
            "all rules",
            engine.ledger().live_count()
        );
    }
}

/// 90% insert / 10% delete+update op mix over the dataset — the churn
/// workload the delta pipeline opened. Throughput is reported in
/// ops/s (criterion `Elements`), directly comparable with the
/// append-only `stream_ingest` rows/s numbers.
fn churn_ops(data: &Dataset) -> Vec<RowOp> {
    let rows = rows_of(&data.table);
    let mut ops = Vec::with_capacity(rows.len() + rows.len() / 5);
    for (r, row) in rows.iter().enumerate() {
        ops.push(RowOp::Insert(row.clone()));
        // Every 10th arrival: delete an old slot; every 10th (offset 5):
        // rewrite one in place with a donor row's cells.
        if r % 10 == 9 {
            ops.push(RowOp::Delete(r - 4));
        } else if r % 10 == 4 && r > 10 {
            ops.push(RowOp::Update(r - 3, rows[r - 1].clone()));
        }
    }
    ops
}

/// Sustained-churn memory sweep: a 50% delete workload (every op is a
/// coin flip between inserting the next dataset row and deleting a
/// random live one) run for `total_ops` ops in 256-op batches, with and
/// without `compact_ratio` 0.3. The artifact prints peak total slots vs
/// peak live rows, the worst observed slots/live ratio at a batch
/// boundary, and the final table footprint — the bounded-growth claim:
/// with the ratio trigger, slots stay within 2× live for the whole run
/// while the uncompacted twin's slot count grows with *history*.
fn churn_memory_artifact(data: &Dataset, rules: &[Pfd], total_ops: usize) {
    println!("── E14 artifact: sustained-churn memory (50% delete mix, {total_ops} ops) ──");
    let rows = rows_of(&data.table);
    for ratio in [0.0f64, 0.3] {
        let config = StreamConfig {
            compact_ratio: ratio,
            ..StreamConfig::default()
        };
        let mut engine =
            StreamEngine::with_config(data.table.schema().clone(), rules.to_vec(), config);
        let mut rng = StdRng::seed_from_u64(0x3AC7);
        let mut live: Vec<usize> = Vec::new();
        let (mut peak_slots, mut peak_live) = (0usize, 0usize);
        let mut worst_ratio = 1.0f64;
        let mut done = 0usize;
        let mut src = 0usize;
        let start = Instant::now();
        while done < total_ops {
            let mut slots = engine.row_count();
            let epoch = engine.epoch();
            let batch = 256.min(total_ops - done);
            let mut ops = Vec::with_capacity(batch);
            for _ in 0..batch {
                if !live.is_empty() && rng.random_bool(0.5) {
                    let pick = rng.random_range(0..live.len());
                    ops.push(RowOp::Delete(live.swap_remove(pick)));
                } else {
                    ops.push(RowOp::Insert(rows[src % rows.len()].clone()));
                    src += 1;
                    live.push(slots);
                    slots += 1;
                }
            }
            done += ops.len();
            engine.apply(ops).expect("ops are valid");
            if engine.epoch() != epoch {
                // Compaction renumbered the slots: refresh the id cache.
                live = engine.table().iter_live().collect();
            }
            // `slots` is the pre-compaction count for this batch — the
            // honest peak even when the boundary check then compacts.
            peak_slots = peak_slots.max(slots);
            peak_live = peak_live.max(engine.live_rows());
            worst_ratio =
                worst_ratio.max(engine.row_count() as f64 / engine.live_rows().max(1) as f64);
        }
        let secs = start.elapsed().as_secs_f64();
        let footprint = engine.table().mem_footprint();
        let stats = engine.compaction_stats();
        println!(
            "  compact-ratio {:>4}: peak {peak_slots:>6} slot(s) vs {peak_live:>6} peak live \
             (worst slots/live {worst_ratio:.2}×); {} epoch(s), {} slot(s) reclaimed; final \
             {} slot(s) / {} live, {} B table; {:.0} ops/s",
            if ratio > 0.0 {
                format!("{ratio}")
            } else {
                "off".to_string()
            },
            stats.epochs,
            stats.reclaimed_slots,
            footprint.total_slots,
            footprint.live_slots,
            footprint.bytes,
            total_ops as f64 / secs
        );
    }
}

/// Shard-count sweep on the 90/10 churn workload: ops/s for the
/// single-threaded engine and for `ShardedEngine` at 1/2/4/8 workers.
/// Rule processing is the parallel fraction, so the curve is bounded by
/// the rule count *and* by the host's cores — both are printed so the
/// artifact is interpretable wherever it was produced (a single-core
/// container timeslices the workers and shows a flat line; the speedup
/// materializes on multi-core hosts).
fn shard_sweep_artifact(data: &Dataset, rules: &[Pfd], rows: usize) {
    let ops = churn_ops(data);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    println!(
        "── E14 artifact: shard sweep (90/10 churn, {rows} rows, {} ops; \
         {} rule(s) shardable, {cores} core(s) available) ──",
        ops.len(),
        rules.len()
    );
    let ops_per_sec = |secs: f64| ops.len() as f64 / secs;
    let start = Instant::now();
    let mut engine = StreamEngine::new(data.table.schema().clone(), rules.to_vec());
    engine.apply(ops.iter().cloned()).expect("ops are valid");
    let single = ops_per_sec(start.elapsed().as_secs_f64());
    println!(
        "  single-threaded   : {single:>9.0} ops/s ({} live violations)",
        engine.ledger().live_count()
    );
    let mut one_shard = single;
    for shards in [1usize, 2, 4, 8] {
        let mut engine = ShardedEngine::new(data.table.schema().clone(), rules.to_vec(), shards);
        let start = Instant::now();
        engine.apply(ops.iter().cloned()).expect("ops are valid");
        let rate = ops_per_sec(start.elapsed().as_secs_f64());
        if shards == 1 {
            one_shard = rate;
        }
        println!(
            "  sharded ×{:<2}       : {rate:>9.0} ops/s ({:.2}× vs 1 shard, {} worker(s), \
             {} live violations)",
            shards,
            rate / one_shard,
            engine.shard_count(),
            engine.ledger().live_count()
        );
    }
}

/// Recorder-overhead check: the 90/10 churn workload with the metrics
/// recorder off vs on. The naive off-then-on ordering once reported the
/// instrumented leg *faster* (−52%): the first leg pays pool interning,
/// page-cache, and branch-predictor warmup that the second inherits for
/// free. Both legs are therefore warmed explicitly (one untimed run in
/// each recorder state), then timed with the same interleaved
/// discipline the shard coordination legs use: 7 repetitions, leg
/// order alternating forward/reverse per rep, each leg keeping its
/// best time — so both recorder states sample the same mix of
/// ambient-load windows instead of whole legs landing in different
/// load regimes (the earlier one-leg-at-a-time loop let exactly that
/// happen and once recorded a 4.5% phantom overhead). The published
/// figure is clamped at zero: a negative delta just means the overhead
/// is below the host's noise floor. The acceptance bound is 3% —
/// reported here, asserted by a human reading the artifact (a loaded
/// CI box is allowed to flap).
/// Returns `(off_ops_per_sec, on_ops_per_sec, overhead_pct, raw_pct)`.
fn recorder_overhead_artifact(data: &Dataset, rules: &[Pfd]) -> (f64, f64, f64, f64) {
    let ops = churn_ops(data);
    // One timed leg = 4 full engine lifetimes: a single ~15 ms pass is
    // inside the scheduler's noise floor on a busy box, and the
    // negative-overhead artifact this measurement once produced was
    // exactly that noise being attributed to the recorder.
    let run = || {
        let start = Instant::now();
        for _ in 0..4 {
            let mut engine = StreamEngine::new(data.table.schema().clone(), rules.to_vec());
            engine.apply(ops.iter().cloned()).expect("ops are valid");
            black_box(engine.ledger().live_count());
        }
        start.elapsed().as_secs_f64() / 4.0
    };
    let timed_leg = |recorder_on: bool| {
        if recorder_on {
            obs::Recorder::enable();
        } else {
            obs::Recorder::disable();
        }
        run()
    };
    // Warm *both* legs untimed — each recorder state touches its own
    // code paths (counter increments vs predicted-not-taken branches).
    for leg in [false, true] {
        timed_leg(leg);
    }
    let mut best = [f64::INFINITY; 2];
    for rep in 0..7 {
        let order: [usize; 2] = if rep % 2 == 0 { [0, 1] } else { [1, 0] };
        for leg in order {
            best[leg] = best[leg].min(timed_leg(leg == 1));
        }
    }
    obs::Recorder::disable();
    let off = ops.len() as f64 / best[0];
    let on = ops.len() as f64 / best[1];
    let raw = (off - on) / off * 100.0;
    let overhead = raw.max(0.0);
    println!(
        "── E14 artifact: recorder overhead (90/10 churn, {} ops, both legs warmed, \
         interleaved best-of-7) ──",
        ops.len()
    );
    println!("  recorder off: {off:>9.0} ops/s");
    println!(
        "  recorder on : {on:>9.0} ops/s ({overhead:.2}% overhead, raw delta {raw:+.2}%; \
         acceptance bound 3%)"
    );
    (off, on, overhead, raw)
}

/// Epoch-tied reclamation artifact: sustained churn over a
/// high-cardinality column (every insert mints a fresh UUID-like city,
/// so dead rows strand unique interned strings), with string
/// reclamation off vs on. Both legs compact at ratio 0.3; the reclaim
/// leg additionally sweeps unreferenced pool strings at each
/// compaction barrier. Claims recorded:
///
/// * **bounded pool**: the string bytes the run adds to the pool stay
///   ≤ 2× the exact bytes of strings still referenced by live rows
///   under reclamation, while the no-reclaim twin's pool grows with
///   *history* (one stranded string per dead insert, forever);
/// * **cheap sweep**: throughput cost ≤ 5%. The comparison is biased
///   *against* the reclaim leg — it also pays refcount maintenance and
///   the mid-run snapshot captures;
/// * **cheap snapshots**: capturing an `EngineSnapshot` mid-ingest is
///   microseconds — it clones chunk handles and the live-violation
///   map, `O(mutated chunks)`, never `O(rows)`.
///
/// The two legs (and each repetition) mint disjoint city universes so
/// pool deltas are attributable and the reclaim leg can never free a
/// string another leg still resolves. Dataset strings are pinned with
/// one explicit retain up front: the pool is process-global and later
/// artifacts still resolve `data.table`'s ids, so the sweep must never
/// consider them even if this engine's last copy of a zip dies.
/// Returns the artifact's JSON fragment.
fn reclaim_churn_artifact(data: &Dataset, rules: &[Pfd], total_ops: usize) -> String {
    use anmat_table::ValuePool;
    println!(
        "── E14 artifact: reclamation churn (high-cardinality city, 60/40 insert/delete \
         mix, {total_ops} ops, compact-ratio 0.3, interleaved best-of-3) ──"
    );
    let rows = rows_of(&data.table);
    let city_col = data
        .table
        .schema()
        .index_of("city")
        .expect("zipcity schema has a city column");
    for r in 0..data.table.row_count() {
        for id in data.table.row_ids(r) {
            ValuePool::retain(id);
        }
    }
    struct Leg {
        ops_per_sec: f64,
        strings_added: usize,
        string_bytes_added: usize,
        live_rows: usize,
        live_string_bytes: usize,
        swept: anmat_table::ReclaimStats,
        snap_us: Vec<f64>,
    }
    let run_leg = |tag: &str, reclaim: bool, ops_budget: usize| -> Leg {
        let config = StreamConfig {
            compact_ratio: 0.3,
            reclaim,
            ..StreamConfig::default()
        };
        let mut engine =
            StreamEngine::with_config(data.table.schema().clone(), rules.to_vec(), config);
        let before = ValuePool::mem_footprint();
        let mut rng = StdRng::seed_from_u64(0x9E1C);
        let mut live: Vec<usize> = Vec::new();
        let (mut done, mut src, mut batches) = (0usize, 0usize, 0usize);
        let mut snap_us = Vec::new();
        let start = Instant::now();
        while done < ops_budget {
            let mut slots = engine.row_count();
            let epoch = engine.epoch();
            let batch = 256.min(ops_budget - done);
            let mut ops = Vec::with_capacity(batch);
            for _ in 0..batch {
                if !live.is_empty() && rng.random_bool(0.4) {
                    let pick = rng.random_range(0..live.len());
                    ops.push(RowOp::Delete(live.swap_remove(pick)));
                } else {
                    let mut row = rows[src % rows.len()].clone();
                    row[city_col] = Value::Text(format!("{tag}-{src:08x}-c17y"));
                    ops.push(RowOp::Insert(row));
                    src += 1;
                    live.push(slots);
                    slots += 1;
                }
            }
            done += ops.len();
            engine.apply(ops).expect("ops are valid");
            if engine.epoch() != epoch {
                // Compaction renumbered the slots: refresh the id cache.
                live = engine.table().iter_live().collect();
            }
            batches += 1;
            if reclaim && batches % 64 == 0 {
                // Mid-ingest snapshot: time the capture, then drop it at
                // once so the pin never defers the next sweep.
                let t = Instant::now();
                let snap = engine.snapshot();
                snap_us.push(t.elapsed().as_secs_f64() * 1e6);
                black_box(snap.epoch());
                drop(snap);
            }
        }
        let secs = start.elapsed().as_secs_f64();
        // Final barrier: sweep whatever the last partial epoch queued,
        // so the end-state footprint reflects the steady-state protocol.
        engine.compact();
        let after = ValuePool::mem_footprint();
        let mut seen = std::collections::HashSet::new();
        let mut live_string_bytes = 0usize;
        for row in engine.table().iter_live() {
            for col in 0..engine.table().schema().arity() {
                if let Some(s) = engine.table().cell_str(row, col) {
                    if seen.insert(s) {
                        live_string_bytes += s.len();
                    }
                }
            }
        }
        Leg {
            ops_per_sec: ops_budget as f64 / secs,
            strings_added: after.strings - before.strings,
            string_bytes_added: after.string_bytes - before.string_bytes,
            live_rows: engine.live_rows(),
            live_string_bytes,
            swept: engine.reclaim_stats(),
            snap_us,
        }
    };
    // Warm both legs untimed (quarter-size), then interleave best-of-3
    // with per-rep disjoint string universes: every rep pays the same
    // fresh-interning cost, so neither leg inherits a warm pool.
    for (leg, reclaim) in [(0usize, false), (1, true)] {
        run_leg(&format!("w{leg}"), reclaim, total_ops / 4);
    }
    let mut best: [Option<Leg>; 2] = [None, None];
    for rep in 0..3 {
        let order: [usize; 2] = if rep % 2 == 0 { [0, 1] } else { [1, 0] };
        for leg in order {
            let out = run_leg(&format!("{leg}x{rep}"), leg == 1, total_ops);
            if best[leg]
                .as_ref()
                .is_none_or(|b| out.ops_per_sec > b.ops_per_sec)
            {
                best[leg] = Some(out);
            }
        }
    }
    let [no_reclaim, reclaim] = best.map(|l| l.expect("both legs ran"));
    let ratio = reclaim.string_bytes_added as f64 / reclaim.live_string_bytes.max(1) as f64;
    let raw_cost = (no_reclaim.ops_per_sec - reclaim.ops_per_sec) / no_reclaim.ops_per_sec * 100.0;
    let cost = raw_cost.max(0.0);
    let captures = reclaim.snap_us.len();
    let mean_us = reclaim.snap_us.iter().sum::<f64>() / captures.max(1) as f64;
    let max_us = reclaim.snap_us.iter().fold(0.0f64, |a, &b| a.max(b));
    println!(
        "  no-reclaim : {:>9.0} ops/s; pool +{} string(s) / +{} B — grows with history \
         ({} live rows hold {} B of strings)",
        no_reclaim.ops_per_sec,
        no_reclaim.strings_added,
        no_reclaim.string_bytes_added,
        no_reclaim.live_rows,
        no_reclaim.live_string_bytes
    );
    println!(
        "  reclaim    : {:>9.0} ops/s; pool +{} string(s) / +{} B vs {} B live-string \
         bytes ({ratio:.2}× live; bound 2×); swept {} string(s) / {} B",
        reclaim.ops_per_sec,
        reclaim.strings_added,
        reclaim.string_bytes_added,
        reclaim.live_string_bytes,
        reclaim.swept.strings,
        reclaim.swept.bytes
    );
    println!(
        "  sweep cost : raw {raw_cost:+.2}% ({cost:.2}% clamped; acceptance bound 5%; \
         reclaim leg also pays refcounts + {captures} snapshot capture(s))"
    );
    println!(
        "  snapshots  : {captures} capture(s) mid-ingest, mean {mean_us:.0} µs, \
         max {max_us:.0} µs — chunk-handle clones, O(mutated chunks), not O(rows)"
    );
    format!(
        "{{\n    \"ops\": {total_ops},\n    \"insert_fraction\": 0.6,\n    \
         \"no_reclaim\": {{ \"ops_per_sec\": {:.0}, \"pool_strings_added\": {}, \
         \"pool_string_bytes_added\": {}, \"live_rows\": {}, \"live_string_bytes\": {} }},\n    \
         \"reclaim\": {{ \"ops_per_sec\": {:.0}, \"pool_strings_added\": {}, \
         \"pool_string_bytes_added\": {}, \"live_rows\": {}, \"live_string_bytes\": {}, \
         \"swept_strings\": {}, \"swept_bytes\": {}, \"pool_bytes_over_live\": {ratio:.3} }},\n    \
         \"sweep_cost_pct\": {cost:.3},\n    \"sweep_cost_raw_pct\": {raw_cost:.3},\n    \
         \"snapshot\": {{ \"captures\": {captures}, \"mean_us\": {mean_us:.1}, \
         \"max_us\": {max_us:.1} }},\n    \
         \"claim\": \"every insert mints a fresh high-cardinality string; without \
         reclamation the pool keeps one stranded string per dead insert forever (growth \
         proportional to history), with --reclaim the epoch-tied sweep keeps pool string \
         bytes within 2x the bytes referenced by live rows, at <=5% throughput cost \
         (interleaved best-of-3, reclaim leg additionally pays refcounts and mid-ingest \
         snapshot captures); capturing a copy-on-write snapshot during ingest costs \
         microseconds, O(mutated chunks), never O(rows)\"\n  }}",
        no_reclaim.ops_per_sec,
        no_reclaim.strings_added,
        no_reclaim.string_bytes_added,
        no_reclaim.live_rows,
        no_reclaim.live_string_bytes,
        reclaim.ops_per_sec,
        reclaim.strings_added,
        reclaim.string_bytes_added,
        reclaim.live_rows,
        reclaim.live_string_bytes,
        reclaim.swept.strings,
        reclaim.swept.bytes,
    )
}

/// The tentpole artifact: key-granular sharding on a workload that
/// rule-granular sharding *cannot* spread — one heavy variable rule
/// (zip prefix → city), where `--shard-by rule` clamps to a single
/// worker however many are requested. Key mode hashes blocking keys
/// over all workers, so the sweep records the scaling the second axis
/// opens. On a single-core container the workers timeslice, so the
/// interesting figure there is coordination overhead: key-mode ×4 must
/// stay within 15% of rule mode. The ≥2× multi-core scaling claim is
/// recorded in the JSON artifact for verification on a multi-core
/// host. Returns the artifact's JSON fragment.
///
/// The 1-core acceptance figure compares key ×4 against *rule ×4 on
/// the full discovered rule set* — there both modes run four workers,
/// each maintaining its table replica, so the replicated-apply cost
/// cancels and the difference isolates what key mode adds:
/// coordinator-side route derivation plus the per-key merge. The
/// single-rule sweep cannot make that comparison honestly on one core,
/// because rule mode clamps a one-rule workload to a single worker
/// while key mode timeslices four.
fn key_shard_sweep_artifact(data: &Dataset, discovered: &[Pfd], rows: usize) -> String {
    use anmat_core::PatternTuple;

    let rule = Pfd::new(
        "Zip",
        "zip",
        "city",
        vec![PatternTuple::variable(
            "[\\D{3}]\\D{2}".parse().expect("static pattern"),
        )],
    );
    let heavy = vec![rule];
    let ops = churn_ops(data);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    println!(
        "── E14 artifact: key-granular shard sweep (single heavy variable rule, \
         90/10 churn, {rows} rows, {} ops, {cores} core(s) available) ──",
        ops.len()
    );
    // Feed in 512-op chunks so run-ahead pipelining has batches to
    // overlap (a single monolithic batch would serialize at the merge).
    let chunks: Vec<Vec<RowOp>> = ops.chunks(512).map(<[RowOp]>::to_vec).collect();
    // Best-of-3 per configuration: on a timesliced single-core box a
    // single pass is one scheduling roll of the dice, and the sweep's
    // point is capability, not one roll.
    let timed_single = |rules: &[Pfd]| {
        let mut best = 0.0f64;
        for _ in 0..3 {
            let mut engine = StreamEngine::new(data.table.schema().clone(), rules.to_vec());
            let start = Instant::now();
            for chunk in &chunks {
                engine.apply(chunk.iter().cloned()).expect("ops are valid");
            }
            let rate = ops.len() as f64 / start.elapsed().as_secs_f64();
            black_box(engine.ledger().live_count());
            best = best.max(rate);
        }
        best
    };
    let timed_sharded = |rules: &[Pfd], shard_by: ShardBy, shards: usize, run_ahead: usize| {
        let config = StreamConfig {
            shard_by,
            shards,
            run_ahead,
            ..StreamConfig::default()
        };
        let mut best = 0.0f64;
        for _ in 0..3 {
            let mut engine =
                ShardedEngine::with_config(data.table.schema().clone(), rules.to_vec(), config);
            let start = Instant::now();
            for chunk in &chunks {
                black_box(engine.submit(chunk.iter().cloned()).expect("ops are valid"));
            }
            black_box(engine.flush());
            let rate = ops.len() as f64 / start.elapsed().as_secs_f64();
            black_box(engine.ledger().live_count());
            best = best.max(rate);
        }
        best
    };
    timed_single(&heavy); // warm pool/caches outside every timed leg
    let single = timed_single(&heavy);
    println!("  single-threaded          : {single:>9.0} ops/s");
    let rule_x4_heavy = timed_sharded(&heavy, ShardBy::Rule, 4, 0);
    println!(
        "  rule mode ×4 (clamps to 1): {rule_x4_heavy:>9.0} ops/s ({:.2}× vs single — one \
         rule, one worker)",
        rule_x4_heavy / single
    );
    let mut key_rates = Vec::new();
    for shards in [1usize, 2, 4] {
        let rate = timed_sharded(&heavy, ShardBy::Key, shards, 0);
        println!(
            "  key mode ×{shards}               : {rate:>9.0} ops/s ({:.2}× vs single)",
            rate / single
        );
        key_rates.push((shards, rate));
    }
    let key_x4_pipelined = timed_sharded(&heavy, ShardBy::Key, 4, 4);
    println!(
        "  key mode ×4, run-ahead 4 : {key_x4_pipelined:>9.0} ops/s ({:.2}× vs single)",
        key_x4_pipelined / single
    );
    let key_x4 = key_rates
        .iter()
        .find(|(s, _)| *s == 4)
        .map_or(0.0, |&(_, r)| r);
    // Coordination overhead, measured where it is actually isolated:
    // the discovered multi-rule set, ×4 workers on both axes. On a
    // timesliced 1-core box, sequential best-of-3 legs sample different
    // ambient-load regimes and the comparison flaps by ±10%; instead the
    // three legs are interleaved (alternating forward/reverse order each
    // rep) and each keeps its best of 7, so every leg sees the same mix
    // of load windows.
    let timed_once = |shard_by: ShardBy, run_ahead: usize| {
        let config = StreamConfig {
            shard_by,
            shards: 4,
            run_ahead,
            ..StreamConfig::default()
        };
        let mut engine =
            ShardedEngine::with_config(data.table.schema().clone(), discovered.to_vec(), config);
        let start = Instant::now();
        for chunk in &chunks {
            black_box(engine.submit(chunk.iter().cloned()).expect("ops are valid"));
        }
        black_box(engine.flush());
        let rate = ops.len() as f64 / start.elapsed().as_secs_f64();
        black_box(engine.ledger().live_count());
        rate
    };
    let coord_legs: [(ShardBy, usize); 3] =
        [(ShardBy::Rule, 0), (ShardBy::Key, 0), (ShardBy::Key, 4)];
    for (shard_by, run_ahead) in coord_legs {
        timed_once(shard_by, run_ahead); // warm every leg before any timing
    }
    let mut coord_best = [0.0f64; 3];
    for rep in 0..7 {
        let order: Vec<usize> = if rep % 2 == 0 {
            (0..3).collect()
        } else {
            (0..3).rev().collect()
        };
        for leg in order {
            let (shard_by, run_ahead) = coord_legs[leg];
            coord_best[leg] = coord_best[leg].max(timed_once(shard_by, run_ahead));
        }
    }
    let [rule_x4_multi, key_x4_multi, key_x4_multi_pipe] = coord_best;
    let best_key_multi = key_x4_multi.max(key_x4_multi_pipe);
    let overhead_vs_rule = (rule_x4_multi - best_key_multi) / rule_x4_multi * 100.0;
    println!(
        "  coordination ({} discovered rules, 4 workers both axes): rule {rule_x4_multi:>9.0} \
         ops/s vs key {key_x4_multi:>9.0} (run-ahead 4: {key_x4_multi_pipe:>9.0})",
        discovered.len()
    );
    println!(
        "  key ×4 coordination overhead vs rule ×4: {overhead_vs_rule:+.2}% \
         (1-core acceptance bound 15%; interleaved best-of-7 legs; residual gap is the \
         cache cost of spreading every rule's state over 4 timeslicing workers — \
         ≥2× single-rule scaling expected on multi-core hosts)"
    );
    format!(
        "{{\n    \"rows\": {rows},\n    \"ops\": {},\n    \"cores\": {cores},\n    \
         \"single_rule\": {{\n      \"single_ops_per_sec\": {single:.0},\n      \
         \"rule_mode_x4_ops_per_sec\": {rule_x4_heavy:.0},\n      \"key_mode_ops_per_sec\": \
         {{ \"x1\": {:.0}, \"x2\": {:.0}, \"x4\": {key_x4:.0}, \"x4_run_ahead_4\": \
         {key_x4_pipelined:.0} }}\n    }},\n    \"coordination\": {{\n      \
         \"rule_count\": {},\n      \"rule_mode_x4_ops_per_sec\": {rule_x4_multi:.0},\n      \
         \"key_mode_x4_ops_per_sec\": {key_x4_multi:.0},\n      \
         \"key_mode_x4_run_ahead_4_ops_per_sec\": {key_x4_multi_pipe:.0},\n      \
         \"key_x4_overhead_vs_rule_pct\": {overhead_vs_rule:.3}\n    }},\n    \
         \"claim\": \"rule-granular sharding clamps a single heavy rule to one worker; \
         key-granular sharding hashes its blocking keys over all workers and targets >=2x \
         rule mode at 4 shards on a multi-core host. On a 1-core container every extra \
         worker is pure timeslicing, so the acceptance figure is coordination overhead \
         measured on the multi-rule workload where both axes run 4 workers (interleaved \
         best-of-7 legs), target within 15% of rule x4. Runs land in the 7-21% band \
         depending on ambient load; anything above 15% is the cache cost of replicating \
         every rule's state across 4 timeslicing workers (rule mode keeps one hot worker \
         per rule), a cost that vanishes when workers get real cores.\"\n  }}",
        ops.len(),
        key_rates[0].1,
        key_rates[1].1,
        discovered.len(),
    )
}

/// The machine-readable artifact: ingest + churn throughput plus the
/// full end-of-run metrics registry, as one JSON document. The metrics
/// section is exactly what `anmat stream --metrics-out` writes, so
/// downstream tooling parses one schema for both producers.
fn write_fig6_json(
    data: &Dataset,
    rules: &[Pfd],
    churn: (f64, f64, f64, f64),
    reclaim_churn: &str,
    key_sweep: &str,
) {
    obs::Recorder::enable();
    let ids = id_rows_of(&data.table);
    let mut engine = StreamEngine::new(data.table.schema().clone(), rules.to_vec());
    let start = Instant::now();
    for row in ids.iter().cloned() {
        engine.push_id_row(row).expect("schema matches");
    }
    let ingest = ids.len() as f64 / start.elapsed().as_secs_f64();
    engine.publish_metrics();
    let snapshot = obs::MetricsSnapshot::capture();
    obs::Recorder::disable();
    let (off, on, overhead, raw) = churn;
    let json = format!(
        "{{\n  \"rows\": {},\n  \"ingest_rows_per_sec\": {ingest:.0},\n  \
         \"churn_ops_per_sec\": {{\n    \"uninstrumented\": {off:.0},\n    \
         \"instrumented\": {on:.0},\n    \"overhead_pct\": {overhead:.3},\n    \
         \"overhead_raw_pct\": {raw:.3}\n  }},\n  \"reclaim_churn\": {reclaim_churn},\n  \
         \"key_shard_sweep\": {key_sweep},\n  \
         \"metrics\": {}\n}}\n",
        ids.len(),
        snapshot.to_json()
    );
    // Anchor the artifact at the workspace root regardless of the cwd
    // cargo hands the bench binary (it is the package dir, not the
    // workspace root).
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fig6.json");
    std::fs::write(out, &json).expect("write BENCH_fig6.json");
    println!(
        "  machine-readable artifact → BENCH_fig6.json ({ingest:.0} rows/s instrumented ingest)"
    );
}

fn bench(c: &mut Criterion) {
    // Discovery over 100k rows dominates setup; do it once and share it
    // between the artifact and the 100k benchmark cases.
    let big = dataset(100_000);
    marginal_cost_artifact(&big.0, &big.1);
    churn_memory_artifact(&big.0, &big.1, 100_000);
    let small = dataset(10_000);
    let churn_rates = recorder_overhead_artifact(&small.0, &small.1);
    let reclaim_churn = reclaim_churn_artifact(&small.0, &small.1, 100_000);
    let key_sweep = key_shard_sweep_artifact(&small.0, &small.1, 10_000);
    write_fig6_json(&small.0, &small.1, churn_rates, &reclaim_churn, &key_sweep);
    shard_sweep_artifact(&small.0, &small.1, 10_000);
    shard_sweep_artifact(&big.0, &big.1, 100_000);
    for (rows, (data, rules)) in [(10_000usize, &small), (100_000, &big)] {
        let prebuilt = rows_of(&data.table);
        let mut g = c.benchmark_group("fig6_streaming");
        g.throughput(Throughput::Elements(rows as u64));
        g.bench_with_input(
            BenchmarkId::new("stream_ingest", rows),
            &prebuilt,
            |b, prebuilt| {
                b.iter(|| {
                    let mut engine = StreamEngine::new(data.table.schema().clone(), rules.to_vec());
                    for row in prebuilt.iter().cloned() {
                        engine.push_row(row).expect("schema matches");
                    }
                    black_box(engine.ledger().live_count())
                });
            },
        );
        // The clone-free path: rows arrive as interned ids (what
        // `replay_table` and the CLI stream command use).
        let prebuilt_ids = id_rows_of(&data.table);
        g.bench_with_input(
            BenchmarkId::new("stream_ingest_ids", rows),
            &prebuilt_ids,
            |b, prebuilt_ids| {
                b.iter(|| {
                    let mut engine = StreamEngine::new(data.table.schema().clone(), rules.to_vec());
                    for row in prebuilt_ids.iter().cloned() {
                        engine.push_id_row(row).expect("schema matches");
                    }
                    black_box(engine.ledger().live_count())
                });
            },
        );
        // The churn mix: 90% inserts, 10% deletes/updates, through the
        // delta pipeline's `apply`. Per-op cost is `O(block)` for the
        // mutations, so throughput must stay in the same regime as pure
        // append ingest.
        let ops = churn_ops(data);
        g.throughput(Throughput::Elements(ops.len() as u64));
        g.bench_with_input(BenchmarkId::new("stream_churn", rows), &ops, |b, ops| {
            b.iter(|| {
                let mut engine = StreamEngine::new(data.table.schema().clone(), rules.to_vec());
                engine.apply(ops.iter().cloned()).expect("ops are valid");
                black_box(engine.ledger().live_count())
            });
        });
        // The shard sweep on the same churn mix: scaling is bounded by
        // min(shards, rules, cores) — see the artifact header for the
        // host's figures.
        for shards in [1usize, 2, 4, 8] {
            g.bench_with_input(
                BenchmarkId::new("stream_churn_sharded", format!("{rows}r/{shards}s")),
                &ops,
                |b, ops| {
                    b.iter(|| {
                        let mut engine =
                            ShardedEngine::new(data.table.schema().clone(), rules.to_vec(), shards);
                        engine.apply(ops.iter().cloned()).expect("ops are valid");
                        black_box(engine.ledger().live_count())
                    });
                },
            );
        }
        // The key axis on the same mix, pipelined: with the full rule
        // set this doubles as a coordination-overhead regression check
        // (key mode routes every op through the coordinator's keyers).
        g.bench_with_input(
            BenchmarkId::new("stream_churn_key_sharded", format!("{rows}r/4s")),
            &ops,
            |b, ops| {
                b.iter(|| {
                    let mut engine = ShardedEngine::with_config(
                        data.table.schema().clone(),
                        rules.to_vec(),
                        StreamConfig {
                            shard_by: ShardBy::Key,
                            shards: 4,
                            run_ahead: 4,
                            ..StreamConfig::default()
                        },
                    );
                    engine.apply(ops.iter().cloned()).expect("ops are valid");
                    black_box(engine.ledger().live_count())
                });
            },
        );
        g.throughput(Throughput::Elements(rows as u64));
        // The naive alternative: re-run batch detection after each of 100
        // appends of rows/100 (full per-append batch re-detection at 1:1
        // row granularity is too slow to even measure at 100k).
        let append_chunk = rows / 100;
        g.bench_with_input(
            BenchmarkId::new("repeated_batch_detect", rows),
            &prebuilt,
            |b, prebuilt| {
                b.iter(|| {
                    let mut table = Table::empty(data.table.schema().clone());
                    let mut total = 0usize;
                    for (i, row) in prebuilt.iter().cloned().enumerate() {
                        table.push_row(row).expect("schema matches");
                        if (i + 1) % append_chunk == 0 {
                            total = detect_all(black_box(&table), rules).len();
                        }
                    }
                    black_box(total)
                });
            },
        );
        g.finish();
    }
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
