//! E7 — Figure 1: the generalization tree.
//!
//! Micro-benchmarks the lattice operations (join, subsumption, matching,
//! containment) that every other component leans on, and prints the tree.

use anmat_bench::criterion;
use anmat_pattern::{contains, Pattern, SymbolClass};
use criterion::{black_box, Criterion};

fn artifact() {
    println!("── Figure 1: generalization tree ──");
    println!("            \\A (all)");
    println!("  \\LU      \\LL      \\D      \\S");
    println!(" A..Z     a..z    0..9   symbols");
    for (a, b) in [
        (SymbolClass::Literal('a'), SymbolClass::Literal('b')),
        (SymbolClass::Literal('a'), SymbolClass::Literal('A')),
        (SymbolClass::Upper, SymbolClass::Digit),
    ] {
        println!("  join({a}, {b}) = {}", a.join(&b));
    }
}

fn bench(c: &mut Criterion) {
    artifact();
    let classes = [
        SymbolClass::Literal('x'),
        SymbolClass::Upper,
        SymbolClass::Lower,
        SymbolClass::Digit,
        SymbolClass::Symbol,
        SymbolClass::Any,
    ];
    let mut g = c.benchmark_group("fig1_generalization");
    g.bench_function("join_all_pairs", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for a in &classes {
                for bb in &classes {
                    acc += black_box(a.join(bb)).depth() as u32;
                }
            }
            acc
        });
    });
    g.bench_function("subsumes_all_pairs", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for a in &classes {
                for bb in &classes {
                    acc += u32::from(black_box(a.subsumes(bb)));
                }
            }
            acc
        });
    });
    let p1: Pattern = "\\LU\\LL*\\ \\A*".parse().unwrap();
    let p2: Pattern = "John\\ \\A*".parse().unwrap();
    g.bench_function("pattern_match", |b| {
        b.iter(|| black_box(&p1).matches(black_box("John Charles")));
    });
    g.bench_function("pattern_containment", |b| {
        b.iter(|| contains(black_box(&p1), black_box(&p2)));
    });
    g.finish();
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
