//! E15 — prior-art limitation: PFD vs FD vs CFD recall on injected errors.
//!
//! Prints the three detectors' precision/recall on the same datasets
//! (expect PFD ≫ FD/CFD on partial-value dependencies), then measures the
//! three discovery passes.

use anmat_bench::{criterion, experiment_config};
use anmat_core::baselines::cfd::{CfdConfig, CfdMiner};
use anmat_core::baselines::fd::{FdConfig, FdMiner};
use anmat_core::{detect_all, discover};
use anmat_datagen::{names, Dataset};
use criterion::{black_box, Criterion};

fn scores(data: &Dataset) {
    let cfg = experiment_config();
    let pfds = discover(&data.table, &cfg);
    let flagged: Vec<usize> = detect_all(&data.table, &pfds)
        .iter()
        .map(|v| v.row)
        .collect();
    let pfd_score = data.score(&flagged);

    let fd_miner = FdMiner::new(FdConfig {
        max_error: 0.05,
        ..FdConfig::default()
    });
    let fds = fd_miner.discover(&data.table);
    let fd_flagged: Vec<usize> = fds
        .iter()
        .flat_map(|f| fd_miner.detect(&data.table, f))
        .map(|v| v.row)
        .collect();
    let fd_score = data.score(&fd_flagged);

    let cfd_miner = CfdMiner::new(CfdConfig {
        min_support: 3,
        min_confidence: 0.9,
    });
    let rules = cfd_miner.discover(&data.table);
    let cfd_flagged: Vec<usize> = cfd_miner
        .detect_all(&data.table, &rules)
        .iter()
        .map(|v| v.row)
        .collect();
    let cfd_score = data.score(&cfd_flagged);

    println!("── E15: name→gender, 5k rows, 1% flipped genders ──");
    println!(
        "  PFD: precision {:.3} recall {:.3}",
        pfd_score.precision(),
        pfd_score.recall()
    );
    println!(
        "  FD : precision {:.3} recall {:.3}",
        fd_score.precision(),
        fd_score.recall()
    );
    println!(
        "  CFD: precision {:.3} recall {:.3}",
        cfd_score.precision(),
        cfd_score.recall()
    );
}

fn bench(c: &mut Criterion) {
    let data = names::generate(&anmat_bench::gen(5_000, 0xE15));
    scores(&data);
    let cfg = experiment_config();
    let fd_miner = FdMiner::new(FdConfig::default());
    let cfd_miner = CfdMiner::new(CfdConfig::default());
    let mut g = c.benchmark_group("baseline_comparison");
    g.bench_function("pfd_discover_5k", |b| {
        b.iter(|| discover(black_box(&data.table), &cfg));
    });
    g.bench_function("fd_discover_5k", |b| {
        b.iter(|| fd_miner.discover(black_box(&data.table)));
    });
    g.bench_function("cfd_discover_5k", |b| {
        b.iter(|| cfd_miner.discover(black_box(&data.table)));
    });
    g.finish();
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
