//! E14 — §3 ablation: pattern index vs full scan for constant-PFD
//! detection.
//!
//! The paper: "For better performance, we create an index supporting
//! regular expressions for each column present on the LHS of the PFDs."
//! This bench compares signature-bucket + trie lookups against a scan of
//! all distinct values.

use anmat_bench::criterion;
use anmat_datagen::phone;
use anmat_index::PatternIndex;
use anmat_pattern::Pattern;
use criterion::{black_box, BenchmarkId, Criterion, Throughput};

fn bench(c: &mut Criterion) {
    println!("── E14: pattern index vs scan (constant-PFD lookups) ──");
    let patterns: Vec<Pattern> = ["850\\D{7}", "607\\D{7}", "\\D{10}", "21\\D{8}"]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();

    let mut g = c.benchmark_group("ablate_pattern_index");
    for &rows in &[10_000usize, 50_000, 200_000] {
        let data = phone::generate(&anmat_bench::gen(rows, 0xE14));
        let index = PatternIndex::build(&data.table, 0);
        // Agreement check.
        for p in &patterns {
            assert_eq!(index.lookup(p), index.lookup_scan(p));
        }
        g.throughput(Throughput::Elements(rows as u64));
        g.bench_with_input(BenchmarkId::new("indexed", rows), &index, |b, idx| {
            b.iter(|| {
                let mut total = 0usize;
                for p in &patterns {
                    total += idx.lookup(black_box(p)).len();
                }
                total
            });
        });
        g.bench_with_input(BenchmarkId::new("scan", rows), &index, |b, idx| {
            b.iter(|| {
                let mut total = 0usize;
                for p in &patterns {
                    total += idx.lookup_scan(black_box(p)).len();
                }
                total
            });
        });
        let build_data = data;
        g.bench_with_input(
            BenchmarkId::new("build_index", rows),
            &build_data,
            |b, d| {
                b.iter(|| PatternIndex::build(black_box(&d.table), 0));
            },
        );
    }
    g.finish();
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
