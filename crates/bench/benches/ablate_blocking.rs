//! E13 — §3 ablation: blocking vs quadratic pair enumeration for variable
//! PFDs.
//!
//! The paper: "this is still quadratic. The quadratic time complexity can
//! be avoided using blocking." This bench verifies the two paths agree and
//! measures the gap as rows grow.

use anmat_bench::criterion;
use anmat_core::{detect_pfd, Detector, PatternTuple, Pfd};
use anmat_datagen::names;
use anmat_pattern::ConstrainedPattern;
use criterion::{black_box, BenchmarkId, Criterion, Throughput};

fn lambda4() -> Pfd {
    Pfd::new(
        "Name",
        "full_name",
        "gender",
        vec![PatternTuple::variable(
            // Last, First [initial] — constrain the first-name token.
            "\\LU\\LL+,\\ [\\LU\\LL+]\\A*"
                .parse::<ConstrainedPattern>()
                .unwrap(),
        )],
    )
}

fn bench(c: &mut Criterion) {
    println!("── E13: blocking vs brute force (variable-PFD detection) ──");
    let pfd = lambda4();
    // Agreement check first.
    let small = names::generate(&anmat_bench::gen(500, 0xB10));
    let blocking_rows: Vec<usize> = detect_pfd(&small.table, &pfd)
        .iter()
        .map(|v| v.row)
        .collect();
    let brute_rows: Vec<usize> = Detector::new(&small.table)
        .detect_variable_bruteforce(&pfd)
        .iter()
        .map(|v| v.row)
        .collect();
    assert_eq!(blocking_rows, brute_rows, "paths must agree");
    println!("paths agree on 500 rows: {} flagged", blocking_rows.len());

    let mut g = c.benchmark_group("ablate_blocking");
    for &rows in &[1_000usize, 4_000, 16_000] {
        let data = names::generate(&anmat_bench::gen(rows, 0xB11));
        g.throughput(Throughput::Elements(rows as u64));
        g.bench_with_input(BenchmarkId::new("blocking", rows), &data, |b, d| {
            b.iter(|| detect_pfd(black_box(&d.table), &pfd));
        });
        // Brute force is quadratic: cap the sizes it runs at.
        if rows <= 4_000 {
            g.bench_with_input(BenchmarkId::new("bruteforce", rows), &data, |b, d| {
                b.iter(|| Detector::new(black_box(&d.table)).detect_variable_bruteforce(&pfd));
            });
        }
    }
    g.finish();
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
