//! E1 — Table 1 of the paper (D1: a Name table) and λ1/λ2/λ4.
//!
//! Regenerates the discovered PFDs on the verbatim 4-row table and on a
//! scaled synthetic name/gender table; measures discovery + detection.

use anmat_bench::{criterion, experiment_config, paper_table1};
use anmat_core::{detect_all, discover};
use anmat_datagen::names;
use criterion::{black_box, Criterion};

fn artifact() {
    let table = paper_table1();
    let mut cfg = experiment_config();
    cfg.relation = "Name".into();
    cfg.min_support = 2;
    cfg.max_violation_ratio = 0.4; // tolerate r4 among 2 Susans
    let pfds = discover(&table, &cfg);
    println!("── Table 1 reproduction (paper's 4 rows) ──");
    for p in &pfds {
        println!("{p}");
    }
    let violations = detect_all(&table, &pfds);
    println!(
        "violations: {:?} (expect r4 = row 3 flagged)",
        violations.iter().map(|v| v.row).collect::<Vec<_>>()
    );
}

fn bench(c: &mut Criterion) {
    artifact();
    let data = names::generate(&anmat_bench::gen(2000, 0xE1));
    let cfg = experiment_config();
    let pfds = discover(&data.table, &cfg);
    let mut g = c.benchmark_group("table1_name");
    g.bench_function("discover_2k", |b| {
        b.iter(|| discover(black_box(&data.table), &cfg));
    });
    g.bench_function("detect_2k", |b| {
        b.iter(|| detect_all(black_box(&data.table), &pfds));
    });
    g.finish();
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
