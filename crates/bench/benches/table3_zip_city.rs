//! E5 — Table 3, block D5: ZIP → CITY.
//!
//! Expect `6060\D → Chicago`-shaped tableaux and the paper's typo errors
//! (`60601 | Chicag`, `60601 | Chciago`).

use anmat_bench::{criterion, experiment_config, print_table3_block};
use anmat_core::{detect_all, discover};
use anmat_datagen::zipcity;
use criterion::{black_box, Criterion};

fn bench(c: &mut Criterion) {
    let data = zipcity::generate(&anmat_bench::gen(10_000, 0xD5), zipcity::ZipTarget::City);
    let cfg = experiment_config();
    let pfds: Vec<_> = discover(&data.table, &cfg)
        .into_iter()
        .filter(|p| p.lhs_attr == "zip" && p.rhs_attr == "city")
        .collect();
    print_table3_block("D5 ZIP → CITY", &data, &pfds);

    let mut g = c.benchmark_group("table3_zip_city");
    g.bench_function("discover_10k", |b| {
        b.iter(|| discover(black_box(&data.table), &cfg));
    });
    g.bench_function("detect_10k", |b| {
        b.iter(|| detect_all(black_box(&data.table), &pfds));
    });
    g.finish();
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
