//! E10 — Figure 4: the discovered-PFD tableau view.
//!
//! Prints the confirmation view (tableau + per-tuple frequency + coverage)
//! and measures the coverage computation and rendering.

use anmat_bench::{criterion, experiment_config};
use anmat_core::{discover, report};
use anmat_datagen::phone;
use criterion::{black_box, Criterion};

fn bench(c: &mut Criterion) {
    let data = phone::generate(&anmat_bench::gen(5_000, 0xF4));
    let cfg = experiment_config();
    let pfds = discover(&data.table, &cfg);
    for pfd in &pfds {
        print!("{}", report::tableau_view(&data.table, pfd));
    }
    let Some(pfd) = pfds.first() else {
        panic!("discovery must yield at least one PFD on the phone dataset");
    };
    let mut g = c.benchmark_group("fig4_tableau");
    g.bench_function("coverage_5k", |b| {
        b.iter(|| black_box(pfd).coverage(black_box(&data.table)));
    });
    g.bench_function("render_view", |b| {
        b.iter(|| report::tableau_view(black_box(&data.table), black_box(pfd)));
    });
    g.finish();
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
