//! E12 — §4 "Parameter Setting": the coverage/violation-ratio trade-off.
//!
//! "Using [a] smaller percentage for the coverage will allow to report
//! more dependencies but it will report more dependencies which are false
//! positives." This bench sweeps both knobs, prints the PFD count and
//! detection precision at each setting, and measures one discovery run.

use anmat_bench::{criterion, experiment_config};
use anmat_core::{detect_all, discover, DiscoveryConfig};
use anmat_datagen::zipcity;
use criterion::{black_box, Criterion};

fn artifact() {
    let data = zipcity::generate(&anmat_bench::gen(5_000, 0x512), zipcity::ZipTarget::City);
    println!("── §4 parameter sweep (zip/city, 5k rows, 1% errors) ──");
    println!(
        "{:>9} {:>10} {:>6} {:>10} {:>7}",
        "coverage", "viol.ratio", "#PFDs", "precision", "recall"
    );
    for &min_coverage in &[0.3, 0.5, 0.7, 0.9] {
        for &max_violation_ratio in &[0.0, 0.05, 0.15, 0.3] {
            let cfg = DiscoveryConfig {
                min_coverage,
                max_violation_ratio,
                min_support: 3,
                ..DiscoveryConfig::default()
            };
            let pfds = discover(&data.table, &cfg);
            let flagged: Vec<usize> = detect_all(&data.table, &pfds)
                .iter()
                .map(|v| v.row)
                .collect();
            let s = data.score(&flagged);
            println!(
                "{:>9.2} {:>10.2} {:>6} {:>10.3} {:>7.3}",
                min_coverage,
                max_violation_ratio,
                pfds.len(),
                s.precision(),
                s.recall()
            );
        }
    }
}

fn bench(c: &mut Criterion) {
    artifact();
    let data = zipcity::generate(&anmat_bench::gen(5_000, 0x512), zipcity::ZipTarget::City);
    let cfg = experiment_config();
    c.benchmark_group("param_sweep")
        .bench_function("discover_5k_default_knobs", |b| {
            b.iter(|| discover(black_box(&data.table), &cfg));
        });
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
