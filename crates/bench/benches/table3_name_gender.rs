//! E4 — Table 3, block D2: Full Name → Gender.
//!
//! Expect first-name tableaux (`\A*,\ Donald\A* → M` …) and flipped-gender
//! error rows like `Holloway, Donald E. | F`.

use anmat_bench::{criterion, experiment_config, print_table3_block};
use anmat_core::{detect_all, discover, ContextStyle};
use anmat_datagen::names;
use criterion::{black_box, Criterion};

fn bench(c: &mut Criterion) {
    let data = names::generate(&anmat_bench::gen(10_000, 0xD2));
    // Paper display style for the D2 block: \A* contexts.
    let mut cfg = experiment_config();
    cfg.context_style = ContextStyle::AnyString;
    let pfds = discover(&data.table, &cfg);
    print_table3_block("D2 Full Name → Gender", &data, &pfds);

    let mut g = c.benchmark_group("table3_name_gender");
    g.bench_function("discover_10k", |b| {
        b.iter(|| discover(black_box(&data.table), &cfg));
    });
    let pfds2 = pfds.clone();
    g.bench_function("detect_10k", |b| {
        b.iter(|| detect_all(black_box(&data.table), &pfds2));
    });
    g.finish();
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
