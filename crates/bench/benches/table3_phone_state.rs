//! E3 — Table 3, block D1: Phone Number → State.
//!
//! Expect area-code tableaux (`850\D{7} → FL` …) and error rows in the
//! paper's `8505467600 | CA` format.

use anmat_bench::{criterion, experiment_config, print_table3_block};
use anmat_core::{detect_all, discover};
use anmat_datagen::phone;
use criterion::{black_box, Criterion};

fn bench(c: &mut Criterion) {
    let data = phone::generate(&anmat_bench::gen(10_000, 0xD1));
    let cfg = experiment_config();
    let pfds = discover(&data.table, &cfg);
    print_table3_block("D1 Phone Number → State", &data, &pfds);

    let mut g = c.benchmark_group("table3_phone_state");
    g.bench_function("discover_10k", |b| {
        b.iter(|| discover(black_box(&data.table), &cfg));
    });
    g.bench_function("detect_10k", |b| {
        b.iter(|| detect_all(black_box(&data.table), &pfds));
    });
    g.finish();
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
