//! E2 — Table 2 of the paper (D2: a Zip table) and λ3/λ5.

use anmat_bench::{criterion, experiment_config, paper_table2};
use anmat_core::{detect_all, discover};
use anmat_datagen::zipcity;
use criterion::{black_box, Criterion};

fn artifact() {
    let table = paper_table2();
    let mut cfg = experiment_config();
    cfg.relation = "Zip".into();
    cfg.min_support = 2;
    cfg.max_violation_ratio = 0.4; // tolerate s4 among the 900xx block
    let pfds = discover(&table, &cfg);
    println!("── Table 2 reproduction (paper's 4 rows) ──");
    for p in &pfds {
        println!("{p}");
    }
    let violations = detect_all(&table, &pfds);
    println!(
        "violations: {:?} (expect s4 = row 3 flagged)",
        violations.iter().map(|v| v.row).collect::<Vec<_>>()
    );
}

fn bench(c: &mut Criterion) {
    artifact();
    let data = zipcity::generate(&anmat_bench::gen(2000, 0xE2), zipcity::ZipTarget::City);
    let cfg = experiment_config();
    let pfds = discover(&data.table, &cfg);
    let mut g = c.benchmark_group("table2_zip");
    g.bench_function("discover_2k", |b| {
        b.iter(|| discover(black_box(&data.table), &cfg));
    });
    g.bench_function("detect_2k", |b| {
        b.iter(|| detect_all(black_box(&data.table), &pfds));
    });
    g.finish();
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
