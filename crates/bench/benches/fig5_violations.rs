//! E11 — Figure 5: the violation view (Full Name → Gender, as in the
//! paper's screenshot).
//!
//! Prints violating records with their violated rule and repair, and
//! measures detection + rendering.

use anmat_bench::{criterion, experiment_config};
use anmat_core::{detect_all, discover, report, ContextStyle};
use anmat_datagen::names;
use criterion::{black_box, Criterion};

fn bench(c: &mut Criterion) {
    let data = names::generate(&anmat_bench::gen(5_000, 0xF5));
    let mut cfg = experiment_config();
    cfg.context_style = ContextStyle::AnyString;
    let pfds = discover(&data.table, &cfg);
    let violations = detect_all(&data.table, &pfds);
    let sample: Vec<_> = violations.iter().take(5).cloned().collect();
    print!("{}", report::violations_view(&data.table, &sample));

    let mut g = c.benchmark_group("fig5_violations");
    g.bench_function("detect_5k", |b| {
        b.iter(|| detect_all(black_box(&data.table), &pfds));
    });
    g.bench_function("render_view", |b| {
        b.iter(|| report::violations_view(black_box(&data.table), &violations));
    });
    g.finish();
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
