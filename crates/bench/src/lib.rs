//! Shared fixtures for the benchmark harness.
//!
//! Every bench regenerates one table or figure of the paper (see the
//! experiment index in `DESIGN.md`): it first *prints* the reproduced
//! artifact — discovered tableaux, detected errors, scaling series — then
//! measures the relevant operation with Criterion. Paper-vs-measured notes
//! live in `EXPERIMENTS.md`.

use anmat_core::{DiscoveryConfig, Pfd};
use anmat_datagen::{Dataset, GenConfig};
use anmat_table::{Schema, Table};
use criterion::Criterion;
use std::time::Duration;

/// Criterion tuned for a large suite: small samples, short measurement.
#[must_use]
pub fn criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .configure_from_args()
}

/// The discovery configuration used across experiments (mirrors the
/// demo's defaults: moderate coverage, 10% allowed violations).
#[must_use]
pub fn experiment_config() -> DiscoveryConfig {
    DiscoveryConfig {
        min_support: 3,
        min_coverage: 0.5,
        max_violation_ratio: 0.1,
        ..DiscoveryConfig::default()
    }
}

/// The paper's Table 1 (D1: a Name table) verbatim, error included.
#[must_use]
pub fn paper_table1() -> Table {
    Table::from_str_rows(
        Schema::new(["name", "gender"]).expect("static schema"),
        [
            ["John Charles", "M"],
            ["John Bosco", "M"],
            ["Susan Orlean", "F"],
            ["Susan Boyle", "M"],
        ],
    )
    .expect("static rows")
}

/// The paper's Table 2 (D2: a Zip table) verbatim, error included.
#[must_use]
pub fn paper_table2() -> Table {
    Table::from_str_rows(
        Schema::new(["zip", "city"]).expect("static schema"),
        [
            ["90001", "Los Angeles"],
            ["90002", "Los Angeles"],
            ["90003", "Los Angeles"],
            ["90004", "New York"],
        ],
    )
    .expect("static rows")
}

/// Standard generator config per experiment scale.
#[must_use]
pub fn gen(rows: usize, seed: u64) -> GenConfig {
    GenConfig {
        rows,
        seed,
        error_rate: 0.01,
    }
}

/// Print a discovered-PFD + detection summary in Table 3 style.
pub fn print_table3_block(dataset: &str, data: &Dataset, pfds: &[Pfd]) {
    println!("── Table 3 block: {dataset} ──");
    for pfd in pfds {
        for line in pfd.to_string().lines() {
            println!("  {line}");
        }
    }
    let violations = anmat_core::detect_all(&data.table, pfds);
    let flagged: Vec<usize> = violations.iter().map(|v| v.row).collect();
    let score = data.score(&flagged);
    println!(
        "  detected {} violations | precision {:.3} recall {:.3} (ground truth {} errors)",
        violations.len(),
        score.precision(),
        score.recall(),
        data.errors.len()
    );
    for v in violations.iter().take(5) {
        let found = match &v.kind {
            anmat_core::ViolationKind::Constant { found, .. }
            | anmat_core::ViolationKind::Variable { found, .. } => {
                found.clone().unwrap_or_else(|| "∅".into())
            }
        };
        println!("    error: {} | {}", v.lhs_value, found);
    }
}
