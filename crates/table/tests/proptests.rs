//! Property-based tests for the table substrate.

use anmat_table::{csv, Schema, Table, Value, ValueId, ValuePool};
use proptest::prelude::*;

/// Arbitrary cell content, including CSV-hostile characters.
fn any_field() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop_oneof![
            prop::char::ranges(vec!['a'..='z', 'A'..='Z', '0'..='9'].into()),
            Just(','),
            Just('"'),
            Just('\n'),
            Just(' '),
            Just('-'),
        ],
        0..12,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

fn any_table() -> impl Strategy<Value = Table> {
    (1usize..5).prop_flat_map(|arity| {
        let schema_names: Vec<String> = (0..arity).map(|i| format!("col{i}")).collect();
        prop::collection::vec(prop::collection::vec(any_field(), arity..=arity), 0..12).prop_map(
            move |rows| {
                let schema = Schema::new(schema_names.clone()).unwrap();
                Table::from_rows(
                    schema,
                    rows.into_iter().map(|r| {
                        r.into_iter()
                            .map(|f| {
                                // Direct construction (no null-token folding)
                                // so the round-trip comparison is exact up to
                                // empty ↔ null.
                                if f.is_empty() {
                                    Value::Null
                                } else {
                                    Value::Text(f)
                                }
                            })
                            .collect()
                    }),
                )
                .unwrap()
            },
        )
    })
}

proptest! {
    /// write → read is the identity for tables without null-folding
    /// ambiguity (cells equal to conventional null tokens are excluded by
    /// the alphabet above not generating "NULL" etc. — the generator can
    /// produce them by chance, so compare renderings instead of values).
    #[test]
    fn csv_roundtrip(t in any_table()) {
        let text = csv::write_str(&t);
        let t2 = csv::read_str(&text).expect("own output must parse");
        prop_assert_eq!(t.row_count(), t2.row_count());
        prop_assert_eq!(t.schema().names(), t2.schema().names());
        for r in 0..t.row_count() {
            for c in 0..t.column_count() {
                let a = t.cell_str(r, c).unwrap_or("");
                let b = t2.cell_str(r, c).unwrap_or("");
                // Null tokens fold to empty on re-read.
                let folded = match a {
                    "NULL" | "null" | "NA" | "N/A" | "\\N" => "",
                    other => other,
                };
                prop_assert_eq!(folded, b, "cell ({}, {})", r, c);
            }
        }
    }

    /// Parsing never panics on arbitrary input.
    #[test]
    fn csv_parse_total(s in "\\PC*") {
        let _ = csv::read_str(&s);
    }

    /// Tokenization covers all non-whitespace characters, in order.
    #[test]
    fn tokenize_covers_non_whitespace(s in "[a-zA-Z0-9 .,-]*") {
        let toks = anmat_table::tokenize(&s);
        let joined: String = toks.iter().map(|t| t.text.as_str()).collect::<Vec<_>>().join("");
        let expected: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        prop_assert_eq!(joined, expected);
    }

    /// Token char offsets index the right characters.
    #[test]
    fn tokenize_offsets_correct(s in "[a-z ]*") {
        let chars: Vec<char> = s.chars().collect();
        for t in anmat_table::tokenize(&s) {
            let at: String = chars[t.char_start..t.char_start + t.text.chars().count()]
                .iter().collect();
            prop_assert_eq!(at, t.text);
        }
    }

    /// N-grams tile the string with stride 1.
    #[test]
    fn ngrams_tile(s in "[a-z0-9]{3,20}", n in 1usize..5) {
        let gs = anmat_table::ngrams(&s, n);
        let len = s.chars().count();
        if len >= n {
            prop_assert_eq!(gs.len(), len - n + 1);
            for (i, g) in gs.iter().enumerate() {
                prop_assert_eq!(g.char_start, i);
                prop_assert_eq!(g.text.chars().count(), n);
            }
        }
    }

    /// Pool round-trip: `intern → resolve` is the identity on any string.
    #[test]
    fn pool_intern_resolve_identity(s in "\\PC*") {
        let id = ValuePool::intern(&s);
        prop_assert!(!id.is_null());
        prop_assert_eq!(ValuePool::resolve(id), s.as_str());
        prop_assert_eq!(id.as_str(), Some(s.as_str()));
    }

    /// Pool dedup: repeated ingest of the same strings never mints new
    /// ids, and equal cells share ids across independently built tables.
    /// (Dedup is asserted via id identity, not global pool size — the
    /// pool is process-global and other tests intern concurrently.)
    #[test]
    fn pool_dedup_under_repeated_ingest(fields in prop::collection::vec(any_field(), 1..20)) {
        let ids: Vec<ValueId> = fields.iter().map(|f| ValuePool::intern(f)).collect();
        let again: Vec<ValueId> = fields.iter().map(|f| ValuePool::intern(f)).collect();
        prop_assert_eq!(&ids, &again);
        // Same string ⇒ same id, even via lookup-only access.
        for (f, id) in fields.iter().zip(&ids) {
            prop_assert_eq!(ValuePool::lookup(f), Some(*id));
        }

        // Two tables built from the same rows are cell-for-cell id-equal.
        let schema = Schema::new(["f"]).unwrap();
        let rows = || fields.iter().map(|f| vec![Value::text(f.clone())]);
        let t1 = Table::from_rows(schema.clone(), rows()).unwrap();
        let t2 = Table::from_rows(schema, rows()).unwrap();
        prop_assert_eq!(&t1, &t2);
        for r in 0..t1.row_count() {
            prop_assert_eq!(t1.cell_id(r, 0), t2.cell_id(r, 0));
        }
    }
}
