//! `ValuePool` concurrency smoke test — the contract the sharded stream
//! engine leans on: many threads racing `intern` / `intern_batch` /
//! `resolve` on overlapping strings must agree on one id per string,
//! resolution must round-trip under contention, and the lock-free
//! resolve path must keep making progress while writers hold the
//! interning lock hot.

use anmat_table::{Value, ValueId, ValuePool};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;

const THREADS: usize = 8;
const ROUNDS: usize = 400;
/// Shared vocabulary every thread interns — the overlap that forces the
/// first-sighting race.
const SHARED: usize = 48;

fn shared_string(i: usize) -> String {
    format!("pool-conc-shared-{i}")
}

#[test]
fn racing_interns_agree_on_stable_ids() {
    let per_thread: Vec<Vec<(String, ValueId)>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                scope.spawn(move || {
                    let mut seen: Vec<(String, ValueId)> = Vec::new();
                    for round in 0..ROUNDS {
                        // Overlapping strings, different arrival order per
                        // thread, mixing the three intern entry points.
                        let i = (round + t * 7) % SHARED;
                        let s = shared_string(i);
                        let id = match round % 3 {
                            0 => ValuePool::intern(&s),
                            1 => ValuePool::intern_batch([s.as_str()])[0],
                            _ => ValuePool::intern_value_batch(&[Value::text(&s)])[0],
                        };
                        // Round-trip under contention: the freshly (or
                        // concurrently) interned id must already resolve.
                        assert_eq!(ValuePool::resolve(id), s, "resolve must round-trip");
                        seen.push((s, id));
                        // Private strings interleave, so the pool keeps
                        // growing while the shared ones are re-interned.
                        let private = format!("pool-conc-private-{t}-{round}");
                        let pid = ValuePool::intern(&private);
                        assert_eq!(pid.as_str(), Some(private.as_str()));
                    }
                    seen
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panics"))
            .collect()
    });

    // Ids are stable: every thread got the same id for the same string.
    let mut canonical: HashMap<String, ValueId> = HashMap::new();
    for seen in per_thread {
        for (s, id) in seen {
            let prev = canonical.insert(s.clone(), id);
            if let Some(prev) = prev {
                assert_eq!(prev, id, "id for {s:?} must be stable across threads");
            }
        }
    }
    assert_eq!(canonical.len(), SHARED);
}

#[test]
fn resolves_make_progress_while_interns_hammer_the_write_lock() {
    // A pinned id resolved in a tight loop while writer threads
    // continuously take the interning write lock with fresh strings.
    // `resolve` is lock-free, so the readers finish their fixed quota no
    // matter what the writers are doing — this is the "resolves never
    // block interns (and vice versa)" smoke check.
    let pinned = ValuePool::intern("pool-conc-pinned");
    let stop = AtomicBool::new(false);
    thread::scope(|scope| {
        for w in 0..2 {
            let stop = &stop;
            scope.spawn(move || {
                let mut n = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    // Every iteration is a first sighting → write lock.
                    let s = format!("pool-conc-writer-{w}-{n}");
                    let id = ValuePool::intern(&s);
                    assert_eq!(ValuePool::resolve(id), s);
                    n += 1;
                }
            });
        }
        let readers: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(|| {
                    for _ in 0..200_000 {
                        assert_eq!(ValuePool::resolve(pinned), "pool-conc-pinned");
                    }
                })
            })
            .collect();
        for r in readers {
            r.join().expect("readers complete under write pressure");
        }
        stop.store(true, Ordering::Relaxed);
    });
    // The pool grew while readers resolved — interns were never blocked
    // by the resolve storm.
    assert!(ValuePool::lookup("pool-conc-writer-0-0").is_some());
}

#[test]
fn batch_interning_is_atomic_per_record_under_contention() {
    // Threads intern the same record through `intern_batch`; the ids per
    // position must agree everywhere, including duplicate cells.
    let record = [
        "batch-conc-a",
        "batch-conc-b",
        "batch-conc-a",
        "batch-conc-c",
    ];
    let all: Vec<Vec<ValueId>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| scope.spawn(move || ValuePool::intern_batch(record)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panics"))
            .collect()
    });
    for ids in &all {
        assert_eq!(ids, &all[0], "batch ids must agree across threads");
        assert_eq!(ids[0], ids[2], "duplicate cells share one id");
        assert_eq!(ids[0].as_str(), Some("batch-conc-a"));
    }
}
