//! In-memory relational table substrate for ANMAT.
//!
//! The paper's demo system ingests CSV uploads, profiles them, and stores
//! results in MongoDB. This crate provides the equivalent storage layer as
//! a plain Rust library:
//!
//! * [`Value`] / [`Schema`] / [`Table`] — a columnar, string-centric
//!   relational store (PFDs operate on cell *strings*, so cells are text
//!   with an explicit null marker; typed interpretation happens at
//!   profiling time); tables are mutable streams — [`RowOp`]
//!   insert/delete/update with tombstoned slots and stable `RowId`s;
//! * [`csv`] — an RFC-4180 CSV reader/writer (quoting, embedded
//!   separators/newlines, escaped quotes);
//! * [`profile`] — the data profiler behind Figure 3: inferred column
//!   types, distinct/null statistics, and per-level pattern histograms; it
//!   also implements the `CandidateDependencies` pruning of the discovery
//!   algorithm (line 1 of Figure 2);
//! * [`tokenize`](mod@tokenize) — the `Tokenize` and `NGrams` functions
//!   of Figure 2, with token/char positions;
//! * [`pool`] — the dictionary-encoding layer: a process-global string
//!   interner ([`ValuePool`]) and the `Copy` cell handle ([`ValueId`])
//!   every downstream index and engine keys on.

pub mod cow;
pub mod csv;
pub mod error;
pub mod pool;
pub mod profile;
pub mod schema;
pub mod table;
pub mod tokenize;
pub mod value;

pub use cow::CowVec;
pub use error::TableError;
pub use pool::{PoolFootprint, ReclaimStats, ValueId, ValuePool};
pub use profile::{ColumnProfile, InferredType, PatternHistogram, TableProfile};
pub use schema::Schema;
pub use table::{MemFootprint, RowId, RowIdRemap, RowOp, Table, TableBuilder, TableSnapshot};
pub use tokenize::{
    for_each_ngram, for_each_prefix, for_each_token, ngrams, prefixes, tokenize, NGram, Token,
};
pub use value::{NullPolicy, Value};
