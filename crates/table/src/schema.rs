//! Table schemas: ordered, uniquely-named columns.

use crate::error::TableError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An ordered list of uniquely-named columns.
///
/// Serializes as a plain list of names; duplicate names are rejected both
/// at construction and at deserialization.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(try_from = "Vec<String>", into = "Vec<String>")]
pub struct Schema {
    names: Vec<String>,
    by_name: HashMap<String, usize>,
}

impl TryFrom<Vec<String>> for Schema {
    type Error = String;

    fn try_from(names: Vec<String>) -> Result<Schema, String> {
        Schema::new(names).map_err(|e| e.to_string())
    }
}

impl From<Schema> for Vec<String> {
    fn from(s: Schema) -> Vec<String> {
        s.names
    }
}

impl Schema {
    /// Build a schema; rejects duplicate names.
    pub fn new<I, S>(names: I) -> Result<Schema, TableError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        let mut by_name = HashMap::with_capacity(names.len());
        for (i, n) in names.iter().enumerate() {
            if by_name.insert(n.clone(), i).is_some() {
                return Err(TableError::DuplicateColumn { name: n.clone() });
            }
        }
        Ok(Schema { names, by_name })
    }

    /// Number of columns.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.names.len()
    }

    /// Column names in order.
    #[must_use]
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Index of a column by name.
    #[must_use]
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// Index of a column by name, as an error-carrying lookup.
    pub fn require(&self, name: &str) -> Result<usize, TableError> {
        self.index_of(name)
            .ok_or_else(|| TableError::UnknownColumn {
                name: name.to_string(),
            })
    }

    /// Name of the column at `idx` (panics if out of range).
    #[must_use]
    pub fn name(&self, idx: usize) -> &str {
        &self.names[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        let s = Schema::new(["zip", "city"]).unwrap();
        assert_eq!(s.arity(), 2);
        assert_eq!(s.index_of("zip"), Some(0));
        assert_eq!(s.index_of("city"), Some(1));
        assert_eq!(s.index_of("state"), None);
        assert_eq!(s.name(1), "city");
    }

    #[test]
    fn duplicate_rejected() {
        assert!(matches!(
            Schema::new(["a", "b", "a"]),
            Err(TableError::DuplicateColumn { .. })
        ));
    }

    #[test]
    fn require_errors_on_missing() {
        let s = Schema::new(["a"]).unwrap();
        assert!(s.require("a").is_ok());
        assert!(matches!(
            s.require("z"),
            Err(TableError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn serde_roundtrip_reindexes() {
        let s = Schema::new(["x", "y"]).unwrap();
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(json, r#"["x","y"]"#);
        let s2: Schema = serde_json::from_str(&json).unwrap();
        assert_eq!(s2.index_of("y"), Some(1));
        assert!(serde_json::from_str::<Schema>(r#"["a","a"]"#).is_err());
    }
}
