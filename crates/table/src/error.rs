//! Error type for the table substrate.

use std::fmt;

/// Errors from table construction, CSV parsing, and column access.
#[derive(Debug)]
pub enum TableError {
    /// A row had a different arity than the schema.
    ArityMismatch {
        /// 0-based row index (data rows, header excluded).
        row: usize,
        /// Number of fields found.
        found: usize,
        /// Number of fields expected.
        expected: usize,
    },
    /// A row id addressed no live row (out of range or tombstoned).
    NoSuchRow {
        /// The offending row id.
        row: usize,
    },
    /// A column name was not found in the schema.
    UnknownColumn {
        /// The offending name.
        name: String,
    },
    /// Two columns share the same name.
    DuplicateColumn {
        /// The duplicated name.
        name: String,
    },
    /// CSV syntax error.
    Csv {
        /// 1-based line at which the problem was detected.
        line: usize,
        /// Human-readable description.
        reason: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::ArityMismatch {
                row,
                found,
                expected,
            } => write!(f, "row {row} has {found} fields, schema expects {expected}"),
            TableError::NoSuchRow { row } => {
                write!(f, "row {row} is out of range or already deleted")
            }
            TableError::UnknownColumn { name } => write!(f, "unknown column `{name}`"),
            TableError::DuplicateColumn { name } => write!(f, "duplicate column `{name}`"),
            TableError::Csv { line, reason } => write!(f, "CSV error at line {line}: {reason}"),
            TableError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for TableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TableError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TableError {
    fn from(e: std::io::Error) -> Self {
        TableError::Io(e)
    }
}
