//! Dictionary-encoded value interning: [`ValuePool`] and [`ValueId`].
//!
//! PFD workloads are *distinct-value-centric*: the paper's zip/state/
//! phone/name columns have orders of magnitude fewer distinct values than
//! rows, and every expensive per-cell operation — hashing an index key,
//! matching a pattern, extracting a blocking capture — depends only on
//! the cell's *string*, not on which row holds it. Interning turns all of
//! those from per-row work into per-distinct-value work and shrinks every
//! downstream key from an owned `String` to a `Copy` 4-byte id.
//!
//! # Ownership and lifetime story
//!
//! The pool is a **process-global** interner, append-mostly:
//!
//! * The first time a string is interned, it is copied once into the pool
//!   and handed out as `&'static str` (`Box::leak`). Every later sighting
//!   of the same string resolves to the same [`ValueId`] with a hash
//!   lookup and *zero* allocation.
//! * By default ids are never recycled and strings are never dropped: a
//!   `ValueId` obtained anywhere in the process stays valid (and
//!   resolvable) for the process lifetime. This is what lets
//!   [`ValueId::as_str`] hand out `&'static str` without borrowing the
//!   pool, and what makes `ValueId` `Send + Copy` — the prerequisite for
//!   sharding rule state across threads without cloning string tables.
//! * For long-running, high-cardinality streams the leak is no longer
//!   acceptable, so the pool supports **explicit reclamation**
//!   ([`ValuePool::reclaim`]): a caller that can prove a set of ids is
//!   unreferenced (the stream engines prove it with batch-granular
//!   refcounts swept at a compaction epoch barrier — see
//!   `anmat_stream`) hands them back, their strings are unpublished and
//!   freed, and the ids are recycled through a free list. Each recycling
//!   bumps the id's **generation** ([`ValuePool::generation`]), so a
//!   holder that stashed `(id, generation)` can detect staleness in
//!   debug builds. Resolving a freed-and-not-yet-reused id panics
//!   (fail-stop, never a dangle): the slot is nulled before the string
//!   is dropped, and the drop itself is deferred one reclaim round as a
//!   grace period for racing lock-free readers.
//!
//! Id `0` is reserved for the null cell ([`ValueId::NULL`]); real strings
//! get ids from 1 upward in first-sighting order (or from the free list
//! after reclamation). The empty string, when interned explicitly (e.g.
//! via `Value::text("")`), gets an ordinary non-null id — nullness is a
//! property of the *cell*, not of string content.
//!
//! # Concurrency: lock-free resolution
//!
//! The pool is split into two halves with different synchronization:
//!
//! * **id → string** is an append-only *chunked store*: a fixed ladder of
//!   doubling-capacity chunks (64, 128, 256, … slots) whose addresses
//!   never change once allocated, plus an atomic length watermark.
//!   [`ValuePool::resolve`] is therefore **lock-free**: a relaxed
//!   watermark bounds check and two pointer chases (chunk, then the
//!   published entry), with acquire loads pairing against the publishing
//!   release stores. Resolution never blocks and is never blocked — not
//!   by other resolvers, and not by concurrent interning. This is what
//!   lets sharded stream workers render evidence strings on every thread
//!   without contending on the pool.
//! * **string → id** (interning) keeps an `RwLock`ed hash map: lookups of
//!   already-interned strings take the shared read lock; only a genuine
//!   *miss* — the first sighting of a string — takes the write lock to
//!   allocate and publish. [`ValuePool::intern_batch`] amortizes further:
//!   a whole record is looked up under one read-lock acquisition, and
//!   whatever missed is interned under one write-lock acquisition — the
//!   CSV ingest path pays two lock operations per *record*, not two per
//!   cell.
//! * **refcounts** ([`ValuePool::retain`]/[`ValuePool::release`]) live in
//!   a third ladder of plain `AtomicU32` cells parallel to the store —
//!   one relaxed RMW per call, no locks, no effect on intern/resolve.
//!   Only refcount-participating tables pay for them.
//!
//! Publishing protocol (single writer at a time — the map write lock
//! doubles as the store's append lock): write the entry pointer into its
//! slot with `Release`, then advance the watermark with `Release`.
//! Readers load the slot with `Acquire`; a non-null pointer therefore
//! carries a happens-before edge to the entry's contents. A legitimate
//! id always finds a non-null slot, because the id itself can only have
//! reached the resolving thread through the intern that published it (or
//! a synchronizing handoff downstream of it) — unless the id was
//! reclaimed, in which case the slot is null again and resolve panics.

use crate::value::Value;
use anmat_obs as obs;
use fxhash::FxHashMap;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, RwLock};

/// Bytes of *live* string storage (added at publish, subtracted at
/// reclaim). Maintained unconditionally — [`ValuePool::mem_footprint`]
/// must be exact whether or not the metrics recorder is on.
static STRING_BYTES: AtomicUsize = AtomicUsize::new(0);
/// Bytes of allocated chunk-ladder slot arrays (store + refcounts).
static CHUNK_BYTES: AtomicUsize = AtomicUsize::new(0);
/// Bytes of allocated refcount-ladder arrays.
static REF_BYTES: AtomicUsize = AtomicUsize::new(0);
/// Distinct strings currently published (excludes the null placeholder;
/// published − reclaimed).
static LIVE_STRINGS: AtomicUsize = AtomicUsize::new(0);
/// Cumulative count of strings reclaimed over the process lifetime.
static RECLAIMED_STRINGS: AtomicUsize = AtomicUsize::new(0);
/// Cumulative bytes of string payload reclaimed over the process
/// lifetime.
static RECLAIMED_BYTES: AtomicUsize = AtomicUsize::new(0);
/// The interning map's bucket capacity, mirrored out of the `RwLock` so
/// [`ValuePool::mem_footprint`] never takes the lock. Updated by every
/// path that holds the write lock (capacity only changes there).
static MAP_CAPACITY: AtomicUsize = AtomicUsize::new(0);
/// Lock-free hint: number of ids parked on the free list (so intern
/// misses skip the reclaimer mutex entirely until a reclaim happens).
static FREE_HINT: AtomicUsize = AtomicUsize::new(0);

/// A dictionary-encoded cell value: `0` = null, otherwise an index into
/// the global [`ValuePool`].
///
/// `ValueId` is `Copy`, 4 bytes, and hashes in a single multiply-rotate
/// step under the workspace's `FxHasher` — the property that makes
/// id-keyed index maps cheap. Equality of ids is equality of cell values
/// (same string, or both null), because the pool canonicalizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(u32);

impl ValueId {
    /// The id of the null cell.
    pub const NULL: ValueId = ValueId(0);

    /// Is this the null cell?
    #[must_use]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// The interned string, or `None` for null. `O(1)` and lock-free;
    /// the returned reference is `'static` (see the module docs for why).
    #[must_use]
    pub fn as_str(self) -> Option<&'static str> {
        if self.is_null() {
            None
        } else {
            Some(ValuePool::resolve(self))
        }
    }

    /// Materialize the owning [`Value`] (allocates for text).
    #[must_use]
    pub fn value(self) -> Value {
        match self.as_str() {
            None => Value::Null,
            Some(s) => Value::Text(s.to_string()),
        }
    }

    /// CSV-style rendering: nulls become the empty string.
    #[must_use]
    pub fn render(self) -> &'static str {
        self.as_str().unwrap_or("")
    }

    /// The raw id, for callers that key external structures (e.g. the
    /// pattern matcher's memo) on interned values.
    #[must_use]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for ValueId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.as_str() {
            None => write!(f, "∅"),
            Some(s) => write!(f, "{s}"),
        }
    }
}

/// log2 of the first chunk's slot count.
const FIRST_CHUNK_BITS: u32 = 6;
/// Chunk `k` holds `64 << k` slots; 27 chunks cover the full `u32` id
/// space (64 · (2²⁷ − 1) > 2³²).
const CHUNK_COUNT: usize = 27;

/// Id → (chunk index, offset within chunk). Chunk `k` covers ids
/// `[64·(2ᵏ−1), 64·(2ᵏ⁺¹−1))`.
fn locate(id: u32) -> (usize, usize) {
    let adjusted = u64::from(id) + (1u64 << FIRST_CHUNK_BITS);
    let level = (63 - adjusted.leading_zeros()) - FIRST_CHUNK_BITS;
    let offset = adjusted - (1u64 << (level + FIRST_CHUNK_BITS));
    (level as usize, offset as usize)
}

/// A published pool entry. Slots hold a *thin* pointer to one of these
/// (a `&'static str` is a fat pointer and cannot be stored atomically),
/// so a resolve is two pointer chases: slot → entry → bytes.
struct Entry(&'static str);

type Slot = AtomicPtr<Entry>;

/// The append-only id → string store. Chunk addresses never change once
/// allocated, so readers need no lock — only acquire loads pairing with
/// the writer's release stores. Entries are dropped only through
/// [`ValuePool::reclaim`]'s deferred-drop protocol.
struct Store {
    chunks: [AtomicPtr<Slot>; CHUNK_COUNT],
    /// Number of initialized slots (including the reserved null slot 0).
    /// Advanced with `Release` *after* the slot it covers is published.
    len: AtomicU32,
}

impl Store {
    fn new() -> Store {
        Store {
            chunks: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
            // Slot 0 is the null placeholder: counted, never published.
            len: AtomicU32::new(1),
        }
    }

    /// The slot array for `level`, allocating it if needed. Must only be
    /// called while holding the interning write lock (single writer).
    fn chunk(&self, level: usize) -> *mut Slot {
        let mut chunk = self.chunks[level].load(Ordering::Acquire);
        if chunk.is_null() {
            let cap = 1usize << (level as u32 + FIRST_CHUNK_BITS);
            let boxed: Box<[Slot]> = (0..cap)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect();
            chunk = Box::into_raw(boxed) as *mut Slot;
            self.chunks[level].store(chunk, Ordering::Release);
            CHUNK_BYTES.fetch_add(cap * std::mem::size_of::<Slot>(), Ordering::Relaxed);
            obs::counter!("pool.chunk_allocs").incr();
        }
        chunk
    }

    /// Append one leaked string at the watermark. Must only be called
    /// while holding the interning write lock (single writer), which
    /// makes the plain read-modify-write of `len` and the chunk
    /// allocation race-free.
    fn push(&self, s: &'static str) -> u32 {
        let id = self.len.load(Ordering::Relaxed);
        assert!(id < u32::MAX, "value pool exhausted u32 ids");
        let (level, offset) = locate(id);
        let chunk = self.chunk(level);
        let entry = Box::into_raw(Box::new(Entry(s)));
        // SAFETY: `offset` < the chunk's capacity by construction of
        // `locate`, and the chunk allocation above (or by an earlier
        // push) is visible to this sole writer.
        unsafe { (*chunk.add(offset)).store(entry, Ordering::Release) };
        self.len.store(id + 1, Ordering::Release);
        id
    }

    /// Republish a recycled id (below the watermark, slot currently
    /// null). Must only be called while holding the interning write
    /// lock.
    fn put(&self, id: u32, s: &'static str) {
        debug_assert!(id < self.len.load(Ordering::Relaxed));
        let (level, offset) = locate(id);
        let chunk = self.chunk(level);
        let entry = Box::into_raw(Box::new(Entry(s)));
        // SAFETY: as in `push` — in-bounds slot of a live chunk.
        unsafe { (*chunk.add(offset)).store(entry, Ordering::Release) };
    }

    /// Unpublish a slot: swap it to null and return the old entry
    /// pointer (null if the slot was never published or already
    /// reclaimed). Must only be called while holding the interning write
    /// lock. Racing lock-free readers that loaded the old pointer first
    /// are the reason the caller defers the actual drop.
    fn take(&self, id: u32) -> *mut Entry {
        if id == 0 || id >= self.len.load(Ordering::Relaxed) {
            return std::ptr::null_mut();
        }
        let (level, offset) = locate(id);
        let chunk = self.chunks[level].load(Ordering::Acquire);
        if chunk.is_null() {
            return std::ptr::null_mut();
        }
        // SAFETY: in-bounds slot of a live chunk (see `get`).
        unsafe { (*chunk.add(offset)).swap(std::ptr::null_mut(), Ordering::AcqRel) }
    }

    /// Lock-free id → string. `None` for ids this pool never produced
    /// (or reclaimed and has not yet reused).
    fn get(&self, id: u32) -> Option<&'static str> {
        // Relaxed is enough for the bounds filter: the authoritative
        // visibility check is the acquire load of the slot itself.
        if id >= self.len.load(Ordering::Relaxed) {
            return None;
        }
        let (level, offset) = locate(id);
        let chunk = self.chunks[level].load(Ordering::Acquire);
        if chunk.is_null() {
            return None;
        }
        // SAFETY: non-null chunks are live for the process lifetime and
        // `offset` is within the chunk's capacity.
        let entry = unsafe { (*chunk.add(offset)).load(Ordering::Acquire) };
        if entry.is_null() {
            return None;
        }
        // SAFETY: a non-null entry pointer was acquire-loaded, pairing
        // with the release store that published the fully-initialized
        // entry; reclaimed entries are dropped one full reclaim round
        // after being unpublished (and only for ids the caller proved
        // unreferenced), so a pointer read here is live.
        Some(unsafe { (*entry).0 })
    }
}

fn store() -> &'static Store {
    static STORE: OnceLock<Store> = OnceLock::new();
    STORE.get_or_init(Store::new)
}

/// The refcount ladder: `AtomicU32` cells parallel to the store's
/// slots, allocated chunk-at-a-time on first touch. Retain/release are
/// single relaxed RMWs — no locks, independent of intern/resolve.
struct RefLadder {
    chunks: [AtomicPtr<AtomicU32>; CHUNK_COUNT],
}

impl RefLadder {
    fn new() -> RefLadder {
        RefLadder {
            chunks: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
        }
    }

    /// The refcount cell for `id`, allocating the chunk if needed.
    /// Callable from any thread (CAS-installed; the loser frees its
    /// allocation).
    fn cell(&self, id: u32) -> &AtomicU32 {
        let (level, offset) = locate(id);
        let mut chunk = self.chunks[level].load(Ordering::Acquire);
        if chunk.is_null() {
            let cap = 1usize << (level as u32 + FIRST_CHUNK_BITS);
            let boxed: Box<[AtomicU32]> = (0..cap).map(|_| AtomicU32::new(0)).collect();
            let fresh = Box::into_raw(boxed) as *mut AtomicU32;
            match self.chunks[level].compare_exchange(
                std::ptr::null_mut(),
                fresh,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    REF_BYTES.fetch_add(cap * std::mem::size_of::<AtomicU32>(), Ordering::Relaxed);
                    chunk = fresh;
                }
                Err(winner) => {
                    // SAFETY: `fresh` was just allocated above and lost
                    // the race unpublished — reconstitute and drop.
                    drop(unsafe { Box::from_raw(std::ptr::slice_from_raw_parts_mut(fresh, cap)) });
                    chunk = winner;
                }
            }
        }
        // SAFETY: in-bounds cell of a never-freed chunk.
        unsafe { &*chunk.add(offset) }
    }
}

fn refs() -> &'static RefLadder {
    static REFS: OnceLock<RefLadder> = OnceLock::new();
    REFS.get_or_init(RefLadder::new)
}

/// Reclamation bookkeeping: the free list of recycled ids, per-id
/// generation tags, and allocations unpublished last round whose drop
/// was deferred (grace period for racing lock-free readers).
struct Reclaimer {
    free: Vec<u32>,
    gens: FxHashMap<u32, u32>,
    deferred: Vec<(*mut Entry, *mut str)>,
}

// SAFETY: the raw pointers are owned allocations in transit between
// unpublish and drop; they are only touched under the mutex.
unsafe impl Send for Reclaimer {}

fn reclaimer() -> &'static Mutex<Reclaimer> {
    static RECLAIMER: OnceLock<Mutex<Reclaimer>> = OnceLock::new();
    RECLAIMER.get_or_init(|| {
        Mutex::new(Reclaimer {
            free: Vec::new(),
            gens: FxHashMap::default(),
            deferred: Vec::new(),
        })
    })
}

/// String → id map. Keys borrow the leaked `'static` storage. Read locks
/// serve intern *hits*; the write lock serves misses and doubles as the
/// store's single-writer append lock.
fn map() -> &'static RwLock<FxHashMap<&'static str, u32>> {
    static MAP: OnceLock<RwLock<FxHashMap<&'static str, u32>>> = OnceLock::new();
    MAP.get_or_init(|| RwLock::new(FxHashMap::default()))
}

/// Leak `s` and publish it, recycling a free-listed id when one is
/// available. Must be called with the map write lock held.
fn publish(map: &mut FxHashMap<&'static str, u32>, s: &str) -> u32 {
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    STRING_BYTES.fetch_add(leaked.len(), Ordering::Relaxed);
    LIVE_STRINGS.fetch_add(1, Ordering::Relaxed);
    let id = if FREE_HINT.load(Ordering::Relaxed) > 0 {
        let mut rec = reclaimer().lock().expect("pool reclaimer poisoned");
        match rec.free.pop() {
            Some(id) => {
                FREE_HINT.fetch_sub(1, Ordering::Relaxed);
                store().put(id, leaked);
                id
            }
            None => store().push(leaked),
        }
    } else {
        store().push(leaked)
    };
    map.insert(leaked, id);
    id
}

/// The process-global string interner (all methods are associated
/// functions; there is exactly one pool per process).
#[derive(Debug)]
pub struct ValuePool;

impl ValuePool {
    /// Intern a string, returning its canonical id. Allocates only on the
    /// first sighting of `s`; afterwards this is a shared-lock hash
    /// lookup. For whole records prefer [`ValuePool::intern_batch`],
    /// which pays the lock costs once per record instead of once per
    /// cell.
    #[must_use]
    pub fn intern(s: &str) -> ValueId {
        {
            let map = map().read().expect("value pool poisoned");
            if let Some(&id) = map.get(s) {
                obs::counter!("pool.intern.hits").incr();
                return ValueId(id);
            }
        }
        let mut map = map().write().expect("value pool poisoned");
        // Re-check: another thread may have interned `s` between locks.
        if let Some(&id) = map.get(s) {
            obs::counter!("pool.intern.hits").incr();
            return ValueId(id);
        }
        obs::counter!("pool.intern.misses").incr();
        let id = publish(&mut map, s);
        MAP_CAPACITY.store(map.capacity(), Ordering::Relaxed);
        ValueId(id)
    }

    /// Intern a [`Value`] (`Null` maps to [`ValueId::NULL`]).
    #[must_use]
    pub fn intern_value(v: &Value) -> ValueId {
        match v.as_str() {
            None => ValueId::NULL,
            Some(s) => ValuePool::intern(s),
        }
    }

    /// Intern a whole record of strings with **one** read-lock
    /// acquisition (plus one write-lock acquisition only if any field is
    /// a first sighting) — the CSV-ingest fast path.
    #[must_use]
    pub fn intern_batch<'a>(fields: impl IntoIterator<Item = &'a str>) -> Vec<ValueId> {
        let fields: Vec<Option<&str>> = fields.into_iter().map(Some).collect();
        ValuePool::intern_all(&fields)
    }

    /// Intern a whole record of [`Value`]s with one read-lock acquisition
    /// (`Null` cells map to [`ValueId::NULL`] without touching the pool).
    #[must_use]
    pub fn intern_value_batch(values: &[Value]) -> Vec<ValueId> {
        let fields: Vec<Option<&str>> = values.iter().map(Value::as_str).collect();
        ValuePool::intern_all(&fields)
    }

    /// Intern a record of nullable borrowed fields with one read-lock
    /// acquisition — the borrowed-ingest fast path. `None` fields are
    /// null cells and map to [`ValueId::NULL`] without touching the
    /// pool; `Some` fields are interned exactly as [`ValuePool::intern`]
    /// would, so no owned `Value` (or `String`) is ever required between
    /// the CSV buffer and the id columns.
    #[must_use]
    pub fn intern_opt_batch(fields: &[Option<&str>]) -> Vec<ValueId> {
        ValuePool::intern_all(fields)
    }

    /// Batch-intern core: one read pass for the hits, then (only if
    /// needed) one write pass for the misses. `None` fields are null
    /// cells.
    fn intern_all(fields: &[Option<&str>]) -> Vec<ValueId> {
        let mut out = vec![ValueId::NULL; fields.len()];
        let mut misses: Vec<usize> = Vec::new();
        let mut hits = 0u64;
        {
            let map = map().read().expect("value pool poisoned");
            for (i, field) in fields.iter().enumerate() {
                let Some(s) = field else { continue };
                match map.get(s) {
                    Some(&id) => {
                        out[i] = ValueId(id);
                        hits += 1;
                    }
                    None => misses.push(i),
                }
            }
        }
        let mut inserted = 0u64;
        if !misses.is_empty() {
            let mut map = map().write().expect("value pool poisoned");
            for i in misses {
                let s = fields[i].expect("only non-null fields miss");
                out[i] = match map.get(s) {
                    Some(&id) => {
                        hits += 1;
                        ValueId(id)
                    }
                    None => {
                        inserted += 1;
                        ValueId(publish(&mut map, s))
                    }
                };
            }
            MAP_CAPACITY.store(map.capacity(), Ordering::Relaxed);
        }
        // One add per record, not per cell — the batch entry points stay
        // two lock operations and two counter bumps per record.
        obs::counter!("pool.intern.hits").add(hits);
        obs::counter!("pool.intern.misses").add(inserted);
        out
    }

    /// The id of an already-interned string, without interning. `None`
    /// means no cell anywhere in the process ever held `s` — useful for
    /// lookups that must not grow the pool.
    #[must_use]
    pub fn lookup(s: &str) -> Option<ValueId> {
        let map = map().read().expect("value pool poisoned");
        map.get(s).map(|&id| ValueId(id))
    }

    /// Resolve a non-null id to its interned string.
    ///
    /// **Lock-free**: a relaxed watermark check plus two acquire pointer
    /// chases — no `RwLock` is touched, so resolution never blocks (and
    /// is never blocked by) concurrent interning. This is the hot read
    /// path every shard worker leans on.
    ///
    /// # Panics
    /// Panics on [`ValueId::NULL`] (nulls have no string), on an id not
    /// produced by this process's pool, or on an id whose string was
    /// [`ValuePool::reclaim`]ed and not yet reused (fail-stop staleness
    /// detection — the slot is nulled before the string is freed).
    #[must_use]
    pub fn resolve(id: ValueId) -> &'static str {
        assert!(!id.is_null(), "ValueId::NULL has no string");
        store().get(id.0).unwrap_or_else(|| {
            panic!(
                "ValueId({}) is not live in this process's pool (never interned, or reclaimed)",
                id.0
            )
        })
    }

    /// Number of distinct ids ever allocated (excludes the null
    /// placeholder; includes reclaimed ids awaiting reuse). Lock-free
    /// (watermark read). For the count of strings currently resolvable
    /// see [`ValuePool::live_strings`].
    #[must_use]
    pub fn len() -> usize {
        store().len.load(Ordering::Acquire) as usize - 1
    }

    /// Number of distinct strings currently published (interned and not
    /// reclaimed). Lock-free.
    #[must_use]
    pub fn live_strings() -> usize {
        LIVE_STRINGS.load(Ordering::Relaxed)
    }

    /// Cumulative `(strings, payload bytes)` reclaimed over the process
    /// lifetime. Lock-free.
    #[must_use]
    pub fn reclaimed() -> (usize, usize) {
        (
            RECLAIMED_STRINGS.load(Ordering::Relaxed),
            RECLAIMED_BYTES.load(Ordering::Relaxed),
        )
    }

    /// Bump the refcount of a non-null id by one. A single relaxed RMW
    /// on the refcount ladder — no locks, no interaction with
    /// intern/resolve. Refcounts are a *caller protocol*: only tables
    /// that opted into reclamation maintain them, and only
    /// [`ValuePool::reclaim`] acts on them (indirectly, via the caller's
    /// zero-candidate sweep).
    pub fn retain(id: ValueId) {
        if !id.is_null() {
            refs().cell(id.0).fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drop one reference from a non-null id. Returns `true` when this
    /// release took the count to zero — the caller's cue to record the
    /// id as a reclaim candidate (to be re-checked at the barrier; the
    /// value may be retained again before then).
    pub fn release(id: ValueId) -> bool {
        if id.is_null() {
            return false;
        }
        let prev = refs().cell(id.0).fetch_sub(1, Ordering::Relaxed);
        debug_assert!(prev > 0, "ValueId({}) released below zero", id.0);
        prev == 1
    }

    /// The current refcount of an id (0 for null). Relaxed read — only
    /// meaningful at a quiescent barrier, which is exactly where the
    /// sweep consults it.
    #[must_use]
    pub fn refcount(id: ValueId) -> u32 {
        if id.is_null() {
            0
        } else {
            refs().cell(id.0).load(Ordering::Relaxed)
        }
    }

    /// Reclaim a set of ids the caller has proven unreferenced: each id
    /// still zero-refcounted has its string unpublished from the
    /// interning map, its store slot nulled (so a stale resolve panics
    /// instead of dangling), its id pushed onto the free list for
    /// recycling, and its generation tag bumped. The string and entry
    /// allocations are dropped at the *next* reclaim call — a one-round
    /// grace period for lock-free readers that raced the unpublish.
    ///
    /// Returns how many strings (and payload bytes) were actually
    /// reclaimed; ids that were re-retained since the caller recorded
    /// them, already reclaimed, or never interned are skipped.
    ///
    /// # Contract
    /// The caller must guarantee no other holder of these ids remains —
    /// the stream engines prove it with table-granular refcounts swept
    /// behind a compaction epoch barrier, protecting rule constants and
    /// live blocking keys explicitly. Reclaiming an id another engine
    /// still references leads to panics (or, for a reader racing two
    /// consecutive barriers, undefined behaviour) — which is why
    /// reclamation is opt-in per engine and the opting engine's value
    /// space must be disjoint from other pool users in the process.
    pub fn reclaim(ids: impl IntoIterator<Item = ValueId>) -> ReclaimStats {
        let mut map = map().write().expect("value pool poisoned");
        let mut rec = reclaimer().lock().expect("pool reclaimer poisoned");
        // The previous round's grace period is over: anything still
        // parked was unpublished a full barrier ago.
        for (entry, string) in rec.deferred.drain(..) {
            // SAFETY: both pointers are owned allocations unpublished at
            // the previous reclaim; by the caller contract no reader can
            // still hold them.
            unsafe {
                drop(Box::from_raw(entry));
                drop(Box::from_raw(string));
            }
        }
        let mut stats = ReclaimStats::default();
        for vid in ids {
            let id = vid.raw();
            if vid.is_null() || ValuePool::refcount(vid) != 0 {
                continue;
            }
            let entry = store().take(id);
            if entry.is_null() {
                continue; // never interned, or already reclaimed
            }
            // SAFETY: `entry` was just unpublished by this sole writer;
            // the pointed-to Entry stays valid until dropped from the
            // deferred list.
            let s: &'static str = unsafe { (*entry).0 };
            map.remove(s);
            stats.strings += 1;
            stats.bytes += s.len();
            rec.deferred
                .push((entry, std::ptr::from_ref::<str>(s).cast_mut()));
            rec.free.push(id);
            *rec.gens.entry(id).or_insert(0) += 1;
        }
        FREE_HINT.store(rec.free.len(), Ordering::Relaxed);
        MAP_CAPACITY.store(map.capacity(), Ordering::Relaxed);
        STRING_BYTES.fetch_sub(stats.bytes, Ordering::Relaxed);
        LIVE_STRINGS.fetch_sub(stats.strings, Ordering::Relaxed);
        RECLAIMED_STRINGS.fetch_add(stats.strings, Ordering::Relaxed);
        RECLAIMED_BYTES.fetch_add(stats.bytes, Ordering::Relaxed);
        obs::counter!("pool.reclaims").incr();
        obs::counter!("pool.reclaimed_strings").add(stats.strings as u64);
        obs::counter!("pool.reclaimed_bytes").add(stats.bytes as u64);
        stats
    }

    /// The generation tag of an id: how many times it has been reclaimed
    /// (0 for never-reclaimed ids). A holder that stashes
    /// `(id, generation)` at acquisition can assert the id still means
    /// the same string — the debug-build staleness check the reclaim
    /// protocol promises.
    #[must_use]
    pub fn generation(id: ValueId) -> u32 {
        let rec = reclaimer().lock().expect("pool reclaimer poisoned");
        rec.gens.get(&id.raw()).copied().unwrap_or(0)
    }

    /// Measure the pool's resident memory — the interned-string cost the
    /// table's own [`crate::MemFootprint`] deliberately excludes (ids are
    /// shared across all tables, so the pool is accounted once per
    /// process, not per replica).
    ///
    /// Counts every owned allocation: the chunk-ladder slot arrays, the
    /// published `Entry` cells, the live string bytes themselves, the
    /// refcount ladder, and the string → id map (its bucket array
    /// estimated from a mirrored capacity). **Lock-free** — every figure
    /// is an atomic read, so snapshotting never contends with interning.
    #[must_use]
    pub fn mem_footprint() -> PoolFootprint {
        let strings = LIVE_STRINGS.load(Ordering::Relaxed);
        let chunk_bytes = CHUNK_BYTES.load(Ordering::Relaxed);
        let entry_bytes = strings * std::mem::size_of::<Entry>();
        let string_bytes = STRING_BYTES.load(Ordering::Relaxed);
        let ref_bytes = REF_BYTES.load(Ordering::Relaxed);
        // Swiss-table layout: one (key, value) slot plus one control
        // byte per bucket of capacity.
        let map_bytes =
            MAP_CAPACITY.load(Ordering::Relaxed) * (std::mem::size_of::<(&'static str, u32)>() + 1);
        PoolFootprint {
            bytes: chunk_bytes + entry_bytes + string_bytes + map_bytes + ref_bytes,
            strings,
            chunk_bytes,
            entry_bytes,
            string_bytes,
            map_bytes,
            ref_bytes,
            reclaimed_strings: RECLAIMED_STRINGS.load(Ordering::Relaxed),
            reclaimed_bytes: RECLAIMED_BYTES.load(Ordering::Relaxed),
        }
    }
}

/// Resident-memory summary of the process-global [`ValuePool`] — see
/// [`ValuePool::mem_footprint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolFootprint {
    /// Total owned bytes (sum of the resident component fields).
    pub bytes: usize,
    /// Distinct strings currently published (live, not reclaimed).
    pub strings: usize,
    /// Allocated chunk-ladder slot arrays.
    pub chunk_bytes: usize,
    /// Published entry cells (one thin-pointer box per live string).
    pub entry_bytes: usize,
    /// The live string payloads themselves.
    pub string_bytes: usize,
    /// The string → id interning map (estimated from capacity).
    pub map_bytes: usize,
    /// The refcount ladder (allocated only when reclamation is in use).
    pub ref_bytes: usize,
    /// Cumulative strings reclaimed over the process lifetime.
    pub reclaimed_strings: usize,
    /// Cumulative string payload bytes reclaimed over the process
    /// lifetime.
    pub reclaimed_bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_resolve_roundtrip() {
        let id = ValuePool::intern("Los Angeles");
        assert_eq!(id.as_str(), Some("Los Angeles"));
        assert_eq!(ValuePool::resolve(id), "Los Angeles");
        assert!(!id.is_null());
    }

    #[test]
    fn interning_deduplicates() {
        let a = ValuePool::intern("dedup-probe");
        let b = ValuePool::intern("dedup-probe");
        assert_eq!(a, b);
        let c = ValuePool::intern("dedup-probe-other");
        assert_ne!(a, c);
    }

    #[test]
    fn null_id_behaviour() {
        assert!(ValueId::NULL.is_null());
        assert_eq!(ValueId::NULL.as_str(), None);
        assert_eq!(ValueId::NULL.render(), "");
        assert_eq!(ValueId::NULL.value(), Value::Null);
        assert_eq!(ValueId::NULL.to_string(), "∅");
    }

    #[test]
    fn value_interning() {
        assert_eq!(ValuePool::intern_value(&Value::Null), ValueId::NULL);
        let id = ValuePool::intern_value(&Value::text("probe-value"));
        assert_eq!(id.value(), Value::text("probe-value"));
    }

    #[test]
    fn empty_string_is_not_null() {
        // Nullness is a cell property; an explicit empty text cell keeps
        // its identity through the pool.
        let id = ValuePool::intern("");
        assert!(!id.is_null());
        assert_eq!(id.as_str(), Some(""));
    }

    #[test]
    fn lookup_does_not_intern() {
        assert_eq!(ValuePool::lookup("never-ingested-probe-xyzzy"), None);
        let id = ValuePool::intern("looked-up-probe");
        assert_eq!(ValuePool::lookup("looked-up-probe"), Some(id));
    }

    #[test]
    fn display_resolves() {
        let id = ValuePool::intern("display-probe");
        assert_eq!(id.to_string(), "display-probe");
    }

    #[test]
    fn locate_maps_chunk_boundaries() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(63), (0, 63));
        assert_eq!(locate(64), (1, 0));
        assert_eq!(locate(191), (1, 127));
        assert_eq!(locate(192), (2, 0));
        assert_eq!(locate(u32::MAX - 1), locate(u32::MAX - 1)); // no overflow
        let (level, _) = locate(u32::MAX - 1);
        assert!(level < CHUNK_COUNT);
    }

    #[test]
    fn resolution_survives_chunk_growth() {
        // Intern enough distinct strings to cross several chunk
        // boundaries, then verify every id still round-trips (chunk
        // addresses must be stable under growth).
        let ids: Vec<(ValueId, String)> = (0..500)
            .map(|i| {
                let s = format!("chunk-growth-probe-{i}");
                (ValuePool::intern(&s), s)
            })
            .collect();
        for (id, s) in &ids {
            assert_eq!(id.as_str(), Some(s.as_str()));
        }
    }

    #[test]
    fn intern_batch_matches_individual_interning() {
        let fields = ["batch-a", "batch-b", "batch-a", "batch-c"];
        let batch = ValuePool::intern_batch(fields);
        let individual: Vec<ValueId> = fields.iter().map(|s| ValuePool::intern(s)).collect();
        assert_eq!(batch, individual);
        assert_eq!(batch[0], batch[2], "duplicates within a record share ids");
    }

    #[test]
    fn mem_footprint_accounts_growth() {
        let before = ValuePool::mem_footprint();
        assert_eq!(
            before.bytes,
            before.chunk_bytes
                + before.entry_bytes
                + before.string_bytes
                + before.map_bytes
                + before.ref_bytes
        );
        let payload = "footprint-probe-with-a-reasonably-long-payload";
        let _ = ValuePool::intern(payload);
        let after = ValuePool::mem_footprint();
        assert_eq!(after.strings, before.strings + 1);
        assert!(after.string_bytes >= before.string_bytes + payload.len());
        assert!(after.bytes > before.bytes);
        assert!(after.chunk_bytes >= 64 * std::mem::size_of::<Slot>());
    }

    #[test]
    fn intern_value_batch_maps_nulls() {
        let values = vec![Value::text("vb-x"), Value::Null, Value::text("vb-y")];
        let ids = ValuePool::intern_value_batch(&values);
        assert_eq!(ids.len(), 3);
        assert!(!ids[0].is_null());
        assert!(ids[1].is_null());
        assert_eq!(ids[0], ValuePool::intern("vb-x"));
        assert_eq!(ids[2], ValuePool::intern("vb-y"));
    }

    #[test]
    fn retain_release_roundtrip() {
        let id = ValuePool::intern("refcount-probe");
        ValuePool::retain(id);
        ValuePool::retain(id);
        assert_eq!(ValuePool::refcount(id), 2);
        assert!(!ValuePool::release(id));
        assert!(ValuePool::release(id), "last release reports zero");
        assert_eq!(ValuePool::refcount(id), 0);
        // Null ids are inert on every refcount path.
        ValuePool::retain(ValueId::NULL);
        assert!(!ValuePool::release(ValueId::NULL));
        assert_eq!(ValuePool::refcount(ValueId::NULL), 0);
    }

    #[test]
    fn reclaim_frees_recycles_and_tags() {
        // Strings unique to this test: the reclaim contract demands the
        // caller's value space be disjoint from other pool users.
        let a = ValuePool::intern("rcl-pool-test-aaaa");
        let b = ValuePool::intern("rcl-pool-test-bbbb");
        ValuePool::retain(a);
        ValuePool::retain(b);
        let live_before = ValuePool::live_strings();
        let gen_before = ValuePool::generation(a);

        // A still-retained id must survive a reclaim attempt.
        let none = ValuePool::reclaim([a]);
        assert_eq!(none.strings, 0);
        assert_eq!(ValuePool::resolve(a), "rcl-pool-test-aaaa");

        ValuePool::release(a);
        ValuePool::release(b);
        let stats = ValuePool::reclaim([a, b]);
        assert_eq!(stats.strings, 2);
        assert_eq!(stats.bytes, "rcl-pool-test-aaaa".len() * 2);
        assert_eq!(ValuePool::live_strings(), live_before - 2);
        assert_eq!(ValuePool::generation(a), gen_before + 1);
        // The string is gone from the map and the slot is fail-stop.
        assert_eq!(ValuePool::lookup("rcl-pool-test-aaaa"), None);
        assert!(std::panic::catch_unwind(|| ValuePool::resolve(a)).is_err());
        // Double reclaim is a no-op.
        assert_eq!(ValuePool::reclaim([a]).strings, 0);

        // Re-interning recycles a freed id (watermark does not grow).
        let len_before = ValuePool::len();
        let a2 = ValuePool::intern("rcl-pool-test-cccc");
        assert_eq!(ValuePool::len(), len_before);
        assert!(a2 == a || a2 == b, "freed id recycled");
        assert_eq!(ValuePool::resolve(a2), "rcl-pool-test-cccc");
    }

    #[test]
    fn footprint_tracks_reclamation() {
        let s = "rcl-footprint-probe-string-payload";
        let id = ValuePool::intern(s);
        ValuePool::retain(id);
        ValuePool::release(id);
        let before = ValuePool::mem_footprint();
        let stats = ValuePool::reclaim([id]);
        assert_eq!(stats.strings, 1);
        let after = ValuePool::mem_footprint();
        assert_eq!(after.strings, before.strings - 1);
        assert_eq!(after.string_bytes, before.string_bytes - s.len());
        assert_eq!(after.reclaimed_strings, before.reclaimed_strings + 1);
        assert_eq!(after.reclaimed_bytes, before.reclaimed_bytes + s.len());
    }
}

/// What one [`ValuePool::reclaim`] call actually freed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReclaimStats {
    /// Strings unpublished and queued for drop.
    pub strings: usize,
    /// Payload bytes those strings held.
    pub bytes: usize,
}
