//! Dictionary-encoded value interning: [`ValuePool`] and [`ValueId`].
//!
//! PFD workloads are *distinct-value-centric*: the paper's zip/state/
//! phone/name columns have orders of magnitude fewer distinct values than
//! rows, and every expensive per-cell operation — hashing an index key,
//! matching a pattern, extracting a blocking capture — depends only on
//! the cell's *string*, not on which row holds it. Interning turns all of
//! those from per-row work into per-distinct-value work and shrinks every
//! downstream key from an owned `String` to a `Copy` 4-byte id.
//!
//! # Ownership and lifetime story
//!
//! The pool is a **process-global, append-only** interner:
//!
//! * The first time a string is interned, it is copied once into the pool
//!   and intentionally **leaked** (`Box::leak`), making its storage
//!   `&'static str`. Every later sighting of the same string resolves to
//!   the same [`ValueId`] with a hash lookup and *zero* allocation.
//! * Ids are never recycled and strings are never dropped: a `ValueId`
//!   obtained anywhere in the process stays valid (and resolvable) for
//!   the process lifetime. This is what lets [`ValueId::as_str`] hand out
//!   `&'static str` without borrowing the pool, and what makes `ValueId`
//!   `Send + Copy` — the prerequisite for sharding rule state across
//!   threads without cloning string tables.
//! * The deliberate leak is bounded by the number of *distinct* strings
//!   ever ingested, not by row count — the low-cardinality assumption
//!   that justifies dictionary encoding in the first place. A workload
//!   that streams unbounded distinct values would grow the pool
//!   unboundedly; such a workload also defeats dictionary encoding
//!   anywhere else, and the paper's PFD columns are categorically not of
//!   that shape.
//!
//! Id `0` is reserved for the null cell ([`ValueId::NULL`]); real strings
//! get ids from 1 upward in first-sighting order. The empty string, when
//! interned explicitly (e.g. via `Value::text("")`), gets an ordinary
//! non-null id — nullness is a property of the *cell*, not of string
//! content.
//!
//! # Concurrency: lock-free resolution
//!
//! The pool is split into two halves with different synchronization:
//!
//! * **id → string** is an append-only *chunked store*: a fixed ladder of
//!   doubling-capacity chunks (64, 128, 256, … slots) whose addresses
//!   never change once allocated, plus an atomic length watermark.
//!   [`ValuePool::resolve`] is therefore **lock-free**: a relaxed
//!   watermark bounds check and two pointer chases (chunk, then the
//!   published entry), with acquire loads pairing against the publishing
//!   release stores. Resolution never blocks and is never blocked — not
//!   by other resolvers, and not by concurrent interning. This is what
//!   lets sharded stream workers render evidence strings on every thread
//!   without contending on the pool.
//! * **string → id** (interning) keeps an `RwLock`ed hash map: lookups of
//!   already-interned strings take the shared read lock; only a genuine
//!   *miss* — the first sighting of a string — takes the write lock to
//!   allocate and publish. [`ValuePool::intern_batch`] amortizes further:
//!   a whole record is looked up under one read-lock acquisition, and
//!   whatever missed is interned under one write-lock acquisition — the
//!   CSV ingest path pays two lock operations per *record*, not two per
//!   cell.
//!
//! Publishing protocol (single writer at a time — the map write lock
//! doubles as the store's append lock): write the entry pointer into its
//! slot with `Release`, then advance the watermark with `Release`.
//! Readers load the slot with `Acquire`; a non-null pointer therefore
//! carries a happens-before edge to the entry's contents. A legitimate
//! id always finds a non-null slot, because the id itself can only have
//! reached the resolving thread through the intern that published it (or
//! a synchronizing handoff downstream of it).

use crate::value::Value;
use anmat_obs as obs;
use fxhash::FxHashMap;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicUsize, Ordering};
use std::sync::{OnceLock, RwLock};

/// Bytes of leaked string storage (summed at leak time). Maintained
/// unconditionally — [`ValuePool::mem_footprint`] must be exact whether
/// or not the metrics recorder is on.
static STRING_BYTES: AtomicUsize = AtomicUsize::new(0);
/// Bytes of allocated chunk-ladder slot arrays.
static CHUNK_BYTES: AtomicUsize = AtomicUsize::new(0);

/// A dictionary-encoded cell value: `0` = null, otherwise an index into
/// the global [`ValuePool`].
///
/// `ValueId` is `Copy`, 4 bytes, and hashes in a single multiply-rotate
/// step under the workspace's `FxHasher` — the property that makes
/// id-keyed index maps cheap. Equality of ids is equality of cell values
/// (same string, or both null), because the pool canonicalizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(u32);

impl ValueId {
    /// The id of the null cell.
    pub const NULL: ValueId = ValueId(0);

    /// Is this the null cell?
    #[must_use]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// The interned string, or `None` for null. `O(1)` and lock-free;
    /// the returned reference is `'static` (see the module docs for why).
    #[must_use]
    pub fn as_str(self) -> Option<&'static str> {
        if self.is_null() {
            None
        } else {
            Some(ValuePool::resolve(self))
        }
    }

    /// Materialize the owning [`Value`] (allocates for text).
    #[must_use]
    pub fn value(self) -> Value {
        match self.as_str() {
            None => Value::Null,
            Some(s) => Value::Text(s.to_string()),
        }
    }

    /// CSV-style rendering: nulls become the empty string.
    #[must_use]
    pub fn render(self) -> &'static str {
        self.as_str().unwrap_or("")
    }

    /// The raw id, for callers that key external structures (e.g. the
    /// pattern matcher's memo) on interned values.
    #[must_use]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for ValueId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.as_str() {
            None => write!(f, "∅"),
            Some(s) => write!(f, "{s}"),
        }
    }
}

/// log2 of the first chunk's slot count.
const FIRST_CHUNK_BITS: u32 = 6;
/// Chunk `k` holds `64 << k` slots; 27 chunks cover the full `u32` id
/// space (64 · (2²⁷ − 1) > 2³²).
const CHUNK_COUNT: usize = 27;

/// Id → (chunk index, offset within chunk). Chunk `k` covers ids
/// `[64·(2ᵏ−1), 64·(2ᵏ⁺¹−1))`.
fn locate(id: u32) -> (usize, usize) {
    let adjusted = u64::from(id) + (1u64 << FIRST_CHUNK_BITS);
    let level = (63 - adjusted.leading_zeros()) - FIRST_CHUNK_BITS;
    let offset = adjusted - (1u64 << (level + FIRST_CHUNK_BITS));
    (level as usize, offset as usize)
}

/// A published pool entry. Slots hold a *thin* pointer to one of these
/// (a `&'static str` is a fat pointer and cannot be stored atomically),
/// so a resolve is two pointer chases: slot → entry → bytes.
struct Entry(&'static str);

type Slot = AtomicPtr<Entry>;

/// The append-only id → string store. Chunk addresses never change once
/// allocated and entries are never dropped, so readers need no lock —
/// only acquire loads pairing with the writer's release stores.
struct Store {
    chunks: [AtomicPtr<Slot>; CHUNK_COUNT],
    /// Number of initialized slots (including the reserved null slot 0).
    /// Advanced with `Release` *after* the slot it covers is published.
    len: AtomicU32,
}

impl Store {
    fn new() -> Store {
        Store {
            chunks: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
            // Slot 0 is the null placeholder: counted, never published.
            len: AtomicU32::new(1),
        }
    }

    /// Append one leaked string. Must only be called while holding the
    /// interning write lock (single writer), which makes the plain
    /// read-modify-write of `len` and the chunk allocation race-free.
    fn push(&self, s: &'static str) -> u32 {
        let id = self.len.load(Ordering::Relaxed);
        assert!(id < u32::MAX, "value pool exhausted u32 ids");
        let (level, offset) = locate(id);
        let mut chunk = self.chunks[level].load(Ordering::Acquire);
        if chunk.is_null() {
            let cap = 1usize << (level as u32 + FIRST_CHUNK_BITS);
            let boxed: Box<[Slot]> = (0..cap)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect();
            chunk = Box::into_raw(boxed) as *mut Slot;
            self.chunks[level].store(chunk, Ordering::Release);
            CHUNK_BYTES.fetch_add(cap * std::mem::size_of::<Slot>(), Ordering::Relaxed);
            obs::counter!("pool.chunk_allocs").incr();
        }
        let entry = Box::into_raw(Box::new(Entry(s)));
        // SAFETY: `offset` < the chunk's capacity by construction of
        // `locate`, and the chunk allocation above (or by an earlier
        // push) is visible to this sole writer.
        unsafe { (*chunk.add(offset)).store(entry, Ordering::Release) };
        self.len.store(id + 1, Ordering::Release);
        id
    }

    /// Lock-free id → string. `None` for ids this pool never produced.
    fn get(&self, id: u32) -> Option<&'static str> {
        // Relaxed is enough for the bounds filter: the authoritative
        // visibility check is the acquire load of the slot itself.
        if id >= self.len.load(Ordering::Relaxed) {
            return None;
        }
        let (level, offset) = locate(id);
        let chunk = self.chunks[level].load(Ordering::Acquire);
        if chunk.is_null() {
            return None;
        }
        // SAFETY: non-null chunks are live for the process lifetime and
        // `offset` is within the chunk's capacity.
        let entry = unsafe { (*chunk.add(offset)).load(Ordering::Acquire) };
        if entry.is_null() {
            return None;
        }
        // SAFETY: a non-null entry pointer was acquire-loaded, pairing
        // with the release store that published the fully-initialized
        // entry; entries are never dropped.
        Some(unsafe { (*entry).0 })
    }
}

fn store() -> &'static Store {
    static STORE: OnceLock<Store> = OnceLock::new();
    STORE.get_or_init(Store::new)
}

/// String → id map. Keys borrow the leaked `'static` storage. Read locks
/// serve intern *hits*; the write lock serves misses and doubles as the
/// store's single-writer append lock.
fn map() -> &'static RwLock<FxHashMap<&'static str, u32>> {
    static MAP: OnceLock<RwLock<FxHashMap<&'static str, u32>>> = OnceLock::new();
    MAP.get_or_init(|| RwLock::new(FxHashMap::default()))
}

/// The process-global string interner (all methods are associated
/// functions; there is exactly one pool per process).
#[derive(Debug)]
pub struct ValuePool;

impl ValuePool {
    /// Intern a string, returning its canonical id. Allocates only on the
    /// first sighting of `s`; afterwards this is a shared-lock hash
    /// lookup. For whole records prefer [`ValuePool::intern_batch`],
    /// which pays the lock costs once per record instead of once per
    /// cell.
    #[must_use]
    pub fn intern(s: &str) -> ValueId {
        {
            let map = map().read().expect("value pool poisoned");
            if let Some(&id) = map.get(s) {
                obs::counter!("pool.intern.hits").incr();
                return ValueId(id);
            }
        }
        let mut map = map().write().expect("value pool poisoned");
        // Re-check: another thread may have interned `s` between locks.
        if let Some(&id) = map.get(s) {
            obs::counter!("pool.intern.hits").incr();
            return ValueId(id);
        }
        obs::counter!("pool.intern.misses").incr();
        let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
        STRING_BYTES.fetch_add(leaked.len(), Ordering::Relaxed);
        let id = store().push(leaked);
        map.insert(leaked, id);
        ValueId(id)
    }

    /// Intern a [`Value`] (`Null` maps to [`ValueId::NULL`]).
    #[must_use]
    pub fn intern_value(v: &Value) -> ValueId {
        match v.as_str() {
            None => ValueId::NULL,
            Some(s) => ValuePool::intern(s),
        }
    }

    /// Intern a whole record of strings with **one** read-lock
    /// acquisition (plus one write-lock acquisition only if any field is
    /// a first sighting) — the CSV-ingest fast path.
    #[must_use]
    pub fn intern_batch<'a>(fields: impl IntoIterator<Item = &'a str>) -> Vec<ValueId> {
        let fields: Vec<Option<&str>> = fields.into_iter().map(Some).collect();
        ValuePool::intern_all(&fields)
    }

    /// Intern a whole record of [`Value`]s with one read-lock acquisition
    /// (`Null` cells map to [`ValueId::NULL`] without touching the pool).
    #[must_use]
    pub fn intern_value_batch(values: &[Value]) -> Vec<ValueId> {
        let fields: Vec<Option<&str>> = values.iter().map(Value::as_str).collect();
        ValuePool::intern_all(&fields)
    }

    /// Intern a record of nullable borrowed fields with one read-lock
    /// acquisition — the borrowed-ingest fast path. `None` fields are
    /// null cells and map to [`ValueId::NULL`] without touching the
    /// pool; `Some` fields are interned exactly as [`ValuePool::intern`]
    /// would, so no owned `Value` (or `String`) is ever required between
    /// the CSV buffer and the id columns.
    #[must_use]
    pub fn intern_opt_batch(fields: &[Option<&str>]) -> Vec<ValueId> {
        ValuePool::intern_all(fields)
    }

    /// Batch-intern core: one read pass for the hits, then (only if
    /// needed) one write pass for the misses. `None` fields are null
    /// cells.
    fn intern_all(fields: &[Option<&str>]) -> Vec<ValueId> {
        let mut out = vec![ValueId::NULL; fields.len()];
        let mut misses: Vec<usize> = Vec::new();
        let mut hits = 0u64;
        {
            let map = map().read().expect("value pool poisoned");
            for (i, field) in fields.iter().enumerate() {
                let Some(s) = field else { continue };
                match map.get(s) {
                    Some(&id) => {
                        out[i] = ValueId(id);
                        hits += 1;
                    }
                    None => misses.push(i),
                }
            }
        }
        let mut inserted = 0u64;
        if !misses.is_empty() {
            let mut map = map().write().expect("value pool poisoned");
            for i in misses {
                let s = fields[i].expect("only non-null fields miss");
                out[i] = match map.get(s) {
                    Some(&id) => {
                        hits += 1;
                        ValueId(id)
                    }
                    None => {
                        inserted += 1;
                        let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
                        STRING_BYTES.fetch_add(leaked.len(), Ordering::Relaxed);
                        let id = store().push(leaked);
                        map.insert(leaked, id);
                        ValueId(id)
                    }
                };
            }
        }
        // One add per record, not per cell — the batch entry points stay
        // two lock operations and two counter bumps per record.
        obs::counter!("pool.intern.hits").add(hits);
        obs::counter!("pool.intern.misses").add(inserted);
        out
    }

    /// The id of an already-interned string, without interning. `None`
    /// means no cell anywhere in the process ever held `s` — useful for
    /// lookups that must not grow the pool.
    #[must_use]
    pub fn lookup(s: &str) -> Option<ValueId> {
        let map = map().read().expect("value pool poisoned");
        map.get(s).map(|&id| ValueId(id))
    }

    /// Resolve a non-null id to its interned string.
    ///
    /// **Lock-free**: a relaxed watermark check plus two acquire pointer
    /// chases — no `RwLock` is touched, so resolution never blocks (and
    /// is never blocked by) concurrent interning. This is the hot read
    /// path every shard worker leans on.
    ///
    /// # Panics
    /// Panics on [`ValueId::NULL`] (nulls have no string) or on an id not
    /// produced by this process's pool.
    #[must_use]
    pub fn resolve(id: ValueId) -> &'static str {
        assert!(!id.is_null(), "ValueId::NULL has no string");
        store()
            .get(id.0)
            .unwrap_or_else(|| panic!("ValueId({}) was not produced by this process's pool", id.0))
    }

    /// Number of distinct strings interned so far (excludes the null
    /// placeholder). Lock-free (watermark read).
    #[must_use]
    pub fn len() -> usize {
        store().len.load(Ordering::Acquire) as usize - 1
    }

    /// Measure the pool's resident memory — the interned-string cost the
    /// table's own [`crate::MemFootprint`] deliberately excludes (ids are
    /// shared across all tables, so the pool is accounted once per
    /// process, not per replica).
    ///
    /// Counts every owned allocation: the chunk-ladder slot arrays, the
    /// published `Entry` cells, the leaked string bytes themselves, and
    /// the string → id map (its bucket array estimated from capacity).
    /// Takes the map read lock; intended for summaries and snapshots,
    /// not hot loops.
    #[must_use]
    pub fn mem_footprint() -> PoolFootprint {
        let strings = ValuePool::len();
        let chunk_bytes = CHUNK_BYTES.load(Ordering::Relaxed);
        let entry_bytes = strings * std::mem::size_of::<Entry>();
        let string_bytes = STRING_BYTES.load(Ordering::Relaxed);
        let map_bytes = {
            let map = map().read().expect("value pool poisoned");
            // Swiss-table layout: one (key, value) slot plus one control
            // byte per bucket of capacity.
            map.capacity() * (std::mem::size_of::<(&'static str, u32)>() + 1)
        };
        PoolFootprint {
            bytes: chunk_bytes + entry_bytes + string_bytes + map_bytes,
            strings,
            chunk_bytes,
            entry_bytes,
            string_bytes,
            map_bytes,
        }
    }
}

/// Resident-memory summary of the process-global [`ValuePool`] — see
/// [`ValuePool::mem_footprint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolFootprint {
    /// Total owned bytes (sum of the component fields).
    pub bytes: usize,
    /// Distinct strings interned (excludes the null placeholder).
    pub strings: usize,
    /// Allocated chunk-ladder slot arrays.
    pub chunk_bytes: usize,
    /// Published entry cells (one thin-pointer box per string).
    pub entry_bytes: usize,
    /// The leaked string payloads themselves.
    pub string_bytes: usize,
    /// The string → id interning map (estimated from capacity).
    pub map_bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_resolve_roundtrip() {
        let id = ValuePool::intern("Los Angeles");
        assert_eq!(id.as_str(), Some("Los Angeles"));
        assert_eq!(ValuePool::resolve(id), "Los Angeles");
        assert!(!id.is_null());
    }

    #[test]
    fn interning_deduplicates() {
        let a = ValuePool::intern("dedup-probe");
        let b = ValuePool::intern("dedup-probe");
        assert_eq!(a, b);
        let c = ValuePool::intern("dedup-probe-other");
        assert_ne!(a, c);
    }

    #[test]
    fn null_id_behaviour() {
        assert!(ValueId::NULL.is_null());
        assert_eq!(ValueId::NULL.as_str(), None);
        assert_eq!(ValueId::NULL.render(), "");
        assert_eq!(ValueId::NULL.value(), Value::Null);
        assert_eq!(ValueId::NULL.to_string(), "∅");
    }

    #[test]
    fn value_interning() {
        assert_eq!(ValuePool::intern_value(&Value::Null), ValueId::NULL);
        let id = ValuePool::intern_value(&Value::text("probe-value"));
        assert_eq!(id.value(), Value::text("probe-value"));
    }

    #[test]
    fn empty_string_is_not_null() {
        // Nullness is a cell property; an explicit empty text cell keeps
        // its identity through the pool.
        let id = ValuePool::intern("");
        assert!(!id.is_null());
        assert_eq!(id.as_str(), Some(""));
    }

    #[test]
    fn lookup_does_not_intern() {
        assert_eq!(ValuePool::lookup("never-ingested-probe-xyzzy"), None);
        let id = ValuePool::intern("looked-up-probe");
        assert_eq!(ValuePool::lookup("looked-up-probe"), Some(id));
    }

    #[test]
    fn display_resolves() {
        let id = ValuePool::intern("display-probe");
        assert_eq!(id.to_string(), "display-probe");
    }

    #[test]
    fn locate_maps_chunk_boundaries() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(63), (0, 63));
        assert_eq!(locate(64), (1, 0));
        assert_eq!(locate(191), (1, 127));
        assert_eq!(locate(192), (2, 0));
        assert_eq!(locate(u32::MAX - 1), locate(u32::MAX - 1)); // no overflow
        let (level, _) = locate(u32::MAX - 1);
        assert!(level < CHUNK_COUNT);
    }

    #[test]
    fn resolution_survives_chunk_growth() {
        // Intern enough distinct strings to cross several chunk
        // boundaries, then verify every id still round-trips (chunk
        // addresses must be stable under growth).
        let ids: Vec<(ValueId, String)> = (0..500)
            .map(|i| {
                let s = format!("chunk-growth-probe-{i}");
                (ValuePool::intern(&s), s)
            })
            .collect();
        for (id, s) in &ids {
            assert_eq!(id.as_str(), Some(s.as_str()));
        }
    }

    #[test]
    fn intern_batch_matches_individual_interning() {
        let fields = ["batch-a", "batch-b", "batch-a", "batch-c"];
        let batch = ValuePool::intern_batch(fields);
        let individual: Vec<ValueId> = fields.iter().map(|s| ValuePool::intern(s)).collect();
        assert_eq!(batch, individual);
        assert_eq!(batch[0], batch[2], "duplicates within a record share ids");
    }

    #[test]
    fn mem_footprint_accounts_growth() {
        let before = ValuePool::mem_footprint();
        assert_eq!(before.strings, ValuePool::len());
        assert_eq!(
            before.bytes,
            before.chunk_bytes + before.entry_bytes + before.string_bytes + before.map_bytes
        );
        let payload = "footprint-probe-with-a-reasonably-long-payload";
        let _ = ValuePool::intern(payload);
        let after = ValuePool::mem_footprint();
        assert_eq!(after.strings, before.strings + 1);
        assert!(after.string_bytes >= before.string_bytes + payload.len());
        assert!(after.bytes > before.bytes);
        assert!(after.chunk_bytes >= 64 * std::mem::size_of::<Slot>());
    }

    #[test]
    fn intern_value_batch_maps_nulls() {
        let values = vec![Value::text("vb-x"), Value::Null, Value::text("vb-y")];
        let ids = ValuePool::intern_value_batch(&values);
        assert_eq!(ids.len(), 3);
        assert!(!ids[0].is_null());
        assert!(ids[1].is_null());
        assert_eq!(ids[0], ValuePool::intern("vb-x"));
        assert_eq!(ids[2], ValuePool::intern("vb-y"));
    }
}
