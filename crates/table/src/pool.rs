//! Dictionary-encoded value interning: [`ValuePool`] and [`ValueId`].
//!
//! PFD workloads are *distinct-value-centric*: the paper's zip/state/
//! phone/name columns have orders of magnitude fewer distinct values than
//! rows, and every expensive per-cell operation — hashing an index key,
//! matching a pattern, extracting a blocking capture — depends only on
//! the cell's *string*, not on which row holds it. Interning turns all of
//! those from per-row work into per-distinct-value work and shrinks every
//! downstream key from an owned `String` to a `Copy` 4-byte id.
//!
//! # Ownership and lifetime story
//!
//! The pool is a **process-global, append-only** interner:
//!
//! * The first time a string is interned, it is copied once into the pool
//!   and intentionally **leaked** (`Box::leak`), making its storage
//!   `&'static str`. Every later sighting of the same string resolves to
//!   the same [`ValueId`] with a hash lookup and *zero* allocation.
//! * Ids are never recycled and strings are never dropped: a `ValueId`
//!   obtained anywhere in the process stays valid (and resolvable) for
//!   the process lifetime. This is what lets [`ValueId::as_str`] hand out
//!   `&'static str` without borrowing the pool, and what makes `ValueId`
//!   `Send + Copy` — the prerequisite for sharding rule state across
//!   threads without cloning string tables.
//! * The deliberate leak is bounded by the number of *distinct* strings
//!   ever ingested, not by row count — the low-cardinality assumption
//!   that justifies dictionary encoding in the first place. A workload
//!   that streams unbounded distinct values would grow the pool
//!   unboundedly; such a workload also defeats dictionary encoding
//!   anywhere else, and the paper's PFD columns are categorically not of
//!   that shape.
//!
//! Id `0` is reserved for the null cell ([`ValueId::NULL`]); real strings
//! get ids from 1 upward in first-sighting order. The empty string, when
//! interned explicitly (e.g. via `Value::text("")`), gets an ordinary
//! non-null id — nullness is a property of the *cell*, not of string
//! content.
//!
//! Interning is thread-safe (`RwLock`; reads are lock-shared and writes
//! only happen on first sighting of a string), so tables can be built
//! from multiple threads and the resulting ids are globally comparable.

use crate::value::Value;
use fxhash::FxHashMap;
use std::sync::{OnceLock, RwLock};

/// A dictionary-encoded cell value: `0` = null, otherwise an index into
/// the global [`ValuePool`].
///
/// `ValueId` is `Copy`, 4 bytes, and hashes in a single multiply-rotate
/// step under the workspace's `FxHasher` — the property that makes
/// id-keyed index maps cheap. Equality of ids is equality of cell values
/// (same string, or both null), because the pool canonicalizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(u32);

impl ValueId {
    /// The id of the null cell.
    pub const NULL: ValueId = ValueId(0);

    /// Is this the null cell?
    #[must_use]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// The interned string, or `None` for null. `O(1)`; the returned
    /// reference is `'static` (see the module docs for why).
    #[must_use]
    pub fn as_str(self) -> Option<&'static str> {
        if self.is_null() {
            None
        } else {
            Some(ValuePool::resolve(self))
        }
    }

    /// Materialize the owning [`Value`] (allocates for text).
    #[must_use]
    pub fn value(self) -> Value {
        match self.as_str() {
            None => Value::Null,
            Some(s) => Value::Text(s.to_string()),
        }
    }

    /// CSV-style rendering: nulls become the empty string.
    #[must_use]
    pub fn render(self) -> &'static str {
        self.as_str().unwrap_or("")
    }

    /// The raw id, for callers that key external structures (e.g. the
    /// pattern matcher's memo) on interned values.
    #[must_use]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for ValueId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.as_str() {
            None => write!(f, "∅"),
            Some(s) => write!(f, "{s}"),
        }
    }
}

struct PoolInner {
    /// String → id. Keys borrow the leaked `'static` storage in `strings`.
    map: FxHashMap<&'static str, u32>,
    /// Id → string; slot 0 is the null placeholder and never handed out.
    strings: Vec<&'static str>,
}

fn pool() -> &'static RwLock<PoolInner> {
    static POOL: OnceLock<RwLock<PoolInner>> = OnceLock::new();
    POOL.get_or_init(|| {
        RwLock::new(PoolInner {
            map: FxHashMap::default(),
            strings: vec![""], // slot 0 = null placeholder
        })
    })
}

/// The process-global string interner (all methods are associated
/// functions; there is exactly one pool per process).
#[derive(Debug)]
pub struct ValuePool;

impl ValuePool {
    /// Intern a string, returning its canonical id. Allocates only on the
    /// first sighting of `s`; afterwards this is a shared-lock hash
    /// lookup.
    #[must_use]
    pub fn intern(s: &str) -> ValueId {
        {
            let inner = pool().read().expect("value pool poisoned");
            if let Some(&id) = inner.map.get(s) {
                return ValueId(id);
            }
        }
        let mut inner = pool().write().expect("value pool poisoned");
        // Re-check: another thread may have interned `s` between locks.
        if let Some(&id) = inner.map.get(s) {
            return ValueId(id);
        }
        let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
        let id = u32::try_from(inner.strings.len()).expect("value pool exhausted u32 ids");
        inner.strings.push(leaked);
        inner.map.insert(leaked, id);
        ValueId(id)
    }

    /// Intern a [`Value`] (`Null` maps to [`ValueId::NULL`]).
    #[must_use]
    pub fn intern_value(v: &Value) -> ValueId {
        match v.as_str() {
            None => ValueId::NULL,
            Some(s) => ValuePool::intern(s),
        }
    }

    /// The id of an already-interned string, without interning. `None`
    /// means no cell anywhere in the process ever held `s` — useful for
    /// lookups that must not grow the pool.
    #[must_use]
    pub fn lookup(s: &str) -> Option<ValueId> {
        let inner = pool().read().expect("value pool poisoned");
        inner.map.get(s).map(|&id| ValueId(id))
    }

    /// Resolve a non-null id to its interned string.
    ///
    /// # Panics
    /// Panics on [`ValueId::NULL`] (nulls have no string) or on an id not
    /// produced by this process's pool.
    #[must_use]
    pub fn resolve(id: ValueId) -> &'static str {
        assert!(!id.is_null(), "ValueId::NULL has no string");
        let inner = pool().read().expect("value pool poisoned");
        inner.strings[id.0 as usize]
    }

    /// Number of distinct strings interned so far (excludes the null
    /// placeholder).
    #[must_use]
    pub fn len() -> usize {
        let inner = pool().read().expect("value pool poisoned");
        inner.strings.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_resolve_roundtrip() {
        let id = ValuePool::intern("Los Angeles");
        assert_eq!(id.as_str(), Some("Los Angeles"));
        assert_eq!(ValuePool::resolve(id), "Los Angeles");
        assert!(!id.is_null());
    }

    #[test]
    fn interning_deduplicates() {
        let a = ValuePool::intern("dedup-probe");
        let b = ValuePool::intern("dedup-probe");
        assert_eq!(a, b);
        let c = ValuePool::intern("dedup-probe-other");
        assert_ne!(a, c);
    }

    #[test]
    fn null_id_behaviour() {
        assert!(ValueId::NULL.is_null());
        assert_eq!(ValueId::NULL.as_str(), None);
        assert_eq!(ValueId::NULL.render(), "");
        assert_eq!(ValueId::NULL.value(), Value::Null);
        assert_eq!(ValueId::NULL.to_string(), "∅");
    }

    #[test]
    fn value_interning() {
        assert_eq!(ValuePool::intern_value(&Value::Null), ValueId::NULL);
        let id = ValuePool::intern_value(&Value::text("probe-value"));
        assert_eq!(id.value(), Value::text("probe-value"));
    }

    #[test]
    fn empty_string_is_not_null() {
        // Nullness is a cell property; an explicit empty text cell keeps
        // its identity through the pool.
        let id = ValuePool::intern("");
        assert!(!id.is_null());
        assert_eq!(id.as_str(), Some(""));
    }

    #[test]
    fn lookup_does_not_intern() {
        assert_eq!(ValuePool::lookup("never-ingested-probe-xyzzy"), None);
        let id = ValuePool::intern("looked-up-probe");
        assert_eq!(ValuePool::lookup("looked-up-probe"), Some(id));
    }

    #[test]
    fn display_resolves() {
        let id = ValuePool::intern("display-probe");
        assert_eq!(id.to_string(), "display-probe");
    }
}
