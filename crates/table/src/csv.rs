//! RFC-4180 CSV reading and writing.
//!
//! Hand-rolled rather than a dependency: the demo only needs headers,
//! quoting (embedded commas, quotes, newlines) and a configurable
//! delimiter, and owning the parser keeps error positions precise.
//!
//! Ingest is allocation-free for unquoted input: [`RawRecords`] yields
//! records whose fields borrow the input buffer directly (one byte scan
//! finds the record terminator, fields are delimiter-split spans), and
//! [`read_str_with`] feeds those borrowed fields straight into the
//! [`ValuePool`] batch interner — no per-field `String` is ever built.
//! Records containing a quote fall back to an owned state machine whose
//! scratch buffers are reused across records.

use crate::error::TableError;
use crate::pool::{ValueId, ValuePool};
use crate::schema::Schema;
use crate::table::Table;
use crate::value::NullPolicy;
use anmat_obs as obs;
use std::io::{BufReader, Read, Write};
use std::path::Path;

/// CSV parsing/writing options.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter (default `,`).
    pub delimiter: char,
    /// Whether the first record is a header row (default true).
    pub has_header: bool,
    /// Which field strings read back as null (shared with
    /// [`Value::from_field`](crate::value::Value::from_field)'s default;
    /// extend for dataset-specific
    /// markers like `nan` or `-`).
    pub null_policy: NullPolicy,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            delimiter: ',',
            has_header: true,
            null_policy: NullPolicy::default(),
        }
    }
}

/// Read a table from CSV text with default options.
pub fn read_str(input: &str) -> Result<Table, TableError> {
    read_str_with(input, CsvOptions::default())
}

/// Read a table from CSV text.
///
/// Streams records straight from the input buffer into the table: each
/// record's fields are interned as one [`ValuePool`] batch (borrowed
/// slices on the unquoted fast path) and appended via
/// [`Table::push_id_row`], so no intermediate `Vec<Vec<String>>` — and
/// for unquoted input no owned field at all — is materialized.
pub fn read_str_with(input: &str, opts: CsvOptions) -> Result<Table, TableError> {
    let mut records = parse_raw_records_borrowed(input, opts.delimiter);
    let policy = &opts.null_policy;
    let mut first_data: Option<Vec<ValueId>> = None;
    let schema = if opts.has_header {
        match records.next_record()? {
            Some(header) => Schema::new(header.iter().map(str::to_string).collect::<Vec<_>>())?,
            None => Schema::new(Vec::<String>::new())?,
        }
    } else {
        // Peek arity from the first record; synthesize c0..cN names.
        match records.next_record()? {
            Some(rec) => {
                let schema = Schema::new((0..rec.len()).map(|i| format!("c{i}")))?;
                first_data = Some(intern_record(&rec, policy));
                schema
            }
            None => Schema::new(Vec::<String>::new())?,
        }
    };
    let mut table = Table::empty(schema);
    if let Some(ids) = first_data {
        table.push_id_row(ids)?;
    }
    while let Some(rec) = records.next_record()? {
        let ids = intern_record(&rec, policy);
        table.push_id_row(ids)?;
    }
    Ok(table)
}

/// Intern one record's fields as a single pool batch, mapping
/// policy-null fields to [`ValueId::NULL`] without touching the pool.
fn intern_record(rec: &RecordView<'_>, policy: &NullPolicy) -> Vec<ValueId> {
    let fields: Vec<Option<&str>> = rec
        .iter()
        .map(|f| if policy.is_null(f) { None } else { Some(f) })
        .collect();
    ValuePool::intern_opt_batch(&fields)
}

/// Read a table from a file path.
pub fn read_path(path: impl AsRef<Path>) -> Result<Table, TableError> {
    read_path_with(path, CsvOptions::default())
}

/// Read a table from a file path with options.
pub fn read_path_with(path: impl AsRef<Path>, opts: CsvOptions) -> Result<Table, TableError> {
    let mut reader = BufReader::new(std::fs::File::open(path)?);
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    read_str_with(&buf, opts)
}

/// Serialize a table to CSV text (always writes a header).
#[must_use]
pub fn write_str(table: &Table) -> String {
    write_str_with(table, CsvOptions::default())
}

/// Serialize a table to CSV text with options.
#[must_use]
pub fn write_str_with(table: &Table, opts: CsvOptions) -> String {
    let mut out = String::new();
    if opts.has_header {
        write_record(
            &mut out,
            table.schema().names().iter().map(String::as_str),
            opts.delimiter,
        );
    }
    // Tombstoned rows are not part of the table's live contents.
    for r in table.iter_live() {
        write_record(
            &mut out,
            (0..table.column_count()).map(|c| table.cell_str(r, c).unwrap_or("")),
            opts.delimiter,
        );
    }
    out
}

/// Write a table to a file.
pub fn write_path(table: &Table, path: impl AsRef<Path>) -> Result<(), TableError> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(write_str(table).as_bytes())?;
    Ok(())
}

/// Stream a table from any reader.
pub fn read_from(reader: impl Read, opts: CsvOptions) -> Result<Table, TableError> {
    let mut buf = String::new();
    BufReader::new(reader).read_to_string(&mut buf)?;
    read_str_with(&buf, opts)
}

/// Parse CSV text into raw records of fields (no header handling, no
/// value conversion). Public so op-log style formats — each record an
/// op code plus fields, as in `anmat stream --ops` — can reuse the
/// RFC-4180 quoting rules instead of naive comma splitting.
pub fn parse_raw_records(input: &str, delimiter: char) -> Result<Vec<Vec<String>>, TableError> {
    let mut reader = parse_raw_records_borrowed(input, delimiter);
    let mut records = Vec::new();
    while let Some(rec) = reader.next_record()? {
        records.push(rec.iter().map(str::to_string).collect());
    }
    Ok(records)
}

/// Streaming record reader whose fields borrow the input buffer — the
/// allocation-free ingest front-end. See [`RawRecords`].
pub fn parse_raw_records_borrowed(input: &str, delimiter: char) -> RawRecords<'_> {
    RawRecords::new(input, delimiter)
}

/// Streaming CSV record reader yielding borrowed fields.
///
/// Two paths, chosen per record:
///
/// * **Borrowed fast path** (ASCII delimiter, no `"` before the record
///   terminator): one forward byte scan finds the terminator, fields
///   are recorded as byte spans into the input, and
///   [`RecordView::field`] returns slices of the original buffer. No
///   allocation beyond the reused span scratch.
/// * **Owned fallback** (a quote anywhere in the line, or a non-ASCII
///   delimiter): the full RFC-4180 state machine runs for this record
///   only, accumulating into scratch `String`s whose capacity is
///   retained across records.
///
/// Which path served each record is observable via
/// [`RecordView::is_borrowed`] and the `ingest.borrowed_records` /
/// `ingest.owned_records` counters. Blank lines are skipped and error
/// positions (1-based line numbers) match the batch parser exactly.
#[derive(Debug)]
pub struct RawRecords<'a> {
    input: &'a str,
    delimiter: char,
    /// The delimiter as a single byte when ASCII — precondition for the
    /// borrowed byte-scan fast path (an ASCII byte never occurs inside
    /// a multi-byte UTF-8 sequence, so byte-level splitting is safe).
    ascii_delim: Option<u8>,
    pos: usize,
    line: usize,
    /// Scratch: byte spans of the current borrowed record's fields.
    spans: Vec<(usize, usize)>,
    /// Scratch: owned fields of the current fallback record (capacity
    /// reused; only `owned_len` entries are live).
    owned: Vec<String>,
    owned_len: usize,
    /// Scratch: the field the fallback machine is accumulating.
    cur: String,
    borrowed: bool,
}

/// One record yielded by [`RawRecords::next_record`]. Fields borrow
/// either the input buffer (fast path) or the reader's scratch
/// (fallback); both live until the next `next_record` call.
#[derive(Debug)]
pub struct RecordView<'r> {
    text: &'r str,
    spans: &'r [(usize, usize)],
    owned: &'r [String],
    borrowed: bool,
}

impl<'r> RecordView<'r> {
    /// Number of fields in the record.
    #[must_use]
    pub fn len(&self) -> usize {
        if self.borrowed {
            self.spans.len()
        } else {
            self.owned.len()
        }
    }

    /// Is the record empty? (Never true for yielded records — blank
    /// lines are skipped — but part of the container contract.)
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th field.
    ///
    /// # Panics
    /// If `i >= self.len()`.
    #[must_use]
    pub fn field(&self, i: usize) -> &'r str {
        if self.borrowed {
            let (start, end) = self.spans[i];
            &self.text[start..end]
        } else {
            &self.owned[i]
        }
    }

    /// Iterate the record's fields in order.
    pub fn iter(&self) -> impl Iterator<Item = &'r str> + '_ {
        (0..self.len()).map(move |i| self.field(i))
    }

    /// Did this record take the zero-copy fast path?
    #[must_use]
    pub fn is_borrowed(&self) -> bool {
        self.borrowed
    }
}

impl<'a> RawRecords<'a> {
    /// A reader over `input` with the given field delimiter.
    #[must_use]
    pub fn new(input: &'a str, delimiter: char) -> RawRecords<'a> {
        RawRecords {
            input,
            delimiter,
            ascii_delim: u8::try_from(delimiter).ok(),
            pos: 0,
            line: 1,
            spans: Vec::new(),
            owned: Vec::new(),
            owned_len: 0,
            cur: String::new(),
            borrowed: false,
        }
    }

    /// The next record, or `None` at end of input. The returned view
    /// borrows the reader; drop it before calling again.
    pub fn next_record(&mut self) -> Result<Option<RecordView<'_>>, TableError> {
        loop {
            if self.pos >= self.input.len() {
                return Ok(None);
            }
            if let Some(delim) = self.ascii_delim {
                match self.scan_unquoted_line(delim) {
                    Scan::Blank => continue,
                    Scan::Record => {
                        obs::counter!("ingest.borrowed_records").incr();
                        self.borrowed = true;
                        return Ok(Some(self.view()));
                    }
                    Scan::Fallback => {}
                }
            }
            return if self.parse_owned_record()? {
                obs::counter!("ingest.owned_records").incr();
                self.borrowed = false;
                Ok(Some(self.view()))
            } else {
                Ok(None)
            };
        }
    }

    fn view(&self) -> RecordView<'_> {
        RecordView {
            text: self.input,
            spans: &self.spans,
            owned: &self.owned[..self.owned_len],
            borrowed: self.borrowed,
        }
    }

    /// Fast path: scan bytes for the first of `"` / `\r` / `\n`. If no
    /// quote appears before the terminator, split the line on the
    /// delimiter byte into borrowed spans and consume the terminator.
    fn scan_unquoted_line(&mut self, delim: u8) -> Scan {
        let bytes = self.input.as_bytes();
        let start = self.pos;
        let mut end = bytes.len();
        for (i, &b) in bytes[start..].iter().enumerate() {
            match b {
                b'"' => return Scan::Fallback,
                b'\r' | b'\n' => {
                    end = start + i;
                    break;
                }
                _ => {}
            }
        }
        // Consume the terminator: `\n`, `\r`, or a `\r\n` pair.
        if end < bytes.len() {
            self.pos = end + 1;
            if bytes[end] == b'\r' {
                if bytes.get(end + 1) == Some(&b'\n') {
                    self.pos = end + 2;
                    self.line += 1;
                }
            } else {
                self.line += 1;
            }
        } else {
            self.pos = bytes.len();
        }
        if end == start {
            return Scan::Blank;
        }
        self.spans.clear();
        let mut field_start = start;
        for (i, &b) in bytes.iter().enumerate().take(end).skip(start) {
            if b == delim {
                self.spans.push((field_start, i));
                field_start = i + 1;
            }
        }
        self.spans.push((field_start, end));
        Scan::Record
    }

    /// Fallback: run the full RFC-4180 state machine for one record
    /// (which may span lines via quoted embedded newlines), writing
    /// fields into the reused owned scratch. Returns `false` only when
    /// end of input is reached without producing a record.
    fn parse_owned_record(&mut self) -> Result<bool, TableError> {
        #[derive(PartialEq)]
        enum State {
            FieldStart,
            Unquoted,
            Quoted,
            QuoteInQuoted, // saw a `"` inside a quoted field: escape or end
        }
        let text = self.input;
        self.owned_len = 0;
        self.cur.clear();
        let mut state = State::FieldStart;
        let mut record_started = false;
        let base = self.pos;
        let mut chars = text[base..].char_indices().peekable();
        // Advance `self.pos` past the character(s) consumed so far: the
        // next unconsumed char's offset, or end of input.
        macro_rules! sync_pos {
            () => {
                self.pos = chars.peek().map_or(text.len(), |&(i, _)| base + i)
            };
        }
        while let Some((_, c)) = chars.next() {
            if c == '\n' {
                self.line += 1;
            }
            match state {
                State::FieldStart => match c {
                    '"' => {
                        state = State::Quoted;
                        record_started = true;
                    }
                    '\r' | '\n' => {
                        if c == '\r' {
                            if let Some(&(_, '\n')) = chars.peek() {
                                chars.next();
                                self.line += 1;
                            }
                        }
                        sync_pos!();
                        if record_started {
                            self.commit_field();
                            return Ok(true);
                        }
                        // Blank line: keep scanning within this call.
                    }
                    c if c == self.delimiter => {
                        self.commit_field();
                        record_started = true;
                    }
                    c => {
                        self.cur.push(c);
                        state = State::Unquoted;
                        record_started = true;
                    }
                },
                State::Unquoted => match c {
                    '"' => {
                        return Err(TableError::Csv {
                            line: self.line,
                            reason: "quote inside unquoted field".into(),
                        })
                    }
                    '\r' | '\n' => {
                        if c == '\r' {
                            if let Some(&(_, '\n')) = chars.peek() {
                                chars.next();
                                self.line += 1;
                            }
                        }
                        sync_pos!();
                        self.commit_field();
                        return Ok(true);
                    }
                    c if c == self.delimiter => {
                        self.commit_field();
                        state = State::FieldStart;
                    }
                    c => self.cur.push(c),
                },
                State::Quoted => match c {
                    '"' => state = State::QuoteInQuoted,
                    c => self.cur.push(c),
                },
                State::QuoteInQuoted => match c {
                    '"' => {
                        self.cur.push('"');
                        state = State::Quoted;
                    }
                    '\r' | '\n' => {
                        if c == '\r' {
                            if let Some(&(_, '\n')) = chars.peek() {
                                chars.next();
                                self.line += 1;
                            }
                        }
                        sync_pos!();
                        self.commit_field();
                        return Ok(true);
                    }
                    c if c == self.delimiter => {
                        self.commit_field();
                        state = State::FieldStart;
                    }
                    c => {
                        return Err(TableError::Csv {
                            line: self.line,
                            reason: format!("unexpected `{c}` after closing quote"),
                        })
                    }
                },
            }
        }
        // End of input.
        self.pos = text.len();
        match state {
            State::Quoted => Err(TableError::Csv {
                line: self.line,
                reason: "unterminated quoted field".into(),
            }),
            State::Unquoted | State::QuoteInQuoted => {
                self.commit_field();
                Ok(true)
            }
            State::FieldStart => {
                if record_started {
                    self.commit_field();
                    Ok(true)
                } else {
                    Ok(false)
                }
            }
        }
    }

    /// Finish the field being accumulated: swap it into the next owned
    /// slot (retaining both buffers' capacity) and reset the scratch.
    fn commit_field(&mut self) {
        if self.owned_len == self.owned.len() {
            self.owned.push(String::new());
        }
        std::mem::swap(&mut self.owned[self.owned_len], &mut self.cur);
        self.cur.clear();
        self.owned_len += 1;
    }
}

/// Outcome of one fast-path line scan.
enum Scan {
    /// Borrowed spans are ready in scratch.
    Record,
    /// Empty line, consumed; caller should continue.
    Blank,
    /// A quote appeared before the terminator; run the state machine.
    Fallback,
}

fn write_record<'a>(out: &mut String, fields: impl Iterator<Item = &'a str>, delimiter: char) {
    let mut fields = fields.peekable();
    // A record that is a single empty field would print as a blank line,
    // which readers (ours included) skip. Quote it to disambiguate.
    if let Some(first) = fields.peek() {
        if first.is_empty() {
            let first = fields.next().expect("peeked");
            if fields.peek().is_none() {
                out.push_str("\"\"\n");
                return;
            }
            // Re-chain the consumed field.
            write_record_inner(out, std::iter::once(first).chain(fields), delimiter);
            return;
        }
    }
    write_record_inner(out, fields, delimiter);
}

fn write_record_inner<'a>(
    out: &mut String,
    fields: impl Iterator<Item = &'a str>,
    delimiter: char,
) {
    let mut first = true;
    for f in fields {
        if !first {
            out.push(delimiter);
        }
        first = false;
        if f.contains(delimiter) || f.contains('"') || f.contains('\n') || f.contains('\r') {
            out.push('"');
            for c in f.chars() {
                if c == '"' {
                    out.push('"');
                }
                out.push(c);
            }
            out.push('"');
        } else {
            out.push_str(f);
        }
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn simple_read() {
        let t = read_str("zip,city\n90001,Los Angeles\n90002,Los Angeles\n").unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.schema().names(), &["zip", "city"]);
        assert_eq!(t.cell_str(0, 1), Some("Los Angeles"));
    }

    #[test]
    fn quoted_fields() {
        let t = read_str("name,gender\n\"Jones, Stacey R.\",F\n").unwrap();
        assert_eq!(t.cell_str(0, 0), Some("Jones, Stacey R."));
    }

    #[test]
    fn escaped_quotes() {
        let t = read_str("a\n\"say \"\"hi\"\"\"\n").unwrap();
        assert_eq!(t.cell_str(0, 0), Some("say \"hi\""));
    }

    #[test]
    fn embedded_newline() {
        let t = read_str("a,b\n\"line1\nline2\",x\n").unwrap();
        assert_eq!(t.cell_str(0, 0), Some("line1\nline2"));
        assert_eq!(t.row_count(), 1);
    }

    #[test]
    fn crlf_line_endings() {
        let t = read_str("a,b\r\n1,2\r\n3,4\r\n").unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.cell_str(1, 1), Some("4"));
    }

    #[test]
    fn no_trailing_newline() {
        let t = read_str("a,b\n1,2").unwrap();
        assert_eq!(t.row_count(), 1);
        assert_eq!(t.cell_str(0, 1), Some("2"));
    }

    #[test]
    fn empty_fields_are_null() {
        let t = read_str("a,b,c\n1,,3\n").unwrap();
        assert!(t.cell(0, 1).is_null());
    }

    #[test]
    fn trailing_empty_field() {
        let t = read_str("a,b\n1,\n").unwrap();
        assert_eq!(t.row_count(), 1);
        assert!(t.cell(0, 1).is_null());
    }

    #[test]
    fn headerless_mode() {
        let opts = CsvOptions {
            has_header: false,
            ..CsvOptions::default()
        };
        let t = read_str_with("1,2\n3,4\n", opts).unwrap();
        assert_eq!(t.schema().names(), &["c0", "c1"]);
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn alternative_delimiter() {
        let opts = CsvOptions {
            delimiter: ';',
            ..CsvOptions::default()
        };
        let t = read_str_with("a;b\n1;2\n", opts).unwrap();
        assert_eq!(t.cell_str(0, 1), Some("2"));
    }

    #[test]
    fn arity_mismatch_detected() {
        assert!(matches!(
            read_str("a,b\n1,2,3\n"),
            Err(TableError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn unterminated_quote_rejected() {
        assert!(matches!(
            read_str("a\n\"oops\n"),
            Err(TableError::Csv { .. })
        ));
    }

    #[test]
    fn garbage_after_quote_rejected() {
        assert!(matches!(
            read_str("a\n\"x\"y\n"),
            Err(TableError::Csv { .. })
        ));
    }

    #[test]
    fn write_then_read_roundtrip() {
        let schema = Schema::new(["name", "note"]).unwrap();
        let t = Table::from_rows(
            schema,
            [
                vec![Value::text("Jones, Stacey"), Value::text("says \"hi\"")],
                vec![Value::Null, Value::text("line1\nline2")],
            ],
        )
        .unwrap();
        let csv = write_str(&t);
        let t2 = read_str(&csv).unwrap();
        assert_eq!(t2.cell_str(0, 0), Some("Jones, Stacey"));
        assert_eq!(t2.cell_str(0, 1), Some("says \"hi\""));
        assert!(t2.cell(1, 0).is_null());
        assert_eq!(t2.cell_str(1, 1), Some("line1\nline2"));
    }

    #[test]
    fn custom_null_policy_applies() {
        let mut opts = CsvOptions::default();
        opts.null_policy.extend(["nan", "-"]);
        let t = read_str_with("a,b\nnan,-\nNULL,x\n", opts).unwrap();
        assert!(t.cell(0, 0).is_null());
        assert!(t.cell(0, 1).is_null());
        assert!(t.cell(1, 0).is_null()); // default tokens still apply
        assert_eq!(t.cell_str(1, 1), Some("x"));
        // The default policy does not treat `nan` as null.
        let t2 = read_str("a\nnan\n").unwrap();
        assert_eq!(t2.cell_str(0, 0), Some("nan"));
    }

    #[test]
    fn blank_lines_skipped() {
        let t = read_str("a,b\n1,2\n\n3,4\n").unwrap();
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn file_roundtrip() {
        let schema = Schema::new(["x"]).unwrap();
        let t = Table::from_str_rows(schema, [["1"], ["2"]]).unwrap();
        let path = std::env::temp_dir().join("anmat_csv_test.csv");
        write_path(&t, &path).unwrap();
        let t2 = read_path(&path).unwrap();
        assert_eq!(t, t2);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn unquoted_records_are_borrowed() {
        let mut r = parse_raw_records_borrowed("a,b\n1,2\n\"q\",3\n4,5\n", ',');
        let mut paths = Vec::new();
        while let Some(rec) = r.next_record().unwrap() {
            paths.push((
                rec.is_borrowed(),
                rec.iter().map(str::to_string).collect::<Vec<_>>(),
            ));
        }
        assert_eq!(
            paths,
            vec![
                (true, vec!["a".to_string(), "b".to_string()]),
                (true, vec!["1".to_string(), "2".to_string()]),
                (false, vec!["q".to_string(), "3".to_string()]),
                (true, vec!["4".to_string(), "5".to_string()]),
            ]
        );
    }

    #[test]
    fn non_ascii_delimiter_uses_fallback() {
        let mut r = parse_raw_records_borrowed("a┃b\n1┃2\n", '┃');
        let mut all = Vec::new();
        while let Some(rec) = r.next_record().unwrap() {
            assert!(!rec.is_borrowed());
            all.push(rec.iter().map(str::to_string).collect::<Vec<_>>());
        }
        assert_eq!(all, vec![vec!["a", "b"], vec!["1", "2"]]);
    }

    #[test]
    fn borrowed_fields_alias_the_input() {
        let input = "zip,city\n90001,Los Angeles\n";
        let mut r = parse_raw_records_borrowed(input, ',');
        r.next_record().unwrap(); // header
        {
            let rec = r.next_record().unwrap().unwrap();
            let city = rec.field(1);
            assert_eq!(city, "Los Angeles");
            // Pointer identity proves zero-copy: the field *is* a slice
            // of the input buffer.
            assert_eq!(city.as_ptr(), input["zip,city\n90001,".len()..].as_ptr());
        }
        assert!(r.next_record().unwrap().is_none());
    }

    /// The original batch state machine, kept verbatim as a test oracle
    /// for the streaming reader.
    mod reference {
        use crate::error::TableError;

        pub fn parse_records(input: &str, delimiter: char) -> Result<Vec<Vec<String>>, TableError> {
            #[derive(PartialEq)]
            enum State {
                FieldStart,
                Unquoted,
                Quoted,
                QuoteInQuoted,
            }
            let mut records = Vec::new();
            let mut record: Vec<String> = Vec::new();
            let mut field = String::new();
            let mut state = State::FieldStart;
            let mut line = 1usize;
            let mut chars = input.chars().peekable();
            let mut record_started = false;

            while let Some(c) = chars.next() {
                if c == '\n' {
                    line += 1;
                }
                match state {
                    State::FieldStart => match c {
                        '"' => {
                            state = State::Quoted;
                            record_started = true;
                        }
                        '\r' => {
                            if chars.peek() == Some(&'\n') {
                                chars.next();
                                line += 1;
                            }
                            end_record(&mut records, &mut record, &mut field, &mut record_started);
                        }
                        '\n' => {
                            end_record(&mut records, &mut record, &mut field, &mut record_started);
                        }
                        c if c == delimiter => {
                            record.push(String::new());
                            record_started = true;
                        }
                        c => {
                            field.push(c);
                            state = State::Unquoted;
                            record_started = true;
                        }
                    },
                    State::Unquoted => match c {
                        '"' => {
                            return Err(TableError::Csv {
                                line,
                                reason: "quote inside unquoted field".into(),
                            })
                        }
                        '\r' => {
                            if chars.peek() == Some(&'\n') {
                                chars.next();
                                line += 1;
                            }
                            record.push(std::mem::take(&mut field));
                            end_record_no_push(&mut records, &mut record, &mut record_started);
                            state = State::FieldStart;
                        }
                        '\n' => {
                            record.push(std::mem::take(&mut field));
                            end_record_no_push(&mut records, &mut record, &mut record_started);
                            state = State::FieldStart;
                        }
                        c if c == delimiter => {
                            record.push(std::mem::take(&mut field));
                            state = State::FieldStart;
                            record_started = true;
                        }
                        c => field.push(c),
                    },
                    State::Quoted => match c {
                        '"' => state = State::QuoteInQuoted,
                        c => field.push(c),
                    },
                    State::QuoteInQuoted => match c {
                        '"' => {
                            field.push('"');
                            state = State::Quoted;
                        }
                        '\r' => {
                            if chars.peek() == Some(&'\n') {
                                chars.next();
                                line += 1;
                            }
                            record.push(std::mem::take(&mut field));
                            end_record_no_push(&mut records, &mut record, &mut record_started);
                            state = State::FieldStart;
                        }
                        '\n' => {
                            record.push(std::mem::take(&mut field));
                            end_record_no_push(&mut records, &mut record, &mut record_started);
                            state = State::FieldStart;
                        }
                        c if c == delimiter => {
                            record.push(std::mem::take(&mut field));
                            state = State::FieldStart;
                            record_started = true;
                        }
                        c => {
                            return Err(TableError::Csv {
                                line,
                                reason: format!("unexpected `{c}` after closing quote"),
                            })
                        }
                    },
                }
            }
            match state {
                State::Quoted => {
                    return Err(TableError::Csv {
                        line,
                        reason: "unterminated quoted field".into(),
                    })
                }
                State::Unquoted | State::QuoteInQuoted => {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                State::FieldStart => {
                    if record_started {
                        record.push(String::new());
                        records.push(std::mem::take(&mut record));
                    }
                }
            }
            Ok(records)
        }

        fn end_record(
            records: &mut Vec<Vec<String>>,
            record: &mut Vec<String>,
            field: &mut String,
            record_started: &mut bool,
        ) {
            if *record_started {
                record.push(std::mem::take(field));
                records.push(std::mem::take(record));
                *record_started = false;
            } else if !record.is_empty() {
                records.push(std::mem::take(record));
            }
        }

        fn end_record_no_push(
            records: &mut Vec<Vec<String>>,
            record: &mut Vec<String>,
            record_started: &mut bool,
        ) {
            records.push(std::mem::take(record));
            *record_started = false;
        }
    }

    /// Differential corpus: every tricky shape the old parser defined
    /// semantics for — the streaming reader must agree record for
    /// record (and error for error, at the same line).
    #[test]
    fn streaming_reader_matches_reference_parser() {
        let corpus = [
            "",
            "\n",
            "\r\n\r\n",
            "a,b\n1,2\n",
            "a,b\n1,2",
            "a,b\r\n1,2\r",
            "a,b\r1,2",
            ",\n",
            "a,\n,b\n",
            "\"\"\n",
            "\"\",x\n",
            "a,b\n\n\n3,4\n",
            "\"Jones, Stacey R.\",F\n",
            "\"say \"\"hi\"\"\"\n",
            "\"line1\nline2\",x\nplain,y\n",
            "\"q\"\r\nnext\r\n",
            "mixed,\"quoted\",tail\n",
            "Édouard,Manet\n中,文\n",
            "a\n\"oops\n",
            "a\n\"x\"y\n",
            "ab\"cd\n",
            "one\n\"two\"z\nthree\n",
            "trail,\n",
            "\r",
            "a,b\r",
        ];
        for input in corpus {
            let expected = reference::parse_records(input, ',');
            let got = parse_raw_records(input, ',');
            match (expected, got) {
                (Ok(e), Ok(g)) => assert_eq!(g, e, "input {input:?}"),
                (Err(e), Err(g)) => {
                    assert_eq!(format!("{g:?}"), format!("{e:?}"), "input {input:?}");
                }
                (e, g) => panic!("input {input:?}: reference {e:?} vs streaming {g:?}"),
            }
        }
        // Alternative delimiters agree too (ASCII takes the fast path,
        // non-ASCII forces the fallback machine for every record).
        for delim in [';', '\t', '┃'] {
            for input in ["a;b\tc┃d\n1;2\t3┃4\n", "x\n\"y\"\n"] {
                let expected = reference::parse_records(input, delim).unwrap();
                let got = parse_raw_records(input, delim).unwrap();
                assert_eq!(got, expected, "input {input:?} delim {delim:?}");
            }
        }
    }
}
