//! RFC-4180 CSV reading and writing.
//!
//! Hand-rolled rather than a dependency: the demo only needs headers,
//! quoting (embedded commas, quotes, newlines) and a configurable
//! delimiter, and owning the parser keeps error positions precise.

use crate::error::TableError;
use crate::schema::Schema;
use crate::table::Table;
use crate::value::{NullPolicy, Value};
use std::io::{BufReader, Read, Write};
use std::path::Path;

/// CSV parsing/writing options.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter (default `,`).
    pub delimiter: char,
    /// Whether the first record is a header row (default true).
    pub has_header: bool,
    /// Which field strings read back as null (shared with
    /// [`Value::from_field`]'s default; extend for dataset-specific
    /// markers like `nan` or `-`).
    pub null_policy: NullPolicy,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            delimiter: ',',
            has_header: true,
            null_policy: NullPolicy::default(),
        }
    }
}

/// Read a table from CSV text with default options.
pub fn read_str(input: &str) -> Result<Table, TableError> {
    read_str_with(input, CsvOptions::default())
}

/// Read a table from CSV text.
pub fn read_str_with(input: &str, opts: CsvOptions) -> Result<Table, TableError> {
    let records = parse_records(input, opts.delimiter)?;
    records_to_table(records, opts)
}

/// Read a table from a file path.
pub fn read_path(path: impl AsRef<Path>) -> Result<Table, TableError> {
    read_path_with(path, CsvOptions::default())
}

/// Read a table from a file path with options.
pub fn read_path_with(path: impl AsRef<Path>, opts: CsvOptions) -> Result<Table, TableError> {
    let mut reader = BufReader::new(std::fs::File::open(path)?);
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    read_str_with(&buf, opts)
}

/// Serialize a table to CSV text (always writes a header).
#[must_use]
pub fn write_str(table: &Table) -> String {
    write_str_with(table, CsvOptions::default())
}

/// Serialize a table to CSV text with options.
#[must_use]
pub fn write_str_with(table: &Table, opts: CsvOptions) -> String {
    let mut out = String::new();
    if opts.has_header {
        write_record(
            &mut out,
            table.schema().names().iter().map(String::as_str),
            opts.delimiter,
        );
    }
    // Tombstoned rows are not part of the table's live contents.
    for r in table.iter_live() {
        write_record(
            &mut out,
            (0..table.column_count()).map(|c| table.cell_str(r, c).unwrap_or("")),
            opts.delimiter,
        );
    }
    out
}

/// Write a table to a file.
pub fn write_path(table: &Table, path: impl AsRef<Path>) -> Result<(), TableError> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(write_str(table).as_bytes())?;
    Ok(())
}

/// Stream a table from any reader.
pub fn read_from(reader: impl Read, opts: CsvOptions) -> Result<Table, TableError> {
    let mut buf = String::new();
    BufReader::new(reader).read_to_string(&mut buf)?;
    read_str_with(&buf, opts)
}

fn records_to_table(records: Vec<Vec<String>>, opts: CsvOptions) -> Result<Table, TableError> {
    let mut it = records.into_iter();
    let schema = if opts.has_header {
        match it.next() {
            Some(header) => Schema::new(header)?,
            None => Schema::new(Vec::<String>::new())?,
        }
    } else {
        // Peek arity from the first record; synthesize c0..cN names.
        let first = it.next();
        let arity = first.as_ref().map_or(0, Vec::len);
        let schema = Schema::new((0..arity).map(|i| format!("c{i}")))?;
        let mut table = Table::empty(schema);
        if let Some(row) = first {
            table.push_row(fields_to_values(row, &opts.null_policy))?;
        }
        for row in it {
            table.push_row(fields_to_values(row, &opts.null_policy))?;
        }
        return Ok(table);
    };
    let mut table = Table::empty(schema);
    for row in it {
        table.push_row(fields_to_values(row, &opts.null_policy))?;
    }
    Ok(table)
}

fn fields_to_values(row: Vec<String>, policy: &NullPolicy) -> Vec<Value> {
    row.into_iter()
        .map(|f| Value::from_field_with(&f, policy))
        .collect()
}

/// Parse CSV text into raw records of fields (no header handling, no
/// value conversion). Public so op-log style formats — each record an
/// op code plus fields, as in `anmat stream --ops` — can reuse the
/// RFC-4180 quoting rules instead of naive comma splitting.
pub fn parse_raw_records(input: &str, delimiter: char) -> Result<Vec<Vec<String>>, TableError> {
    parse_records(input, delimiter)
}

/// Parse CSV text into records of fields.
fn parse_records(input: &str, delimiter: char) -> Result<Vec<Vec<String>>, TableError> {
    #[derive(PartialEq)]
    enum State {
        FieldStart,
        Unquoted,
        Quoted,
        QuoteInQuoted, // saw a `"` inside a quoted field: escape or end
    }
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut state = State::FieldStart;
    let mut line = 1usize;
    let mut chars = input.chars().peekable();
    // Track whether anything has been produced on the current record, so a
    // trailing newline doesn't create a phantom empty record.
    let mut record_started = false;

    while let Some(c) = chars.next() {
        if c == '\n' {
            line += 1;
        }
        match state {
            State::FieldStart => match c {
                '"' => {
                    state = State::Quoted;
                    record_started = true;
                }
                '\r' => {
                    if chars.peek() == Some(&'\n') {
                        chars.next();
                        line += 1;
                    }
                    end_record(&mut records, &mut record, &mut field, &mut record_started);
                }
                '\n' => {
                    end_record(&mut records, &mut record, &mut field, &mut record_started);
                }
                c if c == delimiter => {
                    record.push(String::new());
                    record_started = true;
                }
                c => {
                    field.push(c);
                    state = State::Unquoted;
                    record_started = true;
                }
            },
            State::Unquoted => match c {
                '"' => {
                    return Err(TableError::Csv {
                        line,
                        reason: "quote inside unquoted field".into(),
                    })
                }
                '\r' => {
                    if chars.peek() == Some(&'\n') {
                        chars.next();
                        line += 1;
                    }
                    record.push(std::mem::take(&mut field));
                    end_record_no_push(&mut records, &mut record, &mut record_started);
                    state = State::FieldStart;
                }
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    end_record_no_push(&mut records, &mut record, &mut record_started);
                    state = State::FieldStart;
                }
                c if c == delimiter => {
                    record.push(std::mem::take(&mut field));
                    state = State::FieldStart;
                    record_started = true;
                }
                c => field.push(c),
            },
            State::Quoted => match c {
                '"' => state = State::QuoteInQuoted,
                c => field.push(c),
            },
            State::QuoteInQuoted => match c {
                '"' => {
                    field.push('"');
                    state = State::Quoted;
                }
                '\r' => {
                    if chars.peek() == Some(&'\n') {
                        chars.next();
                        line += 1;
                    }
                    record.push(std::mem::take(&mut field));
                    end_record_no_push(&mut records, &mut record, &mut record_started);
                    state = State::FieldStart;
                }
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    end_record_no_push(&mut records, &mut record, &mut record_started);
                    state = State::FieldStart;
                }
                c if c == delimiter => {
                    record.push(std::mem::take(&mut field));
                    state = State::FieldStart;
                    record_started = true;
                }
                c => {
                    return Err(TableError::Csv {
                        line,
                        reason: format!("unexpected `{c}` after closing quote"),
                    })
                }
            },
        }
    }
    // EOF.
    match state {
        State::Quoted => {
            return Err(TableError::Csv {
                line,
                reason: "unterminated quoted field".into(),
            })
        }
        State::Unquoted | State::QuoteInQuoted => {
            record.push(std::mem::take(&mut field));
            records.push(std::mem::take(&mut record));
        }
        State::FieldStart => {
            if record_started {
                record.push(String::new());
                records.push(std::mem::take(&mut record));
            }
        }
    }
    Ok(records)
}

fn end_record(
    records: &mut Vec<Vec<String>>,
    record: &mut Vec<String>,
    field: &mut String,
    record_started: &mut bool,
) {
    if *record_started {
        record.push(std::mem::take(field));
        records.push(std::mem::take(record));
        *record_started = false;
    } else if !record.is_empty() {
        records.push(std::mem::take(record));
    }
    // A bare newline on an empty record is skipped (blank line).
}

fn end_record_no_push(
    records: &mut Vec<Vec<String>>,
    record: &mut Vec<String>,
    record_started: &mut bool,
) {
    records.push(std::mem::take(record));
    *record_started = false;
}

fn write_record<'a>(out: &mut String, fields: impl Iterator<Item = &'a str>, delimiter: char) {
    let mut fields = fields.peekable();
    // A record that is a single empty field would print as a blank line,
    // which readers (ours included) skip. Quote it to disambiguate.
    if let Some(first) = fields.peek() {
        if first.is_empty() {
            let first = fields.next().expect("peeked");
            if fields.peek().is_none() {
                out.push_str("\"\"\n");
                return;
            }
            // Re-chain the consumed field.
            write_record_inner(out, std::iter::once(first).chain(fields), delimiter);
            return;
        }
    }
    write_record_inner(out, fields, delimiter);
}

fn write_record_inner<'a>(
    out: &mut String,
    fields: impl Iterator<Item = &'a str>,
    delimiter: char,
) {
    let mut first = true;
    for f in fields {
        if !first {
            out.push(delimiter);
        }
        first = false;
        if f.contains(delimiter) || f.contains('"') || f.contains('\n') || f.contains('\r') {
            out.push('"');
            for c in f.chars() {
                if c == '"' {
                    out.push('"');
                }
                out.push(c);
            }
            out.push('"');
        } else {
            out.push_str(f);
        }
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_read() {
        let t = read_str("zip,city\n90001,Los Angeles\n90002,Los Angeles\n").unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.schema().names(), &["zip", "city"]);
        assert_eq!(t.cell_str(0, 1), Some("Los Angeles"));
    }

    #[test]
    fn quoted_fields() {
        let t = read_str("name,gender\n\"Jones, Stacey R.\",F\n").unwrap();
        assert_eq!(t.cell_str(0, 0), Some("Jones, Stacey R."));
    }

    #[test]
    fn escaped_quotes() {
        let t = read_str("a\n\"say \"\"hi\"\"\"\n").unwrap();
        assert_eq!(t.cell_str(0, 0), Some("say \"hi\""));
    }

    #[test]
    fn embedded_newline() {
        let t = read_str("a,b\n\"line1\nline2\",x\n").unwrap();
        assert_eq!(t.cell_str(0, 0), Some("line1\nline2"));
        assert_eq!(t.row_count(), 1);
    }

    #[test]
    fn crlf_line_endings() {
        let t = read_str("a,b\r\n1,2\r\n3,4\r\n").unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.cell_str(1, 1), Some("4"));
    }

    #[test]
    fn no_trailing_newline() {
        let t = read_str("a,b\n1,2").unwrap();
        assert_eq!(t.row_count(), 1);
        assert_eq!(t.cell_str(0, 1), Some("2"));
    }

    #[test]
    fn empty_fields_are_null() {
        let t = read_str("a,b,c\n1,,3\n").unwrap();
        assert!(t.cell(0, 1).is_null());
    }

    #[test]
    fn trailing_empty_field() {
        let t = read_str("a,b\n1,\n").unwrap();
        assert_eq!(t.row_count(), 1);
        assert!(t.cell(0, 1).is_null());
    }

    #[test]
    fn headerless_mode() {
        let opts = CsvOptions {
            has_header: false,
            ..CsvOptions::default()
        };
        let t = read_str_with("1,2\n3,4\n", opts).unwrap();
        assert_eq!(t.schema().names(), &["c0", "c1"]);
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn alternative_delimiter() {
        let opts = CsvOptions {
            delimiter: ';',
            ..CsvOptions::default()
        };
        let t = read_str_with("a;b\n1;2\n", opts).unwrap();
        assert_eq!(t.cell_str(0, 1), Some("2"));
    }

    #[test]
    fn arity_mismatch_detected() {
        assert!(matches!(
            read_str("a,b\n1,2,3\n"),
            Err(TableError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn unterminated_quote_rejected() {
        assert!(matches!(
            read_str("a\n\"oops\n"),
            Err(TableError::Csv { .. })
        ));
    }

    #[test]
    fn garbage_after_quote_rejected() {
        assert!(matches!(
            read_str("a\n\"x\"y\n"),
            Err(TableError::Csv { .. })
        ));
    }

    #[test]
    fn write_then_read_roundtrip() {
        let schema = Schema::new(["name", "note"]).unwrap();
        let t = Table::from_rows(
            schema,
            [
                vec![Value::text("Jones, Stacey"), Value::text("says \"hi\"")],
                vec![Value::Null, Value::text("line1\nline2")],
            ],
        )
        .unwrap();
        let csv = write_str(&t);
        let t2 = read_str(&csv).unwrap();
        assert_eq!(t2.cell_str(0, 0), Some("Jones, Stacey"));
        assert_eq!(t2.cell_str(0, 1), Some("says \"hi\""));
        assert!(t2.cell(1, 0).is_null());
        assert_eq!(t2.cell_str(1, 1), Some("line1\nline2"));
    }

    #[test]
    fn custom_null_policy_applies() {
        let mut opts = CsvOptions::default();
        opts.null_policy.extend(["nan", "-"]);
        let t = read_str_with("a,b\nnan,-\nNULL,x\n", opts).unwrap();
        assert!(t.cell(0, 0).is_null());
        assert!(t.cell(0, 1).is_null());
        assert!(t.cell(1, 0).is_null()); // default tokens still apply
        assert_eq!(t.cell_str(1, 1), Some("x"));
        // The default policy does not treat `nan` as null.
        let t2 = read_str("a\nnan\n").unwrap();
        assert_eq!(t2.cell_str(0, 0), Some("nan"));
    }

    #[test]
    fn blank_lines_skipped() {
        let t = read_str("a,b\n1,2\n\n3,4\n").unwrap();
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn file_roundtrip() {
        let schema = Schema::new(["x"]).unwrap();
        let t = Table::from_str_rows(schema, [["1"], ["2"]]).unwrap();
        let path = std::env::temp_dir().join("anmat_csv_test.csv");
        write_path(&t, &path).unwrap();
        let t2 = read_path(&path).unwrap();
        assert_eq!(t, t2);
        let _ = std::fs::remove_file(path);
    }
}
