//! The `Tokenize` and `NGrams` functions of the discovery algorithm
//! (Figure 2, lines 6–7).
//!
//! Discovery feeds each cell through one of two extractors:
//!
//! * [`tokenize`] splits on whitespace, yielding [`Token`]s with their
//!   token index and starting character offset — the paper's pattern
//!   display `pattern::position, frequency` uses the *token number* as the
//!   position for tokenized columns;
//! * [`ngrams`] yields all character n-grams with their starting character
//!   offset — per the paper, "n-grams are mainly used to extract patterns
//!   from attributes that contain a single token which could be a code or
//!   id" (e.g. `F-9-107`, `CHEMBL25`).

use serde::{Deserialize, Serialize};

/// A whitespace-delimited token with position metadata.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Token {
    /// The token text.
    pub text: String,
    /// 0-based token number within the cell.
    pub index: usize,
    /// 0-based character (not byte) offset of the token's first character.
    pub char_start: usize,
}

/// A character n-gram with position metadata.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NGram {
    /// The n-gram text (exactly `n` characters).
    pub text: String,
    /// 0-based character offset at which the n-gram starts.
    pub char_start: usize,
}

/// Split a cell into whitespace-delimited tokens.
///
/// Runs of whitespace are a single separator; leading/trailing whitespace
/// produces no empty tokens. Positions are character offsets, safe for any
/// UTF-8 input.
#[must_use]
pub fn tokenize(s: &str) -> Vec<Token> {
    let mut out = Vec::new();
    let mut current = String::new();
    let mut start = 0usize;
    let mut index = 0usize;
    for (ci, c) in s.chars().enumerate() {
        if c.is_whitespace() {
            if !current.is_empty() {
                out.push(Token {
                    text: std::mem::take(&mut current),
                    index,
                    char_start: start,
                });
                index += 1;
            }
        } else {
            if current.is_empty() {
                start = ci;
            }
            current.push(c);
        }
    }
    if !current.is_empty() {
        out.push(Token {
            text: current,
            index,
            char_start: start,
        });
    }
    out
}

/// All character n-grams of length `n`.
///
/// Returns the whole string as a single pseudo-n-gram when it is shorter
/// than `n` (so short codes still produce a key), and nothing for an empty
/// string or `n == 0`.
#[must_use]
pub fn ngrams(s: &str, n: usize) -> Vec<NGram> {
    if n == 0 || s.is_empty() {
        return Vec::new();
    }
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < n {
        return vec![NGram {
            text: s.to_string(),
            char_start: 0,
        }];
    }
    (0..=chars.len() - n)
        .map(|i| NGram {
            text: chars[i..i + n].iter().collect(),
            char_start: i,
        })
        .collect()
}

/// All prefixes of the string up to length `max_len` (inclusive), with
/// positions — used by discovery to find determining *prefixes* like the
/// `900` of `90001` or the `F-` of `F-9-107`.
#[must_use]
pub fn prefixes(s: &str, max_len: usize) -> Vec<NGram> {
    let chars: Vec<char> = s.chars().collect();
    (1..=chars.len().min(max_len))
        .map(|len| NGram {
            text: chars[..len].iter().collect(),
            char_start: 0,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_simple() {
        let toks = tokenize("John Charles");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].text, "John");
        assert_eq!(toks[0].index, 0);
        assert_eq!(toks[0].char_start, 0);
        assert_eq!(toks[1].text, "Charles");
        assert_eq!(toks[1].index, 1);
        assert_eq!(toks[1].char_start, 5);
    }

    #[test]
    fn tokenize_punctuation_stays_attached() {
        let toks = tokenize("Holloway, Donald E.");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["Holloway,", "Donald", "E."]);
    }

    #[test]
    fn tokenize_collapses_whitespace() {
        let toks = tokenize("  a \t b  ");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].text, "a");
        assert_eq!(toks[0].char_start, 2);
        assert_eq!(toks[1].index, 1);
    }

    #[test]
    fn tokenize_empty() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   ").is_empty());
    }

    #[test]
    fn tokenize_unicode_offsets() {
        let toks = tokenize("Édouard Manet");
        assert_eq!(toks[1].char_start, 8);
    }

    #[test]
    fn ngrams_basic() {
        let gs = ngrams("90001", 3);
        let texts: Vec<&str> = gs.iter().map(|g| g.text.as_str()).collect();
        assert_eq!(texts, vec!["900", "000", "001"]);
        assert_eq!(gs[0].char_start, 0);
        assert_eq!(gs[2].char_start, 2);
    }

    #[test]
    fn ngrams_short_string() {
        let gs = ngrams("ab", 3);
        assert_eq!(gs.len(), 1);
        assert_eq!(gs[0].text, "ab");
    }

    #[test]
    fn ngrams_degenerate() {
        assert!(ngrams("", 3).is_empty());
        assert!(ngrams("abc", 0).is_empty());
    }

    #[test]
    fn ngrams_full_length() {
        let gs = ngrams("abc", 3);
        assert_eq!(gs.len(), 1);
        assert_eq!(gs[0].text, "abc");
    }

    #[test]
    fn prefixes_basic() {
        let ps = prefixes("90001", 3);
        let texts: Vec<&str> = ps.iter().map(|g| g.text.as_str()).collect();
        assert_eq!(texts, vec!["9", "90", "900"]);
    }

    #[test]
    fn prefixes_capped_by_length() {
        assert_eq!(prefixes("ab", 5).len(), 2);
        assert!(prefixes("", 5).is_empty());
    }
}
