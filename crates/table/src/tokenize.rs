//! The `Tokenize` and `NGrams` functions of the discovery algorithm
//! (Figure 2, lines 6–7).
//!
//! Discovery feeds each cell through one of two extractors:
//!
//! * [`tokenize`] splits on whitespace, yielding [`Token`]s with their
//!   token index and starting character offset — the paper's pattern
//!   display `pattern::position, frequency` uses the *token number* as the
//!   position for tokenized columns;
//! * [`ngrams`] yields all character n-grams with their starting character
//!   offset — per the paper, "n-grams are mainly used to extract patterns
//!   from attributes that contain a single token which could be a code or
//!   id" (e.g. `F-9-107`, `CHEMBL25`).

use serde::{Deserialize, Serialize};

/// A whitespace-delimited token with position metadata.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Token {
    /// The token text.
    pub text: String,
    /// 0-based token number within the cell.
    pub index: usize,
    /// 0-based character (not byte) offset of the token's first character.
    pub char_start: usize,
}

/// A character n-gram with position metadata.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NGram {
    /// The n-gram text (exactly `n` characters).
    pub text: String,
    /// 0-based character offset at which the n-gram starts.
    pub char_start: usize,
}

/// Visit each whitespace-delimited token as a borrowed slice of `s`,
/// with its 0-based token index — the allocation-free counterpart of
/// [`tokenize`] for hot loops (index construction) that never need owned
/// token text.
pub fn for_each_token(s: &str, mut f: impl FnMut(&str, usize)) {
    let mut index = 0usize;
    let mut start: Option<usize> = None;
    for (b, c) in s.char_indices() {
        if c.is_whitespace() {
            if let Some(st) = start.take() {
                f(&s[st..b], index);
                index += 1;
            }
        } else if start.is_none() {
            start = Some(b);
        }
    }
    if let Some(st) = start {
        f(&s[st..], index);
    }
}

/// Visit each character n-gram as a borrowed slice of `s`, with its
/// 0-based starting character offset — the allocation-free counterpart
/// of [`ngrams`]. Yields the whole string once when it is shorter than
/// `n`, and nothing for an empty string or `n == 0`.
pub fn for_each_ngram(s: &str, n: usize, mut f: impl FnMut(&str, usize)) {
    if n == 0 || s.is_empty() {
        return;
    }
    let count = s.chars().count();
    if count < n {
        f(s, 0);
        return;
    }
    let mut starts = s.char_indices();
    let mut ends = s.char_indices().skip(n);
    for i in 0..=count - n {
        let (sb, _) = starts.next().expect("start within bounds");
        let eb = ends.next().map_or(s.len(), |(b, _)| b);
        f(&s[sb..eb], i);
    }
}

/// Visit each prefix of up to `max_len` characters as a borrowed slice
/// of `s` — the allocation-free counterpart of [`prefixes`]. The position
/// is always 0 (prefixes start at the beginning by construction).
pub fn for_each_prefix(s: &str, max_len: usize, mut f: impl FnMut(&str, usize)) {
    let mut emitted = 0usize;
    for (byte, _) in s.char_indices().skip(1) {
        if emitted >= max_len {
            return;
        }
        emitted += 1;
        f(&s[..byte], 0);
    }
    if emitted < max_len && !s.is_empty() {
        f(s, 0);
    }
}

/// Split a cell into whitespace-delimited tokens.
///
/// Runs of whitespace are a single separator; leading/trailing whitespace
/// produces no empty tokens. Positions are character offsets, safe for any
/// UTF-8 input.
#[must_use]
pub fn tokenize(s: &str) -> Vec<Token> {
    // One pass via the borrowed visitor; only the kept tokens allocate.
    // `for_each_token` reports byte starts implicitly (it slices), so
    // recover the *character* offset incrementally: count chars from the
    // previous token's end to this token's start.
    let mut out = Vec::new();
    let mut scanned_bytes = 0usize;
    let mut scanned_chars = 0usize;
    for_each_token(s, |tok, index| {
        let start_byte = offset_of(s, tok);
        scanned_chars += s[scanned_bytes..start_byte].chars().count();
        out.push(Token {
            text: tok.to_string(),
            index,
            char_start: scanned_chars,
        });
        scanned_chars += tok.chars().count();
        scanned_bytes = start_byte + tok.len();
    });
    out
}

/// Byte offset of a subslice within its parent string.
fn offset_of(parent: &str, sub: &str) -> usize {
    (sub.as_ptr() as usize) - (parent.as_ptr() as usize)
}

/// All character n-grams of length `n`.
///
/// Returns the whole string as a single pseudo-n-gram when it is shorter
/// than `n` (so short codes still produce a key), and nothing for an empty
/// string or `n == 0`.
#[must_use]
pub fn ngrams(s: &str, n: usize) -> Vec<NGram> {
    // Delegates to the borrowed visitor — no intermediate `Vec<char>`;
    // each gram is sliced by byte offset and owned only on output.
    let mut out = Vec::new();
    for_each_ngram(s, n, |gram, char_start| {
        out.push(NGram {
            text: gram.to_string(),
            char_start,
        });
    });
    out
}

/// All prefixes of the string up to length `max_len` (inclusive), with
/// positions — used by discovery to find determining *prefixes* like the
/// `900` of `90001` or the `F-` of `F-9-107`.
#[must_use]
pub fn prefixes(s: &str, max_len: usize) -> Vec<NGram> {
    // Delegates to the borrowed visitor — prefixes are byte slices of
    // `s`, owned only on output.
    let mut out = Vec::new();
    for_each_prefix(s, max_len, |prefix, char_start| {
        out.push(NGram {
            text: prefix.to_string(),
            char_start,
        });
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_simple() {
        let toks = tokenize("John Charles");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].text, "John");
        assert_eq!(toks[0].index, 0);
        assert_eq!(toks[0].char_start, 0);
        assert_eq!(toks[1].text, "Charles");
        assert_eq!(toks[1].index, 1);
        assert_eq!(toks[1].char_start, 5);
    }

    #[test]
    fn tokenize_punctuation_stays_attached() {
        let toks = tokenize("Holloway, Donald E.");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["Holloway,", "Donald", "E."]);
    }

    #[test]
    fn tokenize_collapses_whitespace() {
        let toks = tokenize("  a \t b  ");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].text, "a");
        assert_eq!(toks[0].char_start, 2);
        assert_eq!(toks[1].index, 1);
    }

    #[test]
    fn tokenize_empty() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   ").is_empty());
    }

    #[test]
    fn tokenize_unicode_offsets() {
        let toks = tokenize("Édouard Manet");
        assert_eq!(toks[1].char_start, 8);
    }

    #[test]
    fn ngrams_basic() {
        let gs = ngrams("90001", 3);
        let texts: Vec<&str> = gs.iter().map(|g| g.text.as_str()).collect();
        assert_eq!(texts, vec!["900", "000", "001"]);
        assert_eq!(gs[0].char_start, 0);
        assert_eq!(gs[2].char_start, 2);
    }

    #[test]
    fn ngrams_short_string() {
        let gs = ngrams("ab", 3);
        assert_eq!(gs.len(), 1);
        assert_eq!(gs[0].text, "ab");
    }

    #[test]
    fn ngrams_degenerate() {
        assert!(ngrams("", 3).is_empty());
        assert!(ngrams("abc", 0).is_empty());
    }

    #[test]
    fn ngrams_full_length() {
        let gs = ngrams("abc", 3);
        assert_eq!(gs.len(), 1);
        assert_eq!(gs[0].text, "abc");
    }

    #[test]
    fn prefixes_basic() {
        let ps = prefixes("90001", 3);
        let texts: Vec<&str> = ps.iter().map(|g| g.text.as_str()).collect();
        assert_eq!(texts, vec!["9", "90", "900"]);
    }

    #[test]
    fn prefixes_capped_by_length() {
        assert_eq!(prefixes("ab", 5).len(), 2);
        assert!(prefixes("", 5).is_empty());
    }

    fn collect_cb(f: impl Fn(&mut dyn FnMut(&str, usize))) -> Vec<(String, usize)> {
        let mut out = Vec::new();
        f(&mut |s, p| out.push((s.to_string(), p)));
        out
    }

    #[test]
    fn for_each_token_matches_tokenize() {
        for s in [
            "John Charles",
            "  a \t b  ",
            "",
            "   ",
            "Édouard Manet",
            "one",
        ] {
            let expected: Vec<(String, usize)> =
                tokenize(s).into_iter().map(|t| (t.text, t.index)).collect();
            let got = collect_cb(|f| for_each_token(s, f));
            assert_eq!(got, expected, "input {s:?}");
        }
    }

    #[test]
    fn for_each_ngram_matches_ngrams() {
        for (s, n) in [
            ("90001", 3),
            ("ab", 3),
            ("", 3),
            ("abc", 0),
            ("abc", 3),
            ("Édouard", 2),
        ] {
            let expected: Vec<(String, usize)> = ngrams(s, n)
                .into_iter()
                .map(|g| (g.text, g.char_start))
                .collect();
            let got = collect_cb(|f| for_each_ngram(s, n, f));
            assert_eq!(got, expected, "input {s:?} n={n}");
        }
    }

    #[test]
    fn for_each_prefix_matches_prefixes() {
        for (s, max) in [("90001", 3), ("ab", 5), ("", 5), ("Édouard", 3), ("x", 1)] {
            let expected: Vec<(String, usize)> = prefixes(s, max)
                .into_iter()
                .map(|g| (g.text, g.char_start))
                .collect();
            let got = collect_cb(|f| for_each_prefix(s, max, f));
            assert_eq!(got, expected, "input {s:?} max={max}");
        }
    }
}
