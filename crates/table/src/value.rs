//! Cell values.
//!
//! PFDs are constraints over cell *strings* — pattern matching, tokenizing
//! and capturing all operate on text — so the storage model is
//! string-centric: a cell is either `Null` (absent/disguised-missing) or a
//! `Text` string exactly as ingested. Typed interpretation (integer, float,
//! date…) is a profiling-time concern; see
//! [`InferredType`](crate::profile::InferredType).

use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::fmt;

/// One table cell.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Value {
    /// An absent value (empty CSV field or declared null token).
    Null,
    /// A textual value, stored verbatim.
    Text(String),
}

impl Value {
    /// Construct from a CSV field: empty fields and the conventional null
    /// tokens become [`Value::Null`].
    #[must_use]
    pub fn from_field(s: &str) -> Value {
        if s.is_empty() || matches!(s, "NULL" | "null" | "NA" | "N/A" | "\\N") {
            Value::Null
        } else {
            Value::Text(s.to_string())
        }
    }

    /// A non-null text value.
    #[must_use]
    pub fn text(s: impl Into<String>) -> Value {
        Value::Text(s.into())
    }

    /// The string content, or `None` for nulls.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Null => None,
            Value::Text(s) => Some(s),
        }
    }

    /// Is this a null?
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// CSV rendering: nulls become the empty field.
    #[must_use]
    pub fn render(&self) -> Cow<'_, str> {
        match self {
            Value::Null => Cow::Borrowed(""),
            Value::Text(s) => Cow::Borrowed(s),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "∅"),
            Value::Text(s) => write!(f, "{s}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::from_field(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        if s.is_empty() {
            Value::Null
        } else {
            Value::Text(s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_field_null_tokens() {
        for s in ["", "NULL", "null", "NA", "N/A", "\\N"] {
            assert!(Value::from_field(s).is_null(), "{s:?} should be null");
        }
        assert!(!Value::from_field("0").is_null());
        assert!(!Value::from_field(" ").is_null());
    }

    #[test]
    fn as_str_and_render() {
        let v = Value::text("Los Angeles");
        assert_eq!(v.as_str(), Some("Los Angeles"));
        assert_eq!(v.render(), "Los Angeles");
        assert_eq!(Value::Null.as_str(), None);
        assert_eq!(Value::Null.render(), "");
    }

    #[test]
    fn display() {
        assert_eq!(Value::text("x").to_string(), "x");
        assert_eq!(Value::Null.to_string(), "∅");
    }

    #[test]
    fn from_string_empty_is_null() {
        let v: Value = String::new().into();
        assert!(v.is_null());
    }
}
