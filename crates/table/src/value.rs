//! Cell values.
//!
//! PFDs are constraints over cell *strings* — pattern matching, tokenizing
//! and capturing all operate on text — so the storage model is
//! string-centric: a cell is either `Null` (absent/disguised-missing) or a
//! `Text` string exactly as ingested. Typed interpretation (integer, float,
//! date…) is a profiling-time concern; see
//! [`InferredType`](crate::profile::InferredType).

use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::fmt;
use std::sync::OnceLock;

/// Which field strings denote an absent value.
///
/// The CSV reader and [`Value::from_field`] share one policy, so "what
/// counts as null" is decided in exactly one place. The default covers
/// the conventional tokens (`NULL`, `null`, `NA`, `N/A`, `\N`); datasets
/// with other disguised-missing markers (`nan`, `-`, `?`, …) extend it
/// with [`NullPolicy::extend`] or replace it with
/// [`NullPolicy::with_tokens`]. The empty field is always null,
/// independent of the token list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NullPolicy {
    tokens: Vec<String>,
}

impl Default for NullPolicy {
    fn default() -> NullPolicy {
        NullPolicy {
            tokens: ["NULL", "null", "NA", "N/A", "\\N"]
                .iter()
                .map(ToString::to_string)
                .collect(),
        }
    }
}

impl NullPolicy {
    /// A policy recognizing exactly `tokens` (plus the empty field).
    #[must_use]
    pub fn with_tokens<I, S>(tokens: I) -> NullPolicy
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        NullPolicy {
            tokens: tokens.into_iter().map(Into::into).collect(),
        }
    }

    /// Add tokens to the policy (e.g. `nan`, `-`).
    pub fn extend<I, S>(&mut self, tokens: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.tokens.extend(tokens.into_iter().map(Into::into));
        self
    }

    /// Does `s` denote an absent value under this policy?
    #[must_use]
    pub fn is_null(&self, s: &str) -> bool {
        s.is_empty() || self.tokens.iter().any(|t| t == s)
    }

    /// The recognized null tokens (not counting the empty field).
    #[must_use]
    pub fn tokens(&self) -> &[String] {
        &self.tokens
    }

    /// The process-shared default policy (what [`Value::from_field`]
    /// uses). Built once, never reallocated per cell.
    #[must_use]
    pub fn shared_default() -> &'static NullPolicy {
        static DEFAULT: OnceLock<NullPolicy> = OnceLock::new();
        DEFAULT.get_or_init(NullPolicy::default)
    }
}

/// One table cell.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Value {
    /// An absent value (empty CSV field or declared null token).
    Null,
    /// A textual value, stored verbatim.
    Text(String),
}

impl Value {
    /// Construct from a CSV field under the default [`NullPolicy`]: empty
    /// fields and the conventional null tokens become [`Value::Null`].
    #[must_use]
    pub fn from_field(s: &str) -> Value {
        Value::from_field_with(s, NullPolicy::shared_default())
    }

    /// Construct from a CSV field under an explicit [`NullPolicy`].
    #[must_use]
    pub fn from_field_with(s: &str, policy: &NullPolicy) -> Value {
        if policy.is_null(s) {
            Value::Null
        } else {
            Value::Text(s.to_string())
        }
    }

    /// A non-null text value.
    #[must_use]
    pub fn text(s: impl Into<String>) -> Value {
        Value::Text(s.into())
    }

    /// The string content, or `None` for nulls.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Null => None,
            Value::Text(s) => Some(s),
        }
    }

    /// Is this a null?
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// CSV rendering: nulls become the empty field.
    #[must_use]
    pub fn render(&self) -> Cow<'_, str> {
        match self {
            Value::Null => Cow::Borrowed(""),
            Value::Text(s) => Cow::Borrowed(s),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "∅"),
            Value::Text(s) => write!(f, "{s}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::from_field(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        if s.is_empty() {
            Value::Null
        } else {
            Value::Text(s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_field_null_tokens() {
        for s in ["", "NULL", "null", "NA", "N/A", "\\N"] {
            assert!(Value::from_field(s).is_null(), "{s:?} should be null");
        }
        assert!(!Value::from_field("0").is_null());
        assert!(!Value::from_field(" ").is_null());
    }

    #[test]
    fn as_str_and_render() {
        let v = Value::text("Los Angeles");
        assert_eq!(v.as_str(), Some("Los Angeles"));
        assert_eq!(v.render(), "Los Angeles");
        assert_eq!(Value::Null.as_str(), None);
        assert_eq!(Value::Null.render(), "");
    }

    #[test]
    fn display() {
        assert_eq!(Value::text("x").to_string(), "x");
        assert_eq!(Value::Null.to_string(), "∅");
    }

    #[test]
    fn from_string_empty_is_null() {
        let v: Value = String::new().into();
        assert!(v.is_null());
    }

    #[test]
    fn null_policy_default_tokens() {
        let p = NullPolicy::default();
        for s in ["", "NULL", "null", "NA", "N/A", "\\N"] {
            assert!(p.is_null(s), "{s:?} should be null");
        }
        assert!(!p.is_null("nan"));
        assert!(!p.is_null("-"));
        assert!(!p.is_null("0"));
        assert_eq!(p.tokens().len(), 5);
    }

    #[test]
    fn null_policy_extendable() {
        let mut p = NullPolicy::default();
        p.extend(["nan", "-"]);
        assert!(p.is_null("nan"));
        assert!(p.is_null("-"));
        assert!(p.is_null("NULL")); // defaults kept
        assert!(Value::from_field_with("nan", &p).is_null());
        assert!(!Value::from_field("nan").is_null()); // default unaffected
    }

    #[test]
    fn null_policy_replacement() {
        let p = NullPolicy::with_tokens(["?"]);
        assert!(p.is_null("?"));
        assert!(p.is_null("")); // empty is always null
        assert!(!p.is_null("NULL")); // defaults replaced
        assert!(Value::from_field_with("NULL", &p).as_str() == Some("NULL"));
    }

    #[test]
    fn shared_default_matches_default() {
        assert_eq!(*NullPolicy::shared_default(), NullPolicy::default());
    }
}
