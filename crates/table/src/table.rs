//! Columnar in-memory tables, dictionary-encoded, with tombstoned
//! mutation and copy-on-write snapshots.
//!
//! A column is a [`CowVec<ValueId>`] — 4 bytes per cell in 4096-cell
//! `Arc`-shared chunks — dictionary-encoded against the process-global
//! [`ValuePool`]. Ingest interns each cell once; every downstream
//! consumer (indexes, discovery, detection, the stream engine) operates
//! on `Copy` ids and pays string costs only per *distinct* value. The
//! `Value`/`&str` views (`cell`, `cell_str`, `row`, `iter_pair`) are
//! preserved at the API boundary for CSV ingest, reports and serde; id
//! accessors (`cell_id`, `row_ids`) are the hot path.
//!
//! [`Table::snapshot`] freezes a consistent read-only view
//! ([`TableSnapshot`]) in `O(chunks)` refcount bumps — no cell is
//! copied. The live table keeps mutating; a write to a chunk still
//! shared with a snapshot copies that one 16 KiB chunk first
//! (`Arc::make_mut`), so snapshot cost is proportional to the chunks
//! *mutated while the snapshot is alive*, not to table size. Drift
//! reports, `detect_all` cross-checks, and serde checkpoints read the
//! snapshot while ingest continues.
//!
//! Tables can also opt into **cell refcounting**
//! ([`Table::enable_refcounts`]): every live cell holds one
//! [`ValuePool::retain`] per occurrence, released on delete/overwrite.
//! Ids whose release dropped the count to zero accumulate as *reclaim
//! candidates* ([`Table::take_reclaim_candidates`]) for the engine's
//! epoch-tied pool sweep. A tombstoned slot's cells stay *readable*
//! (evidence rendering) but are no longer retained — the engine only
//! sweeps at a post-compaction barrier, when no tombstones exist.
//!
//! Tables are *mutable streams*: besides appends, [`Table::delete_row`]
//! tombstones a slot and [`Table::update_row`] overwrites one in place.
//! Slot identity is preserved — a deleted row keeps its `RowId` (and its
//! last cell contents stay readable for evidence rendering), so row ids
//! held by indexes, violations, and ledgers never dangle. Live-row
//! iteration ([`Table::iter_column`], [`Table::iter_pair`],
//! [`Table::iter_live`]) skips tombstones, so batch discovery/detection
//! over a mutated table see exactly the surviving rows;
//! [`Table::row_count`] counts slots and [`Table::live_rows`] counts
//! survivors. The three mutations are reified as [`RowOp`] — the delta
//! currency the whole pipeline (table → index → ledger → stream → CLI)
//! speaks.
//!
//! Tombstones accumulate under sustained churn, so tables also support
//! **compaction epochs**: [`Table::compact`] drops every tombstoned
//! slot, rewrites the columns densely, bumps the table's
//! [`epoch`](Table::epoch), and returns a [`RowIdRemap`] — the
//! epoch-stamped old→new slot mapping every `RowId`-holding consumer
//! (indexes, ledgers, stream engines) applies to stay aligned. The
//! remap is *monotone* (surviving slots keep their relative order), so
//! sorted row lists stay sorted under
//! [`RowIdRemap::remap_sorted_in_place`]. Memory is genuinely released:
//! columns and the tombstone bitmap shrink to the live-row footprint
//! (observable via [`Table::mem_footprint`]).

use crate::cow::CowVec;
use crate::error::TableError;
use crate::pool::{ValueId, ValuePool};
use crate::schema::Schema;
use crate::value::Value;
use anmat_obs as obs;
use serde::{Deserialize, Serialize};

/// Identifier of a row: its 0-based position.
pub type RowId = usize;

/// The old→new slot mapping one [`Table::compact`] pass produced,
/// stamped with the epoch it opened.
///
/// This is the currency of the *remap protocol*: the table's owner
/// threads the remap through every consumer holding `RowId`s (posting
/// lists, block row lists, violation witnesses, ledger entries) so all
/// of them translate in lockstep, instead of each rebuilding from
/// scratch. Two properties consumers rely on:
///
/// * **Totality on live rows** — every slot that was live at compaction
///   time maps to `Some(new)`; only tombstoned slots map to `None`.
///   A consumer that removed dead rows as they were deleted (all of
///   ours do) therefore never sees `None` — [`RowIdRemap::live_id`]
///   encodes that contract.
/// * **Monotonicity** — survivors keep their relative order, so an
///   ascending row list stays ascending after
///   [`RowIdRemap::remap_sorted_in_place`]; no re-sort is needed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowIdRemap {
    /// The epoch the compaction opened (the table's new epoch).
    epoch: u64,
    /// Old slot → new slot; `None` for dropped (tombstoned) slots.
    map: Vec<Option<RowId>>,
    /// Number of surviving slots (`Some` entries in `map`).
    survivors: usize,
}

impl RowIdRemap {
    /// The epoch this compaction opened.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of slots before compaction.
    #[must_use]
    pub fn old_slots(&self) -> usize {
        self.map.len()
    }

    /// Number of surviving slots (= the compacted table's row count).
    #[must_use]
    pub fn new_slots(&self) -> usize {
        self.survivors
    }

    /// Tombstoned slots the compaction dropped.
    #[must_use]
    pub fn reclaimed(&self) -> usize {
        self.map.len() - self.survivors
    }

    /// Did every slot survive (nothing moved)?
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.survivors == self.map.len()
    }

    /// The new id of an old slot, `None` if the slot was tombstoned (or
    /// out of range).
    #[must_use]
    pub fn new_id(&self, old: RowId) -> Option<RowId> {
        self.map.get(old).copied().flatten()
    }

    /// The new id of a slot that was live at compaction time.
    ///
    /// # Panics
    /// Panics if `old` was tombstoned or out of range — by the remap
    /// protocol, a consumer holding such an id has a maintenance bug
    /// (it failed to drop the row when it was deleted).
    #[must_use]
    pub fn live_id(&self, old: RowId) -> RowId {
        self.new_id(old)
            .expect("remap protocol: consumers hold only live row ids")
    }

    /// Rewrite an ascending list of live row ids in place. Monotonicity
    /// keeps the result ascending; panics like [`RowIdRemap::live_id`]
    /// on a dead id.
    pub fn remap_sorted_in_place(&self, rows: &mut [RowId]) {
        for r in rows {
            *r = self.live_id(*r);
        }
    }
}

/// A table's memory footprint, independent of the shared [`ValuePool`]
/// (string bytes live once, process-wide; the table's own cost is the
/// 4-byte id cells plus the tombstone bitmap).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFootprint {
    /// Allocated bytes: column capacity × id size + bitmap capacity.
    pub bytes: usize,
    /// Row slots held (tombstoned included).
    pub total_slots: usize,
    /// Live rows among them.
    pub live_slots: usize,
}

/// One mutation of a table — the delta currency of the whole pipeline.
///
/// An append-only stream is the special case where every op is
/// [`RowOp::Insert`]. [`Table::apply`] executes one op;
/// `StreamEngine::apply` (in `anmat-stream`) executes a batch while
/// maintaining violations incrementally. An update is delete+insert
/// *fused on one slot*: the row keeps its `RowId`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RowOp {
    /// Append a new row.
    Insert(Vec<Value>),
    /// Tombstone an existing live row.
    Delete(RowId),
    /// Overwrite an existing live row's cells in place.
    Update(RowId, Vec<Value>),
}

/// A columnar table: one `Vec<ValueId>` per column, all equal length.
///
/// Columnar layout matches the access pattern of both discovery (scan a
/// column pair) and detection (scan one column, probe another); the
/// dictionary encoding makes each scan touch 4-byte `Copy` ids, with
/// string resolution deferred to per-distinct-value work.
#[derive(Debug)]
pub struct Table {
    schema: Schema,
    columns: Vec<CowVec<ValueId>>,
    rows: usize,
    /// Tombstone bitmap, parallel to the slots (`false` = deleted).
    live: CowVec<bool>,
    /// Number of `false` entries in `live`.
    dead: usize,
    /// Compaction epoch: 0 at construction, bumped by every
    /// [`Table::compact`]. `RowId`s are only comparable within an epoch.
    epoch: u64,
    /// Does every live cell hold a [`ValuePool`] refcount?
    refcounted: bool,
    /// Ids whose [`ValuePool::release`] here dropped the shared count to
    /// zero — reclaim candidates, drained by the engine at the barrier.
    reclaim: Vec<ValueId>,
}

/// A clone of a [`Table`] shares every storage chunk and does *not*
/// inherit refcount participation: the clone did not retain its cells,
/// so it must not release them either. Use
/// [`Table::enable_refcounts`] on the clone to opt it in (it retains
/// its own counts).
impl Clone for Table {
    fn clone(&self) -> Table {
        self.clone_data()
    }
}

/// Equality is over the *data* — schema, cells, tombstones, epoch —
/// never over refcount bookkeeping, so a refcounted engine table and
/// its never-refcounting twin compare equal when their contents agree.
impl PartialEq for Table {
    fn eq(&self, other: &Table) -> bool {
        self.schema == other.schema
            && self.rows == other.rows
            && self.dead == other.dead
            && self.epoch == other.epoch
            && self.live == other.live
            && self.columns == other.columns
    }
}

impl Eq for Table {}

/// A frozen, read-only view of a [`Table`] captured by
/// [`Table::snapshot`].
///
/// Capture is `O(chunks)` — the snapshot shares every storage chunk
/// with the live table; neither copies until the live side mutates a
/// shared chunk (and then only that chunk). The snapshot derefs to
/// [`Table`], so the whole read API (`cell_id`, `iter_live`,
/// `iter_pair`, serde, `mem_footprint`, …) works on it; there is no way
/// to mutate one.
#[derive(Debug, Clone)]
pub struct TableSnapshot {
    inner: Table,
}

impl TableSnapshot {
    /// The frozen view, as a `&Table`.
    #[must_use]
    pub fn table(&self) -> &Table {
        &self.inner
    }
}

impl std::ops::Deref for TableSnapshot {
    type Target = Table;

    fn deref(&self) -> &Table {
        &self.inner
    }
}

impl Table {
    /// An empty table with the given schema.
    #[must_use]
    pub fn empty(schema: Schema) -> Table {
        let columns = (0..schema.arity()).map(|_| CowVec::new()).collect();
        Table {
            schema,
            columns,
            rows: 0,
            live: CowVec::new(),
            dead: 0,
            epoch: 0,
            refcounted: false,
            reclaim: Vec::new(),
        }
    }

    /// The data-preserving clone behind both `Clone` and
    /// [`Table::snapshot`]: shares every chunk, drops refcount
    /// bookkeeping (see the `Clone` impl for why).
    fn clone_data(&self) -> Table {
        Table {
            schema: self.schema.clone(),
            columns: self.columns.clone(),
            rows: self.rows,
            live: self.live.clone(),
            dead: self.dead,
            epoch: self.epoch,
            refcounted: false,
            reclaim: Vec::new(),
        }
    }

    /// Build a table from rows of cells.
    pub fn from_rows<R>(schema: Schema, rows: R) -> Result<Table, TableError>
    where
        R: IntoIterator<Item = Vec<Value>>,
    {
        let mut t = Table::empty(schema);
        for row in rows {
            t.push_row(row)?;
        }
        Ok(t)
    }

    /// Convenience: build from string rows (fields go through
    /// [`Value::from_field`]).
    pub fn from_str_rows<'a, R, F>(schema: Schema, rows: R) -> Result<Table, TableError>
    where
        R: IntoIterator<Item = F>,
        F: IntoIterator<Item = &'a str>,
    {
        let mut t = Table::empty(schema);
        for row in rows {
            t.push_row(row.into_iter().map(Value::from_field).collect())?;
        }
        Ok(t)
    }

    /// Append one row, interning the whole record into the [`ValuePool`]
    /// with one lock acquisition ([`ValuePool::intern_value_batch`]).
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<RowId, TableError> {
        if row.len() != self.schema.arity() {
            return Err(TableError::ArityMismatch {
                row: self.rows,
                found: row.len(),
                expected: self.schema.arity(),
            });
        }
        let ids = ValuePool::intern_value_batch(&row);
        let refcounted = self.refcounted;
        for (col, id) in self.columns.iter_mut().zip(ids) {
            if refcounted {
                ValuePool::retain(id);
            }
            col.push(id);
        }
        let id = self.rows;
        self.rows += 1;
        self.live.push(true);
        // `table.*` counters aggregate over every Table in the process —
        // under sharding that includes each worker's replica.
        obs::counter!("table.push").incr();
        Ok(id)
    }

    /// Append one row of already-interned ids — the clone-free ingest
    /// path (no string is copied, hashed, or even read).
    pub fn push_id_row(&mut self, row: Vec<ValueId>) -> Result<RowId, TableError> {
        if row.len() != self.schema.arity() {
            return Err(TableError::ArityMismatch {
                row: self.rows,
                found: row.len(),
                expected: self.schema.arity(),
            });
        }
        let refcounted = self.refcounted;
        for (col, v) in self.columns.iter_mut().zip(row) {
            if refcounted {
                ValuePool::retain(v);
            }
            col.push(v);
        }
        let id = self.rows;
        self.rows += 1;
        self.live.push(true);
        obs::counter!("table.push").incr();
        Ok(id)
    }

    /// [`Table::push_id_row`] from a borrowed slice — the sharded
    /// engine's per-replica apply path, which would otherwise clone the
    /// cell vector once per worker.
    pub fn push_id_cells(&mut self, row: &[ValueId]) -> Result<RowId, TableError> {
        if row.len() != self.schema.arity() {
            return Err(TableError::ArityMismatch {
                row: self.rows,
                found: row.len(),
                expected: self.schema.arity(),
            });
        }
        let refcounted = self.refcounted;
        for (col, v) in self.columns.iter_mut().zip(row) {
            if refcounted {
                ValuePool::retain(*v);
            }
            col.push(*v);
        }
        let id = self.rows;
        self.rows += 1;
        self.live.push(true);
        obs::counter!("table.push").incr();
        Ok(id)
    }

    /// Tombstone one live row. The slot (and its last cell contents)
    /// remains addressable — `RowId`s held elsewhere stay valid — but
    /// live-row iteration and [`Table::live_rows`] no longer see it.
    ///
    /// Under refcounting the row's cells are released *now* (tombstoned
    /// cells stay readable but no longer pin pool strings); the engine
    /// only sweeps after compaction, when tombstones are gone.
    pub fn delete_row(&mut self, row: RowId) -> Result<(), TableError> {
        self.require_live(row)?;
        self.live.set(row, false);
        self.dead += 1;
        if self.refcounted {
            for c in 0..self.columns.len() {
                let id = self.columns[c].get(row);
                if ValuePool::release(id) {
                    self.reclaim.push(id);
                }
            }
        }
        obs::counter!("table.delete").incr();
        Ok(())
    }

    /// Overwrite one live row's cells in place (slot identity preserved).
    pub fn update_row(&mut self, row: RowId, cells: Vec<Value>) -> Result<(), TableError> {
        if cells.len() != self.schema.arity() {
            return Err(TableError::ArityMismatch {
                row,
                found: cells.len(),
                expected: self.schema.arity(),
            });
        }
        self.require_live(row)?;
        let ids = ValuePool::intern_value_batch(&cells);
        for (c, id) in ids.into_iter().enumerate() {
            self.overwrite_cell(row, c, id);
        }
        obs::counter!("table.update").incr();
        Ok(())
    }

    /// Overwrite one cell id, maintaining refcounts when enabled:
    /// retain-new *before* release-old, so overwriting a cell with its
    /// own value never produces a transient zero (a false reclaim
    /// candidate).
    fn overwrite_cell(&mut self, row: RowId, col: usize, id: ValueId) {
        if self.refcounted {
            ValuePool::retain(id);
            let old = self.columns[col].get(row);
            self.columns[col].set(row, id);
            if ValuePool::release(old) {
                self.reclaim.push(old);
            }
        } else {
            self.columns[col].set(row, id);
        }
    }

    /// Overwrite one live row with already-interned ids.
    pub fn update_id_row(&mut self, row: RowId, cells: Vec<ValueId>) -> Result<(), TableError> {
        if cells.len() != self.schema.arity() {
            return Err(TableError::ArityMismatch {
                row,
                found: cells.len(),
                expected: self.schema.arity(),
            });
        }
        self.require_live(row)?;
        for (c, v) in cells.into_iter().enumerate() {
            self.overwrite_cell(row, c, v);
        }
        obs::counter!("table.update").incr();
        Ok(())
    }

    /// [`Table::update_id_row`] from a borrowed slice.
    pub fn update_id_cells(&mut self, row: RowId, cells: &[ValueId]) -> Result<(), TableError> {
        if cells.len() != self.schema.arity() {
            return Err(TableError::ArityMismatch {
                row,
                found: cells.len(),
                expected: self.schema.arity(),
            });
        }
        self.require_live(row)?;
        for (c, v) in cells.iter().enumerate() {
            self.overwrite_cell(row, c, *v);
        }
        obs::counter!("table.update").incr();
        Ok(())
    }

    /// Execute one [`RowOp`]. Returns the affected `RowId` (the fresh
    /// slot for an insert, the addressed slot otherwise).
    pub fn apply(&mut self, op: RowOp) -> Result<RowId, TableError> {
        match op {
            RowOp::Insert(cells) => self.push_row(cells),
            RowOp::Delete(row) => {
                self.delete_row(row)?;
                Ok(row)
            }
            RowOp::Update(row, cells) => {
                self.update_row(row, cells)?;
                Ok(row)
            }
        }
    }

    fn require_live(&self, row: RowId) -> Result<(), TableError> {
        if self.is_live(row) {
            Ok(())
        } else {
            Err(TableError::NoSuchRow { row })
        }
    }

    /// The schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of row *slots*, tombstoned ones included (the exclusive
    /// upper bound of valid `RowId`s). For the surviving-row count see
    /// [`Table::live_rows`].
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// Number of live (non-tombstoned) rows.
    #[must_use]
    pub fn live_rows(&self) -> usize {
        self.rows - self.dead
    }

    /// Is this slot a live row? (`false` for tombstoned *and* for
    /// out-of-range ids.)
    #[must_use]
    pub fn is_live(&self, row: RowId) -> bool {
        row < self.live.len() && self.live.get(row)
    }

    /// Iterate the live `RowId`s in ascending order.
    pub fn iter_live(&self) -> impl Iterator<Item = RowId> + '_ {
        self.live
            .iter()
            .enumerate()
            .filter_map(|(r, alive)| alive.then_some(r))
    }

    /// Number of columns.
    #[must_use]
    pub fn column_count(&self) -> usize {
        self.schema.arity()
    }

    /// Iterate a whole column of ids by index, tombstoned slots
    /// included (panics if out of range).
    pub fn column(&self, idx: usize) -> impl Iterator<Item = ValueId> + '_ {
        self.columns[idx].iter()
    }

    /// [`Table::column`] by name.
    pub fn column_by_name(
        &self,
        name: &str,
    ) -> Result<impl Iterator<Item = ValueId> + '_, TableError> {
        Ok(self.columns[self.schema.require(name)?].iter())
    }

    /// One cell, materialized as a [`Value`] (allocates for text; use
    /// [`Table::cell_id`] or [`Table::cell_str`] on hot paths).
    #[must_use]
    pub fn cell(&self, row: RowId, col: usize) -> Value {
        self.columns[col].get(row).value()
    }

    /// One cell's interned id — `O(1)`, `Copy`, allocation-free.
    #[must_use]
    pub fn cell_id(&self, row: RowId, col: usize) -> ValueId {
        self.columns[col].get(row)
    }

    /// One cell's string content (`None` if null).
    #[must_use]
    pub fn cell_str(&self, row: RowId, col: usize) -> Option<&'static str> {
        self.columns[col].get(row).as_str()
    }

    /// Overwrite one cell (used by error injection and repair).
    pub fn set_cell(&mut self, row: RowId, col: usize, v: Value) {
        self.overwrite_cell(row, col, ValuePool::intern_value(&v));
    }

    /// Materialize one row as owned [`Value`]s.
    #[must_use]
    pub fn row(&self, row: RowId) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(row).value()).collect()
    }

    /// One row as interned ids (the clone-free counterpart of
    /// [`Table::row`]).
    #[must_use]
    pub fn row_ids(&self, row: RowId) -> Vec<ValueId> {
        self.columns.iter().map(|c| c.get(row)).collect()
    }

    /// Iterate `(RowId, ValueId)` over the *live* rows of a column.
    /// Tombstoned slots are skipped, so every batch consumer (discovery,
    /// detection, blocking, profiling) sees exactly the surviving rows.
    pub fn iter_column(&self, col: usize) -> impl Iterator<Item = (RowId, ValueId)> + '_ {
        self.columns[col]
            .iter()
            .enumerate()
            .filter(|&(r, _)| self.live.get(r))
    }

    /// Iterate `(RowId, &str, &str)` over the non-null cells of the live
    /// rows of a column pair — the unit of work of the discovery loop.
    pub fn iter_pair(
        &self,
        a: usize,
        b: usize,
    ) -> impl Iterator<Item = (RowId, &'static str, &'static str)> + '_ {
        self.columns[a]
            .iter()
            .zip(self.columns[b].iter())
            .enumerate()
            .filter_map(|(id, (va, vb))| {
                if !self.live.get(id) {
                    return None;
                }
                Some((id, va.as_str()?, vb.as_str()?))
            })
    }

    /// A new compacted table containing only the live rows selected by
    /// `keep` (tombstoned slots are never carried over; the result gets
    /// fresh, dense `RowId`s).
    #[must_use]
    pub fn filter_rows(&self, keep: impl Fn(RowId) -> bool) -> Table {
        let mut t = Table::empty(self.schema.clone());
        for r in self.iter_live() {
            if keep(r) {
                t.push_id_row(self.row_ids(r)).expect("same schema");
            }
        }
        t
    }

    /// The table's compaction epoch (0 until the first
    /// [`Table::compact`]).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Drop every tombstoned slot, rewriting the columns densely, and
    /// open a new epoch. Returns the epoch-stamped [`RowIdRemap`] the
    /// caller must thread through every consumer holding `RowId`s.
    ///
    /// Survivors keep their relative order (the remap is monotone).
    /// Column vectors and the tombstone bitmap are shrunk to the live
    /// footprint, so memory is actually released — the whole point of
    /// compaction under sustained churn. `O(slots × columns)`; with no
    /// tombstones the pass is an identity remap (the epoch still
    /// advances: an epoch is a compaction *event*, not a change).
    pub fn compact(&mut self) -> RowIdRemap {
        let mut map = Vec::with_capacity(self.rows);
        let mut next = 0usize;
        for alive in self.live.iter() {
            if alive {
                map.push(Some(next));
                next += 1;
            } else {
                map.push(None);
            }
        }
        if self.dead > 0 {
            // Rebuild each column into fresh, unshared chunks: memory is
            // genuinely released, and any chunks a snapshot still shares
            // stay with the snapshot alone.
            for col in &mut self.columns {
                let fresh: CowVec<ValueId> = col
                    .iter()
                    .zip(map.iter())
                    .filter_map(|(v, entry)| entry.map(|_| v))
                    .collect();
                *col = fresh;
            }
        }
        self.rows = next;
        self.live = (0..next).map(|_| true).collect();
        self.dead = 0;
        self.epoch += 1;
        obs::counter!("table.compact").incr();
        obs::histogram!("table.remap_slots").record(map.len() as u64);
        obs::histogram!("table.remap_survivors").record(next as u64);
        RowIdRemap {
            epoch: self.epoch,
            map,
            survivors: next,
        }
    }

    /// The table's own memory footprint (excludes the process-global
    /// [`ValuePool`], which is shared and append-only): allocated column
    /// bytes plus the tombstone bitmap, with live-vs-total slot counts —
    /// the observable that makes tombstone reclamation measurable.
    #[must_use]
    pub fn mem_footprint(&self) -> MemFootprint {
        let column_bytes: usize = self.columns.iter().map(CowVec::capacity_bytes).sum();
        MemFootprint {
            bytes: column_bytes + self.live.capacity_bytes(),
            total_slots: self.rows,
            live_slots: self.live_rows(),
        }
    }

    /// Capture a copy-on-write snapshot — a frozen, consistent view this
    /// table's future mutations cannot disturb. `O(chunks)` refcount
    /// bumps; see [`TableSnapshot`].
    #[must_use]
    pub fn snapshot(&self) -> TableSnapshot {
        obs::counter!("snapshot.table_captures").incr();
        TableSnapshot {
            inner: self.clone_data(),
        }
    }

    /// Number of storage chunks currently shared with live snapshots —
    /// the upper bound on chunk copies future mutations can pay.
    #[must_use]
    pub fn shared_chunks(&self) -> usize {
        self.columns
            .iter()
            .map(CowVec::shared_chunks)
            .sum::<usize>()
            + self.live.shared_chunks()
    }

    /// Opt this table into cell refcounting: every *live* cell takes one
    /// [`ValuePool::retain`] (tombstoned cells stay unretained, matching
    /// [`Table::delete_row`]'s release-at-delete discipline), and every
    /// later mutation maintains the counts. Idempotent.
    pub fn enable_refcounts(&mut self) {
        if self.refcounted {
            return;
        }
        self.refcounted = true;
        for col in &self.columns {
            for (r, id) in col.iter().enumerate() {
                if self.live.get(r) {
                    ValuePool::retain(id);
                }
            }
        }
    }

    /// Is cell refcounting enabled?
    #[must_use]
    pub fn is_refcounted(&self) -> bool {
        self.refcounted
    }

    /// Drain the accumulated reclaim candidates: ids whose release
    /// *here* dropped the shared pool count to zero. The engine rechecks
    /// each against the live refcount (and its own protected set) at the
    /// compaction barrier before sweeping.
    pub fn take_reclaim_candidates(&mut self) -> Vec<ValueId> {
        std::mem::take(&mut self.reclaim)
    }
}

/// Serde mirror: tables serialize through their string cells (the same
/// externally-visible JSON shape as before dictionary encoding), so
/// stored documents are independent of pool id assignment. Tombstones
/// travel as the sorted list of *currently* deleted `RowId`s — derived
/// from the live bitmap at save time, never cached, so a compacted
/// table stores an empty list and a load can never resurrect slots a
/// compaction already dropped. The epoch travels too: `RowId`s in
/// ledgers and violation evidence are only meaningful relative to it.
#[derive(Serialize, Deserialize)]
struct TableRepr {
    schema: Schema,
    columns: Vec<Vec<Value>>,
    rows: usize,
    deleted: Vec<RowId>,
    epoch: u64,
}

impl Serialize for Table {
    fn to_json_value(&self) -> serde::Value {
        TableRepr {
            schema: self.schema.clone(),
            columns: self
                .columns
                .iter()
                .map(|c| c.iter().map(|id| id.value()).collect())
                .collect(),
            rows: self.rows,
            deleted: (0..self.rows).filter(|&r| !self.live.get(r)).collect(),
            epoch: self.epoch,
        }
        .to_json_value()
    }
}

impl Deserialize for Table {
    fn from_json_value(v: &serde::Value) -> Result<Table, serde::Error> {
        let repr = TableRepr::from_json_value(v)?;
        if repr.columns.len() != repr.schema.arity() {
            return Err(serde::Error::custom("column count does not match schema"));
        }
        if repr.columns.iter().any(|c| c.len() != repr.rows) {
            return Err(serde::Error::custom("ragged columns"));
        }
        if repr.deleted.iter().any(|&r| r >= repr.rows) {
            return Err(serde::Error::custom("deleted row out of range"));
        }
        let mut live = vec![true; repr.rows];
        let mut dead = 0usize;
        for &r in &repr.deleted {
            if live[r] {
                live[r] = false;
                dead += 1;
            }
        }
        Ok(Table {
            schema: repr.schema,
            columns: repr
                .columns
                .iter()
                .map(|c| c.iter().map(ValuePool::intern_value).collect())
                .collect(),
            rows: repr.rows,
            live: live.into_iter().collect(),
            dead,
            epoch: repr.epoch,
            refcounted: false,
            reclaim: Vec::new(),
        })
    }
}

/// Incremental builder used by generators and the CSV reader.
#[derive(Debug)]
pub struct TableBuilder {
    table: Table,
}

impl TableBuilder {
    /// Start building with a schema.
    #[must_use]
    pub fn new(schema: Schema) -> TableBuilder {
        TableBuilder {
            table: Table::empty(schema),
        }
    }

    /// Append one row of pre-built values.
    pub fn row(&mut self, row: Vec<Value>) -> Result<&mut Self, TableError> {
        self.table.push_row(row)?;
        Ok(self)
    }

    /// Append one row of raw strings.
    pub fn str_row<'a, F>(&mut self, row: F) -> Result<&mut Self, TableError>
    where
        F: IntoIterator<Item = &'a str>,
    {
        self.table
            .push_row(row.into_iter().map(Value::from_field).collect())?;
        Ok(self)
    }

    /// Finish building.
    #[must_use]
    pub fn build(self) -> Table {
        self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zip_table() -> Table {
        // Table 2 of the paper (D2: a Zip table), including the seeded error.
        let schema = Schema::new(["zip", "city"]).unwrap();
        Table::from_str_rows(
            schema,
            [
                ["90001", "Los Angeles"],
                ["90002", "Los Angeles"],
                ["90003", "Los Angeles"],
                ["90004", "New York"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_access() {
        let t = zip_table();
        assert_eq!(t.row_count(), 4);
        assert_eq!(t.column_count(), 2);
        assert_eq!(t.cell_str(0, 0), Some("90001"));
        assert_eq!(t.cell_str(3, 1), Some("New York"));
        assert_eq!(t.column_by_name("city").unwrap().count(), 4);
        assert_eq!(t.column(0).count(), 4);
        assert!(t.column_by_name("nope").is_err());
    }

    #[test]
    fn dictionary_encoding_shares_ids() {
        let t = zip_table();
        // Three "Los Angeles" cells are one pool entry.
        assert_eq!(t.cell_id(0, 1), t.cell_id(1, 1));
        assert_eq!(t.cell_id(0, 1), t.cell_id(2, 1));
        assert_ne!(t.cell_id(0, 1), t.cell_id(3, 1));
        // Ids resolve to the original strings.
        assert_eq!(t.cell_id(3, 1).as_str(), Some("New York"));
    }

    #[test]
    fn id_row_roundtrip() {
        let t = zip_table();
        let mut t2 = Table::empty(t.schema().clone());
        for r in 0..t.row_count() {
            t2.push_id_row(t.row_ids(r)).unwrap();
        }
        assert_eq!(t, t2);
        assert!(matches!(
            t2.push_id_row(vec![ValueId::NULL]),
            Err(TableError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn arity_enforced() {
        let schema = Schema::new(["a", "b"]).unwrap();
        let mut t = Table::empty(schema);
        assert!(matches!(
            t.push_row(vec![Value::text("1")]),
            Err(TableError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn iter_pair_skips_nulls() {
        let schema = Schema::new(["a", "b"]).unwrap();
        let t =
            Table::from_str_rows(schema, [["x", "1"], ["", "2"], ["y", ""], ["z", "3"]]).unwrap();
        let pairs: Vec<_> = t.iter_pair(0, 1).collect();
        assert_eq!(pairs, vec![(0, "x", "1"), (3, "z", "3")]);
    }

    #[test]
    fn set_cell_mutates() {
        let mut t = zip_table();
        t.set_cell(3, 1, Value::text("Los Angeles"));
        assert_eq!(t.cell_str(3, 1), Some("Los Angeles"));
        assert_eq!(t.cell_id(3, 1), t.cell_id(0, 1));
    }

    #[test]
    fn filter_rows_subsets() {
        let t = zip_table();
        let f = t.filter_rows(|r| r % 2 == 0);
        assert_eq!(f.row_count(), 2);
        assert_eq!(f.cell_str(1, 0), Some("90003"));
    }

    #[test]
    fn builder_chains() {
        let schema = Schema::new(["name", "gender"]).unwrap();
        let mut b = TableBuilder::new(schema);
        b.str_row(["John Charles", "M"]).unwrap();
        b.str_row(["Susan Orlean", "F"]).unwrap();
        let t = b.build();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.cell_str(1, 1), Some("F"));
    }

    #[test]
    fn serde_roundtrip() {
        let t = zip_table();
        let json = serde_json::to_string(&t).unwrap();
        // Cells serialize as strings, not pool ids.
        assert!(json.contains("Los Angeles"), "{json}");
        let t2: Table = serde_json::from_str(&json).unwrap();
        assert_eq!(t, t2);
        assert_eq!(t2.schema().index_of("city"), Some(1));
    }

    #[test]
    fn delete_preserves_slot_identity() {
        let mut t = zip_table();
        t.delete_row(1).unwrap();
        assert_eq!(t.row_count(), 4, "slots are kept");
        assert_eq!(t.live_rows(), 3);
        assert!(!t.is_live(1));
        assert!(t.is_live(2));
        // The tombstoned slot's contents stay readable (evidence needs
        // them) …
        assert_eq!(t.cell_str(1, 0), Some("90002"));
        // … but live iteration skips it.
        let rows: Vec<RowId> = t.iter_column(0).map(|(r, _)| r).collect();
        assert_eq!(rows, vec![0, 2, 3]);
        let pairs: Vec<RowId> = t.iter_pair(0, 1).map(|(r, _, _)| r).collect();
        assert_eq!(pairs, vec![0, 2, 3]);
        assert_eq!(t.iter_live().collect::<Vec<_>>(), vec![0, 2, 3]);
        // Appends after a delete get fresh slot ids.
        let id = t
            .push_row(vec![Value::text("90005"), Value::text("Los Angeles")])
            .unwrap();
        assert_eq!(id, 4);
        assert_eq!(t.live_rows(), 4);
    }

    #[test]
    fn delete_rejects_dead_and_out_of_range_rows() {
        let mut t = zip_table();
        t.delete_row(0).unwrap();
        assert!(matches!(
            t.delete_row(0),
            Err(TableError::NoSuchRow { row: 0 })
        ));
        assert!(matches!(
            t.delete_row(99),
            Err(TableError::NoSuchRow { row: 99 })
        ));
        assert!(matches!(
            t.update_row(0, vec![Value::text("x"), Value::text("y")]),
            Err(TableError::NoSuchRow { row: 0 })
        ));
    }

    #[test]
    fn update_overwrites_in_place() {
        let mut t = zip_table();
        t.update_row(3, vec![Value::text("90004"), Value::text("Los Angeles")])
            .unwrap();
        assert_eq!(t.cell_str(3, 1), Some("Los Angeles"));
        assert_eq!(t.cell_id(3, 1), t.cell_id(0, 1));
        assert_eq!(t.row_count(), 4);
        assert_eq!(t.live_rows(), 4);
        // Arity is checked before anything is written.
        assert!(matches!(
            t.update_row(3, vec![Value::text("oops")]),
            Err(TableError::ArityMismatch { .. })
        ));
        assert_eq!(t.cell_str(3, 0), Some("90004"));
    }

    #[test]
    fn row_ops_apply() {
        let mut t = Table::empty(Schema::new(["zip", "city"]).unwrap());
        let ops = vec![
            RowOp::Insert(vec![Value::text("90001"), Value::text("Los Angeles")]),
            RowOp::Insert(vec![Value::text("90002"), Value::text("New York")]),
            RowOp::Update(1, vec![Value::text("90002"), Value::text("Los Angeles")]),
            RowOp::Insert(vec![Value::text("90003"), Value::text("Los Angeles")]),
            RowOp::Delete(0),
        ];
        for op in ops {
            t.apply(op).unwrap();
        }
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.live_rows(), 2);
        assert_eq!(t.cell_str(1, 1), Some("Los Angeles"));
        assert!(!t.is_live(0));
    }

    #[test]
    fn serde_roundtrips_tombstones() {
        let mut t = zip_table();
        t.delete_row(2).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let t2: Table = serde_json::from_str(&json).unwrap();
        assert_eq!(t, t2);
        assert!(!t2.is_live(2));
        assert_eq!(t2.live_rows(), 3);
    }

    #[test]
    fn filter_rows_drops_tombstones() {
        let mut t = zip_table();
        t.delete_row(0).unwrap();
        let f = t.filter_rows(|_| true);
        assert_eq!(f.row_count(), 3);
        assert_eq!(f.live_rows(), 3);
        assert_eq!(f.cell_str(0, 0), Some("90002"));
    }

    #[test]
    fn compact_drops_tombstones_and_renumbers_densely() {
        let mut t = zip_table();
        t.delete_row(1).unwrap();
        t.delete_row(3).unwrap();
        let remap = t.compact();
        // Survivors 0 and 2 become 0 and 1; dropped slots map to None.
        assert_eq!(remap.epoch(), 1);
        assert_eq!(remap.old_slots(), 4);
        assert_eq!(remap.new_slots(), 2);
        assert_eq!(remap.reclaimed(), 2);
        assert!(!remap.is_identity());
        assert_eq!(remap.new_id(0), Some(0));
        assert_eq!(remap.new_id(1), None);
        assert_eq!(remap.new_id(2), Some(1));
        assert_eq!(remap.new_id(3), None);
        assert_eq!(remap.live_id(2), 1);
        assert_eq!(t.epoch(), 1);
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.live_rows(), 2);
        assert_eq!(t.cell_str(0, 0), Some("90001"));
        assert_eq!(t.cell_str(1, 0), Some("90003"));
        assert!(t.is_live(0) && t.is_live(1) && !t.is_live(2));
        // Fresh slots continue densely in the new epoch.
        let id = t
            .push_row(vec![Value::text("90009"), Value::text("Los Angeles")])
            .unwrap();
        assert_eq!(id, 2);
    }

    #[test]
    fn compact_without_tombstones_is_identity_but_opens_an_epoch() {
        let mut t = zip_table();
        let before = t.clone();
        let remap = t.compact();
        assert!(remap.is_identity());
        assert_eq!(remap.reclaimed(), 0);
        assert_eq!(t.epoch(), 1);
        assert_eq!(t.row_count(), before.row_count());
        for r in 0..t.row_count() {
            assert_eq!(remap.live_id(r), r);
            assert_eq!(t.row_ids(r), before.row_ids(r));
        }
    }

    #[test]
    fn remap_is_monotone_on_sorted_lists() {
        let mut t = zip_table();
        t.delete_row(1).unwrap();
        let remap = t.compact();
        let mut rows = vec![0, 2, 3];
        remap.remap_sorted_in_place(&mut rows);
        assert_eq!(rows, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "remap protocol")]
    fn remap_panics_on_dead_ids() {
        let mut t = zip_table();
        t.delete_row(1).unwrap();
        let remap = t.compact();
        let _ = remap.live_id(1);
    }

    #[test]
    fn mem_footprint_shrinks_after_compaction() {
        let schema = Schema::new(["a", "b"]).unwrap();
        let mut t = Table::empty(schema);
        for i in 0..1_000 {
            t.push_row(vec![Value::text(format!("k{i}")), Value::text("v")])
                .unwrap();
        }
        for r in 0..900 {
            t.delete_row(r).unwrap();
        }
        let before = t.mem_footprint();
        assert_eq!(before.total_slots, 1_000);
        assert_eq!(before.live_slots, 100);
        let remap = t.compact();
        assert_eq!(remap.reclaimed(), 900);
        let after = t.mem_footprint();
        assert_eq!(after.total_slots, 100);
        assert_eq!(after.live_slots, 100);
        assert!(
            after.bytes < before.bytes / 2,
            "compaction must release memory: {} -> {} bytes",
            before.bytes,
            after.bytes
        );
    }

    /// Satellite regression: saving a *compacted* table must not store
    /// (and a load must not resurrect) the pre-compaction deleted-slot
    /// list — live rows and cell ids round-trip identically.
    #[test]
    fn serde_after_compaction_does_not_resurrect_tombstones() {
        let mut t = zip_table();
        t.delete_row(1).unwrap();
        t.delete_row(2).unwrap();
        t.compact();
        let json = serde_json::to_string(&t).unwrap();
        assert!(
            json.contains("\"deleted\":[]"),
            "compacted table must store an empty deleted list: {json}"
        );
        let t2: Table = serde_json::from_str(&json).unwrap();
        assert_eq!(t, t2);
        assert_eq!(t2.live_rows(), t.live_rows());
        assert_eq!(t2.row_count(), t.row_count());
        assert_eq!(t2.epoch(), t.epoch());
        for r in 0..t.row_count() {
            assert!(t2.is_live(r));
            assert_eq!(t2.row_ids(r), t.row_ids(r));
        }
    }

    #[test]
    fn serde_roundtrips_epoch_with_tombstones() {
        let mut t = zip_table();
        t.delete_row(0).unwrap();
        t.compact();
        t.delete_row(1).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let t2: Table = serde_json::from_str(&json).unwrap();
        assert_eq!(t, t2);
        assert_eq!(t2.epoch(), 1);
        assert!(!t2.is_live(1));
        assert_eq!(t2.live_rows(), 2);
    }

    #[test]
    fn snapshot_freezes_view_while_table_mutates() {
        let mut t = zip_table();
        let snap = t.snapshot();
        assert_eq!(*snap.table(), t);
        t.update_row(0, vec![Value::text("99999"), Value::text("Boston")])
            .unwrap();
        t.delete_row(1).unwrap();
        t.push_row(vec![Value::text("90005"), Value::text("Chicago")])
            .unwrap();
        // The snapshot still reads the world as it was at capture.
        assert_eq!(snap.row_count(), 4);
        assert_eq!(snap.live_rows(), 4);
        assert_eq!(snap.cell_str(0, 0), Some("90001"));
        assert!(snap.is_live(1));
        // The live table moved on.
        assert_eq!(t.cell_str(0, 0), Some("99999"));
        assert_eq!(t.row_count(), 5);
        assert!(!t.is_live(1));
        // Compaction rebuilds into fresh chunks — the snapshot keeps its
        // frozen view across the epoch boundary.
        t.compact();
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.cell_str(1, 1), Some("Los Angeles"));
        // A snapshot serializes like any table (checkpoint path).
        let json = serde_json::to_string(snap.table()).unwrap();
        let back: Table = serde_json::from_str(&json).unwrap();
        assert_eq!(back, *snap.table());
    }

    #[test]
    fn refcounts_follow_cell_occurrences() {
        // Unique strings: the pool is process-global, so refcount
        // assertions are only meaningful on values no other test interns.
        let schema = Schema::new(["k", "v"]).unwrap();
        let mut t = Table::empty(schema);
        t.enable_refcounts();
        assert!(t.is_refcounted());
        t.push_row(vec![
            Value::text("rcl-table-k1"),
            Value::text("rcl-table-shared"),
        ])
        .unwrap();
        t.push_row(vec![
            Value::text("rcl-table-k2"),
            Value::text("rcl-table-shared"),
        ])
        .unwrap();
        let k1 = t.cell_id(0, 0);
        let shared = t.cell_id(0, 1);
        assert_eq!(ValuePool::refcount(k1), 1);
        assert_eq!(ValuePool::refcount(shared), 2);
        // Same-value overwrite: count unchanged, no false candidate.
        t.set_cell(0, 1, Value::text("rcl-table-shared"));
        assert_eq!(ValuePool::refcount(shared), 2);
        assert!(t.take_reclaim_candidates().is_empty());
        // Delete releases the row's cells; k1 hits zero and becomes a
        // candidate, the shared value stays pinned by row 1.
        t.delete_row(0).unwrap();
        assert_eq!(ValuePool::refcount(k1), 0);
        assert_eq!(ValuePool::refcount(shared), 1);
        let cand = t.take_reclaim_candidates();
        assert!(cand.contains(&k1));
        assert!(!cand.contains(&shared));
        // Update releases the old cell and retains the new one.
        t.update_row(
            1,
            vec![Value::text("rcl-table-k3"), Value::text("rcl-table-v3")],
        )
        .unwrap();
        assert_eq!(ValuePool::refcount(shared), 0);
        let k2 = ValuePool::lookup("rcl-table-k2").unwrap();
        assert_eq!(ValuePool::refcount(k2), 0);
        let cand = t.take_reclaim_candidates();
        assert!(cand.contains(&shared) && cand.contains(&k2));
        assert_eq!(ValuePool::refcount(t.cell_id(1, 0)), 1);
    }

    #[test]
    fn clone_does_not_inherit_refcounting() {
        let schema = Schema::new(["k"]).unwrap();
        let mut t = Table::empty(schema);
        t.enable_refcounts();
        t.push_row(vec![Value::text("rcl-table-clone")]).unwrap();
        let id = t.cell_id(0, 0);
        assert_eq!(ValuePool::refcount(id), 1);
        // The clone shares the data but holds no retains of its own —
        // deleting in the clone must not disturb the original's count.
        let mut c = t.clone();
        assert!(!c.is_refcounted());
        assert_eq!(t, c);
        c.delete_row(0).unwrap();
        assert_eq!(ValuePool::refcount(id), 1);
        assert!(c.take_reclaim_candidates().is_empty());
        // Opting the clone in retains its own (live) cells.
        let mut c2 = t.clone();
        c2.enable_refcounts();
        assert_eq!(ValuePool::refcount(id), 2);
        c2.delete_row(0).unwrap();
        assert_eq!(ValuePool::refcount(id), 1);
    }
}
