//! Columnar in-memory tables, dictionary-encoded, with tombstoned
//! mutation.
//!
//! A column is a `Vec<ValueId>` — 4 bytes per cell — dictionary-encoded
//! against the process-global [`ValuePool`]. Ingest interns each cell
//! once; every downstream consumer (indexes, discovery, detection, the
//! stream engine) operates on `Copy` ids and pays string costs only per
//! *distinct* value. The `Value`/`&str` views (`cell`, `cell_str`,
//! `row`, `iter_pair`) are preserved at the API boundary for CSV ingest,
//! reports and serde; id accessors (`cell_id`, `row_ids`, `column`) are
//! the hot path.
//!
//! Tables are *mutable streams*: besides appends, [`Table::delete_row`]
//! tombstones a slot and [`Table::update_row`] overwrites one in place.
//! Slot identity is preserved — a deleted row keeps its `RowId` (and its
//! last cell contents stay readable for evidence rendering), so row ids
//! held by indexes, violations, and ledgers never dangle. Live-row
//! iteration ([`Table::iter_column`], [`Table::iter_pair`],
//! [`Table::iter_live`]) skips tombstones, so batch discovery/detection
//! over a mutated table see exactly the surviving rows;
//! [`Table::row_count`] counts slots and [`Table::live_rows`] counts
//! survivors. The three mutations are reified as [`RowOp`] — the delta
//! currency the whole pipeline (table → index → ledger → stream → CLI)
//! speaks.
//!
//! Tombstones accumulate under sustained churn, so tables also support
//! **compaction epochs**: [`Table::compact`] drops every tombstoned
//! slot, rewrites the columns densely, bumps the table's
//! [`epoch`](Table::epoch), and returns a [`RowIdRemap`] — the
//! epoch-stamped old→new slot mapping every `RowId`-holding consumer
//! (indexes, ledgers, stream engines) applies to stay aligned. The
//! remap is *monotone* (surviving slots keep their relative order), so
//! sorted row lists stay sorted under
//! [`RowIdRemap::remap_sorted_in_place`]. Memory is genuinely released:
//! columns and the tombstone bitmap shrink to the live-row footprint
//! (observable via [`Table::mem_footprint`]).

use crate::error::TableError;
use crate::pool::{ValueId, ValuePool};
use crate::schema::Schema;
use crate::value::Value;
use anmat_obs as obs;
use serde::{Deserialize, Serialize};

/// Identifier of a row: its 0-based position.
pub type RowId = usize;

/// The old→new slot mapping one [`Table::compact`] pass produced,
/// stamped with the epoch it opened.
///
/// This is the currency of the *remap protocol*: the table's owner
/// threads the remap through every consumer holding `RowId`s (posting
/// lists, block row lists, violation witnesses, ledger entries) so all
/// of them translate in lockstep, instead of each rebuilding from
/// scratch. Two properties consumers rely on:
///
/// * **Totality on live rows** — every slot that was live at compaction
///   time maps to `Some(new)`; only tombstoned slots map to `None`.
///   A consumer that removed dead rows as they were deleted (all of
///   ours do) therefore never sees `None` — [`RowIdRemap::live_id`]
///   encodes that contract.
/// * **Monotonicity** — survivors keep their relative order, so an
///   ascending row list stays ascending after
///   [`RowIdRemap::remap_sorted_in_place`]; no re-sort is needed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowIdRemap {
    /// The epoch the compaction opened (the table's new epoch).
    epoch: u64,
    /// Old slot → new slot; `None` for dropped (tombstoned) slots.
    map: Vec<Option<RowId>>,
    /// Number of surviving slots (`Some` entries in `map`).
    survivors: usize,
}

impl RowIdRemap {
    /// The epoch this compaction opened.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of slots before compaction.
    #[must_use]
    pub fn old_slots(&self) -> usize {
        self.map.len()
    }

    /// Number of surviving slots (= the compacted table's row count).
    #[must_use]
    pub fn new_slots(&self) -> usize {
        self.survivors
    }

    /// Tombstoned slots the compaction dropped.
    #[must_use]
    pub fn reclaimed(&self) -> usize {
        self.map.len() - self.survivors
    }

    /// Did every slot survive (nothing moved)?
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.survivors == self.map.len()
    }

    /// The new id of an old slot, `None` if the slot was tombstoned (or
    /// out of range).
    #[must_use]
    pub fn new_id(&self, old: RowId) -> Option<RowId> {
        self.map.get(old).copied().flatten()
    }

    /// The new id of a slot that was live at compaction time.
    ///
    /// # Panics
    /// Panics if `old` was tombstoned or out of range — by the remap
    /// protocol, a consumer holding such an id has a maintenance bug
    /// (it failed to drop the row when it was deleted).
    #[must_use]
    pub fn live_id(&self, old: RowId) -> RowId {
        self.new_id(old)
            .expect("remap protocol: consumers hold only live row ids")
    }

    /// Rewrite an ascending list of live row ids in place. Monotonicity
    /// keeps the result ascending; panics like [`RowIdRemap::live_id`]
    /// on a dead id.
    pub fn remap_sorted_in_place(&self, rows: &mut [RowId]) {
        for r in rows {
            *r = self.live_id(*r);
        }
    }
}

/// A table's memory footprint, independent of the shared [`ValuePool`]
/// (string bytes live once, process-wide; the table's own cost is the
/// 4-byte id cells plus the tombstone bitmap).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFootprint {
    /// Allocated bytes: column capacity × id size + bitmap capacity.
    pub bytes: usize,
    /// Row slots held (tombstoned included).
    pub total_slots: usize,
    /// Live rows among them.
    pub live_slots: usize,
}

/// One mutation of a table — the delta currency of the whole pipeline.
///
/// An append-only stream is the special case where every op is
/// [`RowOp::Insert`]. [`Table::apply`] executes one op;
/// `StreamEngine::apply` (in `anmat-stream`) executes a batch while
/// maintaining violations incrementally. An update is delete+insert
/// *fused on one slot*: the row keeps its `RowId`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RowOp {
    /// Append a new row.
    Insert(Vec<Value>),
    /// Tombstone an existing live row.
    Delete(RowId),
    /// Overwrite an existing live row's cells in place.
    Update(RowId, Vec<Value>),
}

/// A columnar table: one `Vec<ValueId>` per column, all equal length.
///
/// Columnar layout matches the access pattern of both discovery (scan a
/// column pair) and detection (scan one column, probe another); the
/// dictionary encoding makes each scan touch 4-byte `Copy` ids, with
/// string resolution deferred to per-distinct-value work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    schema: Schema,
    columns: Vec<Vec<ValueId>>,
    rows: usize,
    /// Tombstone bitmap, parallel to the slots (`false` = deleted). Kept
    /// as a plain `Vec<bool>` so `is_live` stays a branch-free load.
    live: Vec<bool>,
    /// Number of `false` entries in `live`.
    dead: usize,
    /// Compaction epoch: 0 at construction, bumped by every
    /// [`Table::compact`]. `RowId`s are only comparable within an epoch.
    epoch: u64,
}

impl Table {
    /// An empty table with the given schema.
    #[must_use]
    pub fn empty(schema: Schema) -> Table {
        let columns = (0..schema.arity()).map(|_| Vec::new()).collect();
        Table {
            schema,
            columns,
            rows: 0,
            live: Vec::new(),
            dead: 0,
            epoch: 0,
        }
    }

    /// Build a table from rows of cells.
    pub fn from_rows<R>(schema: Schema, rows: R) -> Result<Table, TableError>
    where
        R: IntoIterator<Item = Vec<Value>>,
    {
        let mut t = Table::empty(schema);
        for row in rows {
            t.push_row(row)?;
        }
        Ok(t)
    }

    /// Convenience: build from string rows (fields go through
    /// [`Value::from_field`]).
    pub fn from_str_rows<'a, R, F>(schema: Schema, rows: R) -> Result<Table, TableError>
    where
        R: IntoIterator<Item = F>,
        F: IntoIterator<Item = &'a str>,
    {
        let mut t = Table::empty(schema);
        for row in rows {
            t.push_row(row.into_iter().map(Value::from_field).collect())?;
        }
        Ok(t)
    }

    /// Append one row, interning the whole record into the [`ValuePool`]
    /// with one lock acquisition ([`ValuePool::intern_value_batch`]).
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<RowId, TableError> {
        if row.len() != self.schema.arity() {
            return Err(TableError::ArityMismatch {
                row: self.rows,
                found: row.len(),
                expected: self.schema.arity(),
            });
        }
        let ids = ValuePool::intern_value_batch(&row);
        for (col, id) in self.columns.iter_mut().zip(ids) {
            col.push(id);
        }
        let id = self.rows;
        self.rows += 1;
        self.live.push(true);
        // `table.*` counters aggregate over every Table in the process —
        // under sharding that includes each worker's replica.
        obs::counter!("table.push").incr();
        Ok(id)
    }

    /// Append one row of already-interned ids — the clone-free ingest
    /// path (no string is copied, hashed, or even read).
    pub fn push_id_row(&mut self, row: Vec<ValueId>) -> Result<RowId, TableError> {
        if row.len() != self.schema.arity() {
            return Err(TableError::ArityMismatch {
                row: self.rows,
                found: row.len(),
                expected: self.schema.arity(),
            });
        }
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.push(v);
        }
        let id = self.rows;
        self.rows += 1;
        self.live.push(true);
        obs::counter!("table.push").incr();
        Ok(id)
    }

    /// [`Table::push_id_row`] from a borrowed slice — the sharded
    /// engine's per-replica apply path, which would otherwise clone the
    /// cell vector once per worker.
    pub fn push_id_cells(&mut self, row: &[ValueId]) -> Result<RowId, TableError> {
        if row.len() != self.schema.arity() {
            return Err(TableError::ArityMismatch {
                row: self.rows,
                found: row.len(),
                expected: self.schema.arity(),
            });
        }
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.push(*v);
        }
        let id = self.rows;
        self.rows += 1;
        self.live.push(true);
        obs::counter!("table.push").incr();
        Ok(id)
    }

    /// Tombstone one live row. The slot (and its last cell contents)
    /// remains addressable — `RowId`s held elsewhere stay valid — but
    /// live-row iteration and [`Table::live_rows`] no longer see it.
    pub fn delete_row(&mut self, row: RowId) -> Result<(), TableError> {
        self.require_live(row)?;
        self.live[row] = false;
        self.dead += 1;
        obs::counter!("table.delete").incr();
        Ok(())
    }

    /// Overwrite one live row's cells in place (slot identity preserved).
    pub fn update_row(&mut self, row: RowId, cells: Vec<Value>) -> Result<(), TableError> {
        if cells.len() != self.schema.arity() {
            return Err(TableError::ArityMismatch {
                row,
                found: cells.len(),
                expected: self.schema.arity(),
            });
        }
        self.require_live(row)?;
        let ids = ValuePool::intern_value_batch(&cells);
        for (col, id) in self.columns.iter_mut().zip(ids) {
            col[row] = id;
        }
        obs::counter!("table.update").incr();
        Ok(())
    }

    /// Overwrite one live row with already-interned ids.
    pub fn update_id_row(&mut self, row: RowId, cells: Vec<ValueId>) -> Result<(), TableError> {
        if cells.len() != self.schema.arity() {
            return Err(TableError::ArityMismatch {
                row,
                found: cells.len(),
                expected: self.schema.arity(),
            });
        }
        self.require_live(row)?;
        for (col, v) in self.columns.iter_mut().zip(cells) {
            col[row] = v;
        }
        obs::counter!("table.update").incr();
        Ok(())
    }

    /// [`Table::update_id_row`] from a borrowed slice.
    pub fn update_id_cells(&mut self, row: RowId, cells: &[ValueId]) -> Result<(), TableError> {
        if cells.len() != self.schema.arity() {
            return Err(TableError::ArityMismatch {
                row,
                found: cells.len(),
                expected: self.schema.arity(),
            });
        }
        self.require_live(row)?;
        for (col, v) in self.columns.iter_mut().zip(cells) {
            col[row] = *v;
        }
        obs::counter!("table.update").incr();
        Ok(())
    }

    /// Execute one [`RowOp`]. Returns the affected `RowId` (the fresh
    /// slot for an insert, the addressed slot otherwise).
    pub fn apply(&mut self, op: RowOp) -> Result<RowId, TableError> {
        match op {
            RowOp::Insert(cells) => self.push_row(cells),
            RowOp::Delete(row) => {
                self.delete_row(row)?;
                Ok(row)
            }
            RowOp::Update(row, cells) => {
                self.update_row(row, cells)?;
                Ok(row)
            }
        }
    }

    fn require_live(&self, row: RowId) -> Result<(), TableError> {
        if self.is_live(row) {
            Ok(())
        } else {
            Err(TableError::NoSuchRow { row })
        }
    }

    /// The schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of row *slots*, tombstoned ones included (the exclusive
    /// upper bound of valid `RowId`s). For the surviving-row count see
    /// [`Table::live_rows`].
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// Number of live (non-tombstoned) rows.
    #[must_use]
    pub fn live_rows(&self) -> usize {
        self.rows - self.dead
    }

    /// Is this slot a live row? (`false` for tombstoned *and* for
    /// out-of-range ids.)
    #[must_use]
    pub fn is_live(&self, row: RowId) -> bool {
        self.live.get(row).copied().unwrap_or(false)
    }

    /// Iterate the live `RowId`s in ascending order.
    pub fn iter_live(&self) -> impl Iterator<Item = RowId> + '_ {
        self.live
            .iter()
            .enumerate()
            .filter_map(|(r, &alive)| alive.then_some(r))
    }

    /// Number of columns.
    #[must_use]
    pub fn column_count(&self) -> usize {
        self.schema.arity()
    }

    /// A whole column of ids by index (panics if out of range).
    #[must_use]
    pub fn column(&self, idx: usize) -> &[ValueId] {
        &self.columns[idx]
    }

    /// A whole column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&[ValueId], TableError> {
        Ok(&self.columns[self.schema.require(name)?])
    }

    /// One cell, materialized as a [`Value`] (allocates for text; use
    /// [`Table::cell_id`] or [`Table::cell_str`] on hot paths).
    #[must_use]
    pub fn cell(&self, row: RowId, col: usize) -> Value {
        self.columns[col][row].value()
    }

    /// One cell's interned id — `O(1)`, `Copy`, allocation-free.
    #[must_use]
    pub fn cell_id(&self, row: RowId, col: usize) -> ValueId {
        self.columns[col][row]
    }

    /// One cell's string content (`None` if null).
    #[must_use]
    pub fn cell_str(&self, row: RowId, col: usize) -> Option<&'static str> {
        self.columns[col][row].as_str()
    }

    /// Overwrite one cell (used by error injection and repair).
    pub fn set_cell(&mut self, row: RowId, col: usize, v: Value) {
        self.columns[col][row] = ValuePool::intern_value(&v);
    }

    /// Materialize one row as owned [`Value`]s.
    #[must_use]
    pub fn row(&self, row: RowId) -> Vec<Value> {
        self.columns.iter().map(|c| c[row].value()).collect()
    }

    /// One row as interned ids (the clone-free counterpart of
    /// [`Table::row`]).
    #[must_use]
    pub fn row_ids(&self, row: RowId) -> Vec<ValueId> {
        self.columns.iter().map(|c| c[row]).collect()
    }

    /// Iterate `(RowId, ValueId)` over the *live* rows of a column.
    /// Tombstoned slots are skipped, so every batch consumer (discovery,
    /// detection, blocking, profiling) sees exactly the surviving rows.
    pub fn iter_column(&self, col: usize) -> impl Iterator<Item = (RowId, ValueId)> + '_ {
        self.columns[col]
            .iter()
            .copied()
            .enumerate()
            .filter(|&(r, _)| self.live[r])
    }

    /// Iterate `(RowId, &str, &str)` over the non-null cells of the live
    /// rows of a column pair — the unit of work of the discovery loop.
    pub fn iter_pair(
        &self,
        a: usize,
        b: usize,
    ) -> impl Iterator<Item = (RowId, &'static str, &'static str)> + '_ {
        self.columns[a]
            .iter()
            .zip(self.columns[b].iter())
            .enumerate()
            .filter_map(|(id, (va, vb))| {
                if !self.live[id] {
                    return None;
                }
                Some((id, va.as_str()?, vb.as_str()?))
            })
    }

    /// A new compacted table containing only the live rows selected by
    /// `keep` (tombstoned slots are never carried over; the result gets
    /// fresh, dense `RowId`s).
    #[must_use]
    pub fn filter_rows(&self, keep: impl Fn(RowId) -> bool) -> Table {
        let mut t = Table::empty(self.schema.clone());
        for r in self.iter_live() {
            if keep(r) {
                t.push_id_row(self.row_ids(r)).expect("same schema");
            }
        }
        t
    }

    /// The table's compaction epoch (0 until the first
    /// [`Table::compact`]).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Drop every tombstoned slot, rewriting the columns densely, and
    /// open a new epoch. Returns the epoch-stamped [`RowIdRemap`] the
    /// caller must thread through every consumer holding `RowId`s.
    ///
    /// Survivors keep their relative order (the remap is monotone).
    /// Column vectors and the tombstone bitmap are shrunk to the live
    /// footprint, so memory is actually released — the whole point of
    /// compaction under sustained churn. `O(slots × columns)`; with no
    /// tombstones the pass is an identity remap (the epoch still
    /// advances: an epoch is a compaction *event*, not a change).
    pub fn compact(&mut self) -> RowIdRemap {
        let mut map = Vec::with_capacity(self.rows);
        let mut next = 0usize;
        for &alive in &self.live {
            if alive {
                map.push(Some(next));
                next += 1;
            } else {
                map.push(None);
            }
        }
        if self.dead > 0 {
            for col in &mut self.columns {
                let mut write = 0usize;
                for (old, entry) in map.iter().enumerate() {
                    if entry.is_some() {
                        col[write] = col[old];
                        write += 1;
                    }
                }
                col.truncate(next);
                col.shrink_to_fit();
            }
        }
        self.rows = next;
        self.live.clear();
        self.live.resize(next, true);
        self.live.shrink_to_fit();
        self.dead = 0;
        self.epoch += 1;
        obs::counter!("table.compact").incr();
        obs::histogram!("table.remap_slots").record(map.len() as u64);
        obs::histogram!("table.remap_survivors").record(next as u64);
        RowIdRemap {
            epoch: self.epoch,
            map,
            survivors: next,
        }
    }

    /// The table's own memory footprint (excludes the process-global
    /// [`ValuePool`], which is shared and append-only): allocated column
    /// bytes plus the tombstone bitmap, with live-vs-total slot counts —
    /// the observable that makes tombstone reclamation measurable.
    #[must_use]
    pub fn mem_footprint(&self) -> MemFootprint {
        let column_bytes: usize = self
            .columns
            .iter()
            .map(|c| c.capacity() * std::mem::size_of::<ValueId>())
            .sum();
        MemFootprint {
            bytes: column_bytes + self.live.capacity() * std::mem::size_of::<bool>(),
            total_slots: self.rows,
            live_slots: self.live_rows(),
        }
    }
}

/// Serde mirror: tables serialize through their string cells (the same
/// externally-visible JSON shape as before dictionary encoding), so
/// stored documents are independent of pool id assignment. Tombstones
/// travel as the sorted list of *currently* deleted `RowId`s — derived
/// from the live bitmap at save time, never cached, so a compacted
/// table stores an empty list and a load can never resurrect slots a
/// compaction already dropped. The epoch travels too: `RowId`s in
/// ledgers and violation evidence are only meaningful relative to it.
#[derive(Serialize, Deserialize)]
struct TableRepr {
    schema: Schema,
    columns: Vec<Vec<Value>>,
    rows: usize,
    deleted: Vec<RowId>,
    epoch: u64,
}

impl Serialize for Table {
    fn to_json_value(&self) -> serde::Value {
        TableRepr {
            schema: self.schema.clone(),
            columns: self
                .columns
                .iter()
                .map(|c| c.iter().map(|id| id.value()).collect())
                .collect(),
            rows: self.rows,
            deleted: (0..self.rows).filter(|&r| !self.live[r]).collect(),
            epoch: self.epoch,
        }
        .to_json_value()
    }
}

impl Deserialize for Table {
    fn from_json_value(v: &serde::Value) -> Result<Table, serde::Error> {
        let repr = TableRepr::from_json_value(v)?;
        if repr.columns.len() != repr.schema.arity() {
            return Err(serde::Error::custom("column count does not match schema"));
        }
        if repr.columns.iter().any(|c| c.len() != repr.rows) {
            return Err(serde::Error::custom("ragged columns"));
        }
        if repr.deleted.iter().any(|&r| r >= repr.rows) {
            return Err(serde::Error::custom("deleted row out of range"));
        }
        let mut live = vec![true; repr.rows];
        let mut dead = 0usize;
        for &r in &repr.deleted {
            if live[r] {
                live[r] = false;
                dead += 1;
            }
        }
        Ok(Table {
            schema: repr.schema,
            columns: repr
                .columns
                .iter()
                .map(|c| c.iter().map(ValuePool::intern_value).collect())
                .collect(),
            rows: repr.rows,
            live,
            dead,
            epoch: repr.epoch,
        })
    }
}

/// Incremental builder used by generators and the CSV reader.
#[derive(Debug)]
pub struct TableBuilder {
    table: Table,
}

impl TableBuilder {
    /// Start building with a schema.
    #[must_use]
    pub fn new(schema: Schema) -> TableBuilder {
        TableBuilder {
            table: Table::empty(schema),
        }
    }

    /// Append one row of pre-built values.
    pub fn row(&mut self, row: Vec<Value>) -> Result<&mut Self, TableError> {
        self.table.push_row(row)?;
        Ok(self)
    }

    /// Append one row of raw strings.
    pub fn str_row<'a, F>(&mut self, row: F) -> Result<&mut Self, TableError>
    where
        F: IntoIterator<Item = &'a str>,
    {
        self.table
            .push_row(row.into_iter().map(Value::from_field).collect())?;
        Ok(self)
    }

    /// Finish building.
    #[must_use]
    pub fn build(self) -> Table {
        self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zip_table() -> Table {
        // Table 2 of the paper (D2: a Zip table), including the seeded error.
        let schema = Schema::new(["zip", "city"]).unwrap();
        Table::from_str_rows(
            schema,
            [
                ["90001", "Los Angeles"],
                ["90002", "Los Angeles"],
                ["90003", "Los Angeles"],
                ["90004", "New York"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_access() {
        let t = zip_table();
        assert_eq!(t.row_count(), 4);
        assert_eq!(t.column_count(), 2);
        assert_eq!(t.cell_str(0, 0), Some("90001"));
        assert_eq!(t.cell_str(3, 1), Some("New York"));
        assert_eq!(t.column_by_name("city").unwrap().len(), 4);
        assert!(t.column_by_name("nope").is_err());
    }

    #[test]
    fn dictionary_encoding_shares_ids() {
        let t = zip_table();
        // Three "Los Angeles" cells are one pool entry.
        assert_eq!(t.cell_id(0, 1), t.cell_id(1, 1));
        assert_eq!(t.cell_id(0, 1), t.cell_id(2, 1));
        assert_ne!(t.cell_id(0, 1), t.cell_id(3, 1));
        // Ids resolve to the original strings.
        assert_eq!(t.cell_id(3, 1).as_str(), Some("New York"));
    }

    #[test]
    fn id_row_roundtrip() {
        let t = zip_table();
        let mut t2 = Table::empty(t.schema().clone());
        for r in 0..t.row_count() {
            t2.push_id_row(t.row_ids(r)).unwrap();
        }
        assert_eq!(t, t2);
        assert!(matches!(
            t2.push_id_row(vec![ValueId::NULL]),
            Err(TableError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn arity_enforced() {
        let schema = Schema::new(["a", "b"]).unwrap();
        let mut t = Table::empty(schema);
        assert!(matches!(
            t.push_row(vec![Value::text("1")]),
            Err(TableError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn iter_pair_skips_nulls() {
        let schema = Schema::new(["a", "b"]).unwrap();
        let t =
            Table::from_str_rows(schema, [["x", "1"], ["", "2"], ["y", ""], ["z", "3"]]).unwrap();
        let pairs: Vec<_> = t.iter_pair(0, 1).collect();
        assert_eq!(pairs, vec![(0, "x", "1"), (3, "z", "3")]);
    }

    #[test]
    fn set_cell_mutates() {
        let mut t = zip_table();
        t.set_cell(3, 1, Value::text("Los Angeles"));
        assert_eq!(t.cell_str(3, 1), Some("Los Angeles"));
        assert_eq!(t.cell_id(3, 1), t.cell_id(0, 1));
    }

    #[test]
    fn filter_rows_subsets() {
        let t = zip_table();
        let f = t.filter_rows(|r| r % 2 == 0);
        assert_eq!(f.row_count(), 2);
        assert_eq!(f.cell_str(1, 0), Some("90003"));
    }

    #[test]
    fn builder_chains() {
        let schema = Schema::new(["name", "gender"]).unwrap();
        let mut b = TableBuilder::new(schema);
        b.str_row(["John Charles", "M"]).unwrap();
        b.str_row(["Susan Orlean", "F"]).unwrap();
        let t = b.build();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.cell_str(1, 1), Some("F"));
    }

    #[test]
    fn serde_roundtrip() {
        let t = zip_table();
        let json = serde_json::to_string(&t).unwrap();
        // Cells serialize as strings, not pool ids.
        assert!(json.contains("Los Angeles"), "{json}");
        let t2: Table = serde_json::from_str(&json).unwrap();
        assert_eq!(t, t2);
        assert_eq!(t2.schema().index_of("city"), Some(1));
    }

    #[test]
    fn delete_preserves_slot_identity() {
        let mut t = zip_table();
        t.delete_row(1).unwrap();
        assert_eq!(t.row_count(), 4, "slots are kept");
        assert_eq!(t.live_rows(), 3);
        assert!(!t.is_live(1));
        assert!(t.is_live(2));
        // The tombstoned slot's contents stay readable (evidence needs
        // them) …
        assert_eq!(t.cell_str(1, 0), Some("90002"));
        // … but live iteration skips it.
        let rows: Vec<RowId> = t.iter_column(0).map(|(r, _)| r).collect();
        assert_eq!(rows, vec![0, 2, 3]);
        let pairs: Vec<RowId> = t.iter_pair(0, 1).map(|(r, _, _)| r).collect();
        assert_eq!(pairs, vec![0, 2, 3]);
        assert_eq!(t.iter_live().collect::<Vec<_>>(), vec![0, 2, 3]);
        // Appends after a delete get fresh slot ids.
        let id = t
            .push_row(vec![Value::text("90005"), Value::text("Los Angeles")])
            .unwrap();
        assert_eq!(id, 4);
        assert_eq!(t.live_rows(), 4);
    }

    #[test]
    fn delete_rejects_dead_and_out_of_range_rows() {
        let mut t = zip_table();
        t.delete_row(0).unwrap();
        assert!(matches!(
            t.delete_row(0),
            Err(TableError::NoSuchRow { row: 0 })
        ));
        assert!(matches!(
            t.delete_row(99),
            Err(TableError::NoSuchRow { row: 99 })
        ));
        assert!(matches!(
            t.update_row(0, vec![Value::text("x"), Value::text("y")]),
            Err(TableError::NoSuchRow { row: 0 })
        ));
    }

    #[test]
    fn update_overwrites_in_place() {
        let mut t = zip_table();
        t.update_row(3, vec![Value::text("90004"), Value::text("Los Angeles")])
            .unwrap();
        assert_eq!(t.cell_str(3, 1), Some("Los Angeles"));
        assert_eq!(t.cell_id(3, 1), t.cell_id(0, 1));
        assert_eq!(t.row_count(), 4);
        assert_eq!(t.live_rows(), 4);
        // Arity is checked before anything is written.
        assert!(matches!(
            t.update_row(3, vec![Value::text("oops")]),
            Err(TableError::ArityMismatch { .. })
        ));
        assert_eq!(t.cell_str(3, 0), Some("90004"));
    }

    #[test]
    fn row_ops_apply() {
        let mut t = Table::empty(Schema::new(["zip", "city"]).unwrap());
        let ops = vec![
            RowOp::Insert(vec![Value::text("90001"), Value::text("Los Angeles")]),
            RowOp::Insert(vec![Value::text("90002"), Value::text("New York")]),
            RowOp::Update(1, vec![Value::text("90002"), Value::text("Los Angeles")]),
            RowOp::Insert(vec![Value::text("90003"), Value::text("Los Angeles")]),
            RowOp::Delete(0),
        ];
        for op in ops {
            t.apply(op).unwrap();
        }
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.live_rows(), 2);
        assert_eq!(t.cell_str(1, 1), Some("Los Angeles"));
        assert!(!t.is_live(0));
    }

    #[test]
    fn serde_roundtrips_tombstones() {
        let mut t = zip_table();
        t.delete_row(2).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let t2: Table = serde_json::from_str(&json).unwrap();
        assert_eq!(t, t2);
        assert!(!t2.is_live(2));
        assert_eq!(t2.live_rows(), 3);
    }

    #[test]
    fn filter_rows_drops_tombstones() {
        let mut t = zip_table();
        t.delete_row(0).unwrap();
        let f = t.filter_rows(|_| true);
        assert_eq!(f.row_count(), 3);
        assert_eq!(f.live_rows(), 3);
        assert_eq!(f.cell_str(0, 0), Some("90002"));
    }

    #[test]
    fn compact_drops_tombstones_and_renumbers_densely() {
        let mut t = zip_table();
        t.delete_row(1).unwrap();
        t.delete_row(3).unwrap();
        let remap = t.compact();
        // Survivors 0 and 2 become 0 and 1; dropped slots map to None.
        assert_eq!(remap.epoch(), 1);
        assert_eq!(remap.old_slots(), 4);
        assert_eq!(remap.new_slots(), 2);
        assert_eq!(remap.reclaimed(), 2);
        assert!(!remap.is_identity());
        assert_eq!(remap.new_id(0), Some(0));
        assert_eq!(remap.new_id(1), None);
        assert_eq!(remap.new_id(2), Some(1));
        assert_eq!(remap.new_id(3), None);
        assert_eq!(remap.live_id(2), 1);
        assert_eq!(t.epoch(), 1);
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.live_rows(), 2);
        assert_eq!(t.cell_str(0, 0), Some("90001"));
        assert_eq!(t.cell_str(1, 0), Some("90003"));
        assert!(t.is_live(0) && t.is_live(1) && !t.is_live(2));
        // Fresh slots continue densely in the new epoch.
        let id = t
            .push_row(vec![Value::text("90009"), Value::text("Los Angeles")])
            .unwrap();
        assert_eq!(id, 2);
    }

    #[test]
    fn compact_without_tombstones_is_identity_but_opens_an_epoch() {
        let mut t = zip_table();
        let before = t.clone();
        let remap = t.compact();
        assert!(remap.is_identity());
        assert_eq!(remap.reclaimed(), 0);
        assert_eq!(t.epoch(), 1);
        assert_eq!(t.row_count(), before.row_count());
        for r in 0..t.row_count() {
            assert_eq!(remap.live_id(r), r);
            assert_eq!(t.row_ids(r), before.row_ids(r));
        }
    }

    #[test]
    fn remap_is_monotone_on_sorted_lists() {
        let mut t = zip_table();
        t.delete_row(1).unwrap();
        let remap = t.compact();
        let mut rows = vec![0, 2, 3];
        remap.remap_sorted_in_place(&mut rows);
        assert_eq!(rows, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "remap protocol")]
    fn remap_panics_on_dead_ids() {
        let mut t = zip_table();
        t.delete_row(1).unwrap();
        let remap = t.compact();
        let _ = remap.live_id(1);
    }

    #[test]
    fn mem_footprint_shrinks_after_compaction() {
        let schema = Schema::new(["a", "b"]).unwrap();
        let mut t = Table::empty(schema);
        for i in 0..1_000 {
            t.push_row(vec![Value::text(format!("k{i}")), Value::text("v")])
                .unwrap();
        }
        for r in 0..900 {
            t.delete_row(r).unwrap();
        }
        let before = t.mem_footprint();
        assert_eq!(before.total_slots, 1_000);
        assert_eq!(before.live_slots, 100);
        let remap = t.compact();
        assert_eq!(remap.reclaimed(), 900);
        let after = t.mem_footprint();
        assert_eq!(after.total_slots, 100);
        assert_eq!(after.live_slots, 100);
        assert!(
            after.bytes < before.bytes / 2,
            "compaction must release memory: {} -> {} bytes",
            before.bytes,
            after.bytes
        );
    }

    /// Satellite regression: saving a *compacted* table must not store
    /// (and a load must not resurrect) the pre-compaction deleted-slot
    /// list — live rows and cell ids round-trip identically.
    #[test]
    fn serde_after_compaction_does_not_resurrect_tombstones() {
        let mut t = zip_table();
        t.delete_row(1).unwrap();
        t.delete_row(2).unwrap();
        t.compact();
        let json = serde_json::to_string(&t).unwrap();
        assert!(
            json.contains("\"deleted\":[]"),
            "compacted table must store an empty deleted list: {json}"
        );
        let t2: Table = serde_json::from_str(&json).unwrap();
        assert_eq!(t, t2);
        assert_eq!(t2.live_rows(), t.live_rows());
        assert_eq!(t2.row_count(), t.row_count());
        assert_eq!(t2.epoch(), t.epoch());
        for r in 0..t.row_count() {
            assert!(t2.is_live(r));
            assert_eq!(t2.row_ids(r), t.row_ids(r));
        }
    }

    #[test]
    fn serde_roundtrips_epoch_with_tombstones() {
        let mut t = zip_table();
        t.delete_row(0).unwrap();
        t.compact();
        t.delete_row(1).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let t2: Table = serde_json::from_str(&json).unwrap();
        assert_eq!(t, t2);
        assert_eq!(t2.epoch(), 1);
        assert!(!t2.is_live(1));
        assert_eq!(t2.live_rows(), 2);
    }
}
