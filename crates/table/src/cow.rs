//! Chunked copy-on-write vectors — the storage substrate behind cheap
//! table snapshots.
//!
//! A [`CowVec<T>`] stores its elements in fixed-size chunks
//! (`4096` elements), each behind an [`Arc`]. Cloning a `CowVec` clones
//! the chunk *handles* — `O(len / 4096)` refcount bumps, no element is
//! copied — which is exactly what a snapshot needs: the clone and the
//! original share every chunk until one of them writes. A write
//! (`push`/`set`) goes through [`Arc::make_mut`]: on an unshared chunk
//! it is a plain store (one relaxed refcount check of overhead); on a
//! chunk shared with a live snapshot it first copies that one chunk
//! (4 KiB for `ValueId` cells), never the whole column. Mutation cost
//! after a snapshot is therefore `O(mutated chunks)`, and the obs
//! counter `snapshot.cow_copies` counts exactly those copies.
//!
//! Chunk boundaries are deterministic (every chunk except the last is
//! full), so structural equality can compare chunk-by-chunk and two
//! `CowVec`s built by the same pushes are equal regardless of sharing.

use anmat_obs as obs;
use std::sync::Arc;

/// log2 of the chunk size.
const CHUNK_BITS: usize = 12;
/// Elements per chunk.
const CHUNK: usize = 1 << CHUNK_BITS;
const MASK: usize = CHUNK - 1;

/// A chunked vector with `O(chunks)` clone and copy-on-first-write
/// mutation — see the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CowVec<T> {
    chunks: Vec<Arc<Vec<T>>>,
    len: usize,
}

impl<T: Copy> Default for CowVec<T> {
    fn default() -> CowVec<T> {
        CowVec::new()
    }
}

impl<T: Copy> CowVec<T> {
    /// An empty vector.
    #[must_use]
    pub fn new() -> CowVec<T> {
        CowVec {
            chunks: Vec::new(),
            len: 0,
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the vector empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one element. Copies the tail chunk first if a snapshot
    /// still shares it.
    pub fn push(&mut self, v: T) {
        if self.len & MASK == 0 {
            // Let the tail chunk's capacity grow naturally (4 → 4096) so
            // small vectors don't pay a full chunk and `capacity_bytes`
            // shrinks honestly on compaction rebuilds.
            self.chunks.push(Arc::new(Vec::new()));
        }
        let tail = self.chunks.last_mut().expect("chunk pushed above");
        if Arc::strong_count(tail) > 1 {
            obs::counter!("snapshot.cow_copies").incr();
        }
        Arc::make_mut(tail).push(v);
        self.len += 1;
    }

    /// The element at `idx` (panics when out of bounds).
    #[must_use]
    pub fn get(&self, idx: usize) -> T {
        assert!(
            idx < self.len,
            "CowVec index {idx} out of bounds {}",
            self.len
        );
        self.chunks[idx >> CHUNK_BITS][idx & MASK]
    }

    /// Overwrite the element at `idx` (panics when out of bounds).
    /// Copies the owning chunk first if a snapshot still shares it.
    pub fn set(&mut self, idx: usize, v: T) {
        assert!(
            idx < self.len,
            "CowVec index {idx} out of bounds {}",
            self.len
        );
        let chunk = &mut self.chunks[idx >> CHUNK_BITS];
        if Arc::strong_count(chunk) > 1 {
            obs::counter!("snapshot.cow_copies").incr();
        }
        Arc::make_mut(chunk)[idx & MASK] = v;
    }

    /// Iterate all elements in order.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        self.chunks.iter().flat_map(|c| c.iter().copied())
    }

    /// Drop every element (chunk handles released; shared chunks stay
    /// alive for their snapshots).
    pub fn clear(&mut self) {
        self.chunks.clear();
        self.len = 0;
    }

    /// Allocated bytes attributable to this handle: chunk storage (full
    /// share — chunks shared with snapshots are counted here once per
    /// holder, mirroring `Vec::capacity` accounting) plus the handle
    /// vector.
    #[must_use]
    pub fn capacity_bytes(&self) -> usize {
        let elems: usize = self
            .chunks
            .iter()
            .map(|c| c.capacity() * std::mem::size_of::<T>())
            .sum();
        elems + self.chunks.capacity() * std::mem::size_of::<Arc<Vec<T>>>()
    }

    /// Number of chunks currently shared with at least one other handle
    /// (a live snapshot). Mutating a shared chunk costs one chunk copy.
    #[must_use]
    pub fn shared_chunks(&self) -> usize {
        self.chunks
            .iter()
            .filter(|c| Arc::strong_count(c) > 1)
            .count()
    }

    /// Total chunk count.
    #[must_use]
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }
}

impl<T: Copy> FromIterator<T> for CowVec<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> CowVec<T> {
        let mut out = CowVec::new();
        for v in iter {
            out.push(v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_set_roundtrip() {
        let mut v: CowVec<u32> = CowVec::new();
        assert!(v.is_empty());
        for i in 0..10_000u32 {
            v.push(i);
        }
        assert_eq!(v.len(), 10_000);
        assert_eq!(v.get(0), 0);
        assert_eq!(v.get(4095), 4095);
        assert_eq!(v.get(4096), 4096);
        assert_eq!(v.get(9_999), 9_999);
        v.set(4096, 7);
        assert_eq!(v.get(4096), 7);
        assert_eq!(v.iter().count(), 10_000);
        assert_eq!(v.chunk_count(), 3);
    }

    #[test]
    fn clone_shares_until_write() {
        let mut v: CowVec<u32> = (0..10_000).collect();
        let snap = v.clone();
        assert_eq!(v, snap);
        assert_eq!(v.shared_chunks(), 3);
        // One write: exactly one chunk diverges, the snapshot is frozen.
        v.set(0, 999);
        assert_eq!(v.shared_chunks(), 2);
        assert_eq!(snap.get(0), 0);
        assert_eq!(v.get(0), 999);
        assert_ne!(v, snap);
        // Untouched chunks are still physically shared.
        assert_eq!(snap.shared_chunks(), 2);
    }

    #[test]
    fn push_after_clone_copies_only_the_tail() {
        let mut v: CowVec<u32> = (0..6_000).collect();
        let snap = v.clone();
        v.push(1);
        assert_eq!(snap.len(), 6_000);
        assert_eq!(v.len(), 6_001);
        // Chunk 0 (full) is still shared; only the tail chunk diverged.
        assert_eq!(v.shared_chunks(), 1);
    }

    #[test]
    fn structural_equality_ignores_sharing() {
        let a: CowVec<u32> = (0..5_000).collect();
        let b: CowVec<u32> = (0..5_000).collect();
        assert_eq!(a, b);
        let c = a.clone();
        assert_eq!(a, c);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let v: CowVec<u32> = (0..10).collect();
        let _ = v.get(10);
    }
}
