//! The data profiler (Figure 3 of the paper, and line 1 of the discovery
//! algorithm).
//!
//! Profiling serves two purposes in ANMAT:
//!
//! 1. **Candidate pruning** — `CandidateDependencies(T)` drops columns for
//!    which PFDs cannot be found; the paper's example is "we drop all
//!    columns with pure numerical values" (a measurement column has no
//!    determining sub-pattern). We additionally skip columns that are
//!    entirely null or have as many distinct values as rows on *both*
//!    sides of a candidate (no dependency can have support).
//! 2. **The profiling view** — Figure 3 lists, per column, the pattern
//!    signatures present in the data with their frequencies. That view is
//!    [`PatternHistogram`], computed at every [`PatternLevel`].

use crate::table::Table;
use anmat_pattern::{signature, Pattern, PatternLevel};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Coarse type inferred for a column from its non-null cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InferredType {
    /// Every value parses as an integer.
    Integer,
    /// Every value parses as a float (and at least one is not an integer).
    Float,
    /// Every value is `true`/`false`/`yes`/`no` (case-insensitive).
    Boolean,
    /// Anything else.
    Text,
    /// No non-null values to infer from.
    Unknown,
}

impl InferredType {
    /// Is the column purely numerical (dropped by candidate pruning)?
    #[must_use]
    pub fn is_numeric(&self) -> bool {
        matches!(self, InferredType::Integer | InferredType::Float)
    }
}

/// A `signature → frequency` histogram at one generalization level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternHistogram {
    /// The level the signatures were computed at.
    pub level: PatternLevel,
    /// `(pattern, number of non-null cells with that signature)`,
    /// descending by frequency then by pattern text for determinism.
    pub entries: Vec<(Pattern, usize)>,
}

impl PatternHistogram {
    /// The most frequent signature, if any.
    #[must_use]
    pub fn dominant(&self) -> Option<&Pattern> {
        self.entries.first().map(|(p, _)| p)
    }

    /// Fraction of profiled cells covered by the most frequent signature.
    #[must_use]
    pub fn dominant_ratio(&self) -> f64 {
        let total: usize = self.entries.iter().map(|(_, c)| c).sum();
        if total == 0 {
            return 0.0;
        }
        self.entries
            .first()
            .map_or(0.0, |(_, c)| *c as f64 / total as f64)
    }
}

/// Statistics and pattern histograms for one column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnProfile {
    /// Column name.
    pub name: String,
    /// Total rows (including nulls).
    pub row_count: usize,
    /// Number of null cells.
    pub null_count: usize,
    /// Number of distinct non-null values.
    pub distinct_count: usize,
    /// Inferred coarse type.
    pub dtype: InferredType,
    /// Minimum character length over non-null values.
    pub min_len: usize,
    /// Maximum character length over non-null values.
    pub max_len: usize,
    /// Average character length over non-null values.
    pub avg_len: f64,
    /// Pattern histograms at class-exact and class-unbounded levels.
    pub histograms: Vec<PatternHistogram>,
    /// Up to `SAMPLE_LIMIT` distinct example values.
    pub samples: Vec<String>,
}

/// How many distinct example values a profile retains.
const SAMPLE_LIMIT: usize = 8;

impl ColumnProfile {
    /// Fraction of non-null values that are distinct (1.0 = key-like).
    #[must_use]
    pub fn distinct_ratio(&self) -> f64 {
        let non_null = self.row_count - self.null_count;
        if non_null == 0 {
            return 0.0;
        }
        self.distinct_count as f64 / non_null as f64
    }

    /// Is this column a viable LHS participant in a PFD?
    ///
    /// Implements the paper's pruning ("we drop all columns with pure
    /// numerical values") with one refinement the paper's own Table 3
    /// requires: *code-like* numeric columns — fixed character width, like
    /// 5-digit zips or 10-digit phones — are kept, because their digits
    /// carry positional structure (`900xx` → Los Angeles). Only
    /// variable-width numerics (measures, counts, amounts) are dropped.
    #[must_use]
    pub fn is_candidate(&self) -> bool {
        if self.dtype == InferredType::Unknown {
            return false;
        }
        if self.row_count - self.null_count == 0 {
            return false;
        }
        if self.dtype.is_numeric() {
            // Fixed-width numerics are codes, not measures.
            return self.min_len == self.max_len && self.min_len >= 2;
        }
        true
    }

    /// Is this column usable as the RHS of a PFD (any typed content)?
    #[must_use]
    pub fn is_rhs_candidate(&self) -> bool {
        self.dtype != InferredType::Unknown
    }

    /// The histogram at a given level, if computed.
    #[must_use]
    pub fn histogram(&self, level: PatternLevel) -> Option<&PatternHistogram> {
        self.histograms.iter().find(|h| h.level == level)
    }

    /// Heuristic: does the column hold single-token values (codes/ids)?
    ///
    /// The paper switches from `Tokenize` to `NGrams` for such columns.
    #[must_use]
    pub fn is_single_token(&self) -> bool {
        self.samples
            .iter()
            .all(|s| !s.trim().contains(char::is_whitespace))
            && !self.samples.is_empty()
    }
}

/// Profiles for all columns of a table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableProfile {
    /// Per-column profiles, in schema order.
    pub columns: Vec<ColumnProfile>,
}

impl TableProfile {
    /// Profile every column of a table.
    #[must_use]
    pub fn profile(table: &Table) -> TableProfile {
        let columns = (0..table.column_count())
            .map(|c| profile_column(table, c))
            .collect();
        TableProfile { columns }
    }

    /// Indices of columns that survive `CandidateDependencies` pruning.
    #[must_use]
    pub fn candidate_columns(&self) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_candidate())
            .map(|(i, _)| i)
            .collect()
    }

    /// All ordered candidate column pairs `(A, B)`, `A ≠ B` — the initial
    /// dependency candidates of the discovery loop. The LHS must survive
    /// [`ColumnProfile::is_candidate`]; the RHS only needs usable content.
    #[must_use]
    pub fn candidate_pairs(&self) -> Vec<(usize, usize)> {
        let lhs = self.candidate_columns();
        let rhs: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_rhs_candidate())
            .map(|(i, _)| i)
            .collect();
        let mut out = Vec::with_capacity(lhs.len() * rhs.len());
        for &a in &lhs {
            for &b in &rhs {
                if a != b {
                    out.push((a, b));
                }
            }
        }
        out
    }
}

fn profile_column(table: &Table, col: usize) -> ColumnProfile {
    let name = table.schema().name(col).to_string();
    // Live rows only: tombstoned slots are not data.
    let row_count = table.live_rows();
    let mut null_count = 0usize;
    let mut distinct: HashMap<&str, usize> = HashMap::new();
    let mut min_len = usize::MAX;
    let mut max_len = 0usize;
    let mut len_sum = 0usize;
    let mut all_int = true;
    let mut all_float = true;
    let mut all_bool = true;
    for (_, v) in table.iter_column(col) {
        let Some(s) = v.as_str() else {
            null_count += 1;
            continue;
        };
        *distinct.entry(s).or_insert(0) += 1;
        let len = s.chars().count();
        min_len = min_len.min(len);
        max_len = max_len.max(len);
        len_sum += len;
        if all_int && s.trim().parse::<i64>().is_err() {
            all_int = false;
        }
        if all_float && s.trim().parse::<f64>().is_err() {
            all_float = false;
        }
        if all_bool
            && !matches!(
                s.trim().to_ascii_lowercase().as_str(),
                "true" | "false" | "yes" | "no"
            )
        {
            all_bool = false;
        }
    }
    let non_null = row_count - null_count;
    let dtype = if non_null == 0 {
        InferredType::Unknown
    } else if all_int {
        InferredType::Integer
    } else if all_float {
        InferredType::Float
    } else if all_bool {
        InferredType::Boolean
    } else {
        InferredType::Text
    };
    if non_null == 0 {
        min_len = 0;
    }

    let histograms = [PatternLevel::ClassExact, PatternLevel::ClassUnbounded]
        .into_iter()
        .map(|level| {
            let mut counts: HashMap<Pattern, usize> = HashMap::new();
            for (s, n) in &distinct {
                *counts.entry(signature(s, level)).or_insert(0) += n;
            }
            let mut entries: Vec<(Pattern, usize)> = counts.into_iter().collect();
            entries.sort_by(|(pa, ca), (pb, cb)| {
                cb.cmp(ca).then_with(|| pa.to_string().cmp(&pb.to_string()))
            });
            PatternHistogram { level, entries }
        })
        .collect();

    let mut samples: Vec<String> = distinct.keys().map(|s| s.to_string()).collect();
    samples.sort_unstable();
    samples.truncate(SAMPLE_LIMIT);

    ColumnProfile {
        name,
        row_count,
        null_count,
        distinct_count: distinct.len(),
        dtype,
        min_len,
        max_len,
        avg_len: if non_null == 0 {
            0.0
        } else {
            len_sum as f64 / non_null as f64
        },
        histograms,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn table(rows: &[[&str; 3]]) -> Table {
        let schema = Schema::new(["zip", "city", "pop"]).unwrap();
        Table::from_str_rows(schema, rows.iter().map(|r| r.iter().copied())).unwrap()
    }

    fn sample_table() -> Table {
        table(&[
            ["90001", "Los Angeles", "3898747"],
            ["90002", "Los Angeles", "3898747"],
            ["90003", "Los Angeles", "3898747"],
            ["60601", "Chicago", "2746388"],
        ])
    }

    #[test]
    fn basic_stats() {
        let p = TableProfile::profile(&sample_table());
        let zip = &p.columns[0];
        assert_eq!(zip.row_count, 4);
        assert_eq!(zip.null_count, 0);
        assert_eq!(zip.distinct_count, 4);
        assert_eq!(zip.min_len, 5);
        assert_eq!(zip.max_len, 5);
        let city = &p.columns[1];
        assert_eq!(city.distinct_count, 2);
        assert!((city.distinct_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn type_inference() {
        let p = TableProfile::profile(&sample_table());
        // zip parses as integer → numeric → pruned (paper's rule).
        assert_eq!(p.columns[0].dtype, InferredType::Integer);
        assert_eq!(p.columns[1].dtype, InferredType::Text);
        assert_eq!(p.columns[2].dtype, InferredType::Integer);
    }

    #[test]
    fn float_and_bool_inference() {
        let schema = Schema::new(["f", "b"]).unwrap();
        let t = Table::from_str_rows(schema, [["1.5", "true"], ["2.25", "no"], ["3.0", "Yes"]])
            .unwrap();
        let p = TableProfile::profile(&t);
        assert_eq!(p.columns[0].dtype, InferredType::Float);
        assert_eq!(p.columns[1].dtype, InferredType::Boolean);
    }

    #[test]
    fn null_column_unknown() {
        let schema = Schema::new(["x"]).unwrap();
        let t = Table::from_str_rows(schema, [[""], [""]]).unwrap();
        let p = TableProfile::profile(&t);
        assert_eq!(p.columns[0].dtype, InferredType::Unknown);
        assert!(!p.columns[0].is_candidate());
    }

    #[test]
    fn candidate_pruning_drops_variable_width_numeric() {
        let p = TableProfile::profile(&sample_table());
        // Fixed-width numeric zips are code-like → kept.
        assert!(p.columns[0].is_candidate());
        assert!(p.columns[1].is_candidate()); // city text
                                              // Populations are all 7 digits in the fixture; use a clearly
                                              // variable-width numeric column instead.
        let schema = Schema::new(["amount"]).unwrap();
        let t = Table::from_str_rows(schema, [["5"], ["1200"], ["37"]]).unwrap();
        let p2 = TableProfile::profile(&t);
        assert!(!p2.columns[0].is_candidate());
        assert!(p2.columns[0].is_rhs_candidate());
    }

    #[test]
    fn candidate_pairs_are_ordered_distinct() {
        let schema = Schema::new(["a", "b"]).unwrap();
        let t = Table::from_str_rows(schema, [["x1", "u2"], ["y1", "v2"]]).unwrap();
        let p = TableProfile::profile(&t);
        assert_eq!(p.candidate_pairs(), vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn histograms_group_by_signature() {
        let schema = Schema::new(["phone"]).unwrap();
        let t = Table::from_str_rows(schema, [["8505467600x"], ["6073771300x"], ["404-848-1918"]])
            .unwrap();
        let p = TableProfile::profile(&t);
        let h = p.columns[0].histogram(PatternLevel::ClassExact).unwrap();
        // Two signatures: \D{10}x (twice) and \D{3}-\D{3}-\D{4} (once).
        assert_eq!(h.entries.len(), 2);
        assert_eq!(h.entries[0].1, 2);
        assert!(h.dominant_ratio() > 0.6);
    }

    #[test]
    fn single_token_heuristic() {
        let schema = Schema::new(["id", "name"]).unwrap();
        let t = Table::from_str_rows(
            schema,
            [["F-9-107", "John Charles"], ["E-3-201", "Susan Boyle"]],
        )
        .unwrap();
        let p = TableProfile::profile(&t);
        assert!(p.columns[0].is_single_token());
        assert!(!p.columns[1].is_single_token());
    }

    #[test]
    fn histogram_counts_weight_by_frequency() {
        let schema = Schema::new(["s"]).unwrap();
        let t = Table::from_str_rows(schema, [["ab"], ["ab"], ["cd"], ["XY"]]).unwrap();
        let p = TableProfile::profile(&t);
        let h = p.columns[0].histogram(PatternLevel::ClassExact).unwrap();
        // \LL{2} occurs 3 times (ab×2, cd×1), \LU{2} once.
        assert_eq!(h.entries[0].1, 3);
        assert_eq!(h.entries[1].1, 1);
    }
}
