//! Constrained patterns: patterns with annotated segments (§2 of the paper).
//!
//! A constrained pattern `Q` is a concatenation of segments, at least one of
//! which is *constrained* (the paper writes it with an overline; we bracket
//! it: `[\LU\LL*\ ]\A*`). Two strings are equivalent under `Q`
//! (`s ≡_Q s'`) iff both match the embedded pattern *and* they agree on the
//! substrings consumed by every constrained segment. That equivalence is
//! what lets λ4 enforce "same first name ⇒ same gender" without naming any
//! particular first name.
//!
//! The *blocking key* ([`ConstrainedPattern::key`]) — the concatenation of
//! constrained captures — is the handle the detection engine uses to avoid
//! quadratic pair enumeration: `s ≡_Q s'` iff their keys are equal.

use crate::ast::Pattern;
use crate::error::PatternError;
use crate::matcher::match_spans_chars;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One segment of a constrained pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Segment {
    /// The segment's pattern.
    pub pattern: Pattern,
    /// Whether strings must agree on this segment's capture.
    pub constrained: bool,
}

impl Segment {
    /// A constrained segment.
    #[must_use]
    pub fn constrained(pattern: Pattern) -> Segment {
        Segment {
            pattern,
            constrained: true,
        }
    }

    /// An unconstrained (free) segment.
    #[must_use]
    pub fn free(pattern: Pattern) -> Segment {
        Segment {
            pattern,
            constrained: false,
        }
    }
}

/// A concatenation of segments, some constrained.
///
/// Parse with [`str::parse`] using `[...]` for constrained segments;
/// `Display` round-trips.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConstrainedPattern {
    segments: Vec<Segment>,
    /// Element-count boundaries of each segment within the embedded
    /// pattern, cached for capture extraction.
    boundaries: Vec<(usize, usize)>,
    embedded: Pattern,
}

impl ConstrainedPattern {
    /// Build from segments. Rejects an entirely empty segment list.
    pub fn new(segments: Vec<Segment>) -> Result<ConstrainedPattern, PatternError> {
        if segments.is_empty() {
            return Err(PatternError::EmptyPattern);
        }
        let mut boundaries = Vec::with_capacity(segments.len());
        let mut embedded = Pattern::empty();
        for seg in &segments {
            let start = embedded.len();
            embedded = embedded.concat(&seg.pattern);
            boundaries.push((start, embedded.len()));
        }
        Ok(ConstrainedPattern {
            segments,
            boundaries,
            embedded,
        })
    }

    /// A fully-constrained single-segment pattern (the whole value must
    /// agree). Equivalent to a classical FD restricted to values matching
    /// the pattern.
    #[must_use]
    pub fn whole(pattern: Pattern) -> ConstrainedPattern {
        ConstrainedPattern::new(vec![Segment::constrained(pattern)])
            .expect("single segment is non-empty")
    }

    /// A single free segment (no constraint) — matches-only semantics.
    #[must_use]
    pub fn unconstrained(pattern: Pattern) -> ConstrainedPattern {
        ConstrainedPattern::new(vec![Segment::free(pattern)]).expect("single segment")
    }

    /// Error if no segment is constrained.
    pub fn require_constrained(self) -> Result<ConstrainedPattern, PatternError> {
        if self.has_constraint() {
            Ok(self)
        } else {
            Err(PatternError::NoConstrainedSegment)
        }
    }

    /// The segments in order.
    #[must_use]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Is at least one segment constrained?
    #[must_use]
    pub fn has_constraint(&self) -> bool {
        self.segments.iter().any(|s| s.constrained)
    }

    /// The embedded pattern `Q̄` — all segments concatenated, annotations
    /// dropped.
    #[must_use]
    pub fn embedded(&self) -> &Pattern {
        &self.embedded
    }

    /// Does `s` match the constrained pattern (`s ⊨ Q` iff `s ⊨ Q̄`)?
    #[must_use]
    pub fn matches(&self, s: &str) -> bool {
        self.embedded.matches(s)
    }

    /// The substrings consumed by each *constrained* segment, in order, or
    /// `None` if `s` does not match.
    ///
    /// Uses leftmost-greedy span semantics (see
    /// [`crate::matcher::match_spans`]), so captures are deterministic.
    #[must_use]
    pub fn captures(&self, s: &str) -> Option<Vec<String>> {
        let chars: Vec<char> = s.chars().collect();
        let spans = match_spans_chars(&self.embedded, &chars)?;
        let mut out = Vec::new();
        for (seg, &(start, end)) in self.segments.iter().zip(&self.boundaries) {
            if !seg.constrained {
                continue;
            }
            let from = if start == end {
                // Empty segment: zero-width capture at the boundary.
                spans.spans.get(start).map_or(chars.len(), |&(a, _)| a)
            } else {
                spans.spans[start].0
            };
            let to = if start == end {
                from
            } else {
                spans.spans[end - 1].1
            };
            out.push(chars[from..to].iter().collect());
        }
        Some(out)
    }

    /// The blocking key: constrained captures joined with `\u{1F}` (unit
    /// separator), or `None` if `s` does not match.
    ///
    /// `key(s) == key(s')` (both `Some`) iff `s ≡_Q s'`.
    #[must_use]
    pub fn key(&self, s: &str) -> Option<String> {
        let caps = self.captures(s)?;
        Some(caps.join("\u{1F}"))
    }

    /// The `≡_Q` relation: both strings match and agree on every
    /// constrained capture.
    #[must_use]
    pub fn equivalent(&self, s1: &str, s2: &str) -> bool {
        match (self.key(s1), self.key(s2)) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }

    /// Structural restriction check: is `self` a restricted pattern of
    /// `other` (`self ⊆ other` on constrained patterns)?
    ///
    /// Sound criterion (sufficient, not complete): the embedded pattern of
    /// `self` is language-contained in `other`'s, and every constrained
    /// segment of `other` is matched by a constrained segment of `self` at
    /// the same segment-alignment position with a contained pattern. This
    /// covers the paper's Example 2 (`Q2 ⊆ Q1`) and the cases discovery
    /// produces; a complete decision procedure would need semantic
    /// alignment of segment boundaries, which the restricted language does
    /// not require in practice.
    #[must_use]
    pub fn is_restriction_of(&self, other: &ConstrainedPattern) -> bool {
        if !crate::containment::contains(other.embedded(), self.embedded()) {
            return false;
        }
        // Greedy left-to-right mapping of other's segments onto ours.
        let mut i = 0usize;
        for oseg in &other.segments {
            if !oseg.constrained {
                continue;
            }
            let mut found = false;
            while i < self.segments.len() {
                let sseg = &self.segments[i];
                i += 1;
                if sseg.constrained && crate::containment::contains(&oseg.pattern, &sseg.pattern) {
                    found = true;
                    break;
                }
            }
            if !found {
                return false;
            }
        }
        true
    }
}

impl fmt::Display for ConstrainedPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for seg in &self.segments {
            if seg.constrained {
                write!(f, "[{}]", seg.pattern)?;
            } else {
                write!(f, "{}", seg.pattern)?;
            }
        }
        Ok(())
    }
}

impl std::str::FromStr for ConstrainedPattern {
    type Err = PatternError;

    fn from_str(s: &str) -> Result<ConstrainedPattern, PatternError> {
        crate::parser::parse_constrained(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cp(s: &str) -> ConstrainedPattern {
        s.parse().unwrap()
    }

    #[test]
    fn q1_from_example2() {
        // Q1 = \LU\LL*\ \A* with first name constrained.
        let q1 = cp("[\\LU\\LL*\\ ]\\A*");
        assert!(q1.matches("John Charles"));
        assert!(q1.matches("John Bosco"));
        // r1 ≡_Q1 r2: same first name.
        assert!(q1.equivalent("John Charles", "John Bosco"));
        assert!(!q1.equivalent("John Charles", "Susan Boyle"));
        assert_eq!(
            q1.captures("John Charles").unwrap(),
            vec!["John ".to_string()]
        );
    }

    #[test]
    fn q2_from_example2_first_and_last() {
        let q2 = cp("[\\LU\\LL*\\ ]\\A*[\\LU\\LL*]");
        // Constrained on first and last name; middle free.
        assert!(q2.matches("John Albert Charles"));
        let caps = q2.captures("John Albert Charles").unwrap();
        assert_eq!(caps.len(), 2);
        assert_eq!(caps[0], "John ");
        // Greedy \A* takes as much as possible while leaving \LU\LL* matchable.
        assert!(caps[1].starts_with(char::is_uppercase));
    }

    #[test]
    fn restriction_example2() {
        let q1 = cp("[\\LU\\LL*\\ ]\\A*");
        let q2 = cp("[\\LU\\LL*\\ ]\\A*\\ [\\LU\\LL*]");
        assert!(q2.is_restriction_of(&q1));
        assert!(!q1.is_restriction_of(&q2));
    }

    #[test]
    fn whole_pattern_blocking() {
        let q = ConstrainedPattern::whole("\\D{3}".parse().unwrap());
        assert_eq!(q.key("607").as_deref(), Some("607"));
        assert!(q.equivalent("607", "607"));
        assert!(!q.equivalent("607", "850"));
        assert!(q.key("60x").is_none());
    }

    #[test]
    fn zip_prefix_constrained() {
        // λ5: first 3 digits of a 5-digit zip determine the city.
        let q = cp("[\\D{3}]\\D{2}");
        assert!(q.equivalent("90001", "90002"));
        assert!(!q.equivalent("90001", "90101"));
        assert_eq!(q.captures("90001").unwrap(), vec!["900".to_string()]);
    }

    #[test]
    fn unconstrained_has_no_key_semantics() {
        let q = ConstrainedPattern::unconstrained("\\D{5}".parse().unwrap());
        assert!(!q.has_constraint());
        // All matching strings are equivalent (empty capture vector).
        assert!(q.equivalent("90001", "12345"));
        assert!(q.clone().require_constrained().is_err());
    }

    #[test]
    fn key_distinguishes_multi_captures() {
        // Ambiguity guard: two captures "ab|c" vs "a|bc" must differ.
        let q = cp("[\\LL+]-[\\LL+]");
        let k1 = q.key("ab-c").unwrap();
        let k2 = q.key("a-bc").unwrap();
        assert_ne!(k1, k2);
    }

    #[test]
    fn non_matching_strings_never_equivalent() {
        let q = cp("[\\D{3}]\\D{2}");
        assert!(!q.equivalent("90001", "900x1"));
        assert!(!q.equivalent("x", "x"));
    }

    #[test]
    fn display_roundtrip() {
        for s in [
            "[\\LU\\LL*\\ ]\\A*",
            "[\\D{3}]\\D{2}",
            "[\\LU\\LL*\\ ]\\A*\\ [\\LU\\LL*]",
            "\\A*,\\ [Donald]\\A*",
        ] {
            let q = cp(s);
            assert_eq!(cp(&q.to_string()), q, "round-trip failed for {s}");
        }
    }

    #[test]
    fn embedded_concatenation() {
        let q = cp("[\\D{3}]\\D{2}");
        assert_eq!(q.embedded().to_string(), "\\D{3}\\D{2}");
    }

    #[test]
    fn serde_roundtrip() {
        let q = cp("[\\LU\\LL*\\ ]\\A*");
        let json = serde_json::to_string(&q).unwrap();
        let q2: ConstrainedPattern = serde_json::from_str(&json).unwrap();
        assert_eq!(q, q2);
    }
}
