//! Parser for the paper's textual pattern syntax.
//!
//! Grammar (whitespace is significant — a space is a literal character):
//!
//! ```text
//! constrained  := segment+                     (at least one bracketed)
//! segment      := '[' pattern ']' | pattern
//! pattern      := element*
//! element      := atom quantifier?
//! atom         := '\A' | '\LU' | '\LL' | '\D' | '\S'
//!               | '\' special     (escaped literal: \\ \  \{ \} \* \+ \[ \])
//!               | any other char  (literal)
//! quantifier   := '*' | '+' | '{' N '}' | '{' N ',' '}' | '{' N ',' M '}'
//! ```
//!
//! The printed form of every [`Pattern`] and
//! [`ConstrainedPattern`] re-parses to an equal
//! value (round-trip property, checked by proptests).

use crate::ast::{Element, Pattern, Quantifier};
use crate::constrained::{ConstrainedPattern, Segment};
use crate::error::PatternError;
use crate::symbol::SymbolClass;

/// Parse a plain pattern (no constrained segments).
pub fn parse_pattern(input: &str) -> Result<Pattern, PatternError> {
    let mut p = Parser::new(input);
    let pat = p.pattern(&['[', ']'])?;
    if let Some((at, c)) = p.peek() {
        // A stray bracket (or anything else `pattern` refused to consume).
        return Err(match c {
            '[' | ']' => PatternError::UnbalancedSegment { at },
            _ => PatternError::DanglingQuantifier { at },
        });
    }
    Ok(pat)
}

/// Parse a constrained pattern: segments in `[...]` are constrained.
///
/// A plain pattern with no brackets parses successfully but yields a
/// constrained pattern with zero constrained segments; callers that require
/// a constraint should use
/// [`ConstrainedPattern::require_constrained`].
pub fn parse_constrained(input: &str) -> Result<ConstrainedPattern, PatternError> {
    let mut p = Parser::new(input);
    let mut segments: Vec<Segment> = Vec::new();
    loop {
        match p.peek() {
            None => break,
            Some((_, '[')) => {
                p.bump();
                let pat = p.pattern(&[']'])?;
                match p.peek() {
                    Some((_, ']')) => {
                        p.bump();
                    }
                    other => {
                        return Err(PatternError::UnbalancedSegment {
                            at: other.map_or(p.len(), |(at, _)| at),
                        })
                    }
                }
                segments.push(Segment::constrained(pat));
            }
            Some((at, ']')) => return Err(PatternError::UnbalancedSegment { at }),
            Some(_) => {
                let pat = p.pattern(&['[', ']'])?;
                if pat.is_empty() {
                    // `pattern` refused the next char and it wasn't a bracket:
                    // impossible given peek above, but guard against loops.
                    return Err(PatternError::UnexpectedEnd { at: p.pos });
                }
                segments.push(Segment::free(pat));
            }
        }
    }
    ConstrainedPattern::new(segments)
}

struct Parser<'a> {
    input: &'a str,
    // (byte offset, char) pairs.
    chars: Vec<(usize, char)>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Parser<'a> {
        Parser {
            input,
            chars: input.char_indices().collect(),
            pos: 0,
        }
    }

    fn len(&self) -> usize {
        self.input.len()
    }

    fn peek(&self) -> Option<(usize, char)> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<(usize, char)> {
        let out = self.peek();
        if out.is_some() {
            self.pos += 1;
        }
        out
    }

    /// Parse a maximal run of elements, stopping at EOF or any char in
    /// `stop` (unescaped).
    fn pattern(&mut self, stop: &[char]) -> Result<Pattern, PatternError> {
        let mut elements = Vec::new();
        loop {
            match self.peek() {
                None => break,
                Some((_, c)) if stop.contains(&c) => break,
                Some((at, c)) if c == '*' || c == '+' || c == '{' => {
                    return Err(PatternError::DanglingQuantifier { at });
                }
                Some(_) => {
                    let class = self.atom()?;
                    let quant = self.quantifier()?;
                    elements.push(Element::new(class, quant));
                }
            }
        }
        Ok(Pattern::new(elements))
    }

    fn atom(&mut self) -> Result<SymbolClass, PatternError> {
        let (at, c) = self.bump().expect("caller peeked");
        if c != '\\' {
            return Ok(SymbolClass::Literal(c));
        }
        let (_, esc) = self
            .bump()
            .ok_or(PatternError::UnexpectedEnd { at: self.len() })?;
        match esc {
            'A' => Ok(SymbolClass::Any),
            'D' => Ok(SymbolClass::Digit),
            'S' => Ok(SymbolClass::Symbol),
            'L' => {
                let (_, kind) = self
                    .bump()
                    .ok_or(PatternError::UnexpectedEnd { at: self.len() })?;
                match kind {
                    'U' => Ok(SymbolClass::Upper),
                    'L' => Ok(SymbolClass::Lower),
                    other => Err(PatternError::UnknownEscape {
                        at,
                        escape: format!("L{other}"),
                    }),
                }
            }
            '\\' | ' ' | '{' | '}' | '*' | '+' | '[' | ']' => Ok(SymbolClass::Literal(esc)),
            other => Err(PatternError::UnknownEscape {
                at,
                escape: other.to_string(),
            }),
        }
    }

    fn quantifier(&mut self) -> Result<Quantifier, PatternError> {
        match self.peek() {
            Some((_, '*')) => {
                self.bump();
                Ok(Quantifier::Star)
            }
            Some((_, '+')) => {
                self.bump();
                Ok(Quantifier::Plus)
            }
            Some((at, '{')) => {
                self.bump();
                self.braced_quantifier(at)
            }
            _ => Ok(Quantifier::One),
        }
    }

    fn braced_quantifier(&mut self, open_at: usize) -> Result<Quantifier, PatternError> {
        let min = self.number(open_at)?;
        match self.bump() {
            Some((_, '}')) => Ok(if min == 1 {
                Quantifier::One
            } else {
                Quantifier::Exactly(min)
            }),
            Some((_, ',')) => match self.peek() {
                Some((_, '}')) => {
                    self.bump();
                    Ok(match min {
                        0 => Quantifier::Star,
                        1 => Quantifier::Plus,
                        n => Quantifier::AtLeast(n),
                    })
                }
                Some(_) => {
                    let max = self.number(open_at)?;
                    match self.bump() {
                        Some((_, '}')) => {
                            if min > max {
                                Err(PatternError::EmptyInterval { min, max })
                            } else if min == max {
                                Ok(if min == 1 {
                                    Quantifier::One
                                } else {
                                    Quantifier::Exactly(min)
                                })
                            } else {
                                Ok(Quantifier::Range(min, max))
                            }
                        }
                        _ => Err(PatternError::BadQuantifier {
                            at: open_at,
                            reason: "missing closing `}`".into(),
                        }),
                    }
                }
                None => Err(PatternError::UnexpectedEnd { at: self.len() }),
            },
            Some((at, c)) => Err(PatternError::BadQuantifier {
                at: open_at,
                reason: format!("unexpected `{c}` at byte {at}"),
            }),
            None => Err(PatternError::UnexpectedEnd { at: self.len() }),
        }
    }

    fn number(&mut self, open_at: usize) -> Result<u32, PatternError> {
        let mut digits = String::new();
        while let Some((_, c)) = self.peek() {
            if c.is_ascii_digit() {
                digits.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if digits.is_empty() {
            return Err(PatternError::BadQuantifier {
                at: open_at,
                reason: "expected a number".into(),
            });
        }
        digits.parse().map_err(|_| PatternError::BadQuantifier {
            at: open_at,
            reason: format!("number `{digits}` out of range"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pat(s: &str) -> Pattern {
        parse_pattern(s).unwrap()
    }

    #[test]
    fn parse_paper_lambda3() {
        // λ3: zip codes 900xx.
        let p = pat("900\\D{2}");
        assert_eq!(p.len(), 4);
        assert_eq!(p.to_string(), "900\\D{2}");
        assert!(p.matches("90001"));
        assert!(!p.matches("9000"));
    }

    #[test]
    fn parse_paper_lambda4_embedded() {
        // λ4's embedded pattern: \LU\LL*\ \A*
        let p = pat("\\LU\\LL*\\ \\A*");
        assert_eq!(p.to_string(), "\\LU\\LL*\\ \\A*");
        assert!(p.matches("John Charles"));
        assert!(p.matches("Susan Boyle"));
        assert!(!p.matches("john charles"));
    }

    #[test]
    fn parse_classes() {
        assert_eq!(pat("\\A").elements()[0].class, SymbolClass::Any);
        assert_eq!(pat("\\D").elements()[0].class, SymbolClass::Digit);
        assert_eq!(pat("\\S").elements()[0].class, SymbolClass::Symbol);
        assert_eq!(pat("\\LU").elements()[0].class, SymbolClass::Upper);
        assert_eq!(pat("\\LL").elements()[0].class, SymbolClass::Lower);
    }

    #[test]
    fn parse_quantifiers() {
        assert_eq!(pat("a*").elements()[0].quant, Quantifier::Star);
        assert_eq!(pat("a+").elements()[0].quant, Quantifier::Plus);
        assert_eq!(pat("a{7}").elements()[0].quant, Quantifier::Exactly(7));
        assert_eq!(pat("a{2,}").elements()[0].quant, Quantifier::AtLeast(2));
        assert_eq!(pat("a{2,5}").elements()[0].quant, Quantifier::Range(2, 5));
        // {1} and {3,3} canonicalize.
        assert_eq!(pat("a{1}").elements()[0].quant, Quantifier::One);
        assert_eq!(pat("a{3,3}").elements()[0].quant, Quantifier::Exactly(3));
        assert_eq!(pat("a{0,}").elements()[0].quant, Quantifier::Star);
        assert_eq!(pat("a{1,}").elements()[0].quant, Quantifier::Plus);
    }

    #[test]
    fn parse_escaped_literals() {
        let p = pat("\\\\\\ \\{\\}\\*\\+\\[\\]");
        let lits: Vec<char> = p
            .elements()
            .iter()
            .map(|e| match e.class {
                SymbolClass::Literal(c) => c,
                _ => panic!("expected literal"),
            })
            .collect();
        assert_eq!(lits, vec!['\\', ' ', '{', '}', '*', '+', '[', ']']);
    }

    #[test]
    fn reject_unknown_escape() {
        assert!(matches!(
            parse_pattern("\\Q"),
            Err(PatternError::UnknownEscape { .. })
        ));
        assert!(matches!(
            parse_pattern("\\LX"),
            Err(PatternError::UnknownEscape { .. })
        ));
    }

    #[test]
    fn reject_dangling_quantifier() {
        assert!(matches!(
            parse_pattern("*ab"),
            Err(PatternError::DanglingQuantifier { .. })
        ));
        assert!(matches!(
            parse_pattern("{3}"),
            Err(PatternError::DanglingQuantifier { .. })
        ));
    }

    #[test]
    fn reject_bad_braces() {
        assert!(matches!(
            parse_pattern("a{}"),
            Err(PatternError::BadQuantifier { .. })
        ));
        assert!(matches!(
            parse_pattern("a{3"),
            Err(PatternError::BadQuantifier { .. }) | Err(PatternError::UnexpectedEnd { .. })
        ));
        assert!(matches!(
            parse_pattern("a{5,2}"),
            Err(PatternError::EmptyInterval { .. })
        ));
    }

    #[test]
    fn reject_unescaped_bracket_in_plain_pattern() {
        assert!(matches!(
            parse_pattern("ab]cd"),
            Err(PatternError::UnbalancedSegment { .. })
        ));
    }

    #[test]
    fn parse_trailing_escape_fails() {
        assert!(matches!(
            parse_pattern("abc\\"),
            Err(PatternError::UnexpectedEnd { .. })
        ));
    }

    #[test]
    fn constrained_roundtrip() {
        let q = parse_constrained("[\\LU\\LL*\\ ]\\A*").unwrap();
        assert_eq!(q.segments().len(), 2);
        assert!(q.segments()[0].constrained);
        assert!(!q.segments()[1].constrained);
        assert_eq!(q.to_string(), "[\\LU\\LL*\\ ]\\A*");
    }

    #[test]
    fn constrained_multi_segment() {
        // Q2 from Example 2: first and last name constrained, middles free.
        let q = parse_constrained("[\\LU\\LL*\\ ]\\A*\\ [\\LU\\LL*]").unwrap();
        assert_eq!(q.segments().len(), 3);
        assert!(q.segments()[0].constrained);
        assert!(!q.segments()[1].constrained);
        assert!(q.segments()[2].constrained);
    }

    #[test]
    fn constrained_rejects_unbalanced() {
        assert!(matches!(
            parse_constrained("[\\D{3}"),
            Err(PatternError::UnbalancedSegment { .. })
        ));
        assert!(matches!(
            parse_constrained("\\D{3}]"),
            Err(PatternError::UnbalancedSegment { .. })
        ));
    }

    #[test]
    fn plain_input_parses_as_unconstrained() {
        let q = parse_constrained("\\D{5}").unwrap();
        assert_eq!(q.segments().len(), 1);
        assert!(!q.segments()[0].constrained);
    }

    #[test]
    fn display_roundtrip_samples() {
        for s in [
            "900\\D{2}",
            "\\LU\\LL*\\ \\A*",
            "\\D{3}\\ \\D{2}",
            "abc",
            "\\A*,\\ Donald\\A*",
            "a{2,5}b+c*",
            "\\S\\S{2}",
        ] {
            let p = pat(s);
            let printed = p.to_string();
            let reparsed = parse_pattern(&printed).unwrap();
            assert_eq!(p, reparsed, "round-trip failed for {s}");
        }
    }
}
