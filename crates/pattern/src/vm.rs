//! The bytecode VM: non-recursive backtracking over `&str` bytes.
//!
//! The restricted pattern language has no alternation and no nested
//! repetition, so every [`Op`] consumes one greedy *run* of
//! class-matching characters; the only search dimension is how far each
//! variable-count op's run is allowed to reach. The VM therefore
//! executes with two reused structures and no recursion:
//!
//! * an explicit **backtrack stack** — one frame per executed op holding
//!   its run's byte span and character count; backtracking pops a frame
//!   and shortens its run by one character (greedy-first order, which
//!   reproduces the interpreter's leftmost-greedy span semantics
//!   exactly);
//! * a **visited-state bitset** over `(op index, byte position)` pairs —
//!   a state is explored at most once, which caps the search at
//!   `O(|P| · |s|)` states (the same order as the interpreter's dynamic
//!   program) instead of the exponential worst case of naive
//!   backtracking on patterns like `\A*\A*…\A*a`.
//!
//! One loop serves both encodings, monomorphized on an `ASCII` const:
//! the ASCII instantiation works purely on bytes (runs come from the
//! SWAR scanner in [`crate::scan`], one char = one byte, backtracking
//! steps back one byte), while the UTF-8 instantiation counts runs in
//! *characters* via [`ClassSet`]'s `run_chars` — SWAR over ASCII
//! stretches,
//! decoded spillover checks for codepoints ≥ 128 — and steps back over
//! continuation bytes when it shrinks a run. Since PR 8 this covers
//! every input: non-ASCII values no longer fall back to the AST
//! interpreter.
//!
//! Both scratch structures live in thread-local storage, so steady-state
//! evaluation performs no heap allocation at all.

use crate::compile::{ClassSet, Op};
use crate::scan;
use std::cell::RefCell;

/// One executed op on the current search path: its run spans bytes
/// `start..end` and contains `k` characters (`end - start == k` in the
/// ASCII instantiation).
#[derive(Debug, Clone, Copy)]
struct Frame {
    pc: u32,
    start: u32,
    end: u32,
    k: u32,
}

#[derive(Default)]
struct Scratch {
    stack: Vec<Frame>,
    visited: Vec<u64>,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Mark `(pc, pos)` in the visited bitset; returns whether it was
/// already set (i.e. this state is known to fail).
#[inline]
fn mark(visited: &mut [u64], stride: usize, pc: usize, pos: usize) -> bool {
    let idx = pc * stride + pos;
    let (word, bit) = (idx / 64, idx % 64);
    let seen = (visited[word] >> bit) & 1 != 0;
    visited[word] |= 1 << bit;
    seen
}

/// Greedy run of `set` members from byte `pos`, at most `limit` *chars*.
/// Returns `(chars, end byte)`.
#[inline]
fn take_run<const ASCII: bool>(
    set: &ClassSet,
    s: &str,
    pos: usize,
    limit: usize,
) -> (usize, usize) {
    if ASCII {
        let bytes = s.as_bytes();
        let k = scan::run_len(set.ascii(), bytes, pos, limit.min(bytes.len() - pos));
        (k, pos + k)
    } else {
        set.run_chars(s, pos, limit)
    }
}

/// The char boundary immediately before `end` (> 0).
#[inline]
fn prev_char_boundary<const ASCII: bool>(bytes: &[u8], end: usize) -> usize {
    if ASCII {
        return end - 1;
    }
    let mut e = end - 1;
    while e > 0 && bytes[e] & 0xC0 == 0x80 {
        e -= 1;
    }
    e
}

/// Execute `ops` against `s`, which the caller guarantees is pure ASCII
/// (the byte-only instantiation of the loop). On success, if `spans` is
/// given it receives one `(start, end)` **byte** span per op.
pub(crate) fn run_ascii(ops: &[Op], s: &str, spans: Option<&mut Vec<(usize, usize)>>) -> bool {
    debug_assert!(s.is_ascii());
    exec::<true>(ops, s, spans)
}

/// Execute `ops` against arbitrary UTF-8 `s` (repetition counts are
/// characters). On success, if `spans` is given it receives one
/// `(start, end)` **byte** span per op.
pub(crate) fn run_utf8(ops: &[Op], s: &str, spans: Option<&mut Vec<(usize, usize)>>) -> bool {
    exec::<false>(ops, s, spans)
}

fn exec<const ASCII: bool>(
    ops: &[Op],
    s: &str,
    mut spans: Option<&mut Vec<(usize, usize)>>,
) -> bool {
    let bytes = s.as_bytes();
    let n = bytes.len();
    let m = ops.len();
    let stride = n + 1;
    SCRATCH.with(|cell| {
        let scratch = &mut *cell.borrow_mut();
        scratch.stack.clear();
        let words = ((m + 1) * stride).div_ceil(64);
        scratch.visited.clear();
        scratch.visited.resize(words, 0);
        let (stack, visited) = (&mut scratch.stack, &mut scratch.visited);

        let mut pc = 0usize;
        let mut pos = 0usize; // byte offset, always a char boundary
        loop {
            // Try to advance from (pc, pos).
            let advanced = if pc == m {
                if pos == n {
                    if let Some(out) = spans.take() {
                        out.clear();
                        out.extend(stack.iter().map(|f| (f.start as usize, f.end as usize)));
                    }
                    return true;
                }
                false
            } else if mark(visited, stride, pc, pos) {
                // Already explored from this state: known failure.
                false
            } else {
                // Greedy: take the longest admissible run first.
                let hit = match ops[pc] {
                    Op::Byte(b) => (pos < n && bytes[pos] == b).then_some((1, pos + 1)),
                    Op::Exact { ref set, n: cnt } => {
                        let cnt = cnt as usize;
                        let (k, end) = take_run::<ASCII>(set, s, pos, cnt);
                        (k == cnt).then_some((k, end))
                    }
                    Op::AtLeast { ref set, min } => {
                        let (k, end) = take_run::<ASCII>(set, s, pos, usize::MAX);
                        (k >= min as usize).then_some((k, end))
                    }
                    Op::Range { ref set, min, max } => {
                        let (k, end) = take_run::<ASCII>(set, s, pos, max as usize);
                        (k >= min as usize).then_some((k, end))
                    }
                };
                match hit {
                    Some((k, end)) => {
                        stack.push(Frame {
                            pc: pc as u32,
                            start: pos as u32,
                            end: end as u32,
                            k: k as u32,
                        });
                        pos = end;
                        pc += 1;
                        true
                    }
                    None => false,
                }
            };
            if advanced {
                continue;
            }
            // Backtrack: shorten the most recent shrinkable run by one
            // character. The resumption state is deliberately NOT marked
            // here — the main loop marks it on (first) entry; if it was
            // already explored, the next iteration falls straight back
            // here and the frame shrinks again.
            let mut resumed = false;
            while let Some(mut frame) = stack.pop() {
                let min = ops[frame.pc as usize].interval().0;
                if frame.k > min {
                    frame.k -= 1;
                    frame.end = prev_char_boundary::<ASCII>(bytes, frame.end as usize) as u32;
                    pos = frame.end as usize;
                    pc = frame.pc as usize + 1;
                    stack.push(frame);
                    resumed = true;
                    break;
                }
            }
            if !resumed {
                return false;
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::CompiledPattern;
    use crate::Pattern;

    fn compiled(s: &str) -> CompiledPattern {
        CompiledPattern::compile(&s.parse::<Pattern>().unwrap())
    }

    #[test]
    fn empty_program_matches_only_empty() {
        let c = CompiledPattern::compile(&Pattern::empty());
        assert!(run_ascii(c.ops(), "", None));
        assert!(!run_ascii(c.ops(), "a", None));
    }

    #[test]
    fn backtracks_across_adjacent_stars() {
        // Naive backtracking is exponential here; the visited set keeps
        // it polynomial — and the answer correct.
        let c = compiled("\\A*\\A*\\A*\\A*\\A*\\A*\\A*\\A*a");
        assert!(run_ascii(c.ops(), "bbbbbbbbbbbbbbbbbbbbbbba", None));
        assert!(!run_ascii(c.ops(), "bbbbbbbbbbbbbbbbbbbbbbbb", None));
    }

    #[test]
    fn spans_are_leftmost_greedy() {
        let c = compiled("\\A*a");
        let mut spans = Vec::new();
        assert!(run_ascii(c.ops(), "aaa", Some(&mut spans)));
        assert_eq!(spans, vec![(0, 2), (2, 3)]);
    }

    #[test]
    fn zero_width_ops_yield_empty_spans() {
        let c = compiled("a*b*c");
        let mut spans = Vec::new();
        assert!(run_ascii(c.ops(), "c", Some(&mut spans)));
        assert_eq!(spans, vec![(0, 0), (0, 0), (0, 1)]);
    }

    #[test]
    fn range_backoff() {
        // \D{1,3}\D{2}: on "123" the first op must back off from 3 to 1.
        let c = compiled("\\D{1,3}\\D{2}");
        let mut spans = Vec::new();
        assert!(run_ascii(c.ops(), "123", Some(&mut spans)));
        assert_eq!(spans, vec![(0, 1), (1, 3)]);
        assert!(run_ascii(c.ops(), "12345", None));
        assert!(!run_ascii(c.ops(), "1", None));
    }

    #[test]
    fn utf8_counts_are_chars_not_bytes() {
        // \A{2} must match exactly two characters of any width.
        let c = compiled("\\A{2}");
        assert!(run_utf8(c.ops(), "中文", None));
        assert!(!run_utf8(c.ops(), "中", None));
        assert!(!run_utf8(c.ops(), "中文字", None));
    }

    #[test]
    fn utf8_backtracking_steps_back_whole_chars() {
        // \A* must back off from the full run over multibyte chars to
        // leave the final literal for the Byte op.
        let c = compiled("\\A*a");
        let mut spans = Vec::new();
        assert!(run_utf8(c.ops(), "é中a", Some(&mut spans)));
        // Byte spans: é=2 bytes, 中=3 bytes, then 'a'.
        assert_eq!(spans, vec![(0, 5), (5, 6)]);
    }

    #[test]
    fn utf8_spillover_classes_match_nonascii_letters() {
        let c = compiled("\\LU\\LL*");
        assert!(run_utf8(c.ops(), "Étienne", None));
        assert!(run_utf8(c.ops(), "Ñandú", None));
        assert!(!run_utf8(c.ops(), "étienne", None));
        // Titlecase ǅ is neither upper nor lower → Symbol.
        let sym = compiled("\\S+");
        assert!(run_utf8(sym.ops(), "ǅ--", None));
        assert!(!run_utf8(sym.ops(), "ǅa-", None));
    }
}
