//! The bytecode VM: non-recursive backtracking over `&str` bytes.
//!
//! The restricted pattern language has no alternation and no nested
//! repetition, so every [`Op`] consumes one greedy
//! *run* of class-matching bytes; the only search dimension is how far
//! each variable-count op's run is allowed to reach. The VM therefore
//! executes with two reused structures and no recursion:
//!
//! * an explicit **backtrack stack** — one frame per executed op holding
//!   `(op index, run start, chosen count)`; backtracking pops a frame and
//!   shortens its run by one (greedy-first order, which reproduces the
//!   interpreter's leftmost-greedy span semantics exactly);
//! * a **visited-state bitset** over `(op index, position)` pairs — a
//!   state is explored at most once, which caps the search at
//!   `O(|P| · |s|)` states (the same order as the interpreter's dynamic
//!   program) instead of the exponential worst case of naive
//!   backtracking on patterns like `\A*\A*…\A*a`.
//!
//! Both structures live in thread-local scratch, so steady-state
//! evaluation performs no heap allocation at all.

use crate::compile::{AsciiSet, Op};
use std::cell::RefCell;

/// One executed op on the current search path: its run starts at byte
/// `start` and currently spans `k` bytes.
#[derive(Debug, Clone, Copy)]
struct Frame {
    pc: u32,
    start: u32,
    k: u32,
}

#[derive(Default)]
struct Scratch {
    stack: Vec<Frame>,
    visited: Vec<u64>,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Mark `(pc, pos)` in the visited bitset; returns whether it was
/// already set (i.e. this state is known to fail).
#[inline]
fn mark(visited: &mut [u64], stride: usize, pc: usize, pos: usize) -> bool {
    let idx = pc * stride + pos;
    let (word, bit) = (idx / 64, idx % 64);
    let seen = (visited[word] >> bit) & 1 != 0;
    visited[word] |= 1 << bit;
    seen
}

/// Longest run of `set`-matching bytes from `pos`, capped at `limit`.
#[inline]
fn run_len(set: &AsciiSet, bytes: &[u8], pos: usize, limit: usize) -> usize {
    let mut k = 0;
    while k < limit && set.contains(bytes[pos + k]) {
        k += 1;
    }
    k
}

/// Execute `ops` against `bytes` (which the caller guarantees is pure
/// ASCII). Returns whether the whole input matches; on success, if
/// `spans` is given it receives one `(start, end)` byte span per op —
/// identical to the interpreter's leftmost-greedy character spans, since
/// byte and char indices coincide for ASCII.
pub(crate) fn run(ops: &[Op], bytes: &[u8], mut spans: Option<&mut Vec<(usize, usize)>>) -> bool {
    let n = bytes.len();
    let m = ops.len();
    let stride = n + 1;
    SCRATCH.with(|cell| {
        let scratch = &mut *cell.borrow_mut();
        scratch.stack.clear();
        let words = ((m + 1) * stride).div_ceil(64);
        scratch.visited.clear();
        scratch.visited.resize(words, 0);
        let (stack, visited) = (&mut scratch.stack, &mut scratch.visited);

        let mut pc = 0usize;
        let mut pos = 0usize;
        loop {
            // Try to advance from (pc, pos).
            let advanced = if pc == m {
                if pos == n {
                    if let Some(out) = spans.take() {
                        out.clear();
                        out.extend(stack.iter().map(|f| {
                            let (a, k) = (f.start as usize, f.k as usize);
                            (a, a + k)
                        }));
                    }
                    return true;
                }
                false
            } else if mark(visited, stride, pc, pos) {
                // Already explored from this state: known failure.
                false
            } else {
                // Greedy: take the longest admissible run first.
                let k = match ops[pc] {
                    Op::Byte(b) => {
                        if pos < n && bytes[pos] == b {
                            Some(1)
                        } else {
                            None
                        }
                    }
                    Op::Exact { ref set, n: cnt } => {
                        let cnt = cnt as usize;
                        (cnt <= n - pos && run_len(set, bytes, pos, cnt) == cnt).then_some(cnt)
                    }
                    Op::AtLeast { ref set, min } => {
                        let k = run_len(set, bytes, pos, n - pos);
                        (k >= min as usize).then_some(k)
                    }
                    Op::Range { ref set, min, max } => {
                        let k = run_len(set, bytes, pos, (max as usize).min(n - pos));
                        (k >= min as usize).then_some(k)
                    }
                };
                match k {
                    Some(k) => {
                        stack.push(Frame {
                            pc: pc as u32,
                            start: pos as u32,
                            k: k as u32,
                        });
                        pos += k;
                        pc += 1;
                        true
                    }
                    None => false,
                }
            };
            if advanced {
                continue;
            }
            // Backtrack: shorten the most recent shrinkable run by one.
            // The resumption state is deliberately NOT marked here — the
            // main loop marks it on (first) entry; if it was already
            // explored, the next iteration falls straight back here and
            // the frame shrinks again.
            let mut resumed = false;
            while let Some(mut frame) = stack.pop() {
                let min = ops[frame.pc as usize].interval().0;
                if frame.k > min {
                    frame.k -= 1;
                    pos = (frame.start + frame.k) as usize;
                    pc = frame.pc as usize + 1;
                    stack.push(frame);
                    resumed = true;
                    break;
                }
            }
            if !resumed {
                return false;
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::CompiledPattern;
    use crate::Pattern;

    fn compiled(s: &str) -> CompiledPattern {
        CompiledPattern::compile(&s.parse::<Pattern>().unwrap())
    }

    #[test]
    fn empty_program_matches_only_empty() {
        let c = CompiledPattern::compile(&Pattern::empty());
        assert!(run(c.ops(), b"", None));
        assert!(!run(c.ops(), b"a", None));
    }

    #[test]
    fn backtracks_across_adjacent_stars() {
        // Naive backtracking is exponential here; the visited set keeps
        // it polynomial — and the answer correct.
        let c = compiled("\\A*\\A*\\A*\\A*\\A*\\A*\\A*\\A*a");
        assert!(run(c.ops(), b"bbbbbbbbbbbbbbbbbbbbbbba", None));
        assert!(!run(c.ops(), b"bbbbbbbbbbbbbbbbbbbbbbbb", None));
    }

    #[test]
    fn spans_are_leftmost_greedy() {
        let c = compiled("\\A*a");
        let mut spans = Vec::new();
        assert!(run(c.ops(), b"aaa", Some(&mut spans)));
        assert_eq!(spans, vec![(0, 2), (2, 3)]);
    }

    #[test]
    fn zero_width_ops_yield_empty_spans() {
        let c = compiled("a*b*c");
        let mut spans = Vec::new();
        assert!(run(c.ops(), b"c", Some(&mut spans)));
        assert_eq!(spans, vec![(0, 0), (0, 0), (0, 1)]);
    }

    #[test]
    fn range_backoff() {
        // \D{1,3}\D{2}: on "123" the first op must back off from 3 to 1.
        let c = compiled("\\D{1,3}\\D{2}");
        let mut spans = Vec::new();
        assert!(run(c.ops(), b"123", Some(&mut spans)));
        assert_eq!(spans, vec![(0, 1), (1, 3)]);
        assert!(run(c.ops(), b"12345", None));
        assert!(!run(c.ops(), b"1", None));
    }
}
