//! Per-pattern match memoization over interned values.
//!
//! Pattern matching costs `O(|P| · |s|)` per evaluation; a streaming
//! detector that re-matches every arriving row pays that per *row*. But a
//! match result depends only on the cell's string — so once cells are
//! dictionary-encoded (see `anmat_table::ValuePool`), a pattern needs to
//! be evaluated at most once per *distinct* value. [`MatchMemo`] is that
//! memo: a `(pattern instance, interned id) → bool` cache keyed on the
//! caller-supplied `u32` id (this crate stays independent of the table
//! layer; callers pass `ValueId::raw()`).
//!
//! One `MatchMemo` memoizes one pattern — embed one per tableau-tuple
//! state, next to the `Pattern` it caches for. The memo also counts how
//! many *real* evaluations it performed ([`MatchMemo::evals`]), which is
//! the test hook asserting the "at most `distinct(column)` evaluations
//! per pattern" guarantee.

use crate::ast::Pattern;
use crate::compile::{CompiledPattern, PatternEngine};
use fxhash::FxHashMap;

/// A `(interned value id) → matches?` cache for one [`Pattern`].
#[derive(Debug, Clone, Default)]
pub struct MatchMemo {
    cache: FxHashMap<u32, bool>,
    evals: usize,
    lookups: usize,
}

impl MatchMemo {
    /// An empty memo.
    #[must_use]
    pub fn new() -> MatchMemo {
        MatchMemo::default()
    }

    /// Does `s` (interned as `id`) match `pattern`? Evaluates the pattern
    /// only on the first sighting of `id`; afterwards this is a single
    /// u32-keyed hash probe.
    ///
    /// The caller must pass the same `pattern` on every call (the memo
    /// caches for exactly one pattern) and an `id` that canonically
    /// identifies `s` (equal ids ⇒ equal strings).
    pub fn matches(&mut self, pattern: &Pattern, id: u32, s: &str) -> bool {
        self.lookups += 1;
        if let Some(&hit) = self.cache.get(&id) {
            return hit;
        }
        self.evals += 1;
        // The same taxonomy `CompiledPattern` reports: this miss runs the
        // AST interpreter, so interpreted-mode engines are visible in the
        // vm/interp split too.
        anmat_obs::counter!("pattern.interp_evals").incr();
        let result = pattern.matches(s);
        self.cache.insert(id, result);
        result
    }

    /// [`MatchMemo::matches`] with the miss evaluated on the compiled
    /// program's default (fused-capable) tier instead of the AST
    /// interpreter. Counting is identical, so the "at most
    /// `distinct(column)` evaluations" invariant carries over unchanged;
    /// `program` must be compiled from the same pattern on every call.
    pub fn matches_compiled(&mut self, program: &CompiledPattern, id: u32, s: &str) -> bool {
        self.matches_with(program, PatternEngine::Fused, id, s)
    }

    /// [`MatchMemo::matches_compiled`] on an explicit execution tier
    /// (misses tick the corresponding `pattern.*_evals` counter; hits
    /// touch no tier at all).
    pub fn matches_with(
        &mut self,
        program: &CompiledPattern,
        engine: PatternEngine,
        id: u32,
        s: &str,
    ) -> bool {
        self.lookups += 1;
        if let Some(&hit) = self.cache.get(&id) {
            return hit;
        }
        self.evals += 1;
        let result = program.matches_with(s, engine);
        self.cache.insert(id, result);
        result
    }

    /// Batch-classify: evaluate `program` once for every *uncached* id,
    /// in one tight pass. Each new distinct id costs exactly the one
    /// eval the lazy path would have paid on first sighting, so
    /// [`MatchMemo::evals`] is invariant; [`MatchMemo::lookups`] does not
    /// advance (priming is not a query — the per-row probes that follow
    /// count as usual, and hit).
    pub fn prime_compiled<'a, I>(&mut self, program: &CompiledPattern, ids: I)
    where
        I: IntoIterator<Item = (u32, &'a str)>,
    {
        self.prime_with(program, PatternEngine::Fused, ids);
    }

    /// [`MatchMemo::prime_compiled`] on an explicit execution tier.
    pub fn prime_with<'a, I>(&mut self, program: &CompiledPattern, engine: PatternEngine, ids: I)
    where
        I: IntoIterator<Item = (u32, &'a str)>,
    {
        for (id, s) in ids {
            if !self.cache.contains_key(&id) {
                self.evals += 1;
                let result = program.matches_with(s, engine);
                self.cache.insert(id, result);
            }
        }
    }

    /// Number of actual pattern evaluations performed (cache misses) —
    /// the call-counting test hook. Bounded by the number of distinct ids
    /// ever passed in.
    #[must_use]
    pub fn evals(&self) -> usize {
        self.evals
    }

    /// Number of memo consultations (hits + misses). Together with
    /// [`MatchMemo::evals`] this yields the cache hit rate the
    /// observability layer reports.
    #[must_use]
    pub fn lookups(&self) -> usize {
        self.lookups
    }

    /// Move out every cached entry whose id satisfies `pred` — the
    /// key-migration hook for sharded engines that partition work by
    /// hashed value id and occasionally reassign a hash range to another
    /// worker. The extracted `(id, matched?)` pairs can be re-installed
    /// elsewhere with [`MatchMemo::install`]; the eval/lookup counters
    /// stay put on both sides (they record where work *happened*, and a
    /// migration performs none).
    pub fn extract_if(&mut self, mut pred: impl FnMut(u32) -> bool) -> Vec<(u32, bool)> {
        let mut out = Vec::new();
        self.cache.retain(|&id, &mut hit| {
            if pred(id) {
                out.push((id, hit));
                false
            } else {
                true
            }
        });
        out
    }

    /// Drop every cached entry whose id satisfies `pred`, without
    /// touching the eval/lookup counters.
    ///
    /// This is the reclamation hook: when the pool frees a string, its
    /// id goes back on a free list and will be recycled for a
    /// *different* string later. A memo entry keyed on the dead id
    /// would then answer for the wrong value, so the engine purges dead
    /// ids at the same epoch barrier that reclaims them.
    pub fn purge(&mut self, mut pred: impl FnMut(u32) -> bool) {
        self.cache.retain(|&id, _| !pred(id));
    }

    /// Install entries previously moved out by [`MatchMemo::extract_if`]
    /// (or otherwise known-correct `(id, matched?)` pairs for this
    /// memo's pattern). Counts no evaluations — the work was already
    /// paid for wherever the entries were first computed.
    pub fn install(&mut self, entries: impl IntoIterator<Item = (u32, bool)>) {
        for (id, hit) in entries {
            self.cache.insert(id, hit);
        }
    }

    /// Number of distinct ids memoized.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Is the memo empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoizes_per_distinct_id() {
        let p: Pattern = "900\\D{2}".parse().unwrap();
        let mut memo = MatchMemo::new();
        // 100 probes over 2 distinct ids: exactly 2 evaluations.
        for i in 0..100 {
            let (id, s) = if i % 2 == 0 {
                (1, "90001")
            } else {
                (2, "10001")
            };
            let expected = id == 1;
            assert_eq!(memo.matches(&p, id, s), expected);
        }
        assert_eq!(memo.evals(), 2);
        assert_eq!(memo.len(), 2);
    }

    #[test]
    fn results_agree_with_direct_matching() {
        let p: Pattern = "\\LU\\LL*".parse().unwrap();
        let mut memo = MatchMemo::new();
        for (id, s) in [(1u32, "John"), (2, "john"), (3, "J"), (4, "JOhn")] {
            assert_eq!(memo.matches(&p, id, s), p.matches(s), "{s}");
            // Second call: cached, same answer.
            assert_eq!(memo.matches(&p, id, s), p.matches(s), "{s}");
        }
        assert_eq!(memo.evals(), 4);
    }

    #[test]
    fn compiled_and_interpreted_share_counting() {
        let p: Pattern = "900\\D{2}".parse().unwrap();
        let c = CompiledPattern::compile(&p);
        let mut interp = MatchMemo::new();
        let mut compiled = MatchMemo::new();
        let probes = [(1u32, "90001"), (2, "10001"), (1, "90001"), (3, "900x1")];
        for (id, s) in probes {
            assert_eq!(
                compiled.matches_compiled(&c, id, s),
                interp.matches(&p, id, s),
                "{s}"
            );
        }
        assert_eq!(compiled.evals(), interp.evals());
        assert_eq!(compiled.lookups(), interp.lookups());
    }

    #[test]
    fn prime_counts_like_lazy_misses() {
        let p: Pattern = "\\D{5}".parse().unwrap();
        let c = CompiledPattern::compile(&p);
        let mut memo = MatchMemo::new();
        memo.prime_compiled(&c, [(1u32, "90001"), (2, "1234"), (1, "90001")]);
        assert_eq!(memo.evals(), 2); // the duplicate id is skipped
        assert_eq!(memo.lookups(), 0);
        // Primed ids now hit; a fresh id still misses lazily.
        assert!(memo.matches_compiled(&c, 1, "90001"));
        assert!(!memo.matches_compiled(&c, 3, "12a45"));
        assert_eq!(memo.evals(), 3);
        assert_eq!(memo.lookups(), 2);
    }

    #[test]
    fn empty_memo() {
        let memo = MatchMemo::new();
        assert!(memo.is_empty());
        assert_eq!(memo.evals(), 0);
    }
}
