//! Error type shared across the pattern crate.

use std::fmt;

/// Errors produced while parsing or manipulating patterns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternError {
    /// The textual pattern ended in the middle of an escape or quantifier.
    UnexpectedEnd {
        /// Byte offset at which input was exhausted.
        at: usize,
    },
    /// An escape sequence that is not part of the language (e.g. `\Q`).
    UnknownEscape {
        /// Byte offset of the backslash.
        at: usize,
        /// The offending escape body.
        escape: String,
    },
    /// A malformed `{..}` quantifier.
    BadQuantifier {
        /// Byte offset of the opening brace.
        at: usize,
        /// Explanation of what was wrong.
        reason: String,
    },
    /// A quantifier with nothing to repeat (`*abc`, leading `{3}` …).
    DanglingQuantifier {
        /// Byte offset of the quantifier.
        at: usize,
    },
    /// Constrained-segment brackets that do not balance.
    UnbalancedSegment {
        /// Byte offset of the offending bracket (or end of input).
        at: usize,
    },
    /// A constrained pattern without any constrained segment.
    NoConstrainedSegment,
    /// An empty pattern where a non-empty one is required.
    EmptyPattern,
    /// A quantifier interval with `min > max`.
    EmptyInterval {
        /// The declared minimum.
        min: u32,
        /// The declared maximum.
        max: u32,
    },
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::UnexpectedEnd { at } => {
                write!(f, "unexpected end of pattern at byte {at}")
            }
            PatternError::UnknownEscape { at, escape } => {
                write!(f, "unknown escape `\\{escape}` at byte {at}")
            }
            PatternError::BadQuantifier { at, reason } => {
                write!(f, "bad quantifier at byte {at}: {reason}")
            }
            PatternError::DanglingQuantifier { at } => {
                write!(f, "quantifier with nothing to repeat at byte {at}")
            }
            PatternError::UnbalancedSegment { at } => {
                write!(f, "unbalanced constrained-segment bracket at byte {at}")
            }
            PatternError::NoConstrainedSegment => {
                write!(f, "constrained pattern has no constrained segment")
            }
            PatternError::EmptyPattern => write!(f, "pattern is empty"),
            PatternError::EmptyInterval { min, max } => {
                write!(
                    f,
                    "quantifier interval {{{min},{max}}} is empty (min > max)"
                )
            }
        }
    }
}

impl std::error::Error for PatternError {}
