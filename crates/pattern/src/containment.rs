//! Pattern containment (`P ⊆ P'`) and least-general generalization.
//!
//! §2 of the paper defines containment as language inclusion: `P ⊆ P'` iff
//! every string matching `P` also matches `P'`. For general regexes this is
//! PSPACE-complete; for our restricted chain-shaped language the automata
//! are tiny, so the classical product construction is practical and exact:
//!
//! 1. compile both patterns to NFAs (counted repetitions unrolled, with a
//!    loop state for unbounded tails);
//! 2. partition the infinite alphabet into finitely many *atoms* — each
//!    literal character mentioned by either pattern, plus one fresh
//!    representative per interior class (`\LU`, `\LL`, `\D`, `\S`) — such
//!    that every transition predicate is a union of atoms;
//! 3. walk the product of `NFA(P)` with the on-the-fly determinization of
//!    `NFA(P')`; containment fails iff some reachable pair accepts in `P`
//!    but not in `P'`.
//!
//! [`generalize_patterns`] computes a *least-general generalization* under
//! element alignment: the result's language contains both inputs, and it is
//! the most specific such pattern reachable by per-element class joins and
//! interval unions along an optimal alignment. Discovery uses it to fold a
//! sample of value strings into one tableau pattern.

use crate::ast::{Element, Pattern, Quantifier};
use crate::symbol::SymbolClass;
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Is `L(p) ⊆ L(q)` — every string matching `p` also matches `q`?
///
/// Exact for the restricted language (no approximation).
#[must_use]
pub fn contains(q: &Pattern, p: &Pattern) -> bool {
    // Fast screens on lengths.
    if p.min_len() < q.min_len() {
        return false;
    }
    match (p.max_len(), q.max_len()) {
        (None, Some(_)) => return false,
        (Some(pm), Some(qm)) if pm > qm => return false,
        _ => {}
    }
    let p = p.normalized();
    let q = q.normalized();
    let np = Nfa::compile(&p);
    let nq = Nfa::compile(&q);
    let atoms = alphabet_atoms(&[&p, &q]);

    // BFS over (p-state, q-state-set).
    let start_p = np.eps_closure(&[np.start]);
    let start_q = nq.eps_closure(&[nq.start]);
    let mut seen: HashMap<(BTreeSet<usize>, BTreeSet<usize>), ()> = HashMap::new();
    let mut queue = VecDeque::new();
    queue.push_back((start_p, start_q));
    while let Some((ps, qs)) = queue.pop_front() {
        if seen.contains_key(&(ps.clone(), qs.clone())) {
            continue;
        }
        if np.accepts_set(&ps) && !nq.accepts_set(&qs) {
            return false;
        }
        for &c in &atoms {
            let ps2 = np.step(&ps, c);
            if ps2.is_empty() {
                continue; // p dies; nothing to contain
            }
            let qs2 = nq.step(&qs, c);
            if !seen.contains_key(&(ps2.clone(), qs2.clone())) {
                queue.push_back((ps2, qs2));
            }
        }
        seen.insert((ps, qs), ());
    }
    true
}

/// Are the two patterns language-equivalent?
#[must_use]
pub fn equivalent(a: &Pattern, b: &Pattern) -> bool {
    contains(a, b) && contains(b, a)
}

/// Do the two patterns match at least one common string
/// (`L(a) ∩ L(b) ≠ ∅`)?
///
/// Exact, via BFS over the product of the two NFAs with the same
/// alphabet-atom partition as [`contains`]. The pattern index uses this to
/// prune signature buckets that cannot contain matches.
#[must_use]
pub fn intersects(a: &Pattern, b: &Pattern) -> bool {
    // Length-interval screen.
    let (amin, amax) = (a.min_len(), a.max_len());
    let (bmin, bmax) = (b.min_len(), b.max_len());
    if let Some(amax) = amax {
        if amax < bmin {
            return false;
        }
    }
    if let Some(bmax) = bmax {
        if bmax < amin {
            return false;
        }
    }
    let a = a.normalized();
    let b = b.normalized();
    let na = Nfa::compile(&a);
    let nb = Nfa::compile(&b);
    let atoms = alphabet_atoms(&[&a, &b]);
    let start = (na.eps_closure(&[na.start]), nb.eps_closure(&[nb.start]));
    let mut seen = std::collections::HashSet::new();
    let mut queue = VecDeque::new();
    queue.push_back(start);
    while let Some((sa, sb)) = queue.pop_front() {
        if !seen.insert((sa.clone(), sb.clone())) {
            continue;
        }
        if na.accepts_set(&sa) && nb.accepts_set(&sb) {
            return true;
        }
        for &c in &atoms {
            let sa2 = na.step(&sa, c);
            if sa2.is_empty() {
                continue;
            }
            let sb2 = nb.step(&sb, c);
            if sb2.is_empty() {
                continue;
            }
            if !seen.contains(&(sa2.clone(), sb2.clone())) {
                queue.push_back((sa2, sb2));
            }
        }
    }
    false
}

/// A chain-shaped NFA for one pattern.
struct Nfa {
    start: usize,
    accept: usize,
    /// `trans[s]` = list of `(class, target)` character transitions.
    trans: Vec<Vec<(SymbolClass, usize)>>,
    /// `eps[s]` = ε-transitions.
    eps: Vec<Vec<usize>>,
}

impl Nfa {
    fn compile(p: &Pattern) -> Nfa {
        let mut nfa = Nfa {
            start: 0,
            accept: 0,
            trans: vec![Vec::new()],
            eps: vec![Vec::new()],
        };
        let mut cur = 0usize;
        for e in p.elements() {
            let (min, max) = e.quant.interval();
            // Mandatory part: `min` chained copies.
            for _ in 0..min {
                let next = nfa.new_state();
                nfa.trans[cur].push((e.class, next));
                cur = next;
            }
            match max {
                Some(max) => {
                    // Optional part: (max - min) copies, each skippable to the end.
                    let mut optional_starts = vec![cur];
                    for _ in min..max {
                        let next = nfa.new_state();
                        nfa.trans[cur].push((e.class, next));
                        cur = next;
                        optional_starts.push(cur);
                    }
                    let end = cur;
                    for s in optional_starts {
                        if s != end {
                            nfa.eps[s].push(end);
                        }
                    }
                }
                None => {
                    // Unbounded tail: self-loop.
                    nfa.trans[cur].push((e.class, cur));
                }
            }
        }
        nfa.accept = cur;
        nfa
    }

    fn new_state(&mut self) -> usize {
        self.trans.push(Vec::new());
        self.eps.push(Vec::new());
        self.trans.len() - 1
    }

    fn eps_closure(&self, states: &[usize]) -> BTreeSet<usize> {
        let mut out: BTreeSet<usize> = states.iter().copied().collect();
        let mut stack: Vec<usize> = states.to_vec();
        while let Some(s) = stack.pop() {
            for &t in &self.eps[s] {
                if out.insert(t) {
                    stack.push(t);
                }
            }
        }
        out
    }

    fn step(&self, states: &BTreeSet<usize>, c: char) -> BTreeSet<usize> {
        let mut moved = Vec::new();
        for &s in states {
            for &(class, t) in &self.trans[s] {
                if class.matches(c) {
                    moved.push(t);
                }
            }
        }
        self.eps_closure(&moved)
    }

    fn accepts_set(&self, states: &BTreeSet<usize>) -> bool {
        states.contains(&self.accept)
    }
}

/// One representative character per alphabet atom induced by the patterns.
fn alphabet_atoms(patterns: &[&Pattern]) -> Vec<char> {
    let mut literals: BTreeSet<char> = BTreeSet::new();
    let mut classes: BTreeSet<SymbolClass> = BTreeSet::new();
    for p in patterns {
        for e in p.elements() {
            match e.class {
                SymbolClass::Literal(c) => {
                    literals.insert(c);
                }
                c => {
                    classes.insert(c);
                }
            }
        }
    }
    let mut atoms: Vec<char> = literals.iter().copied().collect();
    // A fresh (unmentioned) representative per interior class. `\A` needs one
    // representative from *some* class not fully covered; adding one per
    // interior class covers it.
    let pools: [(SymbolClass, &[char]); 4] = [
        (SymbolClass::Upper, &UPPER_POOL),
        (SymbolClass::Lower, &LOWER_POOL),
        (SymbolClass::Digit, &DIGIT_POOL),
        (SymbolClass::Symbol, &SYMBOL_POOL),
    ];
    for (_, pool) in pools {
        if let Some(&fresh) = pool.iter().find(|c| !literals.contains(c)) {
            atoms.push(fresh);
        }
    }
    atoms
}

const UPPER_POOL: [char; 27] = [
    'A', 'B', 'C', 'D', 'E', 'F', 'G', 'H', 'I', 'J', 'K', 'L', 'M', 'N', 'O', 'P', 'Q', 'R', 'S',
    'T', 'U', 'V', 'W', 'X', 'Y', 'Z', 'À',
];
const LOWER_POOL: [char; 27] = [
    'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q', 'r', 's',
    't', 'u', 'v', 'w', 'x', 'y', 'z', 'à',
];
const DIGIT_POOL: [char; 10] = ['0', '1', '2', '3', '4', '5', '6', '7', '8', '9'];
const SYMBOL_POOL: [char; 18] = [
    '-', '_', '.', ',', ' ', ':', ';', '!', '?', '#', '@', '%', '&', '/', '(', ')', '\'', '"',
];

/// Least-general generalization of two patterns under element alignment.
///
/// The result's language is a superset of both inputs'. Alignment uses
/// Needleman–Wunsch over elements with a substitution cost derived from the
/// generalization-tree distance; aligned elements merge by class join and
/// repetition-interval union, and gap elements become optional
/// (minimum repetition 0).
#[must_use]
pub fn generalize_patterns(a: &Pattern, b: &Pattern) -> Pattern {
    generalize_patterns_raw(a, b).normalized()
}

/// [`generalize_patterns`] without the final normalization.
///
/// Induction folds many strings through repeated generalization; keeping
/// the intermediate accumulator *unnormalized* preserves per-character
/// granularity (normalization merges literal runs like `00` → `0{2}`, and
/// aligning a merged element against single characters forces noisy
/// interval unions). Normalize once after the fold completes.
#[must_use]
pub fn generalize_patterns_raw(a: &Pattern, b: &Pattern) -> Pattern {
    let ae = a.elements();
    let be = b.elements();
    let (n, m) = (ae.len(), be.len());
    // Strictly above the maximum substitution cost (6), so the alignment
    // only uses gaps to absorb length differences — never to "reuse" a
    // shared character across misaligned positions, which would produce
    // needlessly wide optional elements.
    const GAP: u32 = 7;
    // dp[i][j] = min cost aligning ae[..i] with be[..j].
    let mut dp = vec![vec![u32::MAX; m + 1]; n + 1];
    dp[0][0] = 0;
    for i in 0..=n {
        for j in 0..=m {
            let cur = dp[i][j];
            if cur == u32::MAX {
                continue;
            }
            if i < n && j < m {
                let cost = subst_cost(&ae[i], &be[j]);
                let c = cur + cost;
                if c < dp[i + 1][j + 1] {
                    dp[i + 1][j + 1] = c;
                }
            }
            if i < n {
                let c = cur + GAP;
                if c < dp[i + 1][j] {
                    dp[i + 1][j] = c;
                }
            }
            if j < m {
                let c = cur + GAP;
                if c < dp[i][j + 1] {
                    dp[i][j + 1] = c;
                }
            }
        }
    }
    // Trace back.
    let mut merged_rev: Vec<Element> = Vec::new();
    let (mut i, mut j) = (n, m);
    while i > 0 || j > 0 {
        let cur = dp[i][j];
        if i > 0 && j > 0 && dp[i - 1][j - 1] != u32::MAX {
            let cost = subst_cost(&ae[i - 1], &be[j - 1]);
            if dp[i - 1][j - 1] + cost == cur {
                merged_rev.push(merge_elements(&ae[i - 1], &be[j - 1]));
                i -= 1;
                j -= 1;
                continue;
            }
        }
        if i > 0 && dp[i - 1][j] != u32::MAX && dp[i - 1][j] + GAP == cur {
            merged_rev.push(optionalize(&ae[i - 1]));
            i -= 1;
            continue;
        }
        debug_assert!(j > 0);
        merged_rev.push(optionalize(&be[j - 1]));
        j -= 1;
    }
    merged_rev.reverse();
    Pattern::new(merged_rev)
}

fn subst_cost(a: &Element, b: &Element) -> u32 {
    // Graded by how far up the generalization tree the join lands: equal
    // classes align freely, joins within one interior class (two distinct
    // digits, two lowercase letters) are mild, and joins that balloon to
    // `\A` are last-resort — still cheaper than a gap, so alignments stay
    // positional, but expensive enough that the traceback prefers
    // class-preserving pairings when costs tie overall.
    let class_cost = if a.class == b.class {
        0
    } else if a.class.subsumes(&b.class) || b.class.subsumes(&a.class) {
        2
    } else if a.class.join(&b.class) != SymbolClass::Any {
        3
    } else {
        5
    };
    let quant_cost = u32::from(a.quant != b.quant);
    class_cost + quant_cost
}

fn merge_elements(a: &Element, b: &Element) -> Element {
    let class = a.class.join(&b.class);
    let (amin, amax) = a.quant.interval();
    let (bmin, bmax) = b.quant.interval();
    let min = amin.min(bmin);
    let max = match (amax, bmax) {
        (Some(x), Some(y)) => Some(x.max(y)),
        _ => None,
    };
    Element::new(
        class,
        Quantifier::from_interval(min, max).expect("min(mins) <= max(maxes)"),
    )
}

fn optionalize(e: &Element) -> Element {
    let (_, max) = e.quant.interval();
    Element::new(
        e.class,
        Quantifier::from_interval(0, max).expect("0 <= max"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pat(s: &str) -> Pattern {
        s.parse().unwrap()
    }

    #[test]
    fn paper_example1_containment() {
        // P1 = \D{5}, P2 = \D*: P1 ⊆ P2.
        let p1 = pat("\\D{5}");
        let p2 = pat("\\D*");
        assert!(contains(&p2, &p1));
        assert!(!contains(&p1, &p2));
    }

    #[test]
    fn literal_contained_in_class() {
        let lit = Pattern::literal("900");
        let cls = pat("\\D{3}");
        assert!(contains(&cls, &lit));
        assert!(!contains(&lit, &cls));
    }

    #[test]
    fn everything_contained_in_any_star() {
        let top = Pattern::any_string();
        for s in ["900\\D{2}", "\\LU\\LL*\\ \\A*", "abc", "\\S+"] {
            assert!(contains(&top, &pat(s)), "{s} should be ⊆ \\A*");
        }
        assert!(!contains(&pat("abc"), &top));
    }

    #[test]
    fn containment_reflexive() {
        for s in ["900\\D{2}", "\\LU\\LL*\\ \\A*", "", "\\D+"] {
            let p = pat(s);
            assert!(contains(&p, &p), "{s} ⊆ itself");
        }
    }

    #[test]
    fn sibling_classes_incomparable() {
        assert!(!contains(&pat("\\LU+"), &pat("\\LL+")));
        assert!(!contains(&pat("\\LL+"), &pat("\\LU+")));
    }

    #[test]
    fn counted_vs_range() {
        assert!(contains(&pat("\\D{2,5}"), &pat("\\D{3}")));
        assert!(!contains(&pat("\\D{2,5}"), &pat("\\D{6}")));
        assert!(contains(&pat("\\D{2,}"), &pat("\\D{2,5}")));
    }

    #[test]
    fn chain_split_equivalence() {
        // \D\D{2} ≡ \D{3}.
        assert!(equivalent(&pat("\\D\\D{2}"), &pat("\\D{3}")));
        // \LL*\LL* ≡ \LL*.
        assert!(equivalent(&pat("\\LL*\\LL*"), &pat("\\LL*")));
        // \LL+\LL* ≡ \LL+.
        assert!(equivalent(&pat("\\LL+\\LL*"), &pat("\\LL+")));
    }

    #[test]
    fn subtle_non_containment() {
        // \D{2}a ⊄ \D{3}: 12a not all digits.
        assert!(!contains(&pat("\\D{3}"), &pat("\\D{2}a")));
        // a\A* ⊆ \A* but not vice versa.
        assert!(contains(&pat("\\A*"), &pat("a\\A*")));
        assert!(!contains(&pat("a\\A*"), &pat("\\A*")));
    }

    #[test]
    fn q2_contained_in_q1_from_example2() {
        // Embedded patterns of Q2 vs Q1 (Example 2): Q2 = \LU\LL*\ \A*\ \LU\LL*
        // is contained in Q1 = \LU\LL*\ \A*.
        let q1 = pat("\\LU\\LL*\\ \\A*");
        let q2 = pat("\\LU\\LL*\\ \\A*\\ \\LU\\LL*");
        assert!(contains(&q1, &q2));
        assert!(!contains(&q2, &q1));
    }

    #[test]
    fn generalize_identical_is_identity() {
        let p = pat("900\\D{2}");
        assert!(equivalent(&generalize_patterns(&p, &p), &p));
    }

    #[test]
    fn generalize_covers_both() {
        let a = Pattern::literal("90001");
        let b = Pattern::literal("90002");
        let g = generalize_patterns(&a, &b);
        assert!(contains(&g, &a));
        assert!(contains(&g, &b));
        // And it should not balloon to \A*.
        assert!(!contains(&g, &Pattern::literal("abcde")));
    }

    #[test]
    fn generalize_literals_to_digit_class() {
        let a = Pattern::literal("607");
        let b = Pattern::literal("850");
        let g = generalize_patterns(&a, &b);
        assert!(contains(&g, &a));
        assert!(contains(&g, &b));
        assert!(contains(&pat("\\D{3}"), &g));
    }

    #[test]
    fn intersects_basic() {
        assert!(intersects(&pat("\\D{5}"), &pat("900\\D{2}")));
        assert!(!intersects(&pat("\\LL+"), &pat("\\D+")));
        assert!(intersects(&pat("\\A*"), &pat("abc")));
        assert!(!intersects(&pat("\\D{3}"), &pat("\\D{4}")));
        // Shared literal region forces agreement.
        assert!(intersects(&pat("ab\\D"), &pat("\\LL{2}5")));
        assert!(!intersects(&pat("ab\\D"), &pat("\\LU\\LL5")));
    }

    #[test]
    fn intersects_empty_pattern() {
        assert!(intersects(&Pattern::empty(), &pat("\\A*")));
        assert!(!intersects(&Pattern::empty(), &pat("\\A+")));
    }

    #[test]
    fn containment_implies_intersection_when_nonempty() {
        let p = pat("900\\D{2}");
        let q = pat("\\D{5}");
        assert!(contains(&q, &p));
        assert!(intersects(&q, &p));
    }

    #[test]
    fn generalize_different_lengths() {
        let a = Pattern::literal("John");
        let b = Pattern::literal("Susan");
        let g = generalize_patterns(&a, &b);
        assert!(g.matches("John"));
        assert!(g.matches("Susan"));
    }
}
