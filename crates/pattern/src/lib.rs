//! Restricted pattern language over a generalization tree.
//!
//! This crate implements the pattern machinery that underpins pattern
//! functional dependencies (PFDs) as described in *ANMAT: Automatic
//! Knowledge Discovery and Error Detection through Pattern Functional
//! Dependencies* (SIGMOD 2019):
//!
//! * [`SymbolClass`] — the generalization tree of Figure 1 (`\A`, `\LU`,
//!   `\LL`, `\D`, `\S`, literals);
//! * [`Pattern`] — a concatenation of quantified symbol classes (no
//!   alternation, no nested repetition), parsed from / printed to the
//!   paper's textual syntax (e.g. `900\D{2}`, `\LU\LL*\ \A*`);
//! * [`matcher`] — an `O(|s|·|P|)` matching engine with capture-span
//!   recovery;
//! * [`compile`](mod@compile) — patterns compiled to flat bytecode with
//!   precomputed class bitsets (full-UTF-8 via sorted-range spillover),
//!   evaluated by a non-recursive backtracking VM ([`vm`]) directly over
//!   `&str` bytes with SWAR class-run scans ([`scan`]), or — when
//!   compilation proves the pattern backtrack-free — by the fused
//!   single-pass matcher ([`fuse`]); the tier is picked per call via
//!   [`PatternEngine`];
//! * [`containment`] — sound and complete language-inclusion checking
//!   (`P ⊆ P'`) plus least-general generalization of two patterns;
//! * [`induce`](mod@induce) — pattern induction from string samples, the primitive the
//!   discovery algorithm uses to turn inverted-list keys into tableau
//!   patterns;
//! * [`ConstrainedPattern`] — patterns with constrained (annotated)
//!   segments, the `≡_Q` string equivalence, and blocking keys.
//!
//! The language is deliberately small: the paper argues (citing the
//! PSPACE-completeness of general regex equivalence) that a restricted
//! class is easier to specify, discover, apply and reason about, and is
//! sufficient for error detection in practice.
//!
//! # Quick example
//!
//! ```
//! use anmat_pattern::{Pattern, ConstrainedPattern};
//!
//! // λ3 from the paper: zip codes starting with 900.
//! let p: Pattern = "900\\D{2}".parse().unwrap();
//! assert!(p.matches("90001"));
//! assert!(!p.matches("10001"));
//!
//! // λ4's LHS: first name constrained, rest free.
//! let q: ConstrainedPattern = "[\\LU\\LL*\\ ]\\A*".parse().unwrap();
//! assert!(q.equivalent("John Charles", "John Bosco")); // same first name
//! assert!(!q.equivalent("John Charles", "Susan Boyle"));
//! ```

pub mod ast;
pub mod compile;
pub mod constrained;
pub mod containment;
pub mod error;
pub mod fuse;
pub mod induce;
pub mod matcher;
pub mod memo;
pub mod parser;
pub mod scan;
pub mod symbol;
pub mod vm;

pub use ast::{Element, Pattern, Quantifier};
pub use compile::{AsciiSet, ClassSet, CompiledConstrained, CompiledPattern, Op, PatternEngine};
pub use constrained::{ConstrainedPattern, Segment};
pub use containment::{contains, equivalent, generalize_patterns, intersects};
pub use error::PatternError;
pub use induce::{induce, loosen, signature, InduceConfig, PatternLevel};
pub use matcher::{match_pattern, match_spans, MatchSpans};
pub use memo::MatchMemo;
pub use scan::ScanKind;
pub use symbol::SymbolClass;
