//! Pattern induction: learning the least-general pattern covering a sample
//! of strings.
//!
//! Discovery (Figure 2 of the paper) needs to turn the values that share an
//! inverted-list entry into a tableau pattern — e.g. the zip codes
//! `{90001, 90002, 90003}` into `900\D{2}`, or the names
//! `{John Charles, John Bosco}` into `John\ \A*`. This module implements
//! that bottom-up generalization over the tree of Figure 1:
//!
//! 1. each string starts as its literal pattern;
//! 2. strings are folded pairwise with
//!    [`generalize_patterns`](crate::containment::generalize_patterns),
//!    which joins aligned characters in the generalization tree and unions
//!    repetition intervals;
//! 3. an optional *loosening* step widens exact repetition ranges that show
//!    cross-string variance into `+`/`*`, so the learned pattern covers
//!    unseen values of the same shape.
//!
//! [`PatternLevel`] also exposes the fixed per-string generalization ladder
//! (literal → classed-exact → classed-unbounded → `\A*`) that the profiler
//! uses for pattern histograms (Figure 3 of the paper).

use crate::ast::{Element, Pattern, Quantifier};
use crate::containment::generalize_patterns_raw;
use crate::symbol::SymbolClass;
use serde::{Deserialize, Serialize};

/// A rung on the per-string generalization ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PatternLevel {
    /// The string itself, e.g. `John`.
    Literal,
    /// Classes with exact run lengths, e.g. `\LU\LL{3}`.
    ClassExact,
    /// Classes with `+` runs, e.g. `\LU\LL+`.
    ClassUnbounded,
    /// The universal pattern `\A*` (or `\A+` for non-empty strings).
    Any,
}

impl PatternLevel {
    /// All levels, most to least specific.
    pub const ALL: [PatternLevel; 4] = [
        PatternLevel::Literal,
        PatternLevel::ClassExact,
        PatternLevel::ClassUnbounded,
        PatternLevel::Any,
    ];
}

/// The fixed generalization of one string at the given level.
///
/// This is the "pattern signature" the profiler reports: all strings with
/// the same signature at a level are structurally identical at that level.
#[must_use]
pub fn signature(s: &str, level: PatternLevel) -> Pattern {
    match level {
        PatternLevel::Literal => Pattern::literal(s),
        PatternLevel::ClassExact => classed(s, false),
        PatternLevel::ClassUnbounded => classed(s, true),
        PatternLevel::Any => {
            if s.is_empty() {
                Pattern::empty()
            } else {
                Pattern::new(vec![Element::new(SymbolClass::Any, Quantifier::Plus)])
            }
        }
    }
}

fn classed(s: &str, unbounded: bool) -> Pattern {
    let mut out: Vec<Element> = Vec::new();
    for c in s.chars() {
        let class = SymbolClass::class_of(c);
        // Keep symbols literal even at class level: separators like '-', ','
        // carry structure (phone dashes, "Last, First"), and the paper's
        // discovered patterns preserve them.
        let class = if class == SymbolClass::Symbol {
            SymbolClass::Literal(c)
        } else {
            class
        };
        if let Some(last) = out.last_mut() {
            if last.class == class && !class.is_literal() {
                let (min, max) = last.quant.interval();
                last.quant = Quantifier::from_interval(min + 1, max.map(|m| m + 1))
                    .expect("incrementing a valid interval");
                continue;
            }
        }
        out.push(Element::once(class));
    }
    let p = Pattern::new(out);
    if unbounded {
        loosen(&p, 2)
    } else {
        p
    }
}

/// Configuration for [`induce`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InduceConfig {
    /// Cap on the number of distinct strings folded; larger samples are
    /// deterministically truncated (sorted order) to bound cost.
    pub max_samples: usize,
    /// Widen `Range`/large-`Exactly` repetitions into `+`/`*` after folding,
    /// so the pattern covers unseen same-shape values.
    pub loosen: bool,
    /// `Exactly(n)` with `n >= loosen_threshold` becomes `+` when
    /// loosening; smaller exact counts are structural (e.g. `\D{2}` in a
    /// zip suffix) and kept.
    pub loosen_threshold: u32,
}

impl Default for InduceConfig {
    fn default() -> Self {
        InduceConfig {
            max_samples: 64,
            loosen: false,
            loosen_threshold: 2,
        }
    }
}

/// Induce the least-general pattern (within alignment) covering `strings`.
///
/// Returns [`Pattern::empty`] for an empty sample. The fold order is
/// deterministic (sorted, deduplicated sample).
#[must_use]
pub fn induce(strings: &[&str], config: &InduceConfig) -> Pattern {
    let mut sample: Vec<&str> = strings.to_vec();
    sample.sort_unstable();
    sample.dedup();
    // Cap the sample by striding evenly across the sorted list. A plain
    // prefix truncation would bias toward lexicographically small strings
    // (e.g. every sampled suffix of an id column starting `-1-…`), making
    // shared leading characters look constant when they are not.
    if sample.len() > config.max_samples && config.max_samples > 0 {
        let stride = sample.len() as f64 / config.max_samples as f64;
        sample = (0..config.max_samples)
            .map(|i| sample[((i as f64 * stride) as usize).min(sample.len() - 1)])
            .collect();
    }
    let mut iter = sample.iter();
    let Some(first) = iter.next() else {
        return Pattern::empty();
    };
    // Fold with the *raw* (unnormalized) generalization so per-character
    // alignment granularity survives across iterations.
    let mut acc = Pattern::literal(first);
    for s in iter {
        acc = generalize_patterns_raw(&acc, &Pattern::literal(s));
    }
    // Normalize BEFORE loosening: merging happens on exact intervals
    // (`\LL\LL\LL\LL{0,1}` → `\LL{3,4}`), and only then do variance-showing
    // ranges widen to `+`/`*`. The reverse order would widen the trailing
    // optional first and merge into an ugly `\LL{3,}`.
    acc = acc.normalized();
    if config.loosen {
        acc = loosen(&acc, config.loosen_threshold);
    }
    acc
}

/// Widen repetition intervals that show variance into `+` / `*`.
///
/// * `Range(0, _)` → `*`; `Range(a>0, _)` → `+`;
/// * `Exactly(n)` with `n >= threshold` → `+` (only for non-literal
///   classes — literal runs stay exact);
/// * *optional literals* (minimum 0, produced by gap alignments like
///   `Charles ⊔ Bosco`) generalize to their interior class, so they merge
///   with neighbouring class runs instead of littering the pattern with
///   `h*a*`;
/// * everything else unchanged.
///
/// Runs to fixpoint (widening can expose new merges, e.g.
/// `\LL*\LL{4}` → `\LL{4,}` → `\LL+`).
#[must_use]
pub fn loosen(p: &Pattern, threshold: u32) -> Pattern {
    let mut current = p.clone();
    for _ in 0..4 {
        let next = loosen_once(&current, threshold);
        if next == current {
            break;
        }
        current = next;
    }
    current
}

fn loosen_once(p: &Pattern, threshold: u32) -> Pattern {
    let elements = p
        .elements()
        .iter()
        .map(|e| {
            // An optional literal came from a gap: some sample strings
            // lack the character entirely, so the literal identity is not
            // load-bearing — generalize it to its class.
            let class = match (e.class, e.quant.interval().0) {
                (SymbolClass::Literal(c), 0) => SymbolClass::class_of(c),
                (class, _) => class,
            };
            let quant = match e.quant {
                Quantifier::Range(0, _) => Quantifier::Star,
                Quantifier::Range(_, _) => Quantifier::Plus,
                Quantifier::AtLeast(0) => Quantifier::Star,
                Quantifier::AtLeast(_) => Quantifier::Plus,
                Quantifier::Exactly(n) if n >= threshold && !class.is_literal() => Quantifier::Plus,
                q => q,
            };
            Element::new(class, quant)
        })
        .collect();
    Pattern::new(elements).normalized()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ind(strings: &[&str]) -> Pattern {
        induce(strings, &InduceConfig::default())
    }

    #[test]
    fn signature_literal() {
        assert_eq!(
            signature("ab", PatternLevel::Literal),
            Pattern::literal("ab")
        );
    }

    #[test]
    fn signature_class_exact() {
        let p = signature("John", PatternLevel::ClassExact);
        assert_eq!(p.to_string(), "\\LU\\LL{3}");
        let p = signature("90001", PatternLevel::ClassExact);
        assert_eq!(p.to_string(), "\\D{5}");
    }

    #[test]
    fn signature_keeps_symbols_literal() {
        let p = signature("555-1234", PatternLevel::ClassExact);
        assert_eq!(p.to_string(), "\\D{3}-\\D{4}");
        let p = signature("Jones, Stacey", PatternLevel::ClassExact);
        assert_eq!(p.to_string(), "\\LU\\LL{4},\\ \\LU\\LL{5}");
    }

    #[test]
    fn signature_class_unbounded() {
        let p = signature("John", PatternLevel::ClassUnbounded);
        assert_eq!(p.to_string(), "\\LU\\LL+");
        // Single chars stay exact (below the loosen threshold).
        let p = signature("A1", PatternLevel::ClassUnbounded);
        assert_eq!(p.to_string(), "\\LU\\D");
    }

    #[test]
    fn signature_any() {
        assert_eq!(signature("abc", PatternLevel::Any).to_string(), "\\A+");
        assert!(signature("", PatternLevel::Any).is_empty());
    }

    #[test]
    fn signature_matches_own_string() {
        for s in ["John Charles", "90001", "F-9-107", "CHEMBL25"] {
            for level in PatternLevel::ALL {
                assert!(
                    signature(s, level).matches(s),
                    "signature({s}, {level:?}) must match {s}"
                );
            }
        }
    }

    #[test]
    fn induce_singleton_is_literal() {
        let p = ind(&["90001"]);
        assert_eq!(p, Pattern::literal("90001").normalized());
    }

    #[test]
    fn induce_zip_codes_paper_shape() {
        // Table 2: 90001–90003 share the 900 prefix.
        let p = ind(&["90001", "90002", "90003"]);
        assert!(p.matches("90001"));
        assert!(p.matches("90004")); // generalizes the varying suffix
        assert!(!p.matches("10001")); // keeps the literal prefix
        assert!(!p.matches("900012"));
    }

    #[test]
    fn induce_empty_sample() {
        assert!(ind(&[]).is_empty());
    }

    #[test]
    fn induce_covers_all_inputs() {
        let strings = ["John Charles", "John Bosco", "Susan Orlean", "Susan Boyle"];
        let p = ind(&strings);
        for s in strings {
            assert!(p.matches(s), "{p} should match {s}");
        }
    }

    #[test]
    fn induce_first_name_shared_prefix() {
        let p = ind(&["John Charles", "John Bosco"]);
        assert!(p.matches("John Charles"));
        assert!(p.matches("John Bosco"));
        assert!(!p.matches("Susan Boyle"), "{p} should keep the John prefix");
        // Covering *unseen* values of the same shape needs loosening.
        let cfg = InduceConfig {
            loosen: true,
            ..InduceConfig::default()
        };
        let l = induce(&["John Charles", "John Bosco"], &cfg);
        assert!(l.matches("John Albert"), "{l} should cover unseen names");
        assert!(!l.matches("Susan Boyle"), "{l} should keep the John prefix");
    }

    #[test]
    fn induce_dedups_and_is_deterministic() {
        let a = ind(&["90002", "90001", "90001", "90003"]);
        let b = ind(&["90001", "90003", "90002"]);
        assert_eq!(a, b);
    }

    #[test]
    fn loosen_widens_ranges() {
        let p: Pattern = "\\D{2,5}\\LL{4}x{3}".parse().unwrap();
        let l = loosen(&p, 2);
        assert_eq!(l.to_string(), "\\D+\\LL+x{3}");
    }

    #[test]
    fn induce_with_loosening() {
        let cfg = InduceConfig {
            loosen: true,
            ..InduceConfig::default()
        };
        let p = induce(&["Holloway, Donald E.", "Kimbell, Donald"], &cfg);
        assert!(p.matches("Holloway, Donald E."));
        assert!(p.matches("Kimbell, Donald"));
        // Should also cover a new last name with the same shape.
        assert!(p.matches("Mallack, Donald"), "{p}");
    }

    #[test]
    fn induce_respects_max_samples() {
        let strings: Vec<String> = (0..200).map(|i| format!("{i:05}")).collect();
        let refs: Vec<&str> = strings.iter().map(String::as_str).collect();
        let cfg = InduceConfig {
            max_samples: 16,
            ..InduceConfig::default()
        };
        let p = induce(&refs, &cfg);
        assert!(!p.is_empty());
    }
}
