//! Matching engine for the restricted pattern language.
//!
//! Because the language has no alternation and no nested repetition, a
//! pattern is a *chain* of counted character classes, and matching reduces
//! to dynamic programming over (element index, string position) pairs:
//! `O(|P| · |s| · r)` where `r` is bounded by the longest character run —
//! in practice linear in the attribute-value length.
//!
//! [`match_pattern`] answers the boolean question `s ⊨ P`.
//! [`match_spans`] additionally recovers *which* substring each element
//! consumed, under **leftmost-greedy** semantics (each element takes the
//! longest repetition that still lets the rest of the pattern match). The
//! spans are what [`ConstrainedPattern`](crate::ConstrainedPattern) uses to
//! extract constrained captures — e.g. pulling `John` out of
//! `John Charles` for `[\LU\LL*\ ]\A*`.

use crate::ast::Pattern;
use std::cell::RefCell;

thread_local! {
    /// Decoded-character scratch for the `&str` entry points; reused
    /// across evaluations so the interpreter only allocates on growth.
    static CHAR_BUF: RefCell<Vec<char>> = const { RefCell::new(Vec::new()) };
    /// `reachable` / `next` DP rows for [`match_chars`].
    static DP_BUF: RefCell<(Vec<bool>, Vec<bool>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
    /// Flattened `ok[j][i]` table for [`match_spans_chars`].
    static OK_BUF: RefCell<Vec<bool>> = const { RefCell::new(Vec::new()) };
}

/// The substring consumed by each pattern element in one concrete parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchSpans {
    /// Per element: `(start, end)` character (not byte) indices, half-open.
    ///
    /// `spans.len() == pattern.len()`; a zero-repetition element yields an
    /// empty span at its position.
    pub spans: Vec<(usize, usize)>,
}

impl MatchSpans {
    /// Extract the substring for element `idx` from the original string.
    ///
    /// `chars` must be the same character sequence the spans were computed
    /// from.
    #[must_use]
    pub fn slice<'s>(&self, chars: &'s [char], idx: usize) -> Option<&'s [char]> {
        let (a, b) = *self.spans.get(idx)?;
        chars.get(a..b)
    }
}

/// Does `s` match `pattern` in full? (Anchored at both ends.)
#[must_use]
pub fn match_pattern(pattern: &Pattern, s: &str) -> bool {
    CHAR_BUF.with(|buf| {
        let chars = &mut *buf.borrow_mut();
        chars.clear();
        chars.extend(s.chars());
        match_chars(pattern, chars)
    })
}

/// [`match_pattern`] over a pre-decoded character slice.
#[must_use]
pub fn match_chars(pattern: &Pattern, chars: &[char]) -> bool {
    let n = chars.len();
    // Quick length screen.
    if n < pattern.min_len() {
        return false;
    }
    if let Some(max) = pattern.max_len() {
        if n > max {
            return false;
        }
    }
    // reachable[i] = the first `j` processed elements can consume exactly i chars.
    DP_BUF.with(|buf| {
        let (reachable, next) = &mut *buf.borrow_mut();
        reachable.clear();
        reachable.resize(n + 1, false);
        reachable[0] = true;
        next.clear();
        next.resize(n + 1, false);
        for e in pattern.elements() {
            let (min, max) = e.quant.interval();
            let min = min as usize;
            next.iter_mut().for_each(|b| *b = false);
            let mut any = false;
            for i in 0..=n {
                if !reachable[i] {
                    continue;
                }
                // Extend the run of matching characters from i.
                let limit = match max {
                    Some(m) => (m as usize).min(n - i),
                    None => n - i,
                };
                let mut k = 0;
                if min == 0 {
                    next[i] = true;
                    any = true;
                }
                while k < limit {
                    if !e.class.matches(chars[i + k]) {
                        break;
                    }
                    k += 1;
                    if k >= min {
                        next[i + k] = true;
                        any = true;
                    }
                }
            }
            std::mem::swap(reachable, next);
            if !any {
                return false;
            }
        }
        reachable[n]
    })
}

/// Match and recover per-element spans under leftmost-greedy semantics.
///
/// Returns `None` if `s` does not match.
#[must_use]
pub fn match_spans(pattern: &Pattern, s: &str) -> Option<MatchSpans> {
    CHAR_BUF.with(|buf| {
        let chars = &mut *buf.borrow_mut();
        chars.clear();
        chars.extend(s.chars());
        match_spans_chars(pattern, chars)
    })
}

/// [`match_spans`] over a pre-decoded character slice.
#[must_use]
pub fn match_spans_chars(pattern: &Pattern, chars: &[char]) -> Option<MatchSpans> {
    let n = chars.len();
    let m = pattern.len();
    if n < pattern.min_len() {
        return None;
    }
    if let Some(max) = pattern.max_len() {
        if n > max {
            return None;
        }
    }
    // ok[j][i] = elements j.. can consume exactly chars[i..], flattened
    // into reused scratch as ok[j * (n + 1) + i]. Built backwards so the
    // forward greedy walk can consult it.
    let stride = n + 1;
    OK_BUF.with(|buf| {
        let ok = &mut *buf.borrow_mut();
        ok.clear();
        ok.resize((m + 1) * stride, false);
        ok[m * stride + n] = true;
        for j in (0..m).rev() {
            let e = pattern.elements()[j];
            let (min, max) = e.quant.interval();
            let min = min as usize;
            for i in (0..=n).rev() {
                let limit = match max {
                    Some(mx) => (mx as usize).min(n - i),
                    None => n - i,
                };
                let mut k = 0;
                if min == 0 && ok[(j + 1) * stride + i] {
                    ok[j * stride + i] = true;
                }
                while k < limit {
                    if !e.class.matches(chars[i + k]) {
                        break;
                    }
                    k += 1;
                    if k >= min && ok[(j + 1) * stride + i + k] {
                        ok[j * stride + i] = true;
                        // Greedy reconstruction scans separately; reachability
                        // just needs any witness.
                    }
                }
            }
        }
        if !ok[0] {
            return None;
        }
        // Forward greedy walk: each element takes the longest k that keeps the
        // suffix matchable.
        let mut spans = Vec::with_capacity(m);
        let mut i = 0usize;
        for (j, e) in pattern.elements().iter().enumerate() {
            let (min, max) = e.quant.interval();
            let min = min as usize;
            let limit = match max {
                Some(mx) => (mx as usize).min(n - i),
                None => n - i,
            };
            // Longest run of matching chars from i.
            let mut run = 0;
            while run < limit && e.class.matches(chars[i + run]) {
                run += 1;
            }
            let mut chosen = None;
            let mut k = run;
            loop {
                if k >= min && ok[(j + 1) * stride + i + k] {
                    chosen = Some(k);
                    break;
                }
                if k == 0 {
                    break;
                }
                k -= 1;
            }
            let k = chosen?; // ok[0][0] held, so a witness must exist
            spans.push((i, i + k));
            i += k;
        }
        debug_assert_eq!(i, n);
        Some(MatchSpans { spans })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Pattern;

    fn pat(s: &str) -> Pattern {
        s.parse().unwrap()
    }

    #[test]
    fn literal_match() {
        let p = Pattern::literal("90001");
        assert!(match_pattern(&p, "90001"));
        assert!(!match_pattern(&p, "90002"));
        assert!(!match_pattern(&p, "9000"));
        assert!(!match_pattern(&p, "900010"));
    }

    #[test]
    fn paper_example1() {
        // 90001 ⊨ \D{5} and 90001 ⊨ \D*.
        assert!(match_pattern(&pat("\\D{5}"), "90001"));
        assert!(match_pattern(&pat("\\D*"), "90001"));
        assert!(match_pattern(&pat("\\D*"), ""));
        assert!(!match_pattern(&pat("\\D{5}"), "9000"));
    }

    #[test]
    fn zip_prefix_pattern() {
        let p = pat("900\\D{2}");
        assert!(match_pattern(&p, "90001"));
        assert!(match_pattern(&p, "90099"));
        assert!(!match_pattern(&p, "90100"));
        assert!(!match_pattern(&p, "900012"));
    }

    #[test]
    fn name_pattern() {
        let p = pat("\\LU\\LL*\\ \\A*");
        assert!(match_pattern(&p, "John Charles"));
        assert!(match_pattern(&p, "Susan Orlean"));
        assert!(match_pattern(&p, "A B"));
        assert!(!match_pattern(&p, "JOHN Charles")); // second char upper
        assert!(!match_pattern(&p, "John")); // no space
    }

    #[test]
    fn empty_pattern_matches_only_empty() {
        let p = Pattern::empty();
        assert!(match_pattern(&p, ""));
        assert!(!match_pattern(&p, "a"));
    }

    #[test]
    fn star_backoff_required() {
        // \A*a needs the star to stop before the final 'a'.
        let p = pat("\\A*a");
        assert!(match_pattern(&p, "bbba"));
        assert!(match_pattern(&p, "a"));
        assert!(match_pattern(&p, "aaa"));
        assert!(!match_pattern(&p, "ab"));
    }

    #[test]
    fn adjacent_overlapping_classes() {
        // \LL+\LL+ requires at least two lowercase letters.
        let p = pat("\\LL+\\LL+");
        assert!(!match_pattern(&p, "a"));
        assert!(match_pattern(&p, "ab"));
        assert!(match_pattern(&p, "abcdef"));
    }

    #[test]
    fn range_quantifier() {
        let p = pat("\\D{2,4}");
        assert!(!match_pattern(&p, "1"));
        assert!(match_pattern(&p, "12"));
        assert!(match_pattern(&p, "1234"));
        assert!(!match_pattern(&p, "12345"));
    }

    #[test]
    fn spans_greedy_star() {
        let p = pat("\\A*a");
        let spans = match_spans(&p, "bbba").unwrap();
        assert_eq!(spans.spans, vec![(0, 3), (3, 4)]);
        // Greedy: with "aaa", \A* takes the first two.
        let spans = match_spans(&p, "aaa").unwrap();
        assert_eq!(spans.spans, vec![(0, 2), (2, 3)]);
    }

    #[test]
    fn spans_first_name_capture() {
        // The λ4 LHS segmentation: \LU\LL*\  then \A*.
        let p = pat("\\LU\\LL*\\ \\A*");
        let s = "John Charles";
        let chars: Vec<char> = s.chars().collect();
        let spans = match_spans(&p, s).unwrap();
        // Elements: \LU, \LL*, ' ', \A*
        assert_eq!(spans.spans.len(), 4);
        let first: String = spans.slice(&chars, 0).unwrap().iter().collect();
        let rest: String = spans.slice(&chars, 1).unwrap().iter().collect();
        assert_eq!(first, "J");
        assert_eq!(rest, "ohn");
        let tail: String = spans.slice(&chars, 3).unwrap().iter().collect();
        assert_eq!(tail, "Charles");
    }

    #[test]
    fn spans_zero_width_elements() {
        let p = pat("a*b*c");
        let spans = match_spans(&p, "c").unwrap();
        assert_eq!(spans.spans, vec![(0, 0), (0, 0), (0, 1)]);
    }

    #[test]
    fn spans_none_on_mismatch() {
        assert!(match_spans(&pat("\\D+"), "12a").is_none());
    }

    #[test]
    fn spans_concat_is_partition() {
        let p = pat("\\LU+\\LL+\\D{2}");
        let s = "ABcd12";
        let spans = match_spans(&p, s).unwrap();
        let mut pos = 0;
        for (a, b) in &spans.spans {
            assert_eq!(*a, pos);
            pos = *b;
        }
        assert_eq!(pos, s.chars().count());
    }

    #[test]
    fn unicode_safe() {
        let p = pat("\\LU\\LL+");
        assert!(match_pattern(&p, "Étienne"));
        let spans = match_spans(&p, "Étienne").unwrap();
        assert_eq!(spans.spans, vec![(0, 1), (1, 7)]);
    }

    #[test]
    fn symbol_class_matches_punctuation() {
        let p = pat("\\D{3}\\S\\D{4}");
        assert!(match_pattern(&p, "555-1234"));
        assert!(match_pattern(&p, "555 1234"));
        assert!(!match_pattern(&p, "55511234"));
    }
}
