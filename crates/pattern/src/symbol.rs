//! The generalization tree (Figure 1 of the paper).
//!
//! The tree is defined over an alphabet `Σ`: each leaf is a character, each
//! intermediate node generalizes its children. The interior levels are
//! upper-case letters (`\LU`), lower-case letters (`\LL`), digits (`\D`) and
//! other symbols (`\S`); the root `\A` matches any character. The empty
//! string `ϵ` is represented at the [`crate::Quantifier`] level (a zero
//! minimum), not as a symbol class.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A node of the generalization tree.
///
/// `Literal(c)` is a leaf; `Upper`/`Lower`/`Digit`/`Symbol` are the four
/// interior classes; `Any` is the root. The partial order "is generalized
/// by" is exposed through [`SymbolClass::subsumes`] and least upper bounds
/// through [`SymbolClass::join`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SymbolClass {
    /// A concrete character (a leaf of the tree).
    Literal(char),
    /// Any upper-case letter, written `\LU`.
    Upper,
    /// Any lower-case letter, written `\LL`.
    Lower,
    /// Any decimal digit, written `\D`.
    Digit,
    /// Any non-alphanumeric character (punctuation, whitespace…), written `\S`.
    Symbol,
    /// Any character at all — the root of the tree, written `\A`.
    Any,
}

impl SymbolClass {
    /// The interior class a concrete character belongs to.
    ///
    /// This is the immediate parent of the leaf `Literal(c)` in the
    /// generalization tree.
    #[must_use]
    pub fn class_of(c: char) -> SymbolClass {
        if c.is_ascii_uppercase() || (c.is_alphabetic() && c.is_uppercase()) {
            SymbolClass::Upper
        } else if c.is_ascii_lowercase() || (c.is_alphabetic() && c.is_lowercase()) {
            SymbolClass::Lower
        } else if c.is_ascii_digit() {
            SymbolClass::Digit
        } else {
            SymbolClass::Symbol
        }
    }

    /// Does this class match the character `c`?
    #[must_use]
    pub fn matches(&self, c: char) -> bool {
        match self {
            SymbolClass::Literal(l) => *l == c,
            SymbolClass::Any => true,
            class => SymbolClass::class_of(c) == *class,
        }
    }

    /// The parent node in the generalization tree, or `None` for the root.
    #[must_use]
    pub fn parent(&self) -> Option<SymbolClass> {
        match self {
            SymbolClass::Literal(c) => Some(SymbolClass::class_of(*c)),
            SymbolClass::Any => None,
            _ => Some(SymbolClass::Any),
        }
    }

    /// Depth in the tree: root `\A` has depth 0, interior classes depth 1,
    /// literals depth 2.
    #[must_use]
    pub fn depth(&self) -> u8 {
        match self {
            SymbolClass::Any => 0,
            SymbolClass::Literal(_) => 2,
            _ => 1,
        }
    }

    /// Iterator over `self` and all its ancestors up to the root.
    pub fn ancestors(&self) -> impl Iterator<Item = SymbolClass> {
        let mut cur = Some(*self);
        std::iter::from_fn(move || {
            let out = cur;
            cur = cur.and_then(|c| c.parent());
            out
        })
    }

    /// Is every string matched by `other` also matched by `self`?
    ///
    /// I.e. `other` is a descendant-or-self of `self` in the tree.
    #[must_use]
    pub fn subsumes(&self, other: &SymbolClass) -> bool {
        if self == other {
            return true;
        }
        other.ancestors().any(|a| a == *self)
    }

    /// Least upper bound (least common ancestor) of two classes.
    #[must_use]
    pub fn join(&self, other: &SymbolClass) -> SymbolClass {
        if self.subsumes(other) {
            return *self;
        }
        if other.subsumes(self) {
            return *other;
        }
        // Walk up from `self` until we find an ancestor subsuming `other`.
        self.ancestors()
            .find(|a| a.subsumes(other))
            .unwrap_or(SymbolClass::Any)
    }

    /// Greatest lower bound, if the two classes are comparable.
    ///
    /// The tree has no non-trivial meets between siblings, so this returns
    /// `None` exactly when neither subsumes the other.
    #[must_use]
    pub fn meet(&self, other: &SymbolClass) -> Option<SymbolClass> {
        if self.subsumes(other) {
            Some(*other)
        } else if other.subsumes(self) {
            Some(*self)
        } else {
            None
        }
    }

    /// Is this one of the four interior classes (not a literal, not `\A`)?
    #[must_use]
    pub fn is_interior(&self) -> bool {
        matches!(
            self,
            SymbolClass::Upper | SymbolClass::Lower | SymbolClass::Digit | SymbolClass::Symbol
        )
    }

    /// Is this a leaf (concrete character)?
    #[must_use]
    pub fn is_literal(&self) -> bool {
        matches!(self, SymbolClass::Literal(_))
    }
}

impl fmt::Display for SymbolClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymbolClass::Literal(c) => match c {
                '\\' => write!(f, "\\\\"),
                ' ' => write!(f, "\\ "),
                '{' => write!(f, "\\{{"),
                '}' => write!(f, "\\}}"),
                '*' => write!(f, "\\*"),
                '+' => write!(f, "\\+"),
                '[' => write!(f, "\\["),
                ']' => write!(f, "\\]"),
                c => write!(f, "{c}"),
            },
            SymbolClass::Upper => write!(f, "\\LU"),
            SymbolClass::Lower => write!(f, "\\LL"),
            SymbolClass::Digit => write!(f, "\\D"),
            SymbolClass::Symbol => write!(f, "\\S"),
            SymbolClass::Any => write!(f, "\\A"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_of_basic() {
        assert_eq!(SymbolClass::class_of('A'), SymbolClass::Upper);
        assert_eq!(SymbolClass::class_of('z'), SymbolClass::Lower);
        assert_eq!(SymbolClass::class_of('7'), SymbolClass::Digit);
        assert_eq!(SymbolClass::class_of('-'), SymbolClass::Symbol);
        assert_eq!(SymbolClass::class_of(' '), SymbolClass::Symbol);
        assert_eq!(SymbolClass::class_of(','), SymbolClass::Symbol);
    }

    #[test]
    fn class_of_unicode() {
        assert_eq!(SymbolClass::class_of('É'), SymbolClass::Upper);
        assert_eq!(SymbolClass::class_of('é'), SymbolClass::Lower);
    }

    #[test]
    fn matches_literal_and_classes() {
        assert!(SymbolClass::Literal('a').matches('a'));
        assert!(!SymbolClass::Literal('a').matches('b'));
        assert!(SymbolClass::Upper.matches('Q'));
        assert!(!SymbolClass::Upper.matches('q'));
        assert!(SymbolClass::Digit.matches('0'));
        assert!(SymbolClass::Symbol.matches('.'));
        assert!(SymbolClass::Any.matches('x'));
        assert!(SymbolClass::Any.matches('#'));
    }

    #[test]
    fn parent_chain() {
        assert_eq!(SymbolClass::Literal('a').parent(), Some(SymbolClass::Lower));
        assert_eq!(SymbolClass::Lower.parent(), Some(SymbolClass::Any));
        assert_eq!(SymbolClass::Any.parent(), None);
    }

    #[test]
    fn depth_levels() {
        assert_eq!(SymbolClass::Any.depth(), 0);
        assert_eq!(SymbolClass::Digit.depth(), 1);
        assert_eq!(SymbolClass::Literal('3').depth(), 2);
    }

    #[test]
    fn ancestors_of_literal() {
        let v: Vec<_> = SymbolClass::Literal('5').ancestors().collect();
        assert_eq!(
            v,
            vec![
                SymbolClass::Literal('5'),
                SymbolClass::Digit,
                SymbolClass::Any
            ]
        );
    }

    #[test]
    fn subsumption_reflexive_and_tree_order() {
        let digit5 = SymbolClass::Literal('5');
        assert!(digit5.subsumes(&digit5));
        assert!(SymbolClass::Digit.subsumes(&digit5));
        assert!(SymbolClass::Any.subsumes(&digit5));
        assert!(!digit5.subsumes(&SymbolClass::Digit));
        assert!(!SymbolClass::Upper.subsumes(&SymbolClass::Lower));
    }

    #[test]
    fn join_siblings_is_root() {
        assert_eq!(
            SymbolClass::Upper.join(&SymbolClass::Digit),
            SymbolClass::Any
        );
        assert_eq!(
            SymbolClass::Literal('a').join(&SymbolClass::Literal('b')),
            SymbolClass::Lower
        );
        assert_eq!(
            SymbolClass::Literal('a').join(&SymbolClass::Literal('A')),
            SymbolClass::Any
        );
        assert_eq!(
            SymbolClass::Literal('a').join(&SymbolClass::Literal('a')),
            SymbolClass::Literal('a')
        );
    }

    #[test]
    fn meet_comparable_only() {
        assert_eq!(
            SymbolClass::Digit.meet(&SymbolClass::Literal('3')),
            Some(SymbolClass::Literal('3'))
        );
        assert_eq!(SymbolClass::Upper.meet(&SymbolClass::Lower), None);
        assert_eq!(
            SymbolClass::Any.meet(&SymbolClass::Symbol),
            Some(SymbolClass::Symbol)
        );
    }

    #[test]
    fn display_escapes() {
        assert_eq!(SymbolClass::Upper.to_string(), "\\LU");
        assert_eq!(SymbolClass::Literal(' ').to_string(), "\\ ");
        assert_eq!(SymbolClass::Literal('x').to_string(), "x");
        assert_eq!(SymbolClass::Literal('*').to_string(), "\\*");
    }
}
