//! SWAR-accelerated class-run scans.
//!
//! The innermost loop of both the bytecode VM ([`crate::vm`]) and the
//! fused matcher ([`crate::fuse`]) is "how many consecutive bytes from
//! position `p` belong to this class?". PR 7 answered it one byte at a
//! time against the 128-bit [`AsciiSet`]; this module answers it **8
//! bytes per step** with u64 word tricks (SWAR — SIMD Within A
//! Register, `memchr`-style, no external crates, no `unsafe`).
//!
//! The trick is that every class the pattern language can produce has a
//! word-testable shape, classified once at [`AsciiSet`] construction
//! into a [`ScanKind`]:
//!
//! * `\D` / `\LU` / `\LL` are **contiguous byte ranges** — membership of
//!   all 8 lanes is two masked adds (the carryless `x + (0x80 - lo)`
//!   range test) and an and;
//! * a literal is a **single byte** — one xor + an exact zero-lane test;
//! * `\S` is the **complement of the three alphanumeric ranges** — three
//!   range tests or'd and inverted;
//! * `\A` matches **every ASCII byte** — only the high bits are tested.
//!
//! Bytes ≥ 0x80 never belong to any set at the byte level (they are
//! UTF-8 lead/continuation bytes); every kernel treats the high bit as
//! an automatic mismatch, so a scan stops exactly at the first non-ASCII
//! byte and the caller's character-level logic (the spillover path in
//! [`crate::compile::ClassSet`]) takes over. The first mismatching lane
//! is recovered with `trailing_zeros` on the little-endian lane order —
//! no per-byte re-check.
//!
//! `run_len_scalar` keeps the PR 7 per-byte loop alive as the measured
//! baseline for the fig3 field-length sweep (and the fallback for the
//! `Generic` kind, which `of_class` never actually produces).

use crate::compile::AsciiSet;

/// The word-testable shape of an [`AsciiSet`], precomputed at
/// construction so the scan dispatch is one `match` on a `Copy` enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanKind {
    /// No byte matches (e.g. the set of a non-ASCII literal).
    Empty,
    /// Every ASCII byte matches (`\A`).
    All,
    /// Exactly one byte matches (an ASCII literal).
    Byte(u8),
    /// A contiguous inclusive byte range (`\D`, `\LU`, `\LL`).
    Range(u8, u8),
    /// The complement of the digit/upper/lower ranges within ASCII (`\S`).
    NotAlnum,
    /// Anything else: scanned with the per-byte bitset loop.
    Generic,
}

/// Classify raw membership bits into a [`ScanKind`]. Called once per set
/// at compile time.
pub(crate) fn classify(bits: &[u64; 2]) -> ScanKind {
    let count = bits[0].count_ones() + bits[1].count_ones();
    if count == 0 {
        return ScanKind::Empty;
    }
    if count == 128 {
        return ScanKind::All;
    }
    let lo = if bits[0] != 0 {
        bits[0].trailing_zeros() as u8
    } else {
        64 + bits[1].trailing_zeros() as u8
    };
    let hi = if bits[1] != 0 {
        127 - bits[1].leading_zeros() as u8
    } else {
        63 - bits[0].leading_zeros() as u8
    };
    if u32::from(hi - lo) + 1 == count {
        return if count == 1 {
            ScanKind::Byte(lo)
        } else {
            ScanKind::Range(lo, hi)
        };
    }
    // \S = ASCII minus digits, uppers, lowers.
    let mut symbol = [!0u64, !0u64];
    for range in [(b'0', b'9'), (b'A', b'Z'), (b'a', b'z')] {
        for b in range.0..=range.1 {
            symbol[usize::from(b >> 6)] &= !(1u64 << (b & 63));
        }
    }
    if *bits == symbol {
        return ScanKind::NotAlnum;
    }
    ScanKind::Generic
}

const LANES_LO: u64 = 0x0101_0101_0101_0101;
const LANES_HI: u64 = 0x8080_8080_8080_8080;

/// Broadcast one byte into all 8 lanes.
#[inline]
const fn splat(b: u8) -> u64 {
    LANES_LO * b as u64
}

/// Per-lane high-bit mask: set iff the lane's byte is in `[lo, hi]` *and*
/// ASCII. The masked adds cannot carry across lanes: every lane operand
/// is ≤ 0x7f and every addend ≤ 0x80, so each lane sum stays ≤ 0xff.
#[inline]
fn range_mask(x: u64, lo: u8, hi: u8) -> u64 {
    let x7 = x & !LANES_HI;
    let ge_lo = (x7 + splat(0x80 - lo)) & LANES_HI;
    let gt_hi = (x7 + splat(0x7f - hi)) & LANES_HI;
    ge_lo & !gt_hi & !(x & LANES_HI)
}

/// Per-lane high-bit mask: set iff the lane's byte equals `b` exactly.
/// Unlike the classic `haszero` trick this is borrow-free, so *every*
/// lane is exact, not just the first zero.
#[inline]
fn eq_mask(x: u64, b: u8) -> u64 {
    let y = x ^ splat(b);
    // Lane is nonzero iff its low 7 bits are nonzero or its high bit is.
    let nonzero = (((y & !LANES_HI) + !LANES_HI) | y) & LANES_HI;
    !nonzero & LANES_HI
}

/// Per-lane match mask for one `kind`, high bit set on matching lanes.
#[inline]
fn match_mask(kind: ScanKind, x: u64) -> u64 {
    match kind {
        ScanKind::Empty => 0,
        ScanKind::All => !x & LANES_HI,
        ScanKind::Byte(b) => eq_mask(x, b),
        ScanKind::Range(lo, hi) => range_mask(x, lo, hi),
        ScanKind::NotAlnum => {
            let alnum =
                range_mask(x, b'0', b'9') | range_mask(x, b'A', b'Z') | range_mask(x, b'a', b'z');
            !alnum & !x & LANES_HI
        }
        // Unreachable from `of_class`; handled by the caller's scalar path.
        ScanKind::Generic => 0,
    }
}

/// The PR 7 per-byte scan: longest run of `set`-matching ASCII bytes
/// from `pos`, capped at `limit` bytes. Kept as the measured baseline
/// for the fig3 field-length sweep and as the `Generic` fallback.
#[inline]
#[must_use]
pub fn run_len_scalar(set: &AsciiSet, bytes: &[u8], pos: usize, limit: usize) -> usize {
    let mut k = 0;
    while k < limit {
        let b = bytes[pos + k];
        if b >= 0x80 || !set.contains(b) {
            break;
        }
        k += 1;
    }
    k
}

/// The word loop behind [`run_len`], monomorphized per [`ScanKind`] so
/// the per-word mask is branchless straight-line code: four unrolled
/// words (32 bytes) per step while the run persists, then word by word,
/// then a scalar tail. `mask` returns the per-lane *match* mask for one
/// little-endian word.
#[inline(always)]
fn run_words(
    set: &AsciiSet,
    mask: impl Fn(u64) -> u64,
    bytes: &[u8],
    pos: usize,
    end: usize,
) -> usize {
    #[inline(always)]
    fn load(bytes: &[u8], p: usize) -> u64 {
        u64::from_le_bytes(bytes[p..p + 8].try_into().unwrap())
    }
    let mut p = pos;
    while p + 32 <= end {
        let miss = (mask(load(bytes, p))
            & mask(load(bytes, p + 8))
            & mask(load(bytes, p + 16))
            & mask(load(bytes, p + 24)))
            ^ LANES_HI;
        if miss != 0 {
            // The first mismatch is somewhere in this block; the word
            // loop below pins it down.
            break;
        }
        p += 32;
    }
    while p + 8 <= end {
        let miss = mask(load(bytes, p)) ^ LANES_HI;
        if miss != 0 {
            // Little-endian: the lowest set lane is the first mismatch.
            return p + (miss.trailing_zeros() as usize) / 8 - pos;
        }
        p += 8;
    }
    p - pos + run_len_scalar(set, bytes, p, end - p)
}

/// Longest run of `set`-matching ASCII bytes from `pos`, capped at
/// `limit` bytes, 8 (up to 32) bytes per step. Bytes ≥ 0x80 always
/// terminate the run (the UTF-8 spillover path decides about them
/// character-wise).
#[inline]
#[must_use]
pub fn run_len(set: &AsciiSet, bytes: &[u8], pos: usize, limit: usize) -> usize {
    let end = pos + limit;
    debug_assert!(end <= bytes.len());
    match set.kind() {
        ScanKind::Empty => 0,
        ScanKind::All => run_words(set, |x| !x & LANES_HI, bytes, pos, end),
        ScanKind::Byte(b) => run_words(set, |x| eq_mask(x, b), bytes, pos, end),
        ScanKind::Range(lo, hi) => run_words(set, |x| range_mask(x, lo, hi), bytes, pos, end),
        ScanKind::NotAlnum => {
            run_words(set, |x| match_mask(ScanKind::NotAlnum, x), bytes, pos, end)
        }
        ScanKind::Generic => run_len_scalar(set, bytes, pos, limit),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymbolClass;

    fn set(class: SymbolClass) -> AsciiSet {
        AsciiSet::of_class(class)
    }

    #[test]
    fn kinds_classified() {
        assert_eq!(set(SymbolClass::Digit).kind(), ScanKind::Range(b'0', b'9'));
        assert_eq!(set(SymbolClass::Upper).kind(), ScanKind::Range(b'A', b'Z'));
        assert_eq!(set(SymbolClass::Lower).kind(), ScanKind::Range(b'a', b'z'));
        assert_eq!(set(SymbolClass::Symbol).kind(), ScanKind::NotAlnum);
        assert_eq!(set(SymbolClass::Any).kind(), ScanKind::All);
        assert_eq!(set(SymbolClass::Literal('x')).kind(), ScanKind::Byte(b'x'));
        assert_eq!(set(SymbolClass::Literal('É')).kind(), ScanKind::Empty);
    }

    #[test]
    fn swar_agrees_with_scalar_on_all_classes_and_offsets() {
        let classes = [
            SymbolClass::Digit,
            SymbolClass::Upper,
            SymbolClass::Lower,
            SymbolClass::Symbol,
            SymbolClass::Any,
            SymbolClass::Literal('7'),
            SymbolClass::Literal('-'),
            SymbolClass::Literal('É'),
        ];
        let inputs: [&[u8]; 8] = [
            b"1234567890123456789",
            b"777777777777777777x",
            b"abcdefXYZ 0123---..",
            b"------------------7",
            b"",
            b"\x7f\x00\x1f 09AZaz",
            "digits123\u{E9}456".as_bytes(), // multibyte stops the run
            b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
        ];
        for class in classes {
            let s = set(class);
            for bytes in inputs {
                for pos in 0..=bytes.len() {
                    for limit in 0..=(bytes.len() - pos) {
                        assert_eq!(
                            run_len(&s, bytes, pos, limit),
                            run_len_scalar(&s, bytes, pos, limit),
                            "{class:?} pos={pos} limit={limit} bytes={bytes:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn high_bytes_terminate_every_kind() {
        let bytes = "99\u{00E9}99".as_bytes(); // 39 39 C3 A9 39 39
        for class in [SymbolClass::Digit, SymbolClass::Any, SymbolClass::Symbol] {
            let s = set(class);
            let k = run_len(&s, bytes, 0, bytes.len());
            assert!(k <= 2, "{class:?} ran {k} past the UTF-8 lead byte");
        }
    }

    #[test]
    fn limit_caps_the_run() {
        let s = set(SymbolClass::Digit);
        let bytes = b"12345678901234567890";
        assert_eq!(run_len(&s, bytes, 0, 20), 20);
        assert_eq!(run_len(&s, bytes, 0, 13), 13);
        assert_eq!(run_len(&s, bytes, 5, 3), 3);
        assert_eq!(run_len(&s, bytes, 19, 1), 1);
        assert_eq!(run_len(&s, bytes, 20, 0), 0);
    }
}
