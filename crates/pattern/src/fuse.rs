//! The fused single-pass matcher: the tier above the VM.
//!
//! Most real tableaux are runs of fixed-width ops — `900\D{2}`,
//! `\D{3}-\D{4}`, `\LU\LL{3}` — which need no backtracking at all. And
//! patterns with exactly **one** variable-width op (`\LU\LL*`,
//! `\A*a`, `\D{2,4}`) don't either, anchored as the language is: the
//! variable op's run length is *forced* by the input length, `k = chars
//! − Σ fixed widths`. In both shapes the parse is unique, so matching
//! degenerates to one left-to-right verification pass — no backtrack
//! stack, no visited bitset, spans captured inline as the pass walks.
//! (Uniqueness also makes the spans trivially identical to the VM's and
//! the interpreter's leftmost-greedy answer: there is only one parse to
//! find.) This generalizes the "one variable op *in tail position*"
//! shape: tail position is just the special case where the forced run
//! ends at the input's end.
//!
//! Compilation probes every program with `plan`; eligible patterns get
//! a `FusePlan` and the default engine routes their evaluations here
//! (observable as `pattern.fused_evals`). Anything with two or more
//! variable-width ops — where run lengths genuinely interact — stays on
//! the backtracking VM.
//!
//! Like the VM, the matcher is monomorphized per encoding: the ASCII
//! instantiation verifies byte runs with the SWAR scanner directly,
//! while the UTF-8 instantiation counts characters through
//! [`crate::compile::ClassSet`]'s `run_chars`.

use crate::compile::Op;
use crate::scan;

/// The compile-time proof that a program is backtrack-free: at most one
/// variable-width op (`var`, an index into the op sequence) and the
/// total character width of all fixed ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FusePlan {
    var: Option<u32>,
    fixed_chars: u32,
}

impl FusePlan {
    /// No variable-width op at all: every element's width (and on ASCII
    /// input, its byte offset) is known at compile time.
    pub(crate) fn is_fixed(self) -> bool {
        self.var.is_none()
    }
}

/// Probe `ops` for fusibility. Returns a plan iff zero or one op is
/// variable-width.
pub(crate) fn plan(ops: &[Op]) -> Option<FusePlan> {
    let mut var: Option<u32> = None;
    let mut fixed_chars: u64 = 0;
    for (i, op) in ops.iter().enumerate() {
        if op.is_fixed() {
            fixed_chars += u64::from(op.interval().0);
        } else if var.is_none() {
            var = Some(i as u32);
        } else {
            return None; // two variable ops: genuinely needs search
        }
    }
    let fixed_chars = u32::try_from(fixed_chars).ok()?;
    Some(FusePlan { var, fixed_chars })
}

/// The forced run length (in chars) of the variable op, if the input
/// length admits one: `chars − fixed_chars`, bounds-checked against the
/// op's interval.
#[inline]
fn forced_var_len(ops: &[Op], plan: FusePlan, chars: usize) -> Option<usize> {
    let fixed = plan.fixed_chars as usize;
    match plan.var {
        None => (chars == fixed).then_some(0),
        Some(v) => {
            let k = chars.checked_sub(fixed)?;
            let (min, max) = ops[v as usize].interval();
            (k >= min as usize && max.is_none_or(|m| k <= m as usize)).then_some(k)
        }
    }
}

/// Single-pass verification against pure-ASCII `s` (one char = one
/// byte). On success, `spans` (if given) receives one byte span per op.
pub(crate) fn run_ascii(
    ops: &[Op],
    plan: FusePlan,
    bytes: &[u8],
    spans: Option<&mut Vec<(usize, usize)>>,
) -> bool {
    let Some(var_k) = forced_var_len(ops, plan, bytes.len()) else {
        return false;
    };
    let mut out = spans;
    if let Some(out) = out.as_deref_mut() {
        out.clear();
    }
    let mut pos = 0usize;
    for (i, op) in ops.iter().enumerate() {
        let end = match *op {
            Op::Byte(b) => {
                if bytes[pos] != b {
                    return false;
                }
                pos + 1
            }
            Op::Exact { ref set, n }
            | Op::AtLeast { ref set, min: n }
            | Op::Range {
                ref set, min: n, ..
            } => {
                let w = if plan.var == Some(i as u32) {
                    var_k
                } else {
                    debug_assert!(op.is_fixed());
                    n as usize
                };
                // Short runs (the common fixed-width case) test the
                // bitset directly — the word kernel's dispatch costs
                // more than it saves under one word.
                let ok = if w < 8 {
                    bytes[pos..pos + w]
                        .iter()
                        .all(|&b| b < 0x80 && set.ascii().contains(b))
                } else {
                    scan::run_len(set.ascii(), bytes, pos, w) == w
                };
                if !ok {
                    return false;
                }
                pos + w
            }
        };
        if let Some(out) = out.as_deref_mut() {
            out.push((pos, end));
        }
        pos = end;
    }
    debug_assert_eq!(pos, bytes.len());
    true
}

/// Single-pass verification against arbitrary UTF-8 `s` (`chars` is the
/// precomputed character count; widths are chars). On success, `spans`
/// (if given) receives one **byte** span per op.
pub(crate) fn run_utf8(
    ops: &[Op],
    plan: FusePlan,
    s: &str,
    chars: usize,
    spans: Option<&mut Vec<(usize, usize)>>,
) -> bool {
    let Some(var_k) = forced_var_len(ops, plan, chars) else {
        return false;
    };
    let mut out = spans;
    if let Some(out) = out.as_deref_mut() {
        out.clear();
    }
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    for (i, op) in ops.iter().enumerate() {
        let end = match *op {
            Op::Byte(b) => {
                if pos >= bytes.len() || bytes[pos] != b {
                    return false;
                }
                pos + 1
            }
            Op::Exact { ref set, n }
            | Op::AtLeast { ref set, min: n }
            | Op::Range {
                ref set, min: n, ..
            } => {
                let w = if plan.var == Some(i as u32) {
                    var_k
                } else {
                    debug_assert!(op.is_fixed());
                    n as usize
                };
                let (got, end) = set.run_chars(s, pos, w);
                if got != w {
                    return false;
                }
                end
            }
        };
        if let Some(out) = out.as_deref_mut() {
            out.push((pos, end));
        }
        pos = end;
    }
    debug_assert_eq!(pos, bytes.len());
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::CompiledPattern;
    use crate::Pattern;

    fn compiled(s: &str) -> CompiledPattern {
        CompiledPattern::compile(&s.parse::<Pattern>().unwrap())
    }

    fn fplan(c: &CompiledPattern) -> FusePlan {
        plan(c.ops()).expect("pattern should be fusible")
    }

    #[test]
    fn plans() {
        let fixed = compiled("900\\D{2}");
        assert_eq!(
            plan(fixed.ops()),
            Some(FusePlan {
                var: None,
                fixed_chars: 5
            })
        );
        let tail_var = compiled("\\LU\\LL*");
        assert_eq!(
            plan(tail_var.ops()),
            Some(FusePlan {
                var: Some(1),
                fixed_chars: 1
            })
        );
        let head_var = compiled("\\A*a");
        assert_eq!(
            plan(head_var.ops()),
            Some(FusePlan {
                var: Some(0),
                fixed_chars: 1
            })
        );
        let two_vars = compiled("\\LU\\LL*\\ \\A*");
        assert_eq!(plan(two_vars.ops()), None);
    }

    #[test]
    fn fixed_width_verifies_in_one_pass() {
        let c = compiled("900\\D{2}");
        let p = fplan(&c);
        assert!(run_ascii(c.ops(), p, b"90021", None));
        assert!(!run_ascii(c.ops(), p, b"90x21", None));
        assert!(!run_ascii(c.ops(), p, b"9002", None)); // wrong length
        assert!(!run_ascii(c.ops(), p, b"900210", None));
    }

    #[test]
    fn forced_var_respects_interval() {
        let c = compiled("\\D{2,4}");
        let p = fplan(&c);
        assert!(!run_ascii(c.ops(), p, b"1", None));
        assert!(run_ascii(c.ops(), p, b"12", None));
        assert!(run_ascii(c.ops(), p, b"1234", None));
        assert!(!run_ascii(c.ops(), p, b"12345", None));
    }

    #[test]
    fn spans_match_unique_parse() {
        let c = compiled("\\A*a");
        let p = fplan(&c);
        let mut spans = Vec::new();
        assert!(run_ascii(c.ops(), p, b"bba", Some(&mut spans)));
        assert_eq!(spans, vec![(0, 2), (2, 3)]);
        // Note "aaa": forced k = 2, the unique parse — same as the VM's
        // greedy backoff answer.
        assert!(run_ascii(c.ops(), p, b"aaa", Some(&mut spans)));
        assert_eq!(spans, vec![(0, 2), (2, 3)]);
    }

    #[test]
    fn utf8_forced_lengths_count_chars() {
        let c = compiled("\\LU\\LL*");
        let p = fplan(&c);
        let s = "Étienne";
        let chars = s.chars().count();
        let mut spans = Vec::new();
        assert!(run_utf8(c.ops(), p, s, chars, Some(&mut spans)));
        assert_eq!(spans, vec![(0, 2), (2, s.len())]); // É is 2 bytes
        assert!(!run_utf8(c.ops(), p, "étienne", 7, None));
    }
}
