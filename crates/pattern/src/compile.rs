//! Pattern → bytecode compilation.
//!
//! The AST interpreter in [`crate::matcher`] re-derives everything per
//! evaluation: it decodes the value into a `Vec<char>`, consults the
//! [`SymbolClass`] enum per character, and runs a dynamic program whose
//! tables are sized per call. A tableau pattern, however, is evaluated
//! against *millions* of cells over its lifetime — so [`CompiledPattern`]
//! does the per-pattern work exactly once:
//!
//! * each element becomes one flat [`Op`] (literal byte / exact class
//!   count / unbounded at-least / bounded range), so dispatch is a small
//!   `match` on a copy-sized struct instead of pointer-chasing the AST;
//! * each class is precomputed into a 128-bit ASCII membership bitset
//!   ([`AsciiSet`]), so the per-character test is two shifts and a mask;
//! * evaluation runs over `&str` **bytes** directly in a non-recursive
//!   backtracking VM ([`crate::vm`]) — no `Vec<char>` collection, no
//!   recursion, scratch reused thread-locally.
//!
//! The byte-level fast path is exact only when every input byte is ASCII
//! (byte index == char index, and the bitsets encode the ASCII slice of
//! [`SymbolClass::matches`] precisely — including the always-empty set of
//! a non-ASCII literal). Non-ASCII values route to the AST interpreter;
//! the split is observable as the `pattern.vm_evals` /
//! `pattern.interp_evals` counters, and compilation time itself lands in
//! the `pattern.compile_ns` histogram.

use crate::ast::Pattern;
use crate::constrained::ConstrainedPattern;
use crate::matcher::MatchSpans;
use crate::symbol::SymbolClass;
use crate::vm;
use std::cell::RefCell;

/// Precomputed ASCII membership set for one symbol class: bit `b` is set
/// iff the class matches the character with code point `b` (`b < 128`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsciiSet {
    bits: [u64; 2],
}

impl AsciiSet {
    /// The exact ASCII slice of `class.matches(..)`.
    #[must_use]
    pub fn of_class(class: SymbolClass) -> AsciiSet {
        let mut bits = [0u64; 2];
        for b in 0u8..128 {
            if class.matches(b as char) {
                bits[usize::from(b >> 6)] |= 1u64 << (b & 63);
            }
        }
        AsciiSet { bits }
    }

    /// Does the set contain the (ASCII) byte `b`?
    #[inline]
    #[must_use]
    pub fn contains(&self, b: u8) -> bool {
        debug_assert!(b < 128);
        (self.bits[usize::from(b >> 6)] >> (b & 63)) & 1 != 0
    }
}

/// One bytecode instruction. Each pattern element compiles to exactly one
/// op; the quantifier's shape picks the variant, so the VM's dispatch
/// mirrors what the element can actually do (fixed ops never backtrack,
/// variable ops carry their repetition interval inline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Exactly one occurrence of one ASCII byte — the literal fast path.
    Byte(u8),
    /// Exactly `n` occurrences of the class (`One` / `Exactly`).
    Exact {
        /// ASCII membership set of the element's class.
        set: AsciiSet,
        /// Required repetition count.
        n: u32,
    },
    /// `min` or more occurrences, unbounded (`Star` / `Plus` / `AtLeast`).
    AtLeast {
        /// ASCII membership set of the element's class.
        set: AsciiSet,
        /// Minimum repetition count (0 for `Star`).
        min: u32,
    },
    /// Between `min` and `max` occurrences inclusive (`Range`).
    Range {
        /// ASCII membership set of the element's class.
        set: AsciiSet,
        /// Minimum repetition count.
        min: u32,
        /// Maximum repetition count.
        max: u32,
    },
}

impl Op {
    /// The op's repetition interval `(min, max)`; `None` max = unbounded.
    #[inline]
    #[must_use]
    pub fn interval(&self) -> (u32, Option<u32>) {
        match *self {
            Op::Byte(_) => (1, Some(1)),
            Op::Exact { n, .. } => (n, Some(n)),
            Op::AtLeast { min, .. } => (min, None),
            Op::Range { min, max, .. } => (min, Some(max)),
        }
    }
}

/// A [`Pattern`] compiled to flat bytecode, with the source AST retained
/// for the non-ASCII interpreter fallback.
#[derive(Debug, Clone)]
pub struct CompiledPattern {
    ops: Vec<Op>,
    min_len: usize,
    max_len: Option<usize>,
    source: Pattern,
}

impl CompiledPattern {
    /// Compile `pattern` into bytecode. The cost is `O(|P|)` plus one
    /// 128-entry class sweep per element, paid once per tableau pattern
    /// (recorded in the `pattern.compile_ns` histogram).
    #[must_use]
    pub fn compile(pattern: &Pattern) -> CompiledPattern {
        let _span = anmat_obs::span!("pattern.compile_ns");
        let ops = pattern
            .elements()
            .iter()
            .map(|e| {
                let (min, max) = e.quant.interval();
                match (e.class, min, max) {
                    (SymbolClass::Literal(c), 1, Some(1)) if c.is_ascii() => Op::Byte(c as u8),
                    (class, min, Some(max)) if min == max => Op::Exact {
                        set: AsciiSet::of_class(class),
                        n: min,
                    },
                    (class, min, None) => Op::AtLeast {
                        set: AsciiSet::of_class(class),
                        min,
                    },
                    (class, min, Some(max)) => Op::Range {
                        set: AsciiSet::of_class(class),
                        min,
                        max,
                    },
                }
            })
            .collect();
        CompiledPattern {
            ops,
            min_len: pattern.min_len(),
            max_len: pattern.max_len(),
            source: pattern.clone(),
        }
    }

    /// The compiled instruction sequence.
    #[must_use]
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// The pattern this program was compiled from.
    #[must_use]
    pub fn source(&self) -> &Pattern {
        &self.source
    }

    /// Can the VM evaluate `s`, or must the interpreter take over?
    #[inline]
    fn vm_eligible(s: &str) -> bool {
        // Byte positions equal char positions only for pure-ASCII input;
        // the u32 frame fields additionally cap the value length (cell
        // values are nowhere near 4 GiB — this guards correctness, not a
        // real workload).
        s.is_ascii() && s.len() < u32::MAX as usize
    }

    /// Does `s` match the pattern? (Anchored; identical to
    /// [`Pattern::matches`].)
    #[must_use]
    pub fn matches(&self, s: &str) -> bool {
        if Self::vm_eligible(s) {
            anmat_obs::counter!("pattern.vm_evals").incr();
            self.matches_ascii(s.as_bytes())
        } else {
            anmat_obs::counter!("pattern.interp_evals").incr();
            crate::matcher::match_pattern(&self.source, s)
        }
    }

    /// VM boolean match over known-ASCII bytes (screens included).
    #[inline]
    fn matches_ascii(&self, bytes: &[u8]) -> bool {
        let n = bytes.len();
        if n < self.min_len {
            return false;
        }
        if let Some(max) = self.max_len {
            if n > max {
                return false;
            }
        }
        vm::run(&self.ops, bytes, None)
    }

    /// Match and recover per-element spans under leftmost-greedy
    /// semantics — identical to [`crate::matcher::match_spans`]
    /// (character indices; for the ASCII fast path these coincide with
    /// byte indices).
    #[must_use]
    pub fn spans(&self, s: &str) -> Option<MatchSpans> {
        if Self::vm_eligible(s) {
            anmat_obs::counter!("pattern.vm_evals").incr();
            let mut spans = Vec::new();
            self.spans_ascii(s.as_bytes(), &mut spans)
                .then_some(MatchSpans { spans })
        } else {
            anmat_obs::counter!("pattern.interp_evals").incr();
            crate::matcher::match_spans(&self.source, s)
        }
    }

    /// VM span match over known-ASCII bytes into a caller buffer.
    #[inline]
    fn spans_ascii(&self, bytes: &[u8], out: &mut Vec<(usize, usize)>) -> bool {
        let n = bytes.len();
        if n < self.min_len {
            return false;
        }
        if let Some(max) = self.max_len {
            if n > max {
                return false;
            }
        }
        vm::run(&self.ops, bytes, Some(out))
    }
}

thread_local! {
    /// Span scratch for [`CompiledConstrained`] key extraction — reused
    /// so a key evaluation allocates nothing but the key itself.
    static KEY_SPANS: RefCell<Vec<(usize, usize)>> = const { RefCell::new(Vec::new()) };
}

/// A [`ConstrainedPattern`] whose embedded pattern is compiled, plus the
/// capture plan (element boundaries of each constrained segment), so
/// blocking-key extraction runs on the span VM.
#[derive(Debug, Clone)]
pub struct CompiledConstrained {
    program: CompiledPattern,
    /// `(start, end)` element boundaries of each *constrained* segment
    /// within the embedded pattern.
    captures: Vec<(usize, usize)>,
    source: ConstrainedPattern,
}

impl CompiledConstrained {
    /// Compile the keyer `q`.
    #[must_use]
    pub fn compile(q: &ConstrainedPattern) -> CompiledConstrained {
        let program = CompiledPattern::compile(q.embedded());
        let mut captures = Vec::new();
        let mut start = 0usize;
        for seg in q.segments() {
            let end = start + seg.pattern.len();
            if seg.constrained {
                captures.push((start, end));
            }
            start = end;
        }
        CompiledConstrained {
            program,
            captures,
            source: q.clone(),
        }
    }

    /// The keyer this program was compiled from.
    #[must_use]
    pub fn source(&self) -> &ConstrainedPattern {
        &self.source
    }

    /// Does `s` match the embedded pattern?
    #[must_use]
    pub fn matches(&self, s: &str) -> bool {
        self.program.matches(s)
    }

    /// The blocking key of `s`, written into `out` (cleared first).
    /// Returns `false` (leaving `out` empty) if `s` does not match.
    /// Identical to [`ConstrainedPattern::key`] but allocation-free on
    /// the ASCII path.
    pub fn key_into(&self, s: &str, out: &mut String) -> bool {
        out.clear();
        if CompiledPattern::vm_eligible(s) {
            anmat_obs::counter!("pattern.vm_evals").incr();
            KEY_SPANS.with(|buf| {
                let spans = &mut *buf.borrow_mut();
                if !self.program.spans_ascii(s.as_bytes(), spans) {
                    return false;
                }
                for (c, &(start, end)) in self.captures.iter().enumerate() {
                    if c > 0 {
                        out.push('\u{1F}');
                    }
                    // Mirror `ConstrainedPattern::captures`: an empty
                    // segment captures zero width at its boundary.
                    let from = if start == end {
                        spans.get(start).map_or(s.len(), |&(a, _)| a)
                    } else {
                        spans[start].0
                    };
                    let to = if start == end { from } else { spans[end - 1].1 };
                    out.push_str(&s[from..to]);
                }
                true
            })
        } else {
            anmat_obs::counter!("pattern.interp_evals").incr();
            match self.source.key(s) {
                Some(k) => {
                    out.push_str(&k);
                    true
                }
                None => false,
            }
        }
    }

    /// The blocking key of `s`, or `None` if it does not match —
    /// allocating convenience over [`CompiledConstrained::key_into`].
    #[must_use]
    pub fn key(&self, s: &str) -> Option<String> {
        let mut out = String::new();
        self.key_into(s, &mut out).then_some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::{match_pattern, match_spans};

    fn pat(s: &str) -> Pattern {
        s.parse().unwrap()
    }

    fn cp(s: &str) -> ConstrainedPattern {
        s.parse().unwrap()
    }

    #[test]
    fn ascii_set_matches_class_semantics() {
        for class in [
            SymbolClass::Upper,
            SymbolClass::Lower,
            SymbolClass::Digit,
            SymbolClass::Symbol,
            SymbolClass::Any,
            SymbolClass::Literal('x'),
            SymbolClass::Literal('É'), // non-ASCII literal: empty set
        ] {
            let set = AsciiSet::of_class(class);
            for b in 0u8..128 {
                assert_eq!(
                    set.contains(b),
                    class.matches(b as char),
                    "{class:?} byte {b}"
                );
            }
        }
    }

    #[test]
    fn op_shapes() {
        let p = pat("a\\D{3}\\LL*\\A{1,4}");
        let c = CompiledPattern::compile(&p);
        assert!(matches!(c.ops()[0], Op::Byte(b'a')));
        assert!(matches!(c.ops()[1], Op::Exact { n: 3, .. }));
        assert!(matches!(c.ops()[2], Op::AtLeast { min: 0, .. }));
        assert!(matches!(c.ops()[3], Op::Range { min: 1, max: 4, .. }));
    }

    #[test]
    fn vm_agrees_with_interpreter_on_fixtures() {
        let patterns = [
            "90001",
            "\\D{5}",
            "\\D*",
            "900\\D{2}",
            "\\LU\\LL*\\ \\A*",
            "\\A*a",
            "\\LL+\\LL+",
            "\\D{2,4}",
            "a*b*c",
            "\\D{3}\\S\\D{4}",
            "",
        ];
        let inputs = [
            "90001",
            "90002",
            "9000",
            "900010",
            "",
            "a",
            "bbba",
            "ab",
            "aaa",
            "c",
            "John Charles",
            "JOHN Charles",
            "John",
            "555-1234",
            "55511234",
            "12a",
            "ABcd12",
        ];
        for ps in patterns {
            let p = pat(ps);
            let c = CompiledPattern::compile(&p);
            for s in inputs {
                assert_eq!(c.matches(s), match_pattern(&p, s), "{ps:?} vs {s:?}");
            }
        }
    }

    #[test]
    fn vm_spans_agree_with_interpreter_on_fixtures() {
        let cases = [
            ("\\A*a", "bbba"),
            ("\\A*a", "aaa"),
            ("a*b*c", "c"),
            ("\\LU\\LL*\\ \\A*", "John Charles"),
            ("\\LU+\\LL+\\D{2}", "ABcd12"),
            ("\\D{3}\\D{2}", "90001"),
        ];
        for (ps, s) in cases {
            let p = pat(ps);
            let c = CompiledPattern::compile(&p);
            assert_eq!(c.spans(s), match_spans(&p, s), "{ps:?} vs {s:?}");
        }
    }

    #[test]
    fn non_ascii_falls_back_to_interpreter() {
        let p = pat("\\LU\\LL+");
        let c = CompiledPattern::compile(&p);
        assert!(c.matches("Étienne"));
        assert_eq!(
            c.spans("Étienne").unwrap(),
            match_spans(&p, "Étienne").unwrap()
        );
        // Non-ASCII literal against ASCII input: VM path, never matches.
        let p = Pattern::literal("É");
        let c = CompiledPattern::compile(&p);
        assert!(!c.matches("E"));
        assert!(c.matches("É"));
    }

    #[test]
    fn compiled_key_matches_source_key() {
        let cases = [
            ("[\\D{3}]\\D{2}", vec!["90001", "90101", "9000", ""]),
            (
                "[\\LU\\LL*\\ ]\\A*",
                vec!["John Charles", "John Bosco", "Susan Boyle", "john x"],
            ),
            ("[\\LL+]-[\\LL+]", vec!["ab-c", "a-bc", "x-y"]),
            ("\\A*,\\ [Donald]\\A*", vec!["x, Donald Duck", "nope"]),
            ("[\\D{3}]\\D{2}", vec!["90\u{E9}01"]), // non-ASCII fallback
        ];
        for (qs, inputs) in cases {
            let q = cp(qs);
            let c = CompiledConstrained::compile(&q);
            for s in inputs {
                assert_eq!(c.key(s), q.key(s), "{qs:?} vs {s:?}");
            }
        }
    }

    #[test]
    fn key_into_reuses_buffer() {
        let q = cp("[\\D{3}]\\D{2}");
        let c = CompiledConstrained::compile(&q);
        let mut buf = String::new();
        assert!(c.key_into("90001", &mut buf));
        assert_eq!(buf, "900");
        assert!(!c.key_into("x", &mut buf));
        assert!(buf.is_empty());
        assert!(c.key_into("85032", &mut buf));
        assert_eq!(buf, "850");
    }
}
