//! Pattern → bytecode compilation and execution-tier selection.
//!
//! The AST interpreter in [`crate::matcher`] re-derives everything per
//! evaluation: it decodes the value into a `Vec<char>`, consults the
//! [`SymbolClass`] enum per character, and runs a dynamic program whose
//! tables are sized per call. A tableau pattern, however, is evaluated
//! against *millions* of cells over its lifetime — so [`CompiledPattern`]
//! does the per-pattern work exactly once:
//!
//! * each element becomes one flat [`Op`] (literal byte / exact class
//!   count / unbounded at-least / bounded range), so dispatch is a small
//!   `match` on a copy-sized struct instead of pointer-chasing the AST;
//! * each class is precomputed into a [`ClassSet`]: a 128-bit ASCII
//!   membership bitset ([`AsciiSet`], scanned 8 bytes per step by
//!   [`crate::scan`]) plus a constant-size *spillover* descriptor that
//!   resolves codepoints ≥ 128 against lazily built sorted range tables
//!   — so the compiled tiers are exact on **any** UTF-8 input and the
//!   AST interpreter is never consulted on the hot path;
//! * at compile time the program is probed for backtrack-freedom
//!   (`fuse::plan`): when every op is fixed-width, or exactly
//!   one op is variable-width (its run length is then forced by the
//!   input length), the pattern is eligible for the **fused** one-pass
//!   matcher — no backtrack stack, no visited set, inline span capture;
//! * everything else runs on the non-recursive backtracking VM
//!   ([`crate::vm`]) — no `Vec<char>` collection, no recursion, scratch
//!   reused thread-locally.
//!
//! Which tier evaluates a value is picked per call via [`PatternEngine`]:
//! `Fused` (the default) uses the fused matcher when the pattern proved
//! fusible and the VM otherwise; `Vm` forces the VM; `Interp` forces the
//! AST interpreter (the property-tested semantic oracle). The split is
//! observable as the `pattern.fused_evals` / `pattern.vm_evals` /
//! `pattern.interp_evals` counters, and compilation time itself lands in
//! the `pattern.compile_ns` histogram.

use crate::ast::Pattern;
use crate::constrained::ConstrainedPattern;
use crate::fuse::{self, FusePlan};
use crate::matcher::MatchSpans;
use crate::scan::{self, ScanKind};
use crate::symbol::SymbolClass;
use crate::vm;
use std::cell::RefCell;
use std::fmt;
use std::str::FromStr;
use std::sync::OnceLock;

/// Which execution tier evaluates pattern matches and key extractions.
///
/// All three tiers are semantically identical (property-tested); they
/// differ only in cost. The taxonomy is observable through the
/// `pattern.fused_evals` / `pattern.vm_evals` / `pattern.interp_evals`
/// counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PatternEngine {
    /// The AST interpreter — the semantic oracle. Slowest; kept for
    /// baselines and differential testing.
    Interp,
    /// The bytecode VM — non-recursive backtracking over flat ops.
    Vm,
    /// Fused-capable (the default): backtrack-free patterns run on the
    /// single-pass fused matcher, everything else on the VM.
    #[default]
    Fused,
}

impl PatternEngine {
    /// The CLI spelling (`--pattern-engine {interp,vm,fused}`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PatternEngine::Interp => "interp",
            PatternEngine::Vm => "vm",
            PatternEngine::Fused => "fused",
        }
    }
}

impl fmt::Display for PatternEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for PatternEngine {
    type Err = String;

    fn from_str(s: &str) -> Result<PatternEngine, String> {
        match s {
            "interp" | "interpreter" => Ok(PatternEngine::Interp),
            "vm" => Ok(PatternEngine::Vm),
            "fused" => Ok(PatternEngine::Fused),
            other => Err(format!(
                "unknown pattern engine {other:?} (expected interp, vm, or fused)"
            )),
        }
    }
}

/// Precomputed ASCII membership set for one symbol class: bit `b` is set
/// iff the class matches the character with code point `b` (`b < 128`).
/// The word-scan shape ([`ScanKind`]) is classified once here so run
/// scans dispatch without re-inspecting the bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsciiSet {
    bits: [u64; 2],
    kind: ScanKind,
}

impl AsciiSet {
    /// The exact ASCII slice of `class.matches(..)`.
    #[must_use]
    pub fn of_class(class: SymbolClass) -> AsciiSet {
        let mut bits = [0u64; 2];
        for b in 0u8..128 {
            if class.matches(b as char) {
                bits[usize::from(b >> 6)] |= 1u64 << (b & 63);
            }
        }
        let kind = scan::classify(&bits);
        AsciiSet { bits, kind }
    }

    /// Does the set contain the (ASCII) byte `b`?
    #[inline]
    #[must_use]
    pub fn contains(&self, b: u8) -> bool {
        debug_assert!(b < 128);
        (self.bits[usize::from(b >> 6)] >> (b & 63)) & 1 != 0
    }

    /// The set's word-scan shape, precomputed at construction.
    #[inline]
    #[must_use]
    pub fn kind(&self) -> ScanKind {
        self.kind
    }
}

/// How a class behaves on codepoints ≥ 128 — the constant-size
/// spillover descriptor that extends each [`AsciiSet`] to full UTF-8.
///
/// Only `Upper` / `Lower` need real tables (`\D` is ASCII-only in the
/// generalization tree, and `\S` is exactly "neither upper nor lower"
/// beyond ASCII — see [`SymbolClass::class_of`]); those tables are
/// sorted `(lo, hi)` codepoint ranges built lazily at first use by one
/// sweep of `SymbolClass::matches` over the supplementary planes, so
/// the spillover can never drift from the oracle's semantics and
/// `pattern.compile_ns` stays free of the one-time sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Spill {
    /// No codepoint ≥ 128 matches (`\D`, ASCII literals).
    None,
    /// Every codepoint matches (`\A`).
    All,
    /// Exactly this (non-ASCII) literal matches.
    Char(char),
    /// Non-ASCII uppercase letters (the `\LU` range table).
    Upper,
    /// Non-ASCII lowercase letters (the `\LL` range table).
    Lower,
    /// Everything that is neither upper nor lower (`\S` beyond ASCII —
    /// including non-ASCII digits, which `\D` deliberately excludes).
    NonAlpha,
}

/// Sorted non-ASCII codepoint ranges matching `class`, built by one
/// sweep over `0x80..=0x10FFFF` against the oracle's `matches`.
fn sweep_ranges(class: SymbolClass) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut start: Option<u32> = None;
    for cp in 0x80..=0x10FFFF_u32 {
        let matched = char::from_u32(cp).is_some_and(|c| class.matches(c));
        match (matched, start) {
            (true, None) => start = Some(cp),
            (false, Some(s)) => {
                ranges.push((s, cp - 1));
                start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = start {
        ranges.push((s, 0x10FFFF));
    }
    ranges
}

fn upper_ranges() -> &'static [(u32, u32)] {
    static RANGES: OnceLock<Vec<(u32, u32)>> = OnceLock::new();
    RANGES.get_or_init(|| sweep_ranges(SymbolClass::Upper))
}

fn lower_ranges() -> &'static [(u32, u32)] {
    static RANGES: OnceLock<Vec<(u32, u32)>> = OnceLock::new();
    RANGES.get_or_init(|| sweep_ranges(SymbolClass::Lower))
}

/// Binary-search membership in a sorted, disjoint range table.
#[inline]
fn in_ranges(ranges: &[(u32, u32)], cp: u32) -> bool {
    let i = ranges.partition_point(|&(_, hi)| hi < cp);
    ranges.get(i).is_some_and(|&(lo, _)| lo <= cp)
}

/// Full-UTF-8 membership set for one symbol class: the 128-bit ASCII
/// bitset plus the ≥ 128 spillover. `Copy`, 24 bytes — ops embed it
/// inline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassSet {
    ascii: AsciiSet,
    spill: Spill,
}

impl ClassSet {
    /// The exact membership set of `class.matches(..)` over all of
    /// Unicode.
    #[must_use]
    pub fn of_class(class: SymbolClass) -> ClassSet {
        let spill = match class {
            SymbolClass::Literal(c) if c.is_ascii() => Spill::None,
            SymbolClass::Literal(c) => Spill::Char(c),
            SymbolClass::Upper => Spill::Upper,
            SymbolClass::Lower => Spill::Lower,
            SymbolClass::Digit => Spill::None,
            SymbolClass::Symbol => Spill::NonAlpha,
            SymbolClass::Any => Spill::All,
        };
        ClassSet {
            ascii: AsciiSet::of_class(class),
            spill,
        }
    }

    /// The ASCII half (what the byte-level scans run on).
    #[inline]
    #[must_use]
    pub fn ascii(&self) -> &AsciiSet {
        &self.ascii
    }

    /// Does the set contain `c`? Exact for every `char` — ASCII through
    /// the bitset, the rest through the spillover.
    #[inline]
    #[must_use]
    pub fn contains_char(&self, c: char) -> bool {
        if c.is_ascii() {
            return self.ascii.contains(c as u8);
        }
        match self.spill {
            Spill::None => false,
            Spill::All => true,
            Spill::Char(l) => c == l,
            Spill::Upper => in_ranges(upper_ranges(), c as u32),
            Spill::Lower => in_ranges(lower_ranges(), c as u32),
            Spill::NonAlpha => {
                let cp = c as u32;
                !in_ranges(upper_ranges(), cp) && !in_ranges(lower_ranges(), cp)
            }
        }
    }

    /// Longest run of member *characters* from byte `pos` (a char
    /// boundary), capped at `limit` chars. Returns `(chars, end byte)`.
    /// ASCII stretches go through the SWAR scanner; non-ASCII chars are
    /// decoded one at a time against the spillover.
    pub(crate) fn run_chars(&self, s: &str, pos: usize, limit: usize) -> (usize, usize) {
        let bytes = s.as_bytes();
        let mut chars = 0usize;
        let mut p = pos;
        while chars < limit && p < bytes.len() {
            if bytes[p] < 0x80 {
                let cap = (limit - chars).min(bytes.len() - p);
                let k = scan::run_len(&self.ascii, bytes, p, cap);
                if k == 0 {
                    break;
                }
                chars += k;
                p += k;
                // A short run stopped at a mismatch: an ASCII mismatch
                // ends the run; a high byte hands over to the spillover.
                if k < cap && bytes[p] < 0x80 {
                    break;
                }
            } else {
                let c = s[p..].chars().next().expect("pos is a char boundary");
                if !self.contains_char(c) {
                    break;
                }
                chars += 1;
                p += c.len_utf8();
            }
        }
        (chars, p)
    }
}

/// One bytecode instruction. Each pattern element compiles to exactly one
/// op; the quantifier's shape picks the variant, so the VM's dispatch
/// mirrors what the element can actually do (fixed ops never backtrack,
/// variable ops carry their repetition interval inline). Repetition
/// counts are **characters** (= bytes only on ASCII input).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Exactly one occurrence of one ASCII byte — the literal fast path.
    Byte(u8),
    /// Exactly `n` occurrences of the class (`One` / `Exactly`).
    Exact {
        /// Membership set of the element's class.
        set: ClassSet,
        /// Required repetition count.
        n: u32,
    },
    /// `min` or more occurrences, unbounded (`Star` / `Plus` / `AtLeast`).
    AtLeast {
        /// Membership set of the element's class.
        set: ClassSet,
        /// Minimum repetition count (0 for `Star`).
        min: u32,
    },
    /// Between `min` and `max` occurrences inclusive (`Range`).
    Range {
        /// Membership set of the element's class.
        set: ClassSet,
        /// Minimum repetition count.
        min: u32,
        /// Maximum repetition count.
        max: u32,
    },
}

impl Op {
    /// The op's repetition interval `(min, max)`; `None` max = unbounded.
    #[inline]
    #[must_use]
    pub fn interval(&self) -> (u32, Option<u32>) {
        match *self {
            Op::Byte(_) => (1, Some(1)),
            Op::Exact { n, .. } => (n, Some(n)),
            Op::AtLeast { min, .. } => (min, None),
            Op::Range { min, max, .. } => (min, Some(max)),
        }
    }

    /// Is the op's width determined (`min == max`)?
    #[inline]
    #[must_use]
    pub fn is_fixed(&self) -> bool {
        let (min, max) = self.interval();
        max == Some(min)
    }
}

/// A [`Pattern`] compiled to flat bytecode, with the fused-tier plan
/// probed up front and the source AST retained for the `Interp` oracle
/// tier.
#[derive(Debug, Clone)]
pub struct CompiledPattern {
    ops: Vec<Op>,
    min_len: usize,
    max_len: Option<usize>,
    fused: Option<FusePlan>,
    source: Pattern,
}

impl CompiledPattern {
    /// Compile `pattern` into bytecode. The cost is `O(|P|)` plus one
    /// 128-entry class sweep per element, paid once per tableau pattern
    /// (recorded in the `pattern.compile_ns` histogram).
    #[must_use]
    pub fn compile(pattern: &Pattern) -> CompiledPattern {
        let _span = anmat_obs::span!("pattern.compile_ns");
        let ops: Vec<Op> = pattern
            .elements()
            .iter()
            .map(|e| {
                let (min, max) = e.quant.interval();
                match (e.class, min, max) {
                    (SymbolClass::Literal(c), 1, Some(1)) if c.is_ascii() => Op::Byte(c as u8),
                    (class, min, Some(max)) if min == max => Op::Exact {
                        set: ClassSet::of_class(class),
                        n: min,
                    },
                    (class, min, None) => Op::AtLeast {
                        set: ClassSet::of_class(class),
                        min,
                    },
                    (class, min, Some(max)) => Op::Range {
                        set: ClassSet::of_class(class),
                        min,
                        max,
                    },
                }
            })
            .collect();
        let fused = fuse::plan(&ops);
        CompiledPattern {
            ops,
            min_len: pattern.min_len(),
            max_len: pattern.max_len(),
            fused,
            source: pattern.clone(),
        }
    }

    /// The compiled instruction sequence.
    #[must_use]
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// The pattern this program was compiled from.
    #[must_use]
    pub fn source(&self) -> &Pattern {
        &self.source
    }

    /// Did compilation prove the pattern backtrack-free (so the `Fused`
    /// engine runs it on the single-pass matcher)?
    #[must_use]
    pub fn is_fused(&self) -> bool {
        self.fused.is_some()
    }

    /// Does `s` match the pattern? (Anchored; identical to
    /// [`Pattern::matches`].) Runs on the default fused-capable tier.
    #[must_use]
    pub fn matches(&self, s: &str) -> bool {
        self.matches_with(s, PatternEngine::Fused)
    }

    /// [`CompiledPattern::matches`] on an explicit tier. Exactly one
    /// `pattern.{fused,vm,interp}_evals` counter ticks per call.
    #[must_use]
    pub fn matches_with(&self, s: &str, engine: PatternEngine) -> bool {
        match self.pick(s, engine) {
            PatternEngine::Interp => {
                anmat_obs::counter!("pattern.interp_evals").incr();
                crate::matcher::match_pattern(&self.source, s)
            }
            PatternEngine::Vm => {
                anmat_obs::counter!("pattern.vm_evals").incr();
                self.exec(s, None, false)
            }
            PatternEngine::Fused => {
                anmat_obs::counter!("pattern.fused_evals").incr();
                self.exec(s, None, true)
            }
        }
    }

    /// Match and recover per-element spans under leftmost-greedy
    /// semantics — identical to [`crate::matcher::match_spans`]
    /// (**character** indices on every tier and every input).
    #[must_use]
    pub fn spans(&self, s: &str) -> Option<MatchSpans> {
        self.spans_with(s, PatternEngine::Fused)
    }

    /// [`CompiledPattern::spans`] on an explicit tier.
    #[must_use]
    pub fn spans_with(&self, s: &str, engine: PatternEngine) -> Option<MatchSpans> {
        match self.pick(s, engine) {
            PatternEngine::Interp => {
                anmat_obs::counter!("pattern.interp_evals").incr();
                crate::matcher::match_spans(&self.source, s)
            }
            tier => {
                let fused = tier == PatternEngine::Fused;
                anmat_obs::counter!(if fused {
                    "pattern.fused_evals"
                } else {
                    "pattern.vm_evals"
                })
                .incr();
                let mut spans = Vec::new();
                self.exec(s, Some(&mut spans), fused).then(|| MatchSpans {
                    spans: byte_spans_to_char(s, spans),
                })
            }
        }
    }

    /// Resolve the requested engine to the tier that will actually run:
    /// `Fused` degrades to `Vm` for non-fusible programs, and inputs the
    /// u32 frame fields cannot address (≥ 4 GiB — a correctness guard,
    /// not a workload) take the oracle.
    #[inline]
    fn pick(&self, s: &str, engine: PatternEngine) -> PatternEngine {
        if engine == PatternEngine::Interp || s.len() >= u32::MAX as usize {
            return PatternEngine::Interp;
        }
        if engine == PatternEngine::Fused && self.fused.is_some() {
            PatternEngine::Fused
        } else {
            PatternEngine::Vm
        }
    }

    /// Run the compiled program (length screens included). `fused` must
    /// only be set when [`CompiledPattern::is_fused`]. On success, spans
    /// are **byte** offsets into `s`.
    #[inline]
    fn exec(&self, s: &str, spans: Option<&mut Vec<(usize, usize)>>, fused: bool) -> bool {
        let n = s.len();
        // Chars ≤ bytes, so a byte count below the char minimum screens
        // any input without counting chars.
        if n < self.min_len {
            return false;
        }
        if s.is_ascii() {
            if self.max_len.is_some_and(|max| n > max) {
                return false;
            }
            if fused {
                let plan = self.fused.expect("fused implies a plan");
                fuse::run_ascii(&self.ops, plan, s.as_bytes(), spans)
            } else {
                vm::run_ascii(&self.ops, s, spans)
            }
        } else {
            let chars = s.chars().count();
            if chars < self.min_len || self.max_len.is_some_and(|max| chars > max) {
                return false;
            }
            if fused {
                let plan = self.fused.expect("fused implies a plan");
                fuse::run_utf8(&self.ops, plan, s, chars, spans)
            } else {
                vm::run_utf8(&self.ops, s, spans)
            }
        }
    }
}

/// Convert contiguous byte spans (as the VM and fused tiers emit) into
/// the interpreter's char-index spans. Free on ASCII input; one forward
/// pass otherwise — spans partition the input, so each slice is counted
/// once.
fn byte_spans_to_char(s: &str, spans: Vec<(usize, usize)>) -> Vec<(usize, usize)> {
    if s.is_ascii() {
        return spans;
    }
    let mut out = Vec::with_capacity(spans.len());
    let mut char_pos = 0usize;
    for (a, b) in spans {
        let start = char_pos;
        char_pos += s[a..b].chars().count();
        out.push((start, char_pos));
    }
    out
}

thread_local! {
    /// Span scratch for [`CompiledConstrained`] key extraction — reused
    /// so a key evaluation allocates nothing but the key itself.
    static KEY_SPANS: RefCell<Vec<(usize, usize)>> = const { RefCell::new(Vec::new()) };
}

/// A [`ConstrainedPattern`] whose embedded pattern is compiled, plus the
/// capture plan (element boundaries of each constrained segment), so
/// blocking-key extraction runs on the span-capturing compiled tiers.
#[derive(Debug, Clone)]
pub struct CompiledConstrained {
    program: CompiledPattern,
    /// `(start, end)` element boundaries of each *constrained* segment
    /// within the embedded pattern.
    captures: Vec<(usize, usize)>,
    /// Byte-offset capture windows for fully fixed-width fused
    /// programs: every element's width is known at compile time, so on
    /// ASCII input (1 char = 1 byte) each capture is a fixed slice of
    /// the input and key extraction needs no span capture at all.
    fixed_slices: Option<Vec<(usize, usize)>>,
    source: ConstrainedPattern,
}

impl CompiledConstrained {
    /// Compile the keyer `q`.
    #[must_use]
    pub fn compile(q: &ConstrainedPattern) -> CompiledConstrained {
        let program = CompiledPattern::compile(q.embedded());
        let mut captures = Vec::new();
        let mut start = 0usize;
        for seg in q.segments() {
            let end = start + seg.pattern.len();
            if seg.constrained {
                captures.push((start, end));
            }
            start = end;
        }
        // Fully fixed-width fused program: element boundaries are
        // compile-time prefix sums of the op widths.
        let fixed_slices = (program.fused.is_some_and(|p| p.is_fixed())).then(|| {
            let mut offsets = Vec::with_capacity(program.ops.len() + 1);
            let mut at = 0usize;
            offsets.push(0);
            for op in &program.ops {
                at += op.interval().0 as usize;
                offsets.push(at);
            }
            captures
                .iter()
                .map(|&(s, e)| (offsets[s], offsets[e]))
                .collect()
        });
        CompiledConstrained {
            program,
            captures,
            fixed_slices,
            source: q.clone(),
        }
    }

    /// The keyer this program was compiled from.
    #[must_use]
    pub fn source(&self) -> &ConstrainedPattern {
        &self.source
    }

    /// The compiled embedded pattern.
    #[must_use]
    pub fn program(&self) -> &CompiledPattern {
        &self.program
    }

    /// Does `s` match the embedded pattern?
    #[must_use]
    pub fn matches(&self, s: &str) -> bool {
        self.program.matches(s)
    }

    /// The blocking key of `s`, written into `out` (cleared first).
    /// Returns `false` (leaving `out` empty) if `s` does not match.
    /// Identical to [`ConstrainedPattern::key`] but allocation-free.
    pub fn key_into(&self, s: &str, out: &mut String) -> bool {
        self.key_into_with(s, out, PatternEngine::Fused)
    }

    /// [`CompiledConstrained::key_into`] on an explicit tier. Exactly
    /// one `pattern.{fused,vm,interp}_evals` counter ticks per call.
    pub fn key_into_with(&self, s: &str, out: &mut String, engine: PatternEngine) -> bool {
        out.clear();
        match self.program.pick(s, engine) {
            PatternEngine::Interp => {
                anmat_obs::counter!("pattern.interp_evals").incr();
                match self.source.key(s) {
                    Some(k) => {
                        out.push_str(&k);
                        true
                    }
                    None => false,
                }
            }
            tier => {
                let fused = tier == PatternEngine::Fused;
                anmat_obs::counter!(if fused {
                    "pattern.fused_evals"
                } else {
                    "pattern.vm_evals"
                })
                .incr();
                if fused && s.is_ascii() {
                    if let Some(slices) = &self.fixed_slices {
                        // Fixed-width fast path: verify without span
                        // capture, then slice at compile-time offsets.
                        if !self.program.exec(s, None, true) {
                            return false;
                        }
                        for (c, &(from, to)) in slices.iter().enumerate() {
                            if c > 0 {
                                out.push('\u{1F}');
                            }
                            out.push_str(&s[from..to]);
                        }
                        return true;
                    }
                }
                KEY_SPANS.with(|buf| {
                    let spans = &mut *buf.borrow_mut();
                    if !self.program.exec(s, Some(spans), fused) {
                        return false;
                    }
                    // Byte spans slice the key segments directly —
                    // identical strings to the interpreter's char-index
                    // captures, without the index conversion.
                    for (c, &(start, end)) in self.captures.iter().enumerate() {
                        if c > 0 {
                            out.push('\u{1F}');
                        }
                        // Mirror `ConstrainedPattern::captures`: an empty
                        // segment captures zero width at its boundary.
                        let from = if start == end {
                            spans.get(start).map_or(s.len(), |&(a, _)| a)
                        } else {
                            spans[start].0
                        };
                        let to = if start == end { from } else { spans[end - 1].1 };
                        out.push_str(&s[from..to]);
                    }
                    true
                })
            }
        }
    }

    /// The blocking key of `s`, or `None` if it does not match —
    /// allocating convenience over [`CompiledConstrained::key_into`].
    #[must_use]
    pub fn key(&self, s: &str) -> Option<String> {
        let mut out = String::new();
        self.key_into(s, &mut out).then_some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::{match_pattern, match_spans};

    fn pat(s: &str) -> Pattern {
        s.parse().unwrap()
    }

    fn cp(s: &str) -> ConstrainedPattern {
        s.parse().unwrap()
    }

    const ENGINES: [PatternEngine; 3] = [
        PatternEngine::Interp,
        PatternEngine::Vm,
        PatternEngine::Fused,
    ];

    #[test]
    fn ascii_set_matches_class_semantics() {
        for class in [
            SymbolClass::Upper,
            SymbolClass::Lower,
            SymbolClass::Digit,
            SymbolClass::Symbol,
            SymbolClass::Any,
            SymbolClass::Literal('x'),
            SymbolClass::Literal('É'), // non-ASCII literal: empty set
        ] {
            let set = AsciiSet::of_class(class);
            for b in 0u8..128 {
                assert_eq!(
                    set.contains(b),
                    class.matches(b as char),
                    "{class:?} byte {b}"
                );
            }
        }
    }

    #[test]
    fn class_set_matches_class_semantics_beyond_ascii() {
        let probes = [
            'a',
            'Z',
            '5',
            '-',
            ' ',
            'É',
            'é',
            'ß',
            'Ñ',
            'ñ',
            'Ω',
            'ω',
            '中',
            '٣',
            '😀',
            '\u{80}',
            '\u{10FFFF}',
            'Ǆ',
            'ǅ',
            /* titlecase: Symbol */ 'ǆ',
        ];
        for class in [
            SymbolClass::Upper,
            SymbolClass::Lower,
            SymbolClass::Digit,
            SymbolClass::Symbol,
            SymbolClass::Any,
            SymbolClass::Literal('É'),
            SymbolClass::Literal('x'),
        ] {
            let set = ClassSet::of_class(class);
            for c in probes {
                assert_eq!(set.contains_char(c), class.matches(c), "{class:?} {c:?}");
            }
        }
    }

    #[test]
    fn spill_ranges_agree_with_oracle_on_sampled_planes() {
        // Every 97th codepoint (coprime stride) across the whole space.
        let classes = [SymbolClass::Upper, SymbolClass::Lower, SymbolClass::Symbol];
        let sets: Vec<ClassSet> = classes.iter().map(|&c| ClassSet::of_class(c)).collect();
        let mut cp = 0x80u32;
        while cp <= 0x10FFFF {
            if let Some(c) = char::from_u32(cp) {
                for (class, set) in classes.iter().zip(&sets) {
                    assert_eq!(
                        set.contains_char(c),
                        class.matches(c),
                        "{class:?} U+{cp:04X}"
                    );
                }
            }
            cp += 97;
        }
    }

    #[test]
    fn op_shapes() {
        let p = pat("a\\D{3}\\LL*\\A{1,4}");
        let c = CompiledPattern::compile(&p);
        assert!(matches!(c.ops()[0], Op::Byte(b'a')));
        assert!(matches!(c.ops()[1], Op::Exact { n: 3, .. }));
        assert!(matches!(c.ops()[2], Op::AtLeast { min: 0, .. }));
        assert!(matches!(c.ops()[3], Op::Range { min: 1, max: 4, .. }));
    }

    #[test]
    fn fused_selection() {
        // All fixed-width → fused.
        assert!(CompiledPattern::compile(&pat("900\\D{2}")).is_fused());
        assert!(CompiledPattern::compile(&pat("\\D{5}")).is_fused());
        assert!(CompiledPattern::compile(&pat("")).is_fused());
        // Exactly one variable op (anywhere) → fused.
        assert!(CompiledPattern::compile(&pat("\\D*")).is_fused());
        assert!(CompiledPattern::compile(&pat("\\A*a")).is_fused());
        assert!(CompiledPattern::compile(&pat("\\LU\\LL*")).is_fused());
        assert!(CompiledPattern::compile(&pat("\\D{2,4}")).is_fused());
        // Two variable ops → needs the backtracking VM.
        assert!(!CompiledPattern::compile(&pat("\\LU\\LL*\\ \\A*")).is_fused());
        assert!(!CompiledPattern::compile(&pat("a*b*c")).is_fused());
    }

    #[test]
    fn all_tiers_agree_on_fixtures() {
        let patterns = [
            "90001",
            "\\D{5}",
            "\\D*",
            "900\\D{2}",
            "\\LU\\LL*\\ \\A*",
            "\\A*a",
            "\\LL+\\LL+",
            "\\D{2,4}",
            "a*b*c",
            "\\D{3}\\S\\D{4}",
            "",
            "\\LU\\LL+",
            "\\A{2}",
        ];
        let inputs = [
            "90001",
            "90002",
            "9000",
            "900010",
            "",
            "a",
            "bbba",
            "ab",
            "aaa",
            "c",
            "John Charles",
            "JOHN Charles",
            "John",
            "555-1234",
            "55511234",
            "12a",
            "ABcd12",
            // full UTF-8 coverage, no interpreter fallback:
            "Étienne",
            "École Nationale",
            "ΩΜΕΓΑ",
            "ωμεγα",
            "中文",
            "٣٤٥",
            "É",
            "ß",
            "a😀b",
        ];
        for ps in patterns {
            let p = pat(ps);
            let c = CompiledPattern::compile(&p);
            for s in inputs {
                let expected = match_pattern(&p, s);
                for engine in ENGINES {
                    assert_eq!(
                        c.matches_with(s, engine),
                        expected,
                        "{ps:?} vs {s:?} on {engine}"
                    );
                }
            }
        }
    }

    #[test]
    fn all_tiers_spans_agree_with_interpreter() {
        let cases = [
            ("\\A*a", "bbba"),
            ("\\A*a", "aaa"),
            ("a*b*c", "c"),
            ("\\LU\\LL*\\ \\A*", "John Charles"),
            ("\\LU+\\LL+\\D{2}", "ABcd12"),
            ("\\D{3}\\D{2}", "90001"),
            // char-index spans on multibyte input:
            ("\\LU\\LL*", "Étienne"),
            ("\\LU\\LL*\\ \\A*", "Éti enne😀"),
            ("\\A*", "中文字"),
            ("\\S\\D{2}\\S*", "٣42"),
        ];
        for (ps, s) in cases {
            let p = pat(ps);
            let c = CompiledPattern::compile(&p);
            let expected = match_spans(&p, s);
            for engine in ENGINES {
                assert_eq!(
                    c.spans_with(s, engine),
                    expected,
                    "{ps:?} vs {s:?} on {engine}"
                );
            }
        }
    }

    #[test]
    fn compiled_key_matches_source_key() {
        let cases = [
            ("[\\D{3}]\\D{2}", vec!["90001", "90101", "9000", ""]),
            (
                "[\\LU\\LL*\\ ]\\A*",
                vec!["John Charles", "John Bosco", "Susan Boyle", "john x"],
            ),
            ("[\\LL+]-[\\LL+]", vec!["ab-c", "a-bc", "x-y"]),
            ("\\A*,\\ [Donald]\\A*", vec!["x, Donald Duck", "nope"]),
            ("[\\D{3}]\\D{2}", vec!["90\u{E9}01"]), // multibyte, no fallback
            ("[\\LU\\LL*]\\ \\A*", vec!["Étienne Dupont", "Ñandú x"]),
            ("[\\A{2}]\\A*", vec!["中文字符", "😀ab"]),
        ];
        for (qs, inputs) in cases {
            let q = cp(qs);
            let c = CompiledConstrained::compile(&q);
            for s in inputs {
                for engine in ENGINES {
                    let mut out = String::new();
                    let hit = c.key_into_with(s, &mut out, engine);
                    assert_eq!(hit.then_some(out), q.key(s), "{qs:?} vs {s:?} on {engine}");
                }
            }
        }
    }

    #[test]
    fn key_into_reuses_buffer() {
        let q = cp("[\\D{3}]\\D{2}");
        let c = CompiledConstrained::compile(&q);
        let mut buf = String::new();
        assert!(c.key_into("90001", &mut buf));
        assert_eq!(buf, "900");
        assert!(!c.key_into("x", &mut buf));
        assert!(buf.is_empty());
        assert!(c.key_into("85032", &mut buf));
        assert_eq!(buf, "850");
    }

    #[test]
    fn engine_parsing() {
        assert_eq!("interp".parse(), Ok(PatternEngine::Interp));
        assert_eq!("vm".parse(), Ok(PatternEngine::Vm));
        assert_eq!("fused".parse(), Ok(PatternEngine::Fused));
        assert_eq!(PatternEngine::default(), PatternEngine::Fused);
        assert!("jit".parse::<PatternEngine>().is_err());
        assert_eq!(PatternEngine::Vm.to_string(), "vm");
    }
}
