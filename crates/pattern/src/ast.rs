//! Pattern abstract syntax: quantified symbol classes.
//!
//! A [`Pattern`] is a concatenation of [`Element`]s, each a
//! [`SymbolClass`] with a [`Quantifier`]. The language
//! deliberately excludes alternation and nested repetition (`(α+)*`), per
//! §2 of the paper.

use crate::error::PatternError;
use crate::symbol::SymbolClass;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Repetition count attached to a pattern element.
///
/// `α{N}` is N repetitions, `α+` is one-or-more, `α*` (Kleene star) is
/// zero-or-more; a bare element means exactly one. Ranges `{N,M}` and
/// `{N,}` are accepted for completeness — discovery only ever produces
/// `One`, `Exactly`, `Plus` and `Star`, but the detector must be able to
/// evaluate hand-written rules too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Quantifier {
    /// Exactly one occurrence (no suffix).
    One,
    /// Exactly `N` occurrences: `{N}`.
    Exactly(u32),
    /// One or more occurrences: `+`.
    Plus,
    /// Zero or more occurrences: `*`.
    Star,
    /// At least `N` occurrences: `{N,}`.
    AtLeast(u32),
    /// Between `min` and `max` occurrences inclusive: `{min,max}`.
    Range(u32, u32),
}

impl Quantifier {
    /// The inclusive repetition interval `(min, max)`; `None` max = unbounded.
    #[must_use]
    pub fn interval(&self) -> (u32, Option<u32>) {
        match *self {
            Quantifier::One => (1, Some(1)),
            Quantifier::Exactly(n) => (n, Some(n)),
            Quantifier::Plus => (1, None),
            Quantifier::Star => (0, None),
            Quantifier::AtLeast(n) => (n, None),
            Quantifier::Range(a, b) => (a, Some(b)),
        }
    }

    /// Build the canonical quantifier for an interval.
    ///
    /// Returns [`PatternError::EmptyInterval`] if `min > max`.
    pub fn from_interval(min: u32, max: Option<u32>) -> Result<Quantifier, PatternError> {
        match max {
            Some(max) if min > max => Err(PatternError::EmptyInterval { min, max }),
            Some(max) if min == max => Ok(if min == 1 {
                Quantifier::One
            } else {
                Quantifier::Exactly(min)
            }),
            Some(max) => Ok(Quantifier::Range(min, max)),
            None => Ok(match min {
                0 => Quantifier::Star,
                1 => Quantifier::Plus,
                n => Quantifier::AtLeast(n),
            }),
        }
    }

    /// Can this quantifier repeat zero times (i.e. admit `ϵ`)?
    #[must_use]
    pub fn admits_empty(&self) -> bool {
        self.interval().0 == 0
    }

    /// Is the repetition count unbounded?
    #[must_use]
    pub fn is_unbounded(&self) -> bool {
        self.interval().1.is_none()
    }
}

impl fmt::Display for Quantifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Quantifier::One => Ok(()),
            Quantifier::Exactly(n) => write!(f, "{{{n}}}"),
            Quantifier::Plus => write!(f, "+"),
            Quantifier::Star => write!(f, "*"),
            Quantifier::AtLeast(n) => write!(f, "{{{n},}}"),
            Quantifier::Range(a, b) => write!(f, "{{{a},{b}}}"),
        }
    }
}

/// One quantified symbol class, e.g. `\D{2}` or `\LL*`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Element {
    /// The symbol class being repeated.
    pub class: SymbolClass,
    /// How many times it repeats.
    pub quant: Quantifier,
}

impl Element {
    /// An element occurring exactly once.
    #[must_use]
    pub fn once(class: SymbolClass) -> Element {
        Element {
            class,
            quant: Quantifier::One,
        }
    }

    /// An element with an explicit quantifier.
    #[must_use]
    pub fn new(class: SymbolClass, quant: Quantifier) -> Element {
        Element { class, quant }
    }

    /// A literal character occurring exactly once.
    #[must_use]
    pub fn literal(c: char) -> Element {
        Element::once(SymbolClass::Literal(c))
    }

    /// Minimum number of characters this element can consume.
    #[must_use]
    pub fn min_len(&self) -> usize {
        self.quant.interval().0 as usize
    }

    /// Maximum number of characters this element can consume
    /// (`None` = unbounded).
    #[must_use]
    pub fn max_len(&self) -> Option<usize> {
        self.quant.interval().1.map(|m| m as usize)
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.class, self.quant)
    }
}

/// A pattern: a concatenation of quantified symbol classes.
///
/// Parse one from the paper's textual syntax with [`str::parse`], print it
/// with [`fmt::Display`]. Construction through [`Pattern::new`] normalizes
/// nothing; use [`Pattern::normalized`] to merge adjacent same-class
/// elements (useful before containment checks).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Pattern {
    elements: Vec<Element>,
}

impl Pattern {
    /// Build a pattern from elements.
    #[must_use]
    pub fn new(elements: Vec<Element>) -> Pattern {
        Pattern { elements }
    }

    /// The pattern that matches exactly the literal string `s`.
    #[must_use]
    pub fn literal(s: &str) -> Pattern {
        Pattern {
            elements: s.chars().map(Element::literal).collect(),
        }
    }

    /// The empty pattern (matches only `ϵ`).
    #[must_use]
    pub fn empty() -> Pattern {
        Pattern {
            elements: Vec::new(),
        }
    }

    /// The universal pattern `\A*`.
    #[must_use]
    pub fn any_string() -> Pattern {
        Pattern {
            elements: vec![Element::new(SymbolClass::Any, Quantifier::Star)],
        }
    }

    /// The elements in order.
    #[must_use]
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Number of elements (not characters).
    #[must_use]
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Does the pattern contain no elements?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Append an element.
    pub fn push(&mut self, e: Element) {
        self.elements.push(e);
    }

    /// Concatenate two patterns.
    #[must_use]
    pub fn concat(&self, other: &Pattern) -> Pattern {
        let mut elements = self.elements.clone();
        elements.extend_from_slice(&other.elements);
        Pattern { elements }
    }

    /// Minimum length of any matching string.
    #[must_use]
    pub fn min_len(&self) -> usize {
        self.elements.iter().map(Element::min_len).sum()
    }

    /// Maximum length of any matching string (`None` = unbounded).
    #[must_use]
    pub fn max_len(&self) -> Option<usize> {
        let mut total = 0usize;
        for e in &self.elements {
            total += e.max_len()?;
        }
        Some(total)
    }

    /// Does every matching string have the same length?
    #[must_use]
    pub fn is_fixed_length(&self) -> bool {
        self.max_len() == Some(self.min_len())
    }

    /// Is this a pure literal pattern (matches exactly one string)?
    #[must_use]
    pub fn is_literal(&self) -> bool {
        self.elements
            .iter()
            .all(|e| e.class.is_literal() && e.quant == Quantifier::One)
    }

    /// If [`Pattern::is_literal`], the single matching string.
    #[must_use]
    pub fn as_literal(&self) -> Option<String> {
        if !self.is_literal() {
            return None;
        }
        Some(
            self.elements
                .iter()
                .map(|e| match e.class {
                    SymbolClass::Literal(c) => c,
                    _ => unreachable!("is_literal checked"),
                })
                .collect(),
        )
    }

    /// Does the string `s` match (satisfy) this pattern? (`s ⊨ P`.)
    #[must_use]
    pub fn matches(&self, s: &str) -> bool {
        crate::matcher::match_pattern(self, s)
    }

    /// Merge adjacent elements with identical classes by adding their
    /// repetition intervals.
    ///
    /// `\D\D{2}` becomes `\D{3}`; `\LL+\LL*` becomes `\LL+`. The language
    /// is unchanged; the element count shrinks, which speeds up matching
    /// and makes containment checks more precise in their fast paths.
    #[must_use]
    pub fn normalized(&self) -> Pattern {
        let mut out: Vec<Element> = Vec::with_capacity(self.elements.len());
        for e in &self.elements {
            // Drop elements that can only match the empty string ({0}).
            if e.quant.interval() == (0, Some(0)) {
                continue;
            }
            if let Some(last) = out.last_mut() {
                // Adjacent once-literals stay separate ("900" should print
                // as `900`, not `90{2}`); anything else merges.
                let both_plain_literals = last.class.is_literal()
                    && last.quant == Quantifier::One
                    && e.quant == Quantifier::One;
                if last.class == e.class && !both_plain_literals {
                    let (amin, amax) = last.quant.interval();
                    let (bmin, bmax) = e.quant.interval();
                    let min = amin.saturating_add(bmin);
                    let max = match (amax, bmax) {
                        (Some(x), Some(y)) => Some(x.saturating_add(y)),
                        _ => None,
                    };
                    last.quant = Quantifier::from_interval(min, max)
                        .expect("sum of valid intervals is valid");
                    continue;
                }
            }
            out.push(*e);
        }
        Pattern { elements: out }
    }

    /// A coarse specificity score: more literal/narrow patterns score
    /// higher. Used by discovery to prefer the most specific tableau
    /// pattern among candidates with equal support.
    #[must_use]
    pub fn specificity(&self) -> u32 {
        self.elements
            .iter()
            .map(|e| {
                let class_score = match e.class {
                    SymbolClass::Literal(_) => 4,
                    SymbolClass::Upper | SymbolClass::Lower | SymbolClass::Digit => 2,
                    SymbolClass::Symbol => 2,
                    SymbolClass::Any => 0,
                };
                let quant_score = match e.quant.interval() {
                    (_, Some(_)) => 1,
                    (_, None) => 0,
                };
                class_score + quant_score
            })
            .sum()
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.elements {
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for Pattern {
    type Err = PatternError;

    fn from_str(s: &str) -> Result<Pattern, PatternError> {
        crate::parser::parse_pattern(s)
    }
}

impl FromIterator<Element> for Pattern {
    fn from_iter<I: IntoIterator<Item = Element>>(iter: I) -> Pattern {
        Pattern {
            elements: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantifier_intervals() {
        assert_eq!(Quantifier::One.interval(), (1, Some(1)));
        assert_eq!(Quantifier::Exactly(4).interval(), (4, Some(4)));
        assert_eq!(Quantifier::Plus.interval(), (1, None));
        assert_eq!(Quantifier::Star.interval(), (0, None));
        assert_eq!(Quantifier::AtLeast(3).interval(), (3, None));
        assert_eq!(Quantifier::Range(2, 5).interval(), (2, Some(5)));
    }

    #[test]
    fn quantifier_from_interval_roundtrip() {
        for q in [
            Quantifier::One,
            Quantifier::Exactly(4),
            Quantifier::Plus,
            Quantifier::Star,
            Quantifier::AtLeast(3),
            Quantifier::Range(2, 5),
        ] {
            let (min, max) = q.interval();
            let q2 = Quantifier::from_interval(min, max).unwrap();
            assert_eq!(q2.interval(), (min, max));
        }
    }

    #[test]
    fn from_interval_rejects_empty() {
        assert!(matches!(
            Quantifier::from_interval(3, Some(2)),
            Err(PatternError::EmptyInterval { min: 3, max: 2 })
        ));
    }

    #[test]
    fn literal_pattern_lengths() {
        let p = Pattern::literal("abc");
        assert_eq!(p.min_len(), 3);
        assert_eq!(p.max_len(), Some(3));
        assert!(p.is_fixed_length());
        assert!(p.is_literal());
        assert_eq!(p.as_literal().as_deref(), Some("abc"));
    }

    #[test]
    fn unbounded_lengths() {
        let p = Pattern::any_string();
        assert_eq!(p.min_len(), 0);
        assert_eq!(p.max_len(), None);
        assert!(!p.is_fixed_length());
        assert!(!p.is_literal());
    }

    #[test]
    fn normalization_merges_adjacent() {
        let p = Pattern::new(vec![
            Element::once(SymbolClass::Digit),
            Element::new(SymbolClass::Digit, Quantifier::Exactly(2)),
            Element::once(SymbolClass::Lower),
        ]);
        let n = p.normalized();
        assert_eq!(n.len(), 2);
        assert_eq!(n.elements()[0].quant, Quantifier::Exactly(3));
    }

    #[test]
    fn normalization_merges_unbounded() {
        let p = Pattern::new(vec![
            Element::new(SymbolClass::Lower, Quantifier::Plus),
            Element::new(SymbolClass::Lower, Quantifier::Star),
        ]);
        let n = p.normalized();
        assert_eq!(n.len(), 1);
        assert_eq!(n.elements()[0].quant, Quantifier::Plus);
    }

    #[test]
    fn normalization_drops_zero_width() {
        let p = Pattern::new(vec![
            Element::new(SymbolClass::Digit, Quantifier::Exactly(0)),
            Element::once(SymbolClass::Lower),
        ]);
        assert_eq!(p.normalized().len(), 1);
    }

    #[test]
    fn specificity_orders_patterns() {
        let literal = Pattern::literal("900");
        let classed: Pattern = "\\D{3}".parse().unwrap();
        let any = Pattern::any_string();
        assert!(literal.specificity() > classed.specificity());
        assert!(classed.specificity() > any.specificity());
    }

    #[test]
    fn concat_preserves_order() {
        let a = Pattern::literal("90");
        let b: Pattern = "\\D{3}".parse().unwrap();
        let c = a.concat(&b);
        assert_eq!(c.to_string(), "90\\D{3}");
    }
}
