//! Differential property tests: the compiled bytecode VM must be
//! observationally identical to the AST interpreter — match decisions,
//! leftmost-greedy spans, and constrained blocking keys — over generated
//! patterns × strings, including non-ASCII inputs that exercise the
//! interpreter fallback and mixed corpora that cross both paths.
//!
//! Case count scales with `PROPTEST_CASES` (CI runs a dedicated step so
//! the VM gets elevated coverage on every push).

use anmat_pattern::{
    match_pattern, match_spans, CompiledConstrained, CompiledPattern, ConstrainedPattern, Element,
    Pattern, Quantifier, Segment, SymbolClass,
};
use proptest::prelude::*;

/// Strategy: an arbitrary symbol class over a small printable alphabet.
fn any_class() -> impl Strategy<Value = SymbolClass> {
    prop_oneof![
        prop::char::ranges(vec!['a'..='z', 'A'..='Z', '0'..='9', '-'..='.'].into())
            .prop_map(SymbolClass::Literal),
        Just(SymbolClass::Upper),
        Just(SymbolClass::Lower),
        Just(SymbolClass::Digit),
        Just(SymbolClass::Symbol),
        Just(SymbolClass::Any),
    ]
}

/// Strategy: an arbitrary (small) pattern.
fn any_pattern() -> impl Strategy<Value = Pattern> {
    prop::collection::vec(
        (any_class(), 0u32..4, prop::option::of(0u32..4)).prop_filter_map(
            "valid interval",
            |(class, min, extra)| {
                let max = extra.map(|e| min + e);
                Quantifier::from_interval(min, max)
                    .ok()
                    .map(|q| Element::new(class, q))
            },
        ),
        0..6,
    )
    .prop_map(Pattern::new)
}

/// Strategy: a short ASCII string over the pattern alphabet (the VM's
/// fast path).
fn any_ascii_string() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop::char::ranges(vec!['a'..='z', 'A'..='Z', '0'..='9', ' '..=' ', '-'..='-'].into()),
        0..12,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

/// Strategy: a short string mixing ASCII with multi-byte scalars — every
/// non-ASCII char routes the compiled program through the interpreter
/// fallback, and mixed corpora cross both paths within one run.
fn any_unicode_string() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop_oneof![
            prop::char::ranges(vec!['a'..='z', 'A'..='Z', '0'..='9', '-'..='-'].into()),
            prop::char::ranges(
                vec![
                    'É'..='É',
                    'ß'..='ß',
                    'ñ'..='ñ',
                    'Ω'..='Ω',
                    '中'..='中',
                    '٣'..='٣',
                    '\u{1F600}'..='\u{1F600}',
                ]
                .into()
            ),
        ],
        0..10,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

/// Generate a string the pattern is guaranteed to match, by expanding
/// each element with an in-range repetition count (deterministic in
/// `seed`), so positive matches — where span parity matters — are
/// exercised as densely as negative ones.
fn string_matching(p: &Pattern, seed: u64) -> String {
    let mut out = String::new();
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for e in p.elements() {
        let (min, max) = e.quant.interval();
        let span = match max {
            Some(m) => min + (next() as u32 % (m - min + 1)),
            None => min + (next() as u32 % 3),
        };
        for _ in 0..span {
            let c = match e.class {
                SymbolClass::Literal(c) => c,
                SymbolClass::Upper => char::from(b'A' + (next() % 26) as u8),
                SymbolClass::Lower => char::from(b'a' + (next() % 26) as u8),
                SymbolClass::Digit => char::from(b'0' + (next() % 10) as u8),
                SymbolClass::Symbol => ['-', '.', ' ', ','][(next() % 4) as usize],
                SymbolClass::Any => char::from(b'a' + (next() % 26) as u8),
            };
            out.push(c);
        }
    }
    out
}

/// Strategy: an arbitrary constrained pattern — 1..4 segments, each an
/// independently generated sub-pattern, with a random constrained mask.
fn any_constrained() -> impl Strategy<Value = ConstrainedPattern> {
    prop::collection::vec((any_pattern(), any::<bool>()), 1..4).prop_map(|parts| {
        let segments: Vec<Segment> = parts
            .into_iter()
            .map(|(p, constrained)| {
                if constrained {
                    Segment::constrained(p)
                } else {
                    Segment::free(p)
                }
            })
            .collect();
        ConstrainedPattern::new(segments).expect("non-empty segment list")
    })
}

proptest! {
    /// Match decisions agree on arbitrary ASCII strings (the VM path).
    #[test]
    fn vm_matches_interpreter_on_ascii(p in any_pattern(), s in any_ascii_string()) {
        let c = CompiledPattern::compile(&p);
        prop_assert_eq!(c.matches(&s), match_pattern(&p, &s), "pattern {} on {:?}", p, s);
    }

    /// Match decisions agree on unicode strings (fallback + mixed).
    #[test]
    fn vm_matches_interpreter_on_unicode(p in any_pattern(), s in any_unicode_string()) {
        let c = CompiledPattern::compile(&p);
        prop_assert_eq!(c.matches(&s), match_pattern(&p, &s), "pattern {} on {:?}", p, s);
    }

    /// Positive-case parity: generated witnesses match through the VM
    /// too, and their spans are identical to the interpreter's
    /// leftmost-greedy decomposition.
    #[test]
    fn vm_spans_agree_on_witnesses(p in any_pattern(), seed in any::<u64>()) {
        let c = CompiledPattern::compile(&p);
        let s = string_matching(&p, seed);
        prop_assert!(c.matches(&s), "witness {:?} must match {} via the VM", s, p);
        prop_assert_eq!(c.spans(&s), match_spans(&p, &s), "pattern {} on {:?}", p, s);
    }

    /// Span parity on arbitrary strings — `None` agrees with `None`,
    /// and successful decompositions agree span for span.
    #[test]
    fn vm_spans_agree_on_arbitrary_strings(p in any_pattern(), s in any_ascii_string()) {
        let c = CompiledPattern::compile(&p);
        prop_assert_eq!(c.spans(&s), match_spans(&p, &s), "pattern {} on {:?}", p, s);
    }

    /// Blocking keys agree: the capturing VM derives the same `≡_Q` key
    /// as the interpreter for generated constrained patterns.
    #[test]
    fn compiled_key_agrees_on_ascii(q in any_constrained(), s in any_ascii_string()) {
        let c = CompiledConstrained::compile(&q);
        prop_assert_eq!(c.key(&s), q.key(&s), "keyer {} on {:?}", q, s);
    }

    /// Blocking keys agree on unicode strings (interpreter fallback).
    #[test]
    fn compiled_key_agrees_on_unicode(q in any_constrained(), s in any_unicode_string()) {
        let c = CompiledConstrained::compile(&q);
        prop_assert_eq!(c.key(&s), q.key(&s), "keyer {} on {:?}", q, s);
    }

    /// Key parity on witnesses of the embedded pattern, where the keyer
    /// is guaranteed to produce a key on both paths.
    #[test]
    fn compiled_key_agrees_on_witnesses(q in any_constrained(), seed in any::<u64>()) {
        let c = CompiledConstrained::compile(&q);
        let s = string_matching(q.embedded(), seed);
        let (vm, interp) = (c.key(&s), q.key(&s));
        prop_assert!(interp.is_some(), "witness {:?} must key under {}", s, q);
        prop_assert_eq!(vm, interp, "keyer {} on {:?}", q, s);
    }
}
