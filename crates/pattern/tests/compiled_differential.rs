//! Differential property tests: every compiled execution tier — the
//! backtracking bytecode VM and the fused single-pass matcher — must be
//! observationally identical to the AST interpreter (the semantic
//! oracle): match decisions, leftmost-greedy spans, and constrained
//! blocking keys, over generated patterns × strings. Since the VM went
//! full-UTF-8 there is no interpreter fallback left, so non-ASCII and
//! mixed corpora run through the exact same compiled code paths as
//! ASCII and must agree just the same.
//!
//! Case count scales with `PROPTEST_CASES` (CI runs a dedicated step so
//! the compiled tiers get elevated coverage on every push).

use anmat_pattern::{
    match_pattern, match_spans, CompiledConstrained, CompiledPattern, ConstrainedPattern, Element,
    Pattern, PatternEngine, Quantifier, Segment, SymbolClass,
};
use proptest::prelude::*;

/// The compiled tiers under test, each checked against the interpreter.
/// `Fused` routes through the single-pass matcher when the pattern has
/// a fuse plan and falls back to the VM otherwise — exactly the
/// production `pick` logic.
const COMPILED_TIERS: [PatternEngine; 2] = [PatternEngine::Vm, PatternEngine::Fused];

/// Strategy: an arbitrary symbol class over a small printable alphabet.
fn any_class() -> impl Strategy<Value = SymbolClass> {
    prop_oneof![
        prop::char::ranges(vec!['a'..='z', 'A'..='Z', '0'..='9', '-'..='.'].into())
            .prop_map(SymbolClass::Literal),
        Just(SymbolClass::Upper),
        Just(SymbolClass::Lower),
        Just(SymbolClass::Digit),
        Just(SymbolClass::Symbol),
        Just(SymbolClass::Any),
    ]
}

/// Strategy: an arbitrary (small) pattern.
fn any_pattern() -> impl Strategy<Value = Pattern> {
    prop::collection::vec(
        (any_class(), 0u32..4, prop::option::of(0u32..4)).prop_filter_map(
            "valid interval",
            |(class, min, extra)| {
                let max = extra.map(|e| min + e);
                Quantifier::from_interval(min, max)
                    .ok()
                    .map(|q| Element::new(class, q))
            },
        ),
        0..6,
    )
    .prop_map(Pattern::new)
}

/// Strategy: a short ASCII string over the pattern alphabet (the SWAR
/// fast path).
fn any_ascii_string() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop::char::ranges(vec!['a'..='z', 'A'..='Z', '0'..='9', ' '..=' ', '-'..='-'].into()),
        0..12,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

/// Strategy: a short string mixing ASCII with multi-byte scalars — 2-,
/// 3-, and 4-byte encodings, titlecase, and non-ASCII digits — so the
/// UTF-8 paths of both compiled tiers (class spillover, char-boundary
/// backtracking, forced run lengths in chars) get direct coverage.
fn any_unicode_string() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop_oneof![
            prop::char::ranges(vec!['a'..='z', 'A'..='Z', '0'..='9', '-'..='-'].into()),
            prop::char::ranges(
                vec![
                    'É'..='É',
                    'ß'..='ß',
                    'ñ'..='ñ',
                    'Ω'..='Ω',
                    'ǅ'..='ǅ',
                    '中'..='中',
                    '٣'..='٣',
                    '\u{1F600}'..='\u{1F600}',
                ]
                .into()
            ),
        ],
        0..10,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

/// Generate a string the pattern is guaranteed to match, by expanding
/// each element with an in-range repetition count (deterministic in
/// `seed`), so positive matches — where span parity matters — are
/// exercised as densely as negative ones. With `unicode` set, class
/// expansions draw non-ASCII members too, producing multibyte
/// witnesses.
fn string_matching(p: &Pattern, seed: u64, unicode: bool) -> String {
    let mut out = String::new();
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for e in p.elements() {
        let (min, max) = e.quant.interval();
        let span = match max {
            Some(m) => min + (next() as u32 % (m - min + 1)),
            None => min + (next() as u32 % 3),
        };
        for _ in 0..span {
            let wide = unicode && next() % 3 == 0;
            let c = match e.class {
                SymbolClass::Literal(c) => c,
                SymbolClass::Upper if wide => ['É', 'Ω', 'Ǆ'][(next() % 3) as usize],
                SymbolClass::Upper => char::from(b'A' + (next() % 26) as u8),
                SymbolClass::Lower if wide => ['ß', 'ñ', 'é'][(next() % 3) as usize],
                SymbolClass::Lower => char::from(b'a' + (next() % 26) as u8),
                // `\D` is ASCII-only by the language definition, so its
                // witnesses stay ASCII even in unicode mode.
                SymbolClass::Digit => char::from(b'0' + (next() % 10) as u8),
                SymbolClass::Symbol if wide => ['中', '٣', 'ǅ', '\u{1F600}'][(next() % 4) as usize],
                SymbolClass::Symbol => ['-', '.', ' ', ','][(next() % 4) as usize],
                SymbolClass::Any if wide => ['中', 'é', '\u{1F600}'][(next() % 3) as usize],
                SymbolClass::Any => char::from(b'a' + (next() % 26) as u8),
            };
            out.push(c);
        }
    }
    out
}

/// Strategy: an arbitrary constrained pattern — 1..4 segments, each an
/// independently generated sub-pattern, with a random constrained mask.
fn any_constrained() -> impl Strategy<Value = ConstrainedPattern> {
    prop::collection::vec((any_pattern(), any::<bool>()), 1..4).prop_map(|parts| {
        let segments: Vec<Segment> = parts
            .into_iter()
            .map(|(p, constrained)| {
                if constrained {
                    Segment::constrained(p)
                } else {
                    Segment::free(p)
                }
            })
            .collect();
        ConstrainedPattern::new(segments).expect("non-empty segment list")
    })
}

/// Assert match + span parity of every compiled tier against the
/// interpreter on one (pattern, string) pair.
fn assert_tiers_agree(p: &Pattern, s: &str) -> Result<(), String> {
    let c = CompiledPattern::compile(p);
    let expect_match = match_pattern(p, s);
    let expect_spans = match_spans(p, s);
    for tier in COMPILED_TIERS {
        prop_assert_eq!(
            c.matches_with(s, tier),
            expect_match,
            "pattern {} on {:?} via {}",
            p,
            s,
            tier
        );
        prop_assert_eq!(
            c.spans_with(s, tier),
            expect_spans.clone(),
            "pattern {} on {:?} via {}",
            p,
            s,
            tier
        );
    }
    Ok(())
}

/// Assert blocking-key parity of every compiled tier against the
/// interpreter on one (keyer, string) pair.
fn assert_keys_agree(q: &ConstrainedPattern, s: &str) -> Result<(), String> {
    let c = CompiledConstrained::compile(q);
    let expect = q.key(s);
    for tier in COMPILED_TIERS {
        let mut buf = String::new();
        let got = c.key_into_with(s, &mut buf, tier).then(|| buf.clone());
        prop_assert_eq!(got, expect.clone(), "keyer {} on {:?} via {}", q, s, tier);
    }
    Ok(())
}

proptest! {
    /// Match + span decisions agree on arbitrary ASCII strings (the
    /// SWAR fast path) for both compiled tiers.
    #[test]
    fn tiers_match_interpreter_on_ascii(p in any_pattern(), s in any_ascii_string()) {
        assert_tiers_agree(&p, &s)?;
    }

    /// Match + span decisions agree on multibyte strings — the full
    /// UTF-8 VM and the fused matcher, no interpreter fallback.
    #[test]
    fn tiers_match_interpreter_on_unicode(p in any_pattern(), s in any_unicode_string()) {
        assert_tiers_agree(&p, &s)?;
    }

    /// Positive-case parity: generated ASCII witnesses match through
    /// every tier, with identical leftmost-greedy spans.
    #[test]
    fn tier_spans_agree_on_witnesses(p in any_pattern(), seed in any::<u64>()) {
        let s = string_matching(&p, seed, false);
        prop_assert!(match_pattern(&p, &s), "witness {:?} must match {}", s, p);
        assert_tiers_agree(&p, &s)?;
    }

    /// Positive-case parity on *multibyte* witnesses: class expansions
    /// include 2-, 3-, and 4-byte scalars, so successful parses cross
    /// the spillover and char-counting paths in both compiled tiers.
    #[test]
    fn tier_spans_agree_on_unicode_witnesses(p in any_pattern(), seed in any::<u64>()) {
        let s = string_matching(&p, seed, true);
        prop_assert!(match_pattern(&p, &s), "witness {:?} must match {}", s, p);
        assert_tiers_agree(&p, &s)?;
    }

    /// Blocking keys agree: the capturing tiers derive the same `≡_Q`
    /// key as the interpreter for generated constrained patterns.
    #[test]
    fn compiled_key_agrees_on_ascii(q in any_constrained(), s in any_ascii_string()) {
        assert_keys_agree(&q, &s)?;
    }

    /// Blocking keys agree on multibyte strings (byte-span slicing on
    /// the compiled tiers vs char-indexed interpretation).
    #[test]
    fn compiled_key_agrees_on_unicode(q in any_constrained(), s in any_unicode_string()) {
        assert_keys_agree(&q, &s)?;
    }

    /// Key parity on multibyte witnesses of the embedded pattern, where
    /// the keyer is guaranteed to produce a key on every tier.
    #[test]
    fn compiled_key_agrees_on_witnesses(q in any_constrained(), seed in any::<u64>()) {
        let s = string_matching(q.embedded(), seed, true);
        prop_assert!(q.key(&s).is_some(), "witness {:?} must key under {}", s, q);
        assert_keys_agree(&q, &s)?;
    }
}
