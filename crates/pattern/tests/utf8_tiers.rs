//! Tier-accounting smoke test, in its own binary because the
//! [`anmat_obs::Recorder`] and its counters are process-global: running
//! this alongside other recorder-enabled tests (which Rust would
//! parallelize within one binary) would make the counter deltas
//! ambiguous.
//!
//! The contract under test is the tentpole's headline invariant: with
//! the VM extended to full UTF-8, the interpreter is *never* consulted
//! on the compiled tiers — `pattern.interp_evals` stays 0 on any input,
//! ASCII or multibyte, under the default (fused-capable) engine, and
//! every public-entry evaluation is attributed to exactly one tier.

use anmat_obs as obs;
use anmat_pattern::{CompiledConstrained, CompiledPattern, ConstrainedPattern, PatternEngine};
use std::sync::Mutex;

/// Serializes the two tests: both read deltas of the same process-wide
/// counters, so interleaving them would corrupt each other's baselines.
static RECORDER: Mutex<()> = Mutex::new(());

/// Mixed corpus: ASCII, 2/3/4-byte scalars, titlecase, non-ASCII
/// digits, and boundary codepoints.
const CORPUS: &[&str] = &[
    "Abc-123",
    "Ångström",
    "中文数据",
    "٣٤٥",
    "ǅungla",
    "naïve café",
    "😀😀-ok",
    "\u{10FFFF}end",
    "",
    "90001",
];

fn counters() -> (u64, u64, u64) {
    let snap = obs::MetricsSnapshot::capture();
    (
        snap.counter("pattern.fused_evals").unwrap_or(0),
        snap.counter("pattern.vm_evals").unwrap_or(0),
        snap.counter("pattern.interp_evals").unwrap_or(0),
    )
}

#[test]
fn default_engine_never_touches_the_interpreter() {
    // A fused-eligible pattern, a VM-only pattern (two variable-width
    // ops), and a constrained keyer.
    let fused: CompiledPattern = CompiledPattern::compile(&"\\A{2}\\D{3}".parse().unwrap());
    let vm_only: CompiledPattern = CompiledPattern::compile(&"\\A*-\\A*".parse().unwrap());
    let keyer = CompiledConstrained::compile(&"[\\A*]-\\A*".parse::<ConstrainedPattern>().unwrap());
    assert!(
        fused.is_fused(),
        "\\A{{2}}\\D{{3}} must take the fused tier"
    );
    assert!(!vm_only.is_fused(), "two stars cannot fuse");
    assert!(!keyer.program().is_fused(), "two stars cannot fuse");

    let _serial = RECORDER.lock().unwrap();
    obs::Recorder::enable();
    let before = counters();
    let mut buf = String::new();
    for s in CORPUS {
        std::hint::black_box(fused.matches(s));
        std::hint::black_box(vm_only.matches(s));
        std::hint::black_box(keyer.key_into(s, &mut buf));
    }
    let after = counters();
    obs::Recorder::disable();

    let n = CORPUS.len() as u64;
    assert_eq!(
        after.2 - before.2,
        0,
        "interp_evals must stay 0 under the default engine — no UTF-8 fallback"
    );
    assert_eq!(
        after.0 - before.0,
        n,
        "one fused eval per fused-pattern call"
    );
    // vm_only + the unfusable keyer segmentation both land on the VM.
    assert_eq!(
        after.1 - before.1,
        2 * n,
        "vm evals for the unfusable programs"
    );
}

#[test]
fn explicit_interp_engine_is_the_only_interpreter_client() {
    let p = CompiledPattern::compile(&"\\A{2}\\D{3}".parse().unwrap());
    let _serial = RECORDER.lock().unwrap();
    obs::Recorder::enable();
    let before = counters();
    for s in CORPUS {
        std::hint::black_box(p.matches_with(s, PatternEngine::Interp));
    }
    let after = counters();
    obs::Recorder::disable();
    let n = CORPUS.len() as u64;
    assert_eq!(after.2 - before.2, n, "interp tier ticks interp_evals");
    assert_eq!(
        after.0 - before.0,
        0,
        "interp tier must not tick fused_evals"
    );
    assert_eq!(after.1 - before.1, 0, "interp tier must not tick vm_evals");
}
