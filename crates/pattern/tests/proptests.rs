//! Property-based tests for the pattern language invariants.

use anmat_pattern::{
    contains, generalize_patterns, induce, match_spans, signature, ConstrainedPattern, Element,
    InduceConfig, Pattern, PatternLevel, Quantifier, SymbolClass,
};
use proptest::prelude::*;

/// Strategy: an arbitrary symbol class over a small printable alphabet.
fn any_class() -> impl Strategy<Value = SymbolClass> {
    prop_oneof![
        prop::char::ranges(vec!['a'..='z', 'A'..='Z', '0'..='9', '-'..='.'].into())
            .prop_map(SymbolClass::Literal),
        Just(SymbolClass::Upper),
        Just(SymbolClass::Lower),
        Just(SymbolClass::Digit),
        Just(SymbolClass::Symbol),
        Just(SymbolClass::Any),
    ]
}

fn any_quantifier() -> impl Strategy<Value = SymbolClass> {
    any_class()
}

/// Strategy: an arbitrary (small) pattern.
fn any_pattern() -> impl Strategy<Value = Pattern> {
    prop::collection::vec(
        (any_quantifier(), 0u32..4, prop::option::of(0u32..4)).prop_filter_map(
            "valid interval",
            |(class, min, extra)| {
                let max = extra.map(|e| min + e);
                Quantifier::from_interval(min, max)
                    .ok()
                    .map(|q| Element::new(class, q))
            },
        ),
        0..6,
    )
    .prop_map(Pattern::new)
}

/// Strategy: a short string over the same alphabet.
fn any_string() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop::char::ranges(vec!['a'..='z', 'A'..='Z', '0'..='9', ' '..=' ', '-'..='-'].into()),
        0..12,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

/// Generate a string that the given pattern is guaranteed to match, by
/// expanding each element with an in-range repetition count.
fn string_matching(p: &Pattern, seed: u64) -> String {
    let mut out = String::new();
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for e in p.elements() {
        let (min, max) = e.quant.interval();
        let span = match max {
            Some(m) => min + (next() as u32 % (m - min + 1)),
            None => min + (next() as u32 % 3),
        };
        for _ in 0..span {
            let c = match e.class {
                SymbolClass::Literal(c) => c,
                SymbolClass::Upper => char::from(b'A' + (next() % 26) as u8),
                SymbolClass::Lower => char::from(b'a' + (next() % 26) as u8),
                SymbolClass::Digit => char::from(b'0' + (next() % 10) as u8),
                SymbolClass::Symbol => ['-', '.', ' ', ','][(next() % 4) as usize],
                SymbolClass::Any => char::from(b'a' + (next() % 26) as u8),
            };
            out.push(c);
        }
    }
    out
}

proptest! {
    /// Printing then re-parsing yields the same pattern.
    #[test]
    fn display_parse_roundtrip(p in any_pattern()) {
        let printed = p.to_string();
        let reparsed: Pattern = printed.parse().expect("printed pattern must parse");
        // Canonical quantifiers may differ ({1,1} → One), so compare via
        // intervals after normalization of representation, i.e. reprint.
        prop_assert_eq!(reparsed.to_string(), printed);
    }

    /// Normalization preserves the language on generated witnesses.
    #[test]
    fn normalized_preserves_matching(p in any_pattern(), seed in any::<u64>()) {
        let n = p.normalized();
        let s = string_matching(&p, seed);
        prop_assert!(p.matches(&s), "witness must match original");
        prop_assert!(n.matches(&s), "witness must match normalized form");
    }

    /// Generated witnesses always match their source pattern.
    #[test]
    fn witness_matches(p in any_pattern(), seed in any::<u64>()) {
        let s = string_matching(&p, seed);
        prop_assert!(p.matches(&s));
    }

    /// Containment is consistent with matching: if P ⊆ Q then every
    /// witness of P matches Q.
    #[test]
    fn containment_sound_on_witnesses(p in any_pattern(), q in any_pattern(), seed in any::<u64>()) {
        if contains(&q, &p) {
            let s = string_matching(&p, seed);
            prop_assert!(q.matches(&s), "P ⊆ Q but witness {:?} of P={} fails Q={}", s, p, q);
        }
    }

    /// Containment is reflexive.
    #[test]
    fn containment_reflexive(p in any_pattern()) {
        prop_assert!(contains(&p, &p));
    }

    /// Everything is contained in \A*.
    #[test]
    fn containment_top(p in any_pattern()) {
        prop_assert!(contains(&Pattern::any_string(), &p));
    }

    /// Generalization covers both inputs (language superset).
    #[test]
    fn generalization_covers(a in any_pattern(), b in any_pattern()) {
        let g = generalize_patterns(&a, &b);
        prop_assert!(contains(&g, &a), "g={} must contain a={}", g, a);
        prop_assert!(contains(&g, &b), "g={} must contain b={}", g, b);
    }

    /// Generalization is commutative up to language equivalence.
    #[test]
    fn generalization_commutative(a in any_pattern(), b in any_pattern()) {
        let g1 = generalize_patterns(&a, &b);
        let g2 = generalize_patterns(&b, &a);
        prop_assert!(contains(&g1, &g2) && contains(&g2, &g1),
            "g(a,b)={} and g(b,a)={} must be equivalent", g1, g2);
    }

    /// match_spans agrees with match_pattern and partitions the string.
    #[test]
    fn spans_partition(p in any_pattern(), seed in any::<u64>()) {
        let s = string_matching(&p, seed);
        let spans = match_spans(&p, &s).expect("witness must match");
        let n = s.chars().count();
        let mut pos = 0;
        for (a, b) in &spans.spans {
            prop_assert_eq!(*a, pos);
            prop_assert!(b >= a);
            pos = *b;
        }
        prop_assert_eq!(pos, n);
    }

    /// Every signature level matches the string it was derived from, and
    /// levels are increasingly general.
    #[test]
    fn signature_ladder(s in any_string()) {
        let mut prev: Option<Pattern> = None;
        for level in PatternLevel::ALL {
            let sig = signature(&s, level);
            prop_assert!(sig.matches(&s), "signature({:?}) must match {:?}", level, s);
            if let Some(prev) = &prev {
                prop_assert!(contains(&sig, prev),
                    "level {:?} = {} must generalize previous = {}", level, sig, prev);
            }
            prev = Some(sig);
        }
    }

    /// Induction covers its whole sample.
    #[test]
    fn induction_covers_sample(strings in prop::collection::vec(any_string(), 1..8)) {
        let refs: Vec<&str> = strings.iter().map(String::as_str).collect();
        let p = induce(&refs, &InduceConfig::default());
        for s in &strings {
            prop_assert!(p.matches(s), "induced {} must match sample element {:?}", p, s);
        }
    }

    /// Induction with loosening still covers the sample.
    #[test]
    fn loosened_induction_covers_sample(strings in prop::collection::vec(any_string(), 1..8)) {
        let refs: Vec<&str> = strings.iter().map(String::as_str).collect();
        let cfg = InduceConfig { loosen: true, ..InduceConfig::default() };
        let p = induce(&refs, &cfg);
        for s in &strings {
            prop_assert!(p.matches(s));
        }
    }

    /// Blocking keys implement ≡_Q: equal keys iff equivalent.
    #[test]
    fn key_iff_equivalent(s1 in any_string(), s2 in any_string()) {
        let q: ConstrainedPattern = "[\\A*]".parse().unwrap();
        // Whole-string constraint: equivalent iff equal.
        prop_assert_eq!(q.equivalent(&s1, &s2), s1 == s2);
    }

    /// Constrained captures concatenate to substrings of the input.
    #[test]
    fn captures_are_substrings(s in any_string()) {
        let q: ConstrainedPattern = "[\\LU\\LL*]\\A*".parse().unwrap();
        if let Some(caps) = q.captures(&s) {
            for cap in caps {
                prop_assert!(s.contains(&cap) || cap.is_empty());
            }
        }
    }
}
