//! Prior-art baselines the paper positions PFDs against.
//!
//! "The fundamental limitation of previous ICs (e.g., FDs \[1\] and CFDs
//! \[2\]) is that they enforce data dependencies using the entire attribute
//! values." To make that claim testable, this module implements both:
//!
//! * [`fd`] — exact and approximate functional-dependency discovery in the
//!   style of TANE: levelwise lattice search with stripped partitions and
//!   the `g3` error measure, plus violation detection for discovered FDs;
//! * [`cfd`] — constant conditional functional dependencies
//!   (`A = a → B = b`) mined with support/confidence thresholds, the
//!   constant-pattern fragment of CTANE.
//!
//! The comparison experiments (E15) run all three detectors on the same
//! injected-error datasets: FDs can only catch errors when two rows share
//! the *entire* LHS value; CFDs when the erroneous row's exact LHS value
//! was frequent enough to mine; PFDs also catch errors evidenced only by
//! partial-value patterns.

pub mod cfd;
pub mod fd;
