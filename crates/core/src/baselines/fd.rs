//! TANE-style functional-dependency discovery and FD-based error
//! detection.
//!
//! Discovery is levelwise over the attribute lattice with *stripped
//! partitions* (equivalence classes of size ≥ 2), exactly the data
//! structure TANE uses: an FD `X → B` holds iff the partition of `X`
//! refines the partition of `X ∪ {B}`; the approximate variant accepts
//! `g3(X → B) ≤ max_error`, where `g3` is the minimum fraction of rows to
//! remove for the FD to hold. Minimality pruning removes `X → B` when some
//! `X' ⊂ X` already yields it.

use anmat_table::{RowId, Table};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A discovered functional dependency `X → B`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fd {
    /// LHS attribute indices (sorted).
    pub lhs: Vec<usize>,
    /// RHS attribute index.
    pub rhs: usize,
    /// `g3` error on the mining table (0.0 = exact).
    pub error: f64,
}

impl Fd {
    /// Render with attribute names.
    #[must_use]
    pub fn display(&self, table: &Table) -> String {
        let lhs: Vec<&str> = self.lhs.iter().map(|&i| table.schema().name(i)).collect();
        format!("{} → {}", lhs.join(", "), table.schema().name(self.rhs))
    }
}

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?} → {}", self.lhs, self.rhs)
    }
}

/// A row flagged by an FD.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FdViolation {
    /// The violating row (disagrees with its class majority).
    pub row: RowId,
    /// RHS attribute index.
    pub rhs: usize,
    /// The majority RHS value of the row's LHS class.
    pub majority: String,
    /// The value found.
    pub found: Option<String>,
}

/// Configuration for FD discovery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FdConfig {
    /// Maximum LHS size explored (lattice depth).
    pub max_lhs: usize,
    /// Maximum `g3` error tolerated (0.0 = exact FDs only).
    pub max_error: f64,
    /// Skip RHS candidates that are keys (all-distinct LHS columns yield
    /// trivial FDs that assert nothing).
    pub skip_key_lhs: bool,
}

impl Default for FdConfig {
    fn default() -> Self {
        FdConfig {
            max_lhs: 2,
            max_error: 0.0,
            skip_key_lhs: true,
        }
    }
}

/// TANE-style FD miner.
#[derive(Debug)]
pub struct FdMiner {
    config: FdConfig,
}

/// A stripped partition: equivalence classes with at least two rows.
#[derive(Debug, Clone)]
struct StrippedPartition {
    classes: Vec<Vec<RowId>>,
    /// Total rows in stripped classes.
    stripped_rows: usize,
}

impl StrippedPartition {
    /// Partition of one attribute (nulls form their own class).
    fn of_column(table: &Table, col: usize) -> StrippedPartition {
        let mut groups: HashMap<Option<&str>, Vec<RowId>> = HashMap::new();
        for (row, v) in table.iter_column(col) {
            groups.entry(v.as_str()).or_default().push(row);
        }
        Self::strip(groups.into_values())
    }

    /// Product refinement `self · other` (the TANE partition product).
    fn product(&self, other_class_of: &[usize], n_rows: usize) -> StrippedPartition {
        let mut groups: HashMap<(usize, usize), Vec<RowId>> = HashMap::new();
        for (ci, class) in self.classes.iter().enumerate() {
            for &row in class {
                let oc = other_class_of[row];
                if oc == usize::MAX {
                    // Row is a singleton in the other partition: the
                    // product class is a singleton too.
                    continue;
                }
                groups.entry((ci, oc)).or_default().push(row);
            }
        }
        let _ = n_rows;
        Self::strip(groups.into_values())
    }

    fn strip<I: IntoIterator<Item = Vec<RowId>>>(groups: I) -> StrippedPartition {
        let mut classes: Vec<Vec<RowId>> = groups.into_iter().filter(|g| g.len() >= 2).collect();
        for c in &mut classes {
            c.sort_unstable();
        }
        classes.sort();
        let stripped_rows = classes.iter().map(Vec::len).sum();
        StrippedPartition {
            classes,
            stripped_rows,
        }
    }

    /// `class_of[row]` = index of the row's stripped class, or MAX.
    fn class_of(&self, n_rows: usize) -> Vec<usize> {
        let mut out = vec![usize::MAX; n_rows];
        for (ci, class) in self.classes.iter().enumerate() {
            for &row in class {
                out[row] = ci;
            }
        }
        out
    }

    /// `g3` error of `X → B` where `self` = partition(X): fraction of rows
    /// to remove so that each X-class maps to a single B value.
    fn g3_error(&self, table: &Table, rhs: usize, n_rows: usize) -> f64 {
        if n_rows == 0 {
            return 0.0;
        }
        let mut violating = 0usize;
        for class in &self.classes {
            let mut counts: HashMap<Option<&str>, usize> = HashMap::new();
            for &row in class {
                *counts.entry(table.cell_str(row, rhs)).or_insert(0) += 1;
            }
            let max = counts.values().copied().max().unwrap_or(0);
            violating += class.len() - max;
        }
        violating as f64 / n_rows as f64
    }
}

impl FdMiner {
    /// Create a miner.
    #[must_use]
    pub fn new(config: FdConfig) -> FdMiner {
        FdMiner { config }
    }

    /// Discover (approximate) minimal FDs over `table` (live rows only).
    #[must_use]
    pub fn discover(&self, table: &Table) -> Vec<Fd> {
        let n_cols = table.column_count();
        // Slot count sizes the RowId-indexed lookup tables; the live
        // count normalizes g3 (partitions see only live rows).
        let n_slots = table.row_count();
        let n_live = table.live_rows();
        if n_cols < 2 || n_live == 0 {
            return Vec::new();
        }
        // Level-1 partitions.
        let singles: Vec<StrippedPartition> = (0..n_cols)
            .map(|c| StrippedPartition::of_column(table, c))
            .collect();
        let mut found: Vec<Fd> = Vec::new();
        // level state: (lhs set, partition)
        let mut level: Vec<(Vec<usize>, StrippedPartition)> = (0..n_cols)
            .filter(|&c| {
                // A key column (no stripped classes) can only yield trivial
                // FDs: every class is a singleton.
                !(self.config.skip_key_lhs && singles[c].classes.is_empty())
            })
            .map(|c| (vec![c], singles[c].clone()))
            .collect();
        for _depth in 1..=self.config.max_lhs {
            for (lhs, part) in &level {
                for rhs in 0..n_cols {
                    if lhs.contains(&rhs) {
                        continue;
                    }
                    // Minimality: skip if a subset LHS already gives it.
                    if found
                        .iter()
                        .any(|f| f.rhs == rhs && f.lhs.iter().all(|a| lhs.contains(a)))
                    {
                        continue;
                    }
                    let error = part.g3_error(table, rhs, n_live);
                    if error <= self.config.max_error {
                        found.push(Fd {
                            lhs: lhs.clone(),
                            rhs,
                            error,
                        });
                    }
                }
            }
            // Build next level by extending with a larger attribute index.
            if _depth == self.config.max_lhs {
                break;
            }
            let mut next: Vec<(Vec<usize>, StrippedPartition)> = Vec::new();
            for (lhs, part) in &level {
                let max_attr = *lhs.last().expect("non-empty lhs");
                for (c, single) in singles.iter().enumerate().take(n_cols).skip(max_attr + 1) {
                    if lhs.contains(&c) {
                        continue;
                    }
                    let class_of = single.class_of(n_slots);
                    let product = part.product(&class_of, n_slots);
                    if product.stripped_rows == 0 {
                        continue; // superkey: nothing non-trivial below
                    }
                    let mut new_lhs = lhs.clone();
                    new_lhs.push(c);
                    next.push((new_lhs, product));
                }
            }
            level = next;
        }
        found.sort_by(|a, b| a.lhs.cmp(&b.lhs).then_with(|| a.rhs.cmp(&b.rhs)));
        found
    }

    /// Flag live rows violating an FD on (possibly different) data:
    /// within each LHS class, minority-RHS rows. Tombstoned slots
    /// neither vote nor get flagged.
    #[must_use]
    pub fn detect(&self, table: &Table, fd: &Fd) -> Vec<FdViolation> {
        let mut groups: HashMap<Vec<Option<&str>>, Vec<RowId>> = HashMap::new();
        for row in table.iter_live() {
            let key: Vec<Option<&str>> = fd.lhs.iter().map(|&c| table.cell_str(row, c)).collect();
            groups.entry(key).or_default().push(row);
        }
        let mut out = Vec::new();
        let mut keys: Vec<_> = groups.keys().cloned().collect();
        keys.sort_unstable();
        for key in keys {
            let rows = &groups[&key];
            if rows.len() < 2 {
                continue;
            }
            let mut counts: HashMap<Option<&str>, usize> = HashMap::new();
            for &row in rows {
                *counts.entry(table.cell_str(row, fd.rhs)).or_insert(0) += 1;
            }
            let Some((majority, _)) = counts
                .iter()
                .filter_map(|(k, c)| k.map(|v| (v, *c)))
                .max_by(|(va, ca), (vb, cb)| ca.cmp(cb).then_with(|| vb.cmp(va)))
            else {
                continue;
            };
            for &row in rows {
                let found = table.cell_str(row, fd.rhs);
                if found != Some(majority) {
                    out.push(FdViolation {
                        row,
                        rhs: fd.rhs,
                        majority: majority.to_string(),
                        found: found.map(str::to_string),
                    });
                }
            }
        }
        out.sort_by_key(|v| v.row);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anmat_table::Schema;

    fn table(rows: &[[&str; 3]]) -> Table {
        Table::from_str_rows(
            Schema::new(["a", "b", "c"]).unwrap(),
            rows.iter().map(|r| r.iter().copied()),
        )
        .unwrap()
    }

    #[test]
    fn exact_fd_discovered() {
        // a → b holds; b → a does not (x/y both map to 1... actually they
        // do not collide here); a → c does not.
        let t = table(&[
            ["x", "1", "p"],
            ["x", "1", "q"],
            ["y", "2", "p"],
            ["y", "2", "q"],
        ]);
        let miner = FdMiner::new(FdConfig::default());
        let fds = miner.discover(&t);
        assert!(fds.iter().any(|f| f.lhs == vec![0] && f.rhs == 1));
        assert!(!fds.iter().any(|f| f.lhs == vec![0] && f.rhs == 2));
    }

    #[test]
    fn approximate_fd_with_g3() {
        let t = table(&[
            ["x", "1", "p"],
            ["x", "1", "p"],
            ["x", "2", "p"], // 1 bad row of 5
            ["y", "3", "p"],
            ["y", "3", "p"],
        ]);
        let exact = FdMiner::new(FdConfig::default()).discover(&t);
        assert!(!exact.iter().any(|f| f.lhs == vec![0] && f.rhs == 1));
        let approx = FdMiner::new(FdConfig {
            max_error: 0.25,
            ..FdConfig::default()
        })
        .discover(&t);
        let fd = approx
            .iter()
            .find(|f| f.lhs == vec![0] && f.rhs == 1)
            .expect("approximate FD");
        assert!((fd.error - 0.2).abs() < 1e-9);
    }

    #[test]
    fn multi_attribute_lhs() {
        // Neither a nor b alone determines c, but (a, b) does.
        let t = table(&[
            ["x", "1", "p"],
            ["x", "2", "q"],
            ["y", "1", "r"],
            ["y", "2", "s"],
            ["x", "1", "p"],
            ["y", "2", "s"],
        ]);
        let fds = FdMiner::new(FdConfig::default()).discover(&t);
        assert!(!fds.iter().any(|f| f.lhs == vec![0] && f.rhs == 2));
        assert!(!fds.iter().any(|f| f.lhs == vec![1] && f.rhs == 2));
        assert!(fds.iter().any(|f| f.lhs == vec![0, 1] && f.rhs == 2));
    }

    #[test]
    fn minimality_pruning() {
        // a → b exactly; then (a, c) → b must not be reported.
        let t = table(&[
            ["x", "1", "p"],
            ["x", "1", "q"],
            ["y", "2", "p"],
            ["y", "2", "q"],
        ]);
        let fds = FdMiner::new(FdConfig::default()).discover(&t);
        assert!(fds.iter().any(|f| f.lhs == vec![0] && f.rhs == 1));
        assert!(!fds.iter().any(|f| f.lhs == vec![0, 2] && f.rhs == 1));
    }

    #[test]
    fn detection_flags_minority() {
        let t = table(&[
            ["x", "1", "p"],
            ["x", "1", "q"],
            ["x", "9", "r"], // violates a → b
            ["y", "2", "p"],
        ]);
        let miner = FdMiner::new(FdConfig::default());
        let fd = Fd {
            lhs: vec![0],
            rhs: 1,
            error: 0.0,
        };
        let violations = miner.detect(&t, &fd);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].row, 2);
        assert_eq!(violations[0].majority, "1");
    }

    #[test]
    fn fd_cannot_see_partial_value_errors() {
        // The paper's core claim: full names are all distinct, so no FD on
        // name → gender exists and FD detection is blind to r4.
        let t = Table::from_str_rows(
            Schema::new(["name", "gender"]).unwrap(),
            [
                ["John Charles", "M"],
                ["John Bosco", "M"],
                ["Susan Orlean", "F"],
                ["Susan Boyle", "M"],
            ],
        )
        .unwrap();
        let fds = FdMiner::new(FdConfig::default()).discover(&t);
        assert!(
            !fds.iter().any(|f| f.lhs == vec![0] && f.rhs == 1),
            "all-distinct names must not yield name → gender: {fds:?}"
        );
    }

    #[test]
    fn display_uses_names() {
        let t = table(&[["x", "1", "p"], ["x", "1", "q"]]);
        let fd = Fd {
            lhs: vec![0, 2],
            rhs: 1,
            error: 0.0,
        };
        assert_eq!(fd.display(&t), "a, c → b");
    }
}
