//! Constant conditional functional dependencies (the CTANE constant
//! fragment): rules `A = a → B = b` mined with support and confidence
//! thresholds.
//!
//! CFDs condition on *entire* attribute values — the paper's running
//! example of their limitation: `zip = 90001 → city = Los Angeles` is
//! mineable, but nothing ties `90004` (seen once, and wrong) to Los
//! Angeles, whereas the PFD `900\D{2} → Los Angeles` catches it.

use anmat_table::{RowId, Table};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A constant CFD `(A = a → B = b)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConstantCfd {
    /// LHS attribute index.
    pub lhs: usize,
    /// LHS constant.
    pub lhs_value: String,
    /// RHS attribute index.
    pub rhs: usize,
    /// RHS constant.
    pub rhs_value: String,
    /// Supporting rows at mining time.
    pub support: usize,
}

impl ConstantCfd {
    /// Render with attribute names.
    #[must_use]
    pub fn display(&self, table: &Table) -> String {
        format!(
            "[{} = {}] → [{} = {}]",
            table.schema().name(self.lhs),
            self.lhs_value,
            table.schema().name(self.rhs),
            self.rhs_value
        )
    }
}

impl fmt::Display for ConstantCfd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[#{} = {}] → [#{} = {}]",
            self.lhs, self.lhs_value, self.rhs, self.rhs_value
        )
    }
}

/// A row flagged by a constant CFD.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CfdViolation {
    /// The violating row.
    pub row: RowId,
    /// The rule it violates.
    pub rule: ConstantCfd,
    /// The RHS value found.
    pub found: Option<String>,
}

/// Configuration for constant-CFD mining.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CfdConfig {
    /// Minimum rows sharing the LHS constant.
    pub min_support: usize,
    /// Minimum fraction of those rows agreeing on the RHS constant.
    pub min_confidence: f64,
}

impl Default for CfdConfig {
    fn default() -> Self {
        CfdConfig {
            min_support: 2,
            min_confidence: 0.9,
        }
    }
}

/// Constant-CFD miner and detector.
#[derive(Debug)]
pub struct CfdMiner {
    config: CfdConfig,
}

impl CfdMiner {
    /// Create a miner.
    #[must_use]
    pub fn new(config: CfdConfig) -> CfdMiner {
        CfdMiner { config }
    }

    /// Mine constant CFDs for every ordered column pair.
    #[must_use]
    pub fn discover(&self, table: &Table) -> Vec<ConstantCfd> {
        let mut out = Vec::new();
        for lhs in 0..table.column_count() {
            for rhs in 0..table.column_count() {
                if lhs != rhs {
                    out.extend(self.discover_pair(table, lhs, rhs));
                }
            }
        }
        out
    }

    /// Mine constant CFDs for one column pair.
    #[must_use]
    pub fn discover_pair(&self, table: &Table, lhs: usize, rhs: usize) -> Vec<ConstantCfd> {
        // value → (rhs value → count)
        let mut groups: HashMap<&str, HashMap<&str, usize>> = HashMap::new();
        for (_, a, b) in table.iter_pair(lhs, rhs) {
            *groups.entry(a).or_default().entry(b).or_insert(0) += 1;
        }
        let mut out: Vec<ConstantCfd> = Vec::new();
        for (a, counts) in groups {
            let support: usize = counts.values().sum();
            if support < self.config.min_support {
                continue;
            }
            let Some((&b, &dom)) = counts
                .iter()
                .max_by(|(va, ca), (vb, cb)| ca.cmp(cb).then_with(|| vb.cmp(va)))
            else {
                continue;
            };
            if (dom as f64) < self.config.min_confidence * support as f64 {
                continue;
            }
            out.push(ConstantCfd {
                lhs,
                lhs_value: a.to_string(),
                rhs,
                rhs_value: b.to_string(),
                support,
            });
        }
        out.sort_by(|x, y| x.lhs_value.cmp(&y.lhs_value));
        out
    }

    /// Flag rows violating a rule.
    #[must_use]
    pub fn detect(&self, table: &Table, rule: &ConstantCfd) -> Vec<CfdViolation> {
        let mut out = Vec::new();
        for (row, v) in table.iter_column(rule.lhs) {
            if v.as_str() != Some(rule.lhs_value.as_str()) {
                continue;
            }
            let found = table.cell_str(row, rule.rhs);
            if found != Some(rule.rhs_value.as_str()) {
                out.push(CfdViolation {
                    row,
                    rule: rule.clone(),
                    found: found.map(str::to_string),
                });
            }
        }
        out
    }

    /// Flag rows violating any of a set of rules (deduplicated by row and
    /// RHS attribute).
    #[must_use]
    pub fn detect_all(&self, table: &Table, rules: &[ConstantCfd]) -> Vec<CfdViolation> {
        let mut out: Vec<CfdViolation> = rules.iter().flat_map(|r| self.detect(table, r)).collect();
        out.sort_by(|a, b| a.row.cmp(&b.row).then_with(|| a.rule.rhs.cmp(&b.rule.rhs)));
        out.dedup_by(|a, b| a.row == b.row && a.rule.rhs == b.rule.rhs);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anmat_table::Schema;

    fn zip_table() -> Table {
        Table::from_str_rows(
            Schema::new(["zip", "city"]).unwrap(),
            [
                ["90001", "Los Angeles"],
                ["90001", "Los Angeles"],
                ["90001", "San Diego"], // error on a frequent zip
                ["90002", "Los Angeles"],
                ["90002", "Los Angeles"],
                ["90004", "New York"], // error on a unique zip
            ],
        )
        .unwrap()
    }

    #[test]
    fn mines_frequent_constants() {
        let miner = CfdMiner::new(CfdConfig {
            min_support: 2,
            min_confidence: 0.6,
        });
        let rules = miner.discover_pair(&zip_table(), 0, 1);
        assert!(rules
            .iter()
            .any(|r| r.lhs_value == "90001" && r.rhs_value == "Los Angeles"));
        assert!(rules
            .iter()
            .any(|r| r.lhs_value == "90002" && r.rhs_value == "Los Angeles"));
        // 90004 seen once: below support.
        assert!(!rules.iter().any(|r| r.lhs_value == "90004"));
    }

    #[test]
    fn confidence_threshold() {
        let miner = CfdMiner::new(CfdConfig {
            min_support: 2,
            min_confidence: 0.9,
        });
        let rules = miner.discover_pair(&zip_table(), 0, 1);
        // 90001 → LA has confidence 2/3 < 0.9.
        assert!(!rules.iter().any(|r| r.lhs_value == "90001"));
        assert!(rules.iter().any(|r| r.lhs_value == "90002"));
    }

    #[test]
    fn detects_violations_of_mined_rule() {
        let miner = CfdMiner::new(CfdConfig {
            min_support: 2,
            min_confidence: 0.6,
        });
        let t = zip_table();
        let rules = miner.discover_pair(&t, 0, 1);
        let violations = miner.detect_all(&t, &rules);
        // Catches the 90001 error (row 2) but is blind to 90004 (row 5).
        assert!(violations.iter().any(|v| v.row == 2));
        assert!(
            !violations.iter().any(|v| v.row == 5),
            "CFD cannot catch the unique-zip error — that's the PFD's job"
        );
    }

    #[test]
    fn discover_all_pairs() {
        let miner = CfdMiner::new(CfdConfig {
            min_support: 2,
            min_confidence: 0.6,
        });
        let rules = miner.discover(&zip_table());
        // zip → city rules survive in the all-pairs sweep…
        assert!(rules.iter().any(|r| r.lhs == 0 && r.rhs == 1));
        // …and the reverse direction is genuinely attempted: "Los
        // Angeles" maps to zips 90001/90002 evenly (confidence ½ < 0.6),
        // so no city → zip rule may appear.
        assert!(!rules.iter().any(|r| r.lhs == 1 && r.rhs == 0));
    }

    #[test]
    fn display_forms() {
        let t = zip_table();
        let rule = ConstantCfd {
            lhs: 0,
            lhs_value: "90001".into(),
            rhs: 1,
            rhs_value: "Los Angeles".into(),
            support: 3,
        };
        assert_eq!(rule.display(&t), "[zip = 90001] → [city = Los Angeles]");
    }
}
