//! Building tableau LHS patterns from inverted-list keys and their
//! surrounding context.
//!
//! An entry that passes the decision function is a key (token / n-gram /
//! prefix) at a consistent position. The tableau needs a *pattern over the
//! whole cell*, so the key is wrapped with patterns for the text before
//! and after it — `Donald` in `Holloway, Donald E.` becomes
//! `\A*,\ Donald\A*` (paper style) or `\LU\LL+,\ Donald\ \LU.` (induced
//! style), depending on [`ContextStyle`].

use super::ContextStyle;
use anmat_pattern::{induce, InduceConfig, Pattern};

/// The (before, after) character context of each supporting occurrence.
#[derive(Debug, Clone, Default)]
pub struct KeyContexts {
    /// Text before the key occurrence, per supporting value.
    pub befores: Vec<String>,
    /// Text after the key occurrence, per supporting value.
    pub afters: Vec<String>,
}

impl KeyContexts {
    /// Record one occurrence: `value = before ⧺ key ⧺ after`.
    pub fn push(&mut self, before: &str, after: &str) {
        self.befores.push(before.to_string());
        self.afters.push(after.to_string());
    }

    /// Number of recorded occurrences.
    #[must_use]
    pub fn len(&self) -> usize {
        self.befores.len()
    }

    /// No occurrences recorded?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.befores.is_empty()
    }
}

/// Build the LHS pattern `before-context ⧺ key ⧺ after-context`.
#[must_use]
pub fn build_lhs_pattern(key: &str, contexts: &KeyContexts, style: ContextStyle) -> Pattern {
    let before = context_pattern(&contexts.befores, style, Side::Before);
    let after = context_pattern(&contexts.afters, style, Side::After);
    before
        .concat(&Pattern::literal(key))
        .concat(&after)
        .normalized()
}

#[derive(Clone, Copy, PartialEq)]
enum Side {
    Before,
    After,
}

fn context_pattern(parts: &[String], style: ContextStyle, side: Side) -> Pattern {
    if parts.iter().all(String::is_empty) {
        return Pattern::empty();
    }
    match style {
        ContextStyle::Induced => {
            let refs: Vec<&str> = parts.iter().map(String::as_str).collect();
            // Loosen only intervals that showed cross-string variance
            // (Range/AtLeast). Exact counts are structural — the `\D{2}`
            // of a zip suffix or the `\D{7}` of a phone tail must stay
            // exact, as in the paper's Table 3 patterns.
            let cfg = InduceConfig {
                loosen: true,
                loosen_threshold: u32::MAX,
                ..InduceConfig::default()
            };
            induce(&refs, &cfg)
        }
        ContextStyle::AnyString => {
            // Preserve the separator characters adjacent to the key; the
            // rest becomes \A*. "Adjacent" = the longest run of
            // non-alphanumeric characters shared by *all* occurrences on
            // the key side.
            match side {
                Side::Before => {
                    let sep = common_symbol_suffix(parts);
                    let all_sep = parts.iter().all(|p| p == &sep);
                    if all_sep {
                        Pattern::literal(&sep)
                    } else {
                        Pattern::any_string().concat(&Pattern::literal(&sep))
                    }
                }
                Side::After => {
                    let sep = common_symbol_prefix(parts);
                    let all_sep = parts.iter().all(|p| p == &sep);
                    if all_sep {
                        Pattern::literal(&sep)
                    } else {
                        Pattern::literal(&sep).concat(&Pattern::any_string())
                    }
                }
            }
        }
    }
}

/// Longest common suffix of all parts consisting only of non-alphanumeric
/// characters.
fn common_symbol_suffix(parts: &[String]) -> String {
    let mut suffix: Option<Vec<char>> = None;
    for p in parts {
        let tail: Vec<char> = p
            .chars()
            .rev()
            .take_while(|c| !c.is_alphanumeric())
            .collect();
        suffix = Some(match suffix {
            None => tail,
            Some(prev) => {
                // Compare reversed-order tails; keep the common prefix of
                // the reversed sequences (= common suffix of the strings).
                prev.iter()
                    .zip(tail.iter())
                    .take_while(|(a, b)| a == b)
                    .map(|(a, _)| *a)
                    .collect()
            }
        });
    }
    suffix.unwrap_or_default().into_iter().rev().collect()
}

/// Longest common prefix of all parts consisting only of non-alphanumeric
/// characters.
fn common_symbol_prefix(parts: &[String]) -> String {
    let mut prefix: Option<Vec<char>> = None;
    for p in parts {
        let head: Vec<char> = p.chars().take_while(|c| !c.is_alphanumeric()).collect();
        prefix = Some(match prefix {
            None => head,
            Some(prev) => prev
                .iter()
                .zip(head.iter())
                .take_while(|(a, b)| a == b)
                .map(|(a, _)| *a)
                .collect(),
        });
    }
    prefix.unwrap_or_default().into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(pairs: &[(&str, &str)]) -> KeyContexts {
        let mut c = KeyContexts::default();
        for (b, a) in pairs {
            c.push(b, a);
        }
        c
    }

    #[test]
    fn paper_style_full_name() {
        // "Holloway, Donald E." and "Kimbell, Donald" with key "Donald".
        let c = ctx(&[("Holloway, ", " E."), ("Kimbell, ", "")]);
        let p = build_lhs_pattern("Donald", &c, ContextStyle::AnyString);
        assert_eq!(p.to_string(), "\\A*,\\ Donald\\A*");
        assert!(p.matches("Holloway, Donald E."));
        assert!(p.matches("Kimbell, Donald"));
        assert!(!p.matches("Donald Kimbell"));
    }

    #[test]
    fn paper_style_zip_prefix() {
        // Key "900" as a prefix of 5-digit zips. (Suffix digits vary in
        // both positions, so the LGG generalizes both to \D.)
        let c = ctx(&[("", "01"), ("", "12"), ("", "93")]);
        let p = build_lhs_pattern("900", &c, ContextStyle::Induced);
        assert_eq!(p.to_string(), "900\\D{2}");
        assert!(p.matches("90004"));
        assert!(!p.matches("900045"));
    }

    #[test]
    fn induced_style_keeps_shape() {
        let c = ctx(&[("Holloway, ", ""), ("Kimbell, ", "")]);
        let p = build_lhs_pattern("Donald", &c, ContextStyle::Induced);
        assert!(p.matches("Holloway, Donald"));
        assert!(p.matches("Mallack, Donald"), "{p}");
        assert!(!p.matches("123, Donald"), "{p}");
    }

    #[test]
    fn anystring_with_empty_afters_mixed() {
        // Key at end for some values, middle for others.
        let c = ctx(&[("", " suffix"), ("", "")]);
        let p = build_lhs_pattern("KEY", &c, ContextStyle::AnyString);
        assert!(p.matches("KEY suffix"));
        assert!(p.matches("KEY"));
    }

    #[test]
    fn anystring_first_token() {
        // "John Charles", "John Bosco" with key "John".
        let c = ctx(&[("", " Charles"), ("", " Bosco")]);
        let p = build_lhs_pattern("John", &c, ContextStyle::AnyString);
        assert_eq!(p.to_string(), "John\\ \\A*");
        assert!(p.matches("John Albert"));
        assert!(!p.matches("Johnson Albert"));
    }

    #[test]
    fn pure_key_no_context() {
        let c = ctx(&[("", ""), ("", "")]);
        let p = build_lhs_pattern("FL", &c, ContextStyle::AnyString);
        assert_eq!(p.to_string(), "FL");
    }

    #[test]
    fn symbol_suffix_helpers() {
        assert_eq!(
            common_symbol_suffix(&["Holloway, ".into(), "Kimbell, ".into()]),
            ", "
        );
        assert_eq!(common_symbol_suffix(&["abc".into()]), "");
        assert_eq!(common_symbol_prefix(&[" E.".into(), " R.".into()]), " ");
        assert_eq!(common_symbol_prefix(&[String::new()]), "");
    }

    #[test]
    fn phone_digit_context_induced() {
        // Key "850" prefix of 10-digit phones → 850\D{7}.
        let c = ctx(&[("", "5467600"), ("", "1234567")]);
        let p = build_lhs_pattern("850", &c, ContextStyle::Induced);
        assert_eq!(p.to_string(), "850\\D{7}");
    }
}
