//! PFD discovery — the algorithm of Figure 2.
//!
//! ```text
//! Algorithm Discover PFDs
//! Input : a relational table T, a decision function f, a minimum
//!         coverage threshold γ
//! Output: a set Ψ of PFDs
//! 1.  Φ := CandidateDependencies(T)              — profiling + pruning
//! 2.  Ψ := ∅
//! 3.  for each FD φ : (A → B) ∈ Φ:
//! 4.    H := ∅                                   — inverted list
//! 5–8.  fill H from Tokenize(t[A])|NGrams(t[A]) × Tokenize(t[B])…
//! 9–12. for each entry h ∈ H: if f(h) add a pattern tuple to Tp
//! 13–14. if coverage(Tp) ≥ γ: Ψ := Ψ ∪ {ψ}
//! ```
//!
//! The decision function `f` is support/confidence over an entry's RHS
//! distribution, with the user's *allowed-violation ratio* as the
//! confidence slack (§4 "Parameter Setting"): an entry becomes a constant
//! pattern tuple when at least `min_support` rows contain the key at a
//! consistent position and at least `1 − max_violation_ratio` of them
//! agree on the RHS value.
//!
//! Beyond the paper's pseudo-code (which only shows the constant case),
//! [`variable`] mines variable PFDs — λ4/λ5-style rules with a wildcard
//! RHS — by generating candidate constrained patterns from the column's
//! dominant signatures and validating them with lossless blocking.

pub mod constant;
pub mod context;
pub mod variable;

use crate::pfd::{Pfd, PfdKind};
use anmat_table::{Table, TableProfile};
use serde::{Deserialize, Serialize};

/// How the free context around a discovered key is rendered in the LHS
/// pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContextStyle {
    /// Induce the context pattern from the supporting values and loosen
    /// repetition counts (`Holloway, ` ⊔ `Kimbell, ` → `\LU\LL+,\ `).
    /// More specific than the paper's display, never wrong on the data.
    Induced,
    /// Render free context as `\A*` while preserving the separator
    /// characters adjacent to the key (`\A*,\ Donald\A*`) — the display
    /// style of the paper's Table 3.
    AnyString,
}

/// User-facing knobs of the discovery algorithm.
///
/// The two parameters the demo exposes (§4) are [`min_coverage`] and
/// [`max_violation_ratio`]; the rest have sensible defaults and control
/// the extraction modes and cost caps.
///
/// [`min_coverage`]: DiscoveryConfig::min_coverage
/// [`max_violation_ratio`]: DiscoveryConfig::max_violation_ratio
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscoveryConfig {
    /// Relation name stamped on discovered PFDs.
    pub relation: String,
    /// Minimum coverage γ: the ratio of LHS rows that must match at least
    /// one tableau pattern for the PFD to be reported.
    pub min_coverage: f64,
    /// Allowed-violation ratio: an entry/candidate may disagree with its
    /// dominant RHS on at most this fraction of supporting rows (the
    /// disagreements are exactly what detection later reports as errors).
    pub max_violation_ratio: f64,
    /// Minimum number of rows supporting an inverted-list entry before it
    /// can become a pattern tuple.
    pub min_support: usize,
    /// n for the n-gram extraction mode.
    pub ngram_len: usize,
    /// Maximum prefix length for the prefix extraction mode.
    pub prefix_max: usize,
    /// Cap on tableau size per PFD (most-supported tuples win).
    pub max_tableau: usize,
    /// Context rendering style for constant-tuple LHS patterns.
    pub context_style: ContextStyle,
    /// Mine constant PFDs?
    pub mine_constant: bool,
    /// Mine variable PFDs?
    pub mine_variable: bool,
    /// Spread candidate pairs across threads (scoped std threads).
    pub parallel: bool,
    /// Skip keys occurring in more than this fraction of rows. Off (1.0)
    /// by default: a ubiquitous *prefix* is precisely what a rule like
    /// `900\D{2} → Los Angeles` needs on a single-city extract, and the
    /// confidence gate already rejects keys that determine nothing. Lower
    /// it to prune stop-word tokens in free-text columns.
    pub max_key_frequency: f64,
    /// Significance level α for accepting a constant entry. With
    /// thousands of candidate n-gram keys, a handful of rows agreeing on
    /// the RHS *by chance* passes the confidence gate; an entry is kept
    /// only if `base_rate^(support−1) · #keys ≤ α`, where `base_rate` is
    /// the dominant RHS value's global frequency. Only applied to pairs
    /// with at least 100 considered rows — on demo-sized tables the
    /// statistic is meaningless and every confident entry is kept. Set to
    /// 1.0 to disable entirely.
    pub significance: f64,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            relation: "T".into(),
            min_coverage: 0.6,
            max_violation_ratio: 0.3,
            min_support: 2,
            ngram_len: 3,
            prefix_max: 4,
            max_tableau: 64,
            context_style: ContextStyle::Induced,
            mine_constant: true,
            mine_variable: true,
            parallel: false,
            max_key_frequency: 1.0,
            significance: 0.05,
        }
    }
}

impl DiscoveryConfig {
    /// The minimum confidence an entry's dominant RHS must reach:
    /// `1 − max_violation_ratio`.
    #[must_use]
    pub fn min_confidence(&self) -> f64 {
        1.0 - self.max_violation_ratio
    }
}

/// Discover PFDs over every candidate column pair of `table`.
///
/// Implements the outer loop of Figure 2. Results are sorted by
/// `(lhs attribute, rhs attribute, kind)` for determinism.
#[must_use]
pub fn discover(table: &Table, config: &DiscoveryConfig) -> Vec<Pfd> {
    let profile = TableProfile::profile(table);
    let pairs = profile.candidate_pairs();
    let mut out: Vec<Pfd> = if config.parallel && pairs.len() > 1 {
        discover_parallel(table, &profile, &pairs, config)
    } else {
        pairs
            .iter()
            .flat_map(|&(a, b)| discover_pair_profiled(table, &profile, a, b, config))
            .collect()
    };
    sort_pfds(&mut out);
    out
}

/// Discover PFDs for one column pair (both directions are *not* implied;
/// call twice to mine both).
#[must_use]
pub fn discover_pair(table: &Table, lhs: usize, rhs: usize, config: &DiscoveryConfig) -> Vec<Pfd> {
    let profile = TableProfile::profile(table);
    let mut out = discover_pair_profiled(table, &profile, lhs, rhs, config);
    sort_pfds(&mut out);
    out
}

fn discover_pair_profiled(
    table: &Table,
    profile: &TableProfile,
    lhs: usize,
    rhs: usize,
    config: &DiscoveryConfig,
) -> Vec<Pfd> {
    let mut out = Vec::new();
    if config.mine_constant {
        out.extend(constant::mine_constant(table, profile, lhs, rhs, config));
    }
    if config.mine_variable {
        out.extend(variable::mine_variable(table, profile, lhs, rhs, config));
    }
    out
}

fn discover_parallel(
    table: &Table,
    profile: &TableProfile,
    pairs: &[(usize, usize)],
    config: &DiscoveryConfig,
) -> Vec<Pfd> {
    let n_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(pairs.len());
    let chunks: Vec<&[(usize, usize)]> = pairs.chunks(pairs.len().div_ceil(n_threads)).collect();
    let mut results: Vec<Vec<Pfd>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                scope.spawn(move || {
                    chunk
                        .iter()
                        .flat_map(|&(a, b)| discover_pair_profiled(table, profile, a, b, config))
                        .collect::<Vec<Pfd>>()
                })
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("discovery worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

fn sort_pfds(pfds: &mut [Pfd]) {
    pfds.sort_by(|a, b| {
        (&a.lhs_attr, &a.rhs_attr, kind_rank(a.kind())).cmp(&(
            &b.lhs_attr,
            &b.rhs_attr,
            kind_rank(b.kind()),
        ))
    });
}

fn kind_rank(k: PfdKind) -> u8 {
    match k {
        PfdKind::Constant => 0,
        PfdKind::Variable => 1,
        PfdKind::Mixed => 2,
    }
}
