//! Mining constant PFDs (the case spelled out in Figure 2).
//!
//! For a candidate dependency `A → B`, every inverted-list entry — a key
//! (token, n-gram or prefix of `t[A]`) at a consistent position — is
//! scored by the decision function: enough supporting rows, and a dominant
//! full RHS value with confidence at least `1 − allowed-violation-ratio`.
//! Passing entries become tableau tuples `(context ⧺ key ⧺ context → rhs)`;
//! tuples are re-validated against the table (induced contexts can widen
//! the match set), minimized under language containment (keep the most
//! general pattern per RHS), and the tableau is emitted as a PFD if its
//! coverage reaches γ.

use super::context::{build_lhs_pattern, KeyContexts};
use super::DiscoveryConfig;
use crate::pfd::{PatternTuple, Pfd};
use anmat_index::{ExtractionMode, InvertedIndex, PatternIndex};
use anmat_pattern::{contains, ConstrainedPattern, Pattern};
use anmat_table::{Table, TableProfile};
use std::collections::HashMap;

/// A validated candidate tuple with bookkeeping for minimization.
struct Candidate {
    pattern: Pattern,
    rhs: String,
    /// Rows matching the pattern (from validation).
    support: usize,
}

/// Mine the constant-PFD tableau for one column pair.
pub(crate) fn mine_constant(
    table: &Table,
    profile: &TableProfile,
    lhs: usize,
    rhs: usize,
    config: &DiscoveryConfig,
) -> Vec<Pfd> {
    let lhs_profile = &profile.columns[lhs];
    let modes: Vec<ExtractionMode> = if lhs_profile.is_single_token() {
        vec![
            ExtractionMode::Prefixes(config.prefix_max),
            ExtractionMode::NGrams(config.ngram_len),
        ]
    } else {
        vec![ExtractionMode::Tokens]
    };

    let index = PatternIndex::build(table, lhs);
    let mut candidates: Vec<Candidate> = Vec::new();
    let mut seen: HashMap<(String, String), ()> = HashMap::new();

    // Global RHS distribution for the significance test.
    let mut rhs_global: HashMap<&str, usize> = HashMap::new();
    let mut pair_rows = 0usize;
    for (_, _, b) in table.iter_pair(lhs, rhs) {
        *rhs_global.entry(b).or_insert(0) += 1;
        pair_rows += 1;
    }

    for mode in modes {
        let inv = InvertedIndex::build(table, lhs, rhs, mode, ExtractionMode::Tokens);
        let considered = inv.considered_rows.max(1);
        let key_count = inv.key_count();
        let mut keys: Vec<(&str, usize)> = inv.frequent_keys(config.min_support);
        keys.truncate(10_000); // cost cap on pathological columns
        for (key, support) in keys {
            if support as f64 / considered as f64 > config.max_key_frequency {
                continue; // stop-word key: determines nothing
            }
            for (pos, group_rows) in group_rows_by_pos(&inv, key) {
                if group_rows.len() < config.min_support {
                    continue;
                }
                // RHS distribution over distinct rows of this (key, pos).
                let mut rhs_counts: HashMap<&str, usize> = HashMap::new();
                for &row in &group_rows {
                    if let Some(v) = table.cell_str(row, rhs) {
                        *rhs_counts.entry(v).or_insert(0) += 1;
                    }
                }
                let total: usize = rhs_counts.values().sum();
                let Some((&dominant, &dom_count)) = rhs_counts
                    .iter()
                    .max_by(|(va, ca), (vb, cb)| ca.cmp(cb).then_with(|| vb.cmp(va)))
                else {
                    continue;
                };
                if total < config.min_support
                    || (dom_count as f64) < config.min_confidence() * total as f64
                {
                    continue;
                }
                // Significance: with many candidate keys, small groups can
                // agree on the RHS by chance. Expected false discoveries
                // for this entry ≈ base_rate^(support−1) · #keys.
                if pair_rows >= 100 {
                    let base =
                        rhs_global.get(dominant).copied().unwrap_or(0) as f64 / pair_rows as f64;
                    let chance = base.powi(dom_count.saturating_sub(1) as i32) * key_count as f64;
                    if chance > config.significance {
                        continue;
                    }
                }
                // Contexts from the agreeing rows only, so injected errors
                // cannot distort the learned pattern.
                let mut contexts = KeyContexts::default();
                for &row in &group_rows {
                    if table.cell_str(row, rhs) != Some(dominant) {
                        continue;
                    }
                    let Some(value) = table.cell_str(row, lhs) else {
                        continue;
                    };
                    if let Some((before, after)) = split_at_occurrence(value, key, pos, mode) {
                        contexts.push(before, after);
                    }
                }
                if contexts.is_empty() {
                    continue;
                }
                let pattern = build_lhs_pattern(key, &contexts, config.context_style);
                let sig = (pattern.to_string(), dominant.to_string());
                if seen.contains_key(&sig) {
                    continue;
                }
                // Re-validate against the full table: the induced pattern
                // may match rows outside the supporting set.
                if let Some(cand) = validate(table, &index, rhs, pattern, dominant, config) {
                    seen.insert(sig, ());
                    candidates.push(cand);
                }
            }
        }
    }

    let tableau = minimize(candidates, config.max_tableau);
    if tableau.is_empty() {
        return Vec::new();
    }
    let pfd = Pfd::new(
        config.relation.clone(),
        table.schema().name(lhs),
        table.schema().name(rhs),
        tableau,
    );
    if pfd.coverage(table) >= config.min_coverage {
        vec![pfd]
    } else {
        Vec::new()
    }
}

/// Group the distinct rows of a key by the LHS position of the occurrence.
fn group_rows_by_pos(inv: &InvertedIndex, key: &str) -> Vec<(usize, Vec<usize>)> {
    let mut by_pos: HashMap<usize, Vec<usize>> = HashMap::new();
    for p in inv.postings(key) {
        let rows = by_pos.entry(p.lhs_pos).or_default();
        if rows.last() != Some(&p.row) {
            rows.push(p.row);
        }
    }
    let mut out: Vec<(usize, Vec<usize>)> = by_pos.into_iter().collect();
    out.sort_by_key(|(pos, _)| *pos);
    out
}

/// Split `value` into (before, after) around the key occurrence at `pos`.
///
/// Positions are token indices for token mode and char offsets otherwise
/// (matching [`ExtractionMode::extract`]). Returns `None` when the
/// occurrence cannot be located (value changed shape).
fn split_at_occurrence<'v>(
    value: &'v str,
    key: &str,
    pos: usize,
    mode: ExtractionMode,
) -> Option<(&'v str, &'v str)> {
    let char_start = match mode {
        ExtractionMode::Tokens => {
            let toks = anmat_table::tokenize(value);
            let tok = toks.iter().find(|t| t.index == pos)?;
            if tok.text != key {
                return None;
            }
            tok.char_start
        }
        ExtractionMode::NGrams(_) | ExtractionMode::Prefixes(_) => pos,
    };
    let chars: Vec<(usize, char)> = value.char_indices().collect();
    let key_chars = key.chars().count();
    let start_byte = chars.get(char_start).map(|(b, _)| *b)?;
    let end_byte = match chars.get(char_start + key_chars) {
        Some((b, _)) => *b,
        None if char_start + key_chars == chars.len() => value.len(),
        None => return None,
    };
    if &value[start_byte..end_byte] != key {
        return None;
    }
    Some((&value[..start_byte], &value[end_byte..]))
}

/// Check a candidate pattern against the whole table.
fn validate(
    table: &Table,
    index: &PatternIndex,
    rhs: usize,
    pattern: Pattern,
    dominant: &str,
    config: &DiscoveryConfig,
) -> Option<Candidate> {
    let rows = index.lookup(&pattern);
    let mut agree = 0usize;
    let mut total = 0usize;
    for &row in &rows {
        let Some(v) = table.cell_str(row, rhs) else {
            continue;
        };
        total += 1;
        if v == dominant {
            agree += 1;
        }
    }
    if total < config.min_support {
        return None;
    }
    if (agree as f64) < config.min_confidence() * total as f64 {
        return None;
    }
    Some(Candidate {
        pattern,
        rhs: dominant.to_string(),
        support: rows.len(),
    })
}

/// Keep the most general pattern per RHS value; drop contained duplicates;
/// cap the tableau size by support.
fn minimize(mut candidates: Vec<Candidate>, max_tableau: usize) -> Vec<PatternTuple> {
    // Most general first (lower specificity = more general), then higher
    // support.
    candidates.sort_by(|a, b| {
        a.pattern
            .specificity()
            .cmp(&b.pattern.specificity())
            .then_with(|| b.support.cmp(&a.support))
            .then_with(|| a.pattern.to_string().cmp(&b.pattern.to_string()))
    });
    let mut kept: Vec<Candidate> = Vec::new();
    'outer: for c in candidates {
        for k in &kept {
            if k.rhs == c.rhs && contains(&k.pattern, &c.pattern) {
                continue 'outer; // already covered by a more general tuple
            }
        }
        kept.push(c);
    }
    kept.sort_by(|a, b| {
        b.support
            .cmp(&a.support)
            .then_with(|| a.pattern.to_string().cmp(&b.pattern.to_string()))
    });
    kept.truncate(max_tableau);
    kept.into_iter()
        .map(|c| PatternTuple::constant(ConstrainedPattern::unconstrained(c.pattern), c.rhs))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discovery::ContextStyle;
    use anmat_table::Schema;

    fn cfg() -> DiscoveryConfig {
        DiscoveryConfig {
            min_support: 2,
            max_violation_ratio: 0.4,
            min_coverage: 0.5,
            ..DiscoveryConfig::default()
        }
    }

    fn mine(table: &Table, config: &DiscoveryConfig) -> Vec<Pfd> {
        let profile = TableProfile::profile(table);
        mine_constant(table, &profile, 0, 1, config)
    }

    #[test]
    fn paper_table1_name_gender() {
        // D1: λ1/λ2 should emerge (John → M, Susan → F) despite r4's error.
        let t = Table::from_str_rows(
            Schema::new(["name", "gender"]).unwrap(),
            [
                ["John Charles", "M"],
                ["John Bosco", "M"],
                ["Susan Orlean", "F"],
                ["Susan Boyle", "M"], // error tolerated by the ratio
            ],
        )
        .unwrap();
        let pfds = mine(&t, &cfg());
        assert_eq!(pfds.len(), 1);
        let rendered = pfds[0].to_string();
        assert!(rendered.contains("John"), "{rendered}");
        assert!(
            rendered.contains("gender = M"),
            "John should determine M: {rendered}"
        );
    }

    #[test]
    fn paper_table2_zip_city() {
        // D2: λ3 (900xx → Los Angeles).
        let t = Table::from_str_rows(
            Schema::new(["zip", "city"]).unwrap(),
            [
                ["90001", "Los Angeles"],
                ["90002", "Los Angeles"],
                ["90003", "Los Angeles"],
                ["90004", "New York"], // error
            ],
        )
        .unwrap();
        let pfds = mine(&t, &cfg());
        assert_eq!(pfds.len(), 1);
        let pfd = &pfds[0];
        assert!(pfd.to_string().contains("Los Angeles"), "{pfd}");
        // The winning pattern should cover all four zips.
        assert!(pfd.coverage(&t) >= 0.99, "coverage {}", pfd.coverage(&t));
    }

    #[test]
    fn context_from_agreeing_rows_only() {
        // The error row has a different LHS shape; it must not poison the
        // learned pattern.
        let t = Table::from_str_rows(
            Schema::new(["code", "dept"]).unwrap(),
            [
                ["F-101", "Finance"],
                ["F-102", "Finance"],
                ["F-103", "Finance"],
                ["F-1x4", "Sales"], // shape-breaking error row
            ],
        )
        .unwrap();
        let mut c = cfg();
        c.max_violation_ratio = 0.3;
        let pfds = mine(&t, &c);
        assert_eq!(pfds.len(), 1, "{pfds:?}");
        let s = pfds[0].to_string();
        assert!(s.contains("Finance"), "{s}");
    }

    #[test]
    fn no_pfd_when_rhs_random() {
        let t = Table::from_str_rows(
            Schema::new(["a", "b"]).unwrap(),
            [
                ["tok x1", "p"],
                ["tok x2", "q"],
                ["tok x3", "r"],
                ["tok x4", "s"],
            ],
        )
        .unwrap();
        let mut c = cfg();
        c.max_violation_ratio = 0.1;
        // "tok" appears everywhere but its RHS confidence is 1/4; the
        // unique suffix tokens have support 1 < min_support.
        assert!(mine(&t, &c).is_empty());
    }

    #[test]
    fn coverage_gate_blocks_narrow_tableaux() {
        let t = Table::from_str_rows(
            Schema::new(["name", "flag"]).unwrap(),
            [
                ["aa one", "1"],
                ["aa two", "1"],
                ["bb three", "2"],
                ["cc four", "3"],
                ["dd five", "4"],
                ["ee six", "5"],
            ],
        )
        .unwrap();
        let mut c = cfg();
        c.min_coverage = 0.9; // "aa ..." covers only 1/3 of rows
        assert!(mine(&t, &c).is_empty());
        c.min_coverage = 0.3;
        assert_eq!(mine(&t, &c).len(), 1);
    }

    #[test]
    fn split_at_occurrence_modes() {
        assert_eq!(
            split_at_occurrence("Holloway, Donald E.", "Donald", 1, ExtractionMode::Tokens),
            Some(("Holloway, ", " E."))
        );
        assert_eq!(
            split_at_occurrence("90001", "900", 0, ExtractionMode::Prefixes(3)),
            Some(("", "01"))
        );
        assert_eq!(
            split_at_occurrence("F-9-107", "9-1", 2, ExtractionMode::NGrams(3)),
            Some(("F-", "07"))
        );
        // Mismatch cases.
        assert_eq!(
            split_at_occurrence("ab", "zz", 0, ExtractionMode::Prefixes(2)),
            None
        );
        assert_eq!(
            split_at_occurrence("one two", "three", 1, ExtractionMode::Tokens),
            None
        );
    }

    #[test]
    fn anystring_style_produces_paper_shapes() {
        let t = Table::from_str_rows(
            Schema::new(["name", "gender"]).unwrap(),
            [
                ["Holloway, Donald E.", "M"],
                ["Kimbell, Donald", "M"],
                ["Jones, Stacey R.", "F"],
                ["Smith, Stacey", "F"],
            ],
        )
        .unwrap();
        let mut c = cfg();
        c.context_style = ContextStyle::AnyString;
        c.max_violation_ratio = 0.1;
        let pfds = mine(&t, &c);
        assert_eq!(pfds.len(), 1);
        let s = pfds[0].to_string();
        assert!(
            s.contains("\\A*,\\ Donald\\A*") || s.contains("\\A*,\\ Donald"),
            "expected paper-style pattern, got: {s}"
        );
    }
}
