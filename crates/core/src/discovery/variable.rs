//! Mining variable PFDs (wildcard RHS — λ4/λ5 of the paper).
//!
//! A variable PFD asserts that rows agreeing on a *constrained part* of
//! the LHS pattern agree on the RHS, without naming any constant. The
//! search space of constrained patterns is generated from the column's own
//! structure:
//!
//! * **prefix splits** — for a fixed-length dominant signature such as
//!   `\D{5}`, every split `[\D{k}]\D{5−k}` (λ5: the first 3 digits of a
//!   zip determine the city);
//! * **token anchors** — for multi-token columns, constrain token `i` with
//!   its induced signature, anchoring tokens `0..i` with theirs
//!   (λ4: `[\LU\LL*\ ]\A*`, the first name determines the gender).
//!
//! Candidates are validated with lossless blocking
//! ([`BlockingIndex`]): coverage is the fraction of rows matching the
//! embedded pattern, and the violation ratio is measured over rows in
//! blocks of size ≥ 2 (singleton blocks assert nothing). Among passing
//! candidates, restrictions of other passing candidates are dropped — the
//! most general rule wins, as in the paper's preference for `λ4` over an
//! enumeration of `λ1, λ2, …`.

use super::DiscoveryConfig;
use crate::pfd::{PatternTuple, Pfd};
use anmat_index::BlockingIndex;
use anmat_pattern::{
    induce, ConstrainedPattern, Element, InduceConfig, Pattern, PatternLevel, Quantifier, Segment,
};
use anmat_table::{tokenize, Table, TableProfile};
use std::collections::HashMap;

/// Mine variable PFDs for one column pair.
pub(crate) fn mine_variable(
    table: &Table,
    profile: &TableProfile,
    lhs: usize,
    rhs: usize,
    config: &DiscoveryConfig,
) -> Vec<Pfd> {
    // Each family is ordered most-general-first (e.g. prefix splits by
    // ascending split point); the first passing member wins the family —
    // agreeing on `\D{3}` implies agreeing on `\D{1}`, so once a general
    // split holds, its restrictions are redundant.
    let families = generate_candidates(table, profile, lhs, config);
    let mut passing: Vec<ConstrainedPattern> = Vec::new();
    for family in families {
        for q in family {
            if evaluate(table, lhs, rhs, &q, config) {
                passing.push(q);
                break;
            }
        }
    }
    // Cross-family domination: drop candidates that are restrictions of
    // another passing candidate.
    let mut kept: Vec<ConstrainedPattern> = Vec::new();
    for q in &passing {
        let dominated = passing
            .iter()
            .any(|other| other != q && q.is_restriction_of(other) && !other.is_restriction_of(q));
        if !dominated {
            kept.push(q.clone());
        }
    }
    kept.sort_by_key(ToString::to_string);
    kept.dedup();
    if kept.is_empty() {
        return Vec::new();
    }
    let tableau: Vec<PatternTuple> = kept.into_iter().map(PatternTuple::variable).collect();
    vec![Pfd::new(
        config.relation.clone(),
        table.schema().name(lhs),
        table.schema().name(rhs),
        tableau,
    )]
}

/// Generate candidate families from the LHS column structure. Families are
/// ordered most-general-first.
fn generate_candidates(
    table: &Table,
    profile: &TableProfile,
    lhs: usize,
    config: &DiscoveryConfig,
) -> Vec<Vec<ConstrainedPattern>> {
    let lhs_profile = &profile.columns[lhs];
    let mut out: Vec<Vec<ConstrainedPattern>> = Vec::new();
    if lhs_profile.is_single_token() {
        // One family per dominant fixed-length signature: its prefix
        // splits, shortest (most general) first.
        if let Some(hist) = lhs_profile.histogram(PatternLevel::ClassExact) {
            let total: usize = hist.entries.iter().map(|(_, c)| c).sum();
            for (sig, count) in &hist.entries {
                if (*count as f64) < config.min_coverage * total as f64 {
                    continue; // this signature alone cannot reach γ
                }
                if !sig.is_fixed_length() {
                    continue;
                }
                let len = sig.min_len();
                let family: Vec<ConstrainedPattern> = (1..len)
                    .filter_map(|k| {
                        let (prefix, suffix) = split_fixed(sig, k)?;
                        ConstrainedPattern::new(vec![
                            Segment::constrained(prefix),
                            Segment::free(suffix),
                        ])
                        .ok()
                    })
                    .collect();
                if !family.is_empty() {
                    out.push(family);
                }
            }
        }
    } else {
        // Each token anchor is its own (singleton) family.
        out.extend(
            token_anchor_candidates(table, lhs)
                .into_iter()
                .map(|q| vec![q]),
        );
    }
    out
}

/// Split a fixed-length pattern at character position `k`.
fn split_fixed(sig: &Pattern, k: usize) -> Option<(Pattern, Pattern)> {
    let mut prefix: Vec<Element> = Vec::new();
    let mut suffix: Vec<Element> = Vec::new();
    let mut consumed = 0usize;
    for e in sig.elements() {
        let (min, max) = e.quant.interval();
        if max != Some(min) {
            return None; // not fixed-length
        }
        let n = min as usize;
        if consumed >= k {
            suffix.push(*e);
        } else if consumed + n <= k {
            prefix.push(*e);
        } else {
            // Split inside this element.
            let left = (k - consumed) as u32;
            let right = min - left;
            if left > 0 {
                prefix.push(Element::new(
                    e.class,
                    Quantifier::from_interval(left, Some(left)).ok()?,
                ));
            }
            if right > 0 {
                suffix.push(Element::new(
                    e.class,
                    Quantifier::from_interval(right, Some(right)).ok()?,
                ));
            }
        }
        consumed += n;
    }
    Some((Pattern::new(prefix), Pattern::new(suffix)))
}

/// Token-anchored candidates: constrain token `i`, anchor tokens before it
/// with their induced signatures, free tail.
fn token_anchor_candidates(table: &Table, lhs: usize) -> Vec<ConstrainedPattern> {
    const MAX_ANCHOR: usize = 3;
    // Collect per-position token samples.
    let mut samples: Vec<Vec<String>> = Vec::new();
    let mut min_tokens = usize::MAX;
    let mut rows_seen = 0usize;
    for (_, v) in table.iter_column(lhs) {
        let Some(s) = v.as_str() else { continue };
        rows_seen += 1;
        let toks = tokenize(s);
        min_tokens = min_tokens.min(toks.len());
        for t in toks.into_iter().take(MAX_ANCHOR) {
            if samples.len() <= t.index {
                samples.resize_with(t.index + 1, Vec::new);
            }
            if samples[t.index].len() < 64 {
                samples[t.index].push(t.text);
            }
        }
    }
    if rows_seen == 0 || min_tokens == usize::MAX || min_tokens == 0 {
        return Vec::new();
    }
    // Widen only variance-showing intervals; keep exact counts structural
    // (see `context::context_pattern` for the rationale).
    let induce_cfg = InduceConfig {
        loosen: true,
        loosen_threshold: u32::MAX,
        ..InduceConfig::default()
    };
    let sigs: Vec<Pattern> = samples
        .iter()
        .map(|toks| {
            let refs: Vec<&str> = toks.iter().map(String::as_str).collect();
            induce(&refs, &induce_cfg)
        })
        .collect();
    let space = Pattern::literal(" ");
    let tail = Pattern::any_string();
    let mut out = Vec::new();
    // Constrain token i for i = 0 .. min(min_tokens, MAX_ANCHOR); only
    // positions every row has can anchor.
    for i in 0..min_tokens.min(MAX_ANCHOR).min(sigs.len()) {
        let mut segments: Vec<Segment> = Vec::new();
        for sig in sigs.iter().take(i) {
            segments.push(Segment::free(sig.concat(&space)));
        }
        // The constrained token, including its trailing separator when more
        // tokens follow (the paper's Q1 constrains `\LU\LL*\ ` — first
        // name *with* the space, guaranteeing a whole-token match).
        if min_tokens > i + 1 {
            segments.push(Segment::constrained(sigs[i].concat(&space)));
            segments.push(Segment::free(tail.clone()));
        } else {
            // Last guaranteed token: rows may end here or continue.
            segments.push(Segment::constrained(sigs[i].clone()));
            segments.push(Segment::free(tail.clone()));
        }
        if let Ok(q) = ConstrainedPattern::new(segments) {
            out.push(q);
        }
    }
    out
}

/// Validate a candidate with blocking: coverage ≥ γ, violation ratio over
/// multi-row blocks ≤ the allowed ratio, and enough co-blocked rows for
/// the rule to assert anything.
fn evaluate(
    table: &Table,
    lhs: usize,
    rhs: usize,
    q: &ConstrainedPattern,
    config: &DiscoveryConfig,
) -> bool {
    let blocks = BlockingIndex::block(table, lhs, q);
    let non_null = blocks.matched_rows() + blocks.unmatched.len();
    if non_null == 0 {
        return false;
    }
    let coverage = blocks.matched_rows() as f64 / non_null as f64;
    if coverage < config.min_coverage {
        return false;
    }
    let mut multi_rows = 0usize;
    let mut violations = 0usize;
    for (_, rows) in &blocks.blocks {
        if rows.len() < 2 {
            continue;
        }
        let mut counts: HashMap<&str, usize> = HashMap::new();
        let mut with_rhs = 0usize;
        for &row in rows {
            if let Some(v) = table.cell_str(row, rhs) {
                *counts.entry(v).or_insert(0) += 1;
                with_rhs += 1;
            }
        }
        if with_rhs < 2 {
            continue;
        }
        let mut sorted: Vec<usize> = counts.values().copied().collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let majority = sorted.first().copied().unwrap_or(0);
        let runner_up = sorted.get(1).copied().unwrap_or(0);
        // Ambiguity gate: isolated errors leave a *small* disagreeing
        // remainder; a large consistent runner-up group (e.g. area codes
        // 212/NY and 217/IL co-blocked under the prefix `21`) means the
        // pattern genuinely under-determines the RHS. Reject the whole
        // candidate rather than flag hundreds of clean rows as errors.
        if runner_up as f64 > (config.max_violation_ratio * with_rhs as f64).max(1.0) {
            return false;
        }
        multi_rows += with_rhs;
        violations += with_rhs - majority;
    }
    if multi_rows < config.min_support {
        return false; // no block ever pairs rows: the rule asserts nothing
    }
    (violations as f64) <= config.max_violation_ratio * multi_rows as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use anmat_table::Schema;

    fn cfg() -> DiscoveryConfig {
        DiscoveryConfig {
            min_support: 2,
            max_violation_ratio: 0.3,
            min_coverage: 0.5,
            ..DiscoveryConfig::default()
        }
    }

    fn mine(table: &Table, config: &DiscoveryConfig) -> Vec<Pfd> {
        let profile = TableProfile::profile(table);
        mine_variable(table, &profile, 0, 1, config)
    }

    #[test]
    fn paper_lambda4_first_name_determines_gender() {
        let t = Table::from_str_rows(
            Schema::new(["name", "gender"]).unwrap(),
            [
                ["John Charles", "M"],
                ["John Bosco", "M"],
                ["Susan Orlean", "F"],
                ["Susan Boyle", "F"],
                ["Alice May", "F"],
                ["Alice Stone", "F"],
            ],
        )
        .unwrap();
        let pfds = mine(&t, &cfg());
        assert_eq!(pfds.len(), 1, "{pfds:?}");
        let s = pfds[0].to_string();
        // First token constrained, tail free.
        assert!(s.contains("[\\LU\\LL+\\ ]"), "{s}");
    }

    #[test]
    fn paper_lambda5_zip_prefix_determines_city() {
        // Cities share 1- and 2-digit prefixes (90.0xx = LA, 90.8xx = Long
        // Beach), so the most general *passing* split is exactly k = 3.
        let t = Table::from_str_rows(
            Schema::new(["zip", "city"]).unwrap(),
            [
                ["90001", "Los Angeles"],
                ["90002", "Los Angeles"],
                ["90003", "Los Angeles"],
                ["90801", "Long Beach"],
                ["90802", "Long Beach"],
                ["60601", "Chicago"],
                ["60602", "Chicago"],
            ],
        )
        .unwrap();
        // 2 of 7 co-blocked rows clash at k ≤ 2 (LA vs Long Beach under
        // "9"/"90"): a tight ratio rejects those splits, leaving k = 3.
        let mut c = cfg();
        c.max_violation_ratio = 0.1;
        let pfds = mine(&t, &c);
        assert_eq!(pfds.len(), 1, "{pfds:?}");
        let s = pfds[0].to_string();
        assert!(s.contains("[\\D{3}]\\D{2}"), "{s}");
        assert!(!s.contains("[\\D{4}]\\D"), "{s}");
        assert!(!s.contains("[\\D]"), "{s}");
    }

    #[test]
    fn most_general_split_wins() {
        // First digit already determines the city → k = 1 wins.
        let t = Table::from_str_rows(
            Schema::new(["zip", "city"]).unwrap(),
            [
                ["90001", "Los Angeles"],
                ["90002", "Los Angeles"],
                ["60601", "Chicago"],
                ["60602", "Chicago"],
            ],
        )
        .unwrap();
        let pfds = mine(&t, &cfg());
        assert_eq!(pfds.len(), 1);
        let s = pfds[0].to_string();
        assert!(s.contains("[\\D]\\D{4}"), "{s}");
    }

    #[test]
    fn violation_tolerance_admits_dirty_data() {
        let t = Table::from_str_rows(
            Schema::new(["zip", "city"]).unwrap(),
            [
                ["90001", "Los Angeles"],
                ["90002", "Los Angeles"],
                ["90003", "Los Angeles"],
                ["90004", "New York"], // error
                ["60601", "Chicago"],
                ["60602", "Chicago"],
                ["60603", "Chicago"],
                ["60604", "Chicago"],
            ],
        )
        .unwrap();
        let mut c = cfg();
        c.max_violation_ratio = 0.2; // 1 bad of 8 co-blocked rows
        let pfds = mine(&t, &c);
        assert_eq!(pfds.len(), 1, "{pfds:?}");
        c.max_violation_ratio = 0.0;
        assert!(mine(&t, &c).is_empty());
    }

    #[test]
    fn no_rule_when_rhs_disagrees() {
        let t = Table::from_str_rows(
            Schema::new(["zip", "city"]).unwrap(),
            [
                ["90001", "Los Angeles"],
                ["90002", "New York"],
                ["90003", "Chicago"],
                ["90004", "Boston"],
            ],
        )
        .unwrap();
        assert!(mine(&t, &cfg()).is_empty());
    }

    #[test]
    fn split_fixed_positions() {
        let sig: Pattern = "\\D{5}".parse().unwrap();
        let (p, s) = split_fixed(&sig, 3).unwrap();
        assert_eq!(p.to_string(), "\\D{3}");
        assert_eq!(s.to_string(), "\\D{2}");
        let sig2: Pattern = "\\LU-\\D{3}".parse().unwrap();
        let (p, s) = split_fixed(&sig2, 2).unwrap();
        assert_eq!(p.to_string(), "\\LU-");
        assert_eq!(s.to_string(), "\\D{3}");
        assert!(split_fixed(&"\\D+".parse().unwrap(), 1).is_none());
    }

    #[test]
    fn singleton_blocks_assert_nothing() {
        // All-distinct keys: trivially consistent, but must not be reported.
        let t = Table::from_str_rows(
            Schema::new(["code", "v"]).unwrap(),
            [["11111", "a"], ["22222", "b"], ["33333", "c"]],
        )
        .unwrap();
        assert!(mine(&t, &cfg()).is_empty());
    }

    #[test]
    fn mixed_token_counts() {
        let t = Table::from_str_rows(
            Schema::new(["name", "gender"]).unwrap(),
            [
                ["John Charles Xavier", "M"],
                ["John Bosco", "M"],
                ["Susan Orlean", "F"],
                ["Susan Boyle Q.", "F"],
            ],
        )
        .unwrap();
        let pfds = mine(&t, &cfg());
        assert_eq!(pfds.len(), 1, "{pfds:?}");
    }
}
