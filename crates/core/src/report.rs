//! Text renderings of the demo's three views (Figures 3–5) and the
//! Table 3 summary.
//!
//! The paper's GUI shows: a profiling view listing each column's patterns
//! as `pattern::position, frequency` (Figure 3); the tableau of each
//! discovered dependency for user confirmation (Figure 4); and the
//! violating records with the violated rule (Figure 5). This module
//! renders the same content as plain text, so examples, logs and the
//! benchmark harness can display what the demo displayed.

use crate::detect::{Violation, ViolationKind};
use crate::pfd::{LhsCell, Pfd, RhsCell};
use anmat_pattern::PatternLevel;
use anmat_table::{Table, TableProfile};
use std::fmt::Write as _;

/// Figure 3: the profiling view.
///
/// Per column: inferred type, null/distinct statistics, and the pattern
/// histogram in the paper's `pattern::position, frequency` form (position
/// is 0 for whole-value signatures).
#[must_use]
pub fn profiling_view(table: &Table, profile: &TableProfile) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== Profiling: {} rows × {} columns ===",
        table.live_rows(),
        table.column_count()
    );
    for col in &profile.columns {
        let _ = writeln!(
            out,
            "\nColumn `{}` — type {:?}, {} nulls, {} distinct (ratio {:.2}), len {}..{}",
            col.name,
            col.dtype,
            col.null_count,
            col.distinct_count,
            col.distinct_ratio(),
            col.min_len,
            col.max_len
        );
        if let Some(hist) = col.histogram(PatternLevel::ClassExact) {
            let _ = writeln!(out, "  patterns (class-exact):");
            for (pattern, freq) in hist.entries.iter().take(8) {
                let _ = writeln!(out, "    {pattern}::0, {freq}");
            }
            if hist.entries.len() > 8 {
                let _ = writeln!(out, "    … {} more", hist.entries.len() - 8);
            }
        }
        if !col.samples.is_empty() {
            let _ = writeln!(out, "  samples: {}", col.samples.join(" | "));
        }
        let _ = writeln!(
            out,
            "  candidate LHS: {}",
            if col.is_candidate() { "yes" } else { "no" }
        );
    }
    out
}

/// Figure 4: the tableau view of one discovered PFD, with per-tuple
/// coverage so the user can confirm or reject it.
#[must_use]
pub fn tableau_view(table: &Table, pfd: &Pfd) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== Dependency {} ({:?}) — coverage {:.2} ===",
        pfd.embedded_fd(),
        pfd.kind(),
        pfd.coverage(table)
    );
    let lhs_col = table.schema().index_of(&pfd.lhs_attr);
    for (i, t) in pfd.tableau.iter().enumerate() {
        let lhs = match &t.lhs {
            LhsCell::Pattern(q) => q.to_string(),
            LhsCell::Wildcard => "⊥".to_string(),
        };
        let rhs = match &t.rhs {
            RhsCell::Constant(c) => c.clone(),
            RhsCell::Wildcard => "⊥".to_string(),
        };
        // Per-tuple frequency, as in the Figure 4 display (admission
        // memoized per distinct interned value).
        let freq = lhs_col.map_or(0, |col| {
            let mut memo: fxhash::FxHashMap<anmat_table::ValueId, bool> =
                fxhash::FxHashMap::default();
            table
                .iter_column(col)
                .filter(|(_, v)| {
                    v.as_str()
                        .is_some_and(|s| *memo.entry(*v).or_insert_with(|| t.lhs.admits(s)))
                })
                .count()
        });
        let _ = writeln!(out, "  tp{i}: {lhs} → {rhs}   (frequency {freq})");
    }
    out
}

/// Figure 5: violations with the violated rule and the full record.
#[must_use]
pub fn violations_view(table: &Table, violations: &[Violation]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== {} violation(s) ===", violations.len());
    for v in violations {
        let record: Vec<String> = (0..table.column_count())
            .map(|c| table.cell_id(v.row, c).to_string())
            .collect();
        match &v.kind {
            ViolationKind::Constant {
                pattern,
                expected,
                found,
            } => {
                let _ = writeln!(
                    out,
                    "row {}: [{}] violates {} :: {} → {}",
                    v.row,
                    record.join(" | "),
                    v.dependency,
                    pattern,
                    expected
                );
                let _ = writeln!(
                    out,
                    "    found {} = {:?}, expected {:?}",
                    v.rhs_attr,
                    found.as_deref().unwrap_or("∅"),
                    expected
                );
            }
            ViolationKind::Variable {
                pattern,
                key,
                majority,
                found,
                witnesses,
            } => {
                let _ = writeln!(
                    out,
                    "row {}: [{}] violates {} :: {}",
                    v.row,
                    record.join(" | "),
                    v.dependency,
                    pattern
                );
                let _ = writeln!(
                    out,
                    "    block key {key:?}: found {} = {:?}, block majority {:?} (witness rows {:?})",
                    v.rhs_attr,
                    found.as_deref().unwrap_or("∅"),
                    majority,
                    witnesses
                );
            }
        }
        if let Some(r) = &v.repair {
            let _ = writeln!(
                out,
                "    suggested repair: set {}[row {}] := {:?}",
                r.attr, r.row, r.to
            );
        }
    }
    out
}

/// One row of the paper's Table 3: dependency, tableau patterns, and the
/// errors detected.
#[must_use]
pub fn table3_row(dataset: &str, table: &Table, pfd: &Pfd, violations: &[Violation]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{dataset}  {}", pfd.embedded_fd());
    for t in &pfd.tableau {
        let lhs = match &t.lhs {
            LhsCell::Pattern(q) => q.to_string(),
            LhsCell::Wildcard => "⊥".to_string(),
        };
        let rhs = match &t.rhs {
            RhsCell::Constant(c) => c.clone(),
            RhsCell::Wildcard => "⊥".to_string(),
        };
        let _ = writeln!(out, "    {lhs} → {rhs}");
    }
    for v in violations.iter().take(8) {
        let lhs_val = &v.lhs_value;
        let found = match &v.kind {
            ViolationKind::Constant { found, .. } | ViolationKind::Variable { found, .. } => {
                found.as_deref().unwrap_or("∅")
            }
        };
        let _ = writeln!(out, "    error: {lhs_val} | {found}");
    }
    let _ = table;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::detect_pfd;
    use crate::pfd::PatternTuple;
    use anmat_pattern::ConstrainedPattern;
    use anmat_table::Schema;

    fn zip_table() -> Table {
        Table::from_str_rows(
            Schema::new(["zip", "city"]).unwrap(),
            [
                ["90001", "Los Angeles"],
                ["90002", "Los Angeles"],
                ["90003", "Los Angeles"],
                ["90004", "New York"],
            ],
        )
        .unwrap()
    }

    fn lambda3() -> Pfd {
        Pfd::new(
            "Zip",
            "zip",
            "city",
            vec![PatternTuple::constant(
                ConstrainedPattern::unconstrained("900\\D{2}".parse().unwrap()),
                "Los Angeles",
            )],
        )
    }

    #[test]
    fn profiling_view_lists_patterns() {
        let t = zip_table();
        let p = TableProfile::profile(&t);
        let view = profiling_view(&t, &p);
        assert!(view.contains("Column `zip`"), "{view}");
        assert!(view.contains("\\D{5}::0, 4"), "{view}");
        assert!(view.contains("candidate LHS: yes"), "{view}");
    }

    #[test]
    fn tableau_view_shows_frequency() {
        let t = zip_table();
        let view = tableau_view(&t, &lambda3());
        assert!(view.contains("zip → city"), "{view}");
        assert!(view.contains("900\\D{2} → Los Angeles"), "{view}");
        assert!(view.contains("frequency 4"), "{view}");
    }

    #[test]
    fn violations_view_shows_record_and_repair() {
        let t = zip_table();
        let violations = detect_pfd(&t, &lambda3());
        let view = violations_view(&t, &violations);
        assert!(view.contains("1 violation(s)"), "{view}");
        assert!(view.contains("90004 | New York"), "{view}");
        assert!(view.contains("suggested repair"), "{view}");
    }

    #[test]
    fn table3_row_format() {
        let t = zip_table();
        let violations = detect_pfd(&t, &lambda3());
        let row = table3_row("D5", &t, &lambda3(), &violations);
        assert!(row.contains("D5  zip → city"), "{row}");
        assert!(row.contains("900\\D{2} → Los Angeles"), "{row}");
        assert!(row.contains("error: 90004 | New York"), "{row}");
    }
}
