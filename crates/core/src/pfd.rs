//! The PFD model (§2 of the paper).
//!
//! A PFD `ψ` over schema `R` is a pair `R(X → Y, Tp)`: an embedded FD plus
//! a pattern tableau whose cells are constrained patterns or the wildcard
//! `⊥`. Discovery works over column pairs, so this implementation models
//! the (single-LHS-attribute, single-RHS-attribute) case the paper's
//! algorithm and all its examples use; the tableau may hold any number of
//! pattern tuples.
//!
//! Two classes drive detection (§3):
//!
//! * **constant PFDs** — every tableau RHS is a constant
//!   (λ1: `[name = John\ \A*] → [gender = M]`);
//! * **variable PFDs** — the RHS is `⊥`
//!   (λ4: `[name = \LU\LL*\ \A*] → [gender]`).
//!
//! A mixed tableau is allowed; [`Pfd::kind`] reports what it holds.

use anmat_pattern::ConstrainedPattern;
use anmat_table::Table;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The LHS cell of a pattern tuple: a constrained pattern or a wildcard.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LhsCell {
    /// A constrained pattern the LHS value must match.
    Pattern(ConstrainedPattern),
    /// The unnamed variable `⊥` (any value).
    Wildcard,
}

impl LhsCell {
    /// Does a value satisfy this cell?
    #[must_use]
    pub fn admits(&self, value: &str) -> bool {
        match self {
            LhsCell::Pattern(q) => q.matches(value),
            LhsCell::Wildcard => true,
        }
    }

    /// The blocking key of a value under this cell (whole value for `⊥`).
    #[must_use]
    pub fn key(&self, value: &str) -> Option<String> {
        match self {
            LhsCell::Pattern(q) => {
                if q.has_constraint() {
                    q.key(value)
                } else {
                    // Matches-only semantics: a single anonymous block.
                    q.matches(value).then(String::new)
                }
            }
            LhsCell::Wildcard => Some(value.to_string()),
        }
    }
}

/// The RHS cell of a pattern tuple: a constant or the wildcard `⊥`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RhsCell {
    /// The RHS must equal this constant.
    Constant(String),
    /// `⊥`: RHS values must merely *agree* across `≡_Q`-equivalent rows.
    Wildcard,
}

/// One tuple of the pattern tableau `Tp`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PatternTuple {
    /// The LHS cell.
    pub lhs: LhsCell,
    /// The RHS cell.
    pub rhs: RhsCell,
}

impl PatternTuple {
    /// A constant pattern tuple.
    #[must_use]
    pub fn constant(lhs: ConstrainedPattern, rhs: impl Into<String>) -> PatternTuple {
        PatternTuple {
            lhs: LhsCell::Pattern(lhs),
            rhs: RhsCell::Constant(rhs.into()),
        }
    }

    /// A variable pattern tuple.
    #[must_use]
    pub fn variable(lhs: ConstrainedPattern) -> PatternTuple {
        PatternTuple {
            lhs: LhsCell::Pattern(lhs),
            rhs: RhsCell::Wildcard,
        }
    }

    /// Is the RHS a constant?
    #[must_use]
    pub fn is_constant(&self) -> bool {
        matches!(self.rhs, RhsCell::Constant(_))
    }
}

/// Classification of a PFD's tableau.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PfdKind {
    /// All tableau RHS cells are constants.
    Constant,
    /// All tableau RHS cells are wildcards.
    Variable,
    /// Both kinds present.
    Mixed,
}

/// A pattern functional dependency `R(A → B, Tp)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pfd {
    /// Relation (table) name, for display.
    pub relation: String,
    /// LHS attribute name.
    pub lhs_attr: String,
    /// RHS attribute name.
    pub rhs_attr: String,
    /// The pattern tableau.
    pub tableau: Vec<PatternTuple>,
}

impl Pfd {
    /// Build a PFD.
    #[must_use]
    pub fn new(
        relation: impl Into<String>,
        lhs_attr: impl Into<String>,
        rhs_attr: impl Into<String>,
        tableau: Vec<PatternTuple>,
    ) -> Pfd {
        Pfd {
            relation: relation.into(),
            lhs_attr: lhs_attr.into(),
            rhs_attr: rhs_attr.into(),
            tableau,
        }
    }

    /// Classify the tableau.
    #[must_use]
    pub fn kind(&self) -> PfdKind {
        let constants = self.tableau.iter().filter(|t| t.is_constant()).count();
        if constants == self.tableau.len() {
            PfdKind::Constant
        } else if constants == 0 {
            PfdKind::Variable
        } else {
            PfdKind::Mixed
        }
    }

    /// The embedded FD, rendered `A → B`.
    #[must_use]
    pub fn embedded_fd(&self) -> String {
        format!("{} → {}", self.lhs_attr, self.rhs_attr)
    }

    /// Fraction of rows (non-null on the LHS) whose LHS value matches at
    /// least one tableau pattern — the paper's *coverage*, the quantity
    /// compared against the minimum-coverage threshold γ.
    #[must_use]
    pub fn coverage(&self, table: &Table) -> f64 {
        let Some(col) = table.schema().index_of(&self.lhs_attr) else {
            return 0.0;
        };
        let mut total = 0usize;
        let mut covered = 0usize;
        // Admission depends only on the cell string: memoize per distinct
        // interned value so each tableau pattern matches at most
        // `distinct(column)` times.
        let mut memo: fxhash::FxHashMap<anmat_table::ValueId, bool> = fxhash::FxHashMap::default();
        for (_, v) in table.iter_column(col) {
            let Some(s) = v.as_str() else { continue };
            total += 1;
            let admits = *memo
                .entry(v)
                .or_insert_with(|| self.tableau.iter().any(|t| t.lhs.admits(s)));
            if admits {
                covered += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            covered as f64 / total as f64
        }
    }

    /// The tableau tuples with constant RHS.
    pub fn constant_tuples(&self) -> impl Iterator<Item = &PatternTuple> {
        self.tableau.iter().filter(|t| t.is_constant())
    }

    /// The tableau tuples with wildcard RHS.
    pub fn variable_tuples(&self) -> impl Iterator<Item = &PatternTuple> {
        self.tableau.iter().filter(|t| !t.is_constant())
    }
}

impl fmt::Display for Pfd {
    /// Paper syntax, one tableau tuple per line:
    /// `Name ([name = John\ \A*] → [gender = M])`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, t) in self.tableau.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{} ([{} = ", self.relation, self.lhs_attr)?;
            match &t.lhs {
                LhsCell::Pattern(q) => write!(f, "{q}")?,
                LhsCell::Wildcard => write!(f, "⊥")?,
            }
            write!(f, "] → [{}", self.rhs_attr)?;
            match &t.rhs {
                RhsCell::Constant(c) => write!(f, " = {c}")?,
                RhsCell::Wildcard => {}
            }
            write!(f, "])")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anmat_table::Schema;

    fn q(s: &str) -> ConstrainedPattern {
        s.parse().unwrap()
    }

    fn name_table() -> Table {
        Table::from_str_rows(
            Schema::new(["name", "gender"]).unwrap(),
            [
                ["John Charles", "M"],
                ["John Bosco", "M"],
                ["Susan Orlean", "F"],
                ["Susan Boyle", "M"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn lambda1_display() {
        // λ1 from the paper.
        let pfd = Pfd::new(
            "Name",
            "name",
            "gender",
            vec![PatternTuple::constant(q("John\\ \\A*"), "M")],
        );
        assert_eq!(
            pfd.to_string(),
            "Name ([name = John\\ \\A*] → [gender = M])"
        );
        assert_eq!(pfd.kind(), PfdKind::Constant);
    }

    #[test]
    fn lambda4_display() {
        // λ4: variable PFD.
        let pfd = Pfd::new(
            "Name",
            "name",
            "gender",
            vec![PatternTuple::variable(q("[\\LU\\LL*\\ ]\\A*"))],
        );
        assert_eq!(
            pfd.to_string(),
            "Name ([name = [\\LU\\LL*\\ ]\\A*] → [gender])"
        );
        assert_eq!(pfd.kind(), PfdKind::Variable);
    }

    #[test]
    fn kind_mixed() {
        let pfd = Pfd::new(
            "R",
            "a",
            "b",
            vec![
                PatternTuple::constant(q("x\\A*"), "1"),
                PatternTuple::variable(q("[\\LL+]")),
            ],
        );
        assert_eq!(pfd.kind(), PfdKind::Mixed);
        assert_eq!(pfd.constant_tuples().count(), 1);
        assert_eq!(pfd.variable_tuples().count(), 1);
    }

    #[test]
    fn coverage_counts_matching_lhs() {
        let t = name_table();
        let pfd = Pfd::new(
            "Name",
            "name",
            "gender",
            vec![
                PatternTuple::constant(q("John\\ \\A*"), "M"),
                PatternTuple::constant(q("Susan\\ \\A*"), "F"),
            ],
        );
        assert!((pfd.coverage(&t) - 1.0).abs() < 1e-9);
        let partial = Pfd::new(
            "Name",
            "name",
            "gender",
            vec![PatternTuple::constant(q("John\\ \\A*"), "M")],
        );
        assert!((partial.coverage(&t) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn coverage_zero_for_unknown_column() {
        let t = name_table();
        let pfd = Pfd::new("Name", "missing", "gender", vec![]);
        assert_eq!(pfd.coverage(&t), 0.0);
    }

    #[test]
    fn lhs_cell_keys() {
        let cell = LhsCell::Pattern(q("[\\D{3}]\\D{2}"));
        assert_eq!(cell.key("90001").as_deref(), Some("900"));
        assert_eq!(cell.key("9000x"), None);
        assert!(cell.admits("90001"));
        let free = LhsCell::Pattern(q("\\D{5}"));
        assert_eq!(free.key("90001").as_deref(), Some(""));
        let wild = LhsCell::Wildcard;
        assert_eq!(wild.key("anything").as_deref(), Some("anything"));
        assert!(wild.admits(""));
    }

    #[test]
    fn serde_roundtrip() {
        let pfd = Pfd::new(
            "Zip",
            "zip",
            "city",
            vec![PatternTuple::constant(q("900\\D{2}"), "Los Angeles")],
        );
        let json = serde_json::to_string(&pfd).unwrap();
        let pfd2: Pfd = serde_json::from_str(&json).unwrap();
        assert_eq!(pfd, pfd2);
    }
}
