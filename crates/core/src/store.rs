//! Persistent rule store — the MongoDB substitution.
//!
//! The demo "store\[s\] the results in a MongoDB database" after profiling
//! and discovery. This module provides the equivalent persistence as a
//! plain directory of JSON documents: one *project* per directory,
//! holding named datasets' profiles, discovered PFDs, and confirmation
//! status (the Figure 4 workflow lets users confirm/reject each
//! dependency).

use crate::pfd::Pfd;
use anmat_table::TableProfile;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A discovered dependency plus its user-confirmation state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredRule {
    /// The dependency.
    pub pfd: Pfd,
    /// Figure-4 confirmation status.
    pub status: RuleStatus,
}

/// User decision on a discovered dependency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RuleStatus {
    /// Discovered, not yet reviewed.
    Pending,
    /// Confirmed valid for the dataset.
    Confirmed,
    /// Rejected by the user.
    Rejected,
}

/// Everything stored for one dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetRecord {
    /// Dataset name (file stem).
    pub name: String,
    /// The profiling result, if profiled.
    pub profile: Option<TableProfile>,
    /// Discovered rules with status.
    pub rules: Vec<StoredRule>,
}

/// A project directory holding dataset records as JSON files.
#[derive(Debug)]
pub struct RuleStore {
    root: PathBuf,
}

impl RuleStore {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<RuleStore> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(RuleStore { root })
    }

    /// The backing directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_for(&self, dataset: &str) -> PathBuf {
        // File-system safety: keep alphanumerics, map the rest to '_'.
        let safe: String = dataset
            .chars()
            .map(|c| {
                if c.is_alphanumeric() || c == '-' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        self.root.join(format!("{safe}.json"))
    }

    /// Persist a dataset record (overwrites).
    pub fn save(&self, record: &DatasetRecord) -> io::Result<()> {
        let json = serde_json::to_string_pretty(record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        fs::write(self.path_for(&record.name), json)
    }

    /// Load a dataset record by name.
    pub fn load(&self, dataset: &str) -> io::Result<DatasetRecord> {
        let text = fs::read_to_string(self.path_for(dataset))?;
        serde_json::from_str(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Does a record exist?
    #[must_use]
    pub fn contains(&self, dataset: &str) -> bool {
        self.path_for(dataset).exists()
    }

    /// List stored dataset names (sorted).
    pub fn list(&self) -> io::Result<Vec<String>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some("json") {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    out.push(stem.to_string());
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Update one rule's confirmation status; returns whether it changed.
    pub fn set_status(
        &self,
        dataset: &str,
        rule_index: usize,
        status: RuleStatus,
    ) -> io::Result<bool> {
        let mut record = self.load(dataset)?;
        let Some(rule) = record.rules.get_mut(rule_index) else {
            return Ok(false);
        };
        if rule.status == status {
            return Ok(false);
        }
        rule.status = status;
        self.save(&record)?;
        Ok(true)
    }

    /// The confirmed (or pending, if `include_pending`) PFDs of a dataset —
    /// what detection should run with.
    pub fn active_rules(&self, dataset: &str, include_pending: bool) -> io::Result<Vec<Pfd>> {
        let record = self.load(dataset)?;
        Ok(record
            .rules
            .into_iter()
            .filter(|r| {
                r.status == RuleStatus::Confirmed
                    || (include_pending && r.status == RuleStatus::Pending)
            })
            .map(|r| r.pfd)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pfd::PatternTuple;
    use anmat_pattern::ConstrainedPattern;

    fn tmp_store(tag: &str) -> RuleStore {
        let dir = std::env::temp_dir().join(format!("anmat_store_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        RuleStore::open(dir).unwrap()
    }

    fn sample_rule() -> StoredRule {
        StoredRule {
            pfd: Pfd::new(
                "Zip",
                "zip",
                "city",
                vec![PatternTuple::constant(
                    ConstrainedPattern::unconstrained("900\\D{2}".parse().unwrap()),
                    "Los Angeles",
                )],
            ),
            status: RuleStatus::Pending,
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let store = tmp_store("roundtrip");
        let record = DatasetRecord {
            name: "zips".into(),
            profile: None,
            rules: vec![sample_rule()],
        };
        store.save(&record).unwrap();
        let loaded = store.load("zips").unwrap();
        assert_eq!(loaded, record);
        assert!(store.contains("zips"));
        assert!(!store.contains("other"));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn list_sorted() {
        let store = tmp_store("list");
        for name in ["beta", "alpha"] {
            store
                .save(&DatasetRecord {
                    name: name.into(),
                    profile: None,
                    rules: vec![],
                })
                .unwrap();
        }
        assert_eq!(store.list().unwrap(), vec!["alpha", "beta"]);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn confirmation_workflow() {
        let store = tmp_store("confirm");
        store
            .save(&DatasetRecord {
                name: "d".into(),
                profile: None,
                rules: vec![sample_rule(), sample_rule()],
            })
            .unwrap();
        // Pending rules run by default, not in confirmed-only mode.
        assert_eq!(store.active_rules("d", true).unwrap().len(), 2);
        assert_eq!(store.active_rules("d", false).unwrap().len(), 0);
        assert!(store.set_status("d", 0, RuleStatus::Confirmed).unwrap());
        assert!(store.set_status("d", 1, RuleStatus::Rejected).unwrap());
        assert_eq!(store.active_rules("d", false).unwrap().len(), 1);
        assert_eq!(store.active_rules("d", true).unwrap().len(), 1);
        // Out-of-range and no-op updates report false.
        assert!(!store.set_status("d", 9, RuleStatus::Confirmed).unwrap());
        assert!(!store.set_status("d", 0, RuleStatus::Confirmed).unwrap());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn unsafe_names_are_sanitized() {
        let store = tmp_store("sanitize");
        let record = DatasetRecord {
            name: "../weird name!".into(),
            profile: None,
            rules: vec![],
        };
        store.save(&record).unwrap();
        // Stored under a sanitized stem inside the root.
        assert!(store.contains("../weird name!"));
        let listed = store.list().unwrap();
        assert_eq!(listed.len(), 1);
        assert!(!listed[0].contains('/'));
        let _ = fs::remove_dir_all(store.root());
    }
}
