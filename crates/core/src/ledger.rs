//! Live violation bookkeeping with retraction support.
//!
//! Batch detection recomputes the full violation set per call; an
//! append-only stream instead maintains a *ledger* of live violations.
//! New rows can both **create** violations and **retract** earlier ones —
//! a late burst of agreeing rows can flip a block's majority RHS, turning
//! yesterday's "error" into today's consensus — so the ledger tracks
//! every live violation with a reference count (two rules can imply the
//! same violation; it stays live until the last implier retracts it) and
//! running created/retracted totals for monitoring.
//!
//! Identity is *structural*: two violations are the same ledger entry iff
//! their serialized forms agree (dependency, row, evidence, witnesses,
//! repair — everything). The incremental engine retracts exactly the
//! objects it previously created, so structural identity is both precise
//! and cheap.
//!
//! The ledger also participates in the **compaction remap protocol**:
//! when the backing table compacts (renumbering `RowId`s),
//! [`ViolationLedger::remap`] rewrites every live violation's row
//! references in place and adopts the remap's epoch. Event *history* is
//! never rewritten — each [`LedgerEvent`] carries the
//! [`epoch`](LedgerEvent::epoch) it was emitted in, so a consumer
//! replaying an event log knows which id space every row reference
//! lives in, and replay stays bit-exact across compactions.

use crate::detect::Violation;
use anmat_obs as obs;
use anmat_table::RowIdRemap;
use std::collections::BTreeMap;
use std::sync::Arc;

/// What happened to a violation's liveness.
#[derive(Debug, Clone, PartialEq)]
pub enum LedgerChange {
    /// A violation became live.
    Created(Violation),
    /// A previously live violation was withdrawn (e.g. the block majority
    /// flipped, or its witnesses changed).
    Retracted(Violation),
}

/// A change to the set of live violations, stamped with the compaction
/// epoch it was emitted in.
///
/// Row ids inside the change are meaningful relative to `epoch`: a
/// compaction renumbers rows, remaps the *live* set silently (no
/// events), and bumps the ledger's epoch — so already-emitted events
/// keep their original ids and their original epoch stamp, verbatim.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEvent {
    /// The ledger's compaction epoch at emission time (0 before any
    /// compaction).
    pub epoch: u64,
    /// The liveness change itself.
    pub change: LedgerChange,
}

impl LedgerEvent {
    /// The violation the event concerns.
    #[must_use]
    pub fn violation(&self) -> &Violation {
        match &self.change {
            LedgerChange::Created(v) | LedgerChange::Retracted(v) => v,
        }
    }

    /// Is this a creation?
    #[must_use]
    pub fn is_created(&self) -> bool {
        matches!(self.change, LedgerChange::Created(_))
    }
}

/// The set of currently live violations, keyed structurally, with
/// reference counts and lifetime counters.
///
/// The live map sits behind an [`Arc`], so [`ViolationLedger::freeze`]
/// captures a consistent snapshot in `O(1)`; the first mutation after a
/// capture copies the map once (map-granular copy-on-write) and every
/// further mutation is back to in-place cost.
#[derive(Debug, Default, Clone)]
pub struct ViolationLedger {
    /// Canonical serialization → (refcount, violation). A `BTreeMap`
    /// keeps iteration deterministic.
    live: Arc<BTreeMap<String, (usize, Violation)>>,
    created_total: usize,
    retracted_total: usize,
    /// Compaction epoch stamped onto emitted events; follows the backing
    /// table's epoch via [`ViolationLedger::remap`].
    epoch: u64,
}

/// A frozen, read-only view of a [`ViolationLedger`] captured by
/// [`ViolationLedger::freeze`] — shares the live map with the ledger
/// until the ledger next mutates. Derefs to [`ViolationLedger`], so the
/// whole read API (`live`, `snapshot`, counters) works on it.
#[derive(Debug, Clone)]
pub struct LedgerSnapshot {
    inner: ViolationLedger,
}

impl LedgerSnapshot {
    /// The frozen view, as a `&ViolationLedger`.
    #[must_use]
    pub fn ledger(&self) -> &ViolationLedger {
        &self.inner
    }
}

impl std::ops::Deref for LedgerSnapshot {
    type Target = ViolationLedger;

    fn deref(&self) -> &ViolationLedger {
        &self.inner
    }
}

fn canonical_key(v: &Violation) -> String {
    serde_json::to_string(v).expect("violations serialize infallibly")
}

impl ViolationLedger {
    /// An empty ledger.
    #[must_use]
    pub fn new() -> ViolationLedger {
        ViolationLedger::default()
    }

    /// Capture a copy-on-write snapshot: `O(1)` — the handle shares the
    /// live map until this ledger next mutates (which pays one map
    /// copy, counted as `snapshot.map_copies`).
    #[must_use]
    pub fn freeze(&self) -> LedgerSnapshot {
        obs::counter!("snapshot.ledger_captures").incr();
        LedgerSnapshot {
            inner: self.clone(),
        }
    }

    /// The live map, for mutation — copies it first if a snapshot still
    /// shares it.
    fn live_mut(&mut self) -> &mut BTreeMap<String, (usize, Violation)> {
        if Arc::strong_count(&self.live) > 1 {
            obs::counter!("snapshot.map_copies").incr();
        }
        Arc::make_mut(&mut self.live)
    }

    /// Record a violation. Returns the `Created` event if it was not
    /// already live (otherwise only the reference count grows).
    pub fn create(&mut self, violation: Violation) -> Option<LedgerEvent> {
        let key = canonical_key(&violation);
        let entry = self
            .live_mut()
            .entry(key)
            .or_insert_with(|| (0, violation.clone()));
        entry.0 += 1;
        if entry.0 == 1 {
            self.created_total += 1;
            obs::counter!("ledger.created").incr();
            Some(LedgerEvent {
                epoch: self.epoch,
                change: LedgerChange::Created(violation),
            })
        } else {
            None
        }
    }

    /// Withdraw a violation. Returns the `Retracted` event once the last
    /// reference is gone; `None` if other rules still imply it (or it was
    /// never live).
    pub fn retract(&mut self, violation: &Violation) -> Option<LedgerEvent> {
        let key = canonical_key(violation);
        // Peek before touching the map so a retract of a never-live
        // violation doesn't force a COW copy under a snapshot.
        if !self.live.contains_key(&key) {
            return None;
        }
        let live = self.live_mut();
        let entry = live.get_mut(&key)?;
        entry.0 -= 1;
        if entry.0 > 0 {
            return None;
        }
        let (_, v) = live.remove(&key).expect("entry exists");
        self.retracted_total += 1;
        obs::counter!("ledger.retracted").incr();
        Some(LedgerEvent {
            epoch: self.epoch,
            change: LedgerChange::Retracted(v),
        })
    }

    /// The ledger's current compaction epoch (0 before any
    /// [`ViolationLedger::remap`]).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Apply a compaction [`RowIdRemap`]: rewrite every *live*
    /// violation's row references (flagged row, witnesses, repair
    /// target) into the new id space and adopt the remap's epoch.
    ///
    /// Deliberately silent — no `Created`/`Retracted` events are
    /// emitted and the lifetime counters do not move, because no
    /// violation's liveness changed; only its coordinates did. Event
    /// history stays verbatim (see [`LedgerEvent::epoch`]). Reference
    /// counts survive: the remap is injective on live rows and touches
    /// nothing else, so distinct entries stay distinct.
    pub fn remap(&mut self, remap: &RowIdRemap) {
        self.epoch = remap.epoch();
        let old = std::mem::take(self.live_mut());
        let live = Arc::make_mut(&mut self.live);
        for (_, (refcount, mut v)) in old {
            v.remap(remap);
            let key = canonical_key(&v);
            let prev = live.insert(key, (refcount, v));
            debug_assert!(prev.is_none(), "remap is injective on live violations");
        }
    }

    /// The live violations, in deterministic (serialized-key) order.
    pub fn live(&self) -> impl Iterator<Item = &Violation> {
        self.live.values().map(|(_, v)| v)
    }

    /// The live violations sorted like [`crate::detect_all`] output:
    /// `(row, dependency)` first, then canonical form for total order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Violation> {
        let mut out: Vec<(&String, &Violation)> =
            self.live.iter().map(|(k, (_, v))| (k, v)).collect();
        out.sort_by(|(ka, a), (kb, b)| {
            a.row
                .cmp(&b.row)
                .then_with(|| a.dependency.cmp(&b.dependency))
                .then_with(|| ka.cmp(kb))
        });
        out.into_iter().map(|(_, v)| v.clone()).collect()
    }

    /// Number of currently live violations.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Is the ledger empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Violations ever created (distinct live transitions).
    #[must_use]
    pub fn created_total(&self) -> usize {
        self.created_total
    }

    /// Violations ever retracted.
    #[must_use]
    pub fn retracted_total(&self) -> usize {
        self.retracted_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::{Violation, ViolationKind};

    fn violation(row: usize, expected: &str) -> Violation {
        Violation {
            dependency: "zip → city".into(),
            lhs_attr: "zip".into(),
            rhs_attr: "city".into(),
            row,
            lhs_value: "90004".into(),
            kind: ViolationKind::Constant {
                pattern: "900\\D{2}".into(),
                expected: expected.into(),
                found: Some("New York".into()),
            },
            repair: None,
        }
    }

    #[test]
    fn create_and_retract_roundtrip() {
        let mut ledger = ViolationLedger::new();
        let v = violation(3, "Los Angeles");
        let created = ledger.create(v.clone()).expect("fresh violation");
        assert!(created.is_created());
        assert_eq!(created.epoch, 0, "pre-compaction events carry epoch 0");
        assert_eq!(ledger.live_count(), 1);
        let retracted = ledger.retract(&v).expect("was live");
        assert!(!retracted.is_created());
        assert!(matches!(retracted.change, LedgerChange::Retracted(_)));
        assert!(ledger.is_empty());
        assert_eq!(ledger.created_total(), 1);
        assert_eq!(ledger.retracted_total(), 1);
    }

    #[test]
    fn refcount_suppresses_duplicate_events() {
        let mut ledger = ViolationLedger::new();
        let v = violation(3, "Los Angeles");
        assert!(ledger.create(v.clone()).is_some());
        // A second rule implying the identical violation: no new event.
        assert!(ledger.create(v.clone()).is_none());
        assert_eq!(ledger.live_count(), 1);
        // First retraction leaves it live; the second removes it.
        assert!(ledger.retract(&v).is_none());
        assert_eq!(ledger.live_count(), 1);
        assert!(ledger.retract(&v).is_some());
        assert!(ledger.is_empty());
    }

    #[test]
    fn retract_unknown_is_noop() {
        let mut ledger = ViolationLedger::new();
        assert!(ledger.retract(&violation(9, "X")).is_none());
        assert_eq!(ledger.retracted_total(), 0);
    }

    #[test]
    fn double_retract_is_a_noop() {
        let mut ledger = ViolationLedger::new();
        let v = violation(3, "Los Angeles");
        ledger.create(v.clone());
        assert!(ledger.retract(&v).is_some());
        // A second retraction of the same violation must change nothing:
        // no event, no counter movement, no underflow.
        assert!(ledger.retract(&v).is_none());
        assert!(ledger.retract(&v).is_none());
        assert_eq!(ledger.retracted_total(), 1);
        assert_eq!(ledger.created_total(), 1);
        assert!(ledger.is_empty());
    }

    #[test]
    fn retract_then_recreate_yields_a_fresh_event() {
        let mut ledger = ViolationLedger::new();
        let v = violation(3, "Los Angeles");
        assert!(ledger.create(v.clone()).is_some_and(|e| e.is_created()));
        ledger.retract(&v).unwrap();
        // Re-creating after a full retraction is a new lifecycle: a
        // fresh Created event, and both lifetime counters advance.
        assert!(ledger.create(v.clone()).is_some_and(|e| e.is_created()));
        assert_eq!(ledger.created_total(), 2);
        assert_eq!(ledger.retracted_total(), 1);
        assert_eq!(ledger.live_count(), 1);
    }

    #[test]
    fn snapshot_sorted_by_row_then_dependency() {
        let mut ledger = ViolationLedger::new();
        ledger.create(violation(5, "A"));
        ledger.create(violation(1, "B"));
        ledger.create(violation(1, "A"));
        let rows: Vec<usize> = ledger.snapshot().iter().map(|v| v.row).collect();
        assert_eq!(rows, vec![1, 1, 5]);
    }

    #[test]
    fn distinct_violations_tracked_separately() {
        let mut ledger = ViolationLedger::new();
        ledger.create(violation(3, "Los Angeles"));
        ledger.create(violation(3, "San Diego"));
        assert_eq!(ledger.live_count(), 2);
    }

    /// A remap built from a real table compaction: slots 0 and 2 die, so
    /// survivors 1, 3, 4 become 0, 1, 2.
    fn sample_remap() -> anmat_table::RowIdRemap {
        use anmat_table::{Schema, Table, Value};
        let mut t = Table::empty(Schema::new(["a"]).unwrap());
        for i in 0..5 {
            t.push_row(vec![Value::text(format!("r{i}"))]).unwrap();
        }
        t.delete_row(0).unwrap();
        t.delete_row(2).unwrap();
        t.compact()
    }

    fn variable_violation(row: usize, witnesses: Vec<usize>) -> Violation {
        Violation {
            dependency: "zip → city".into(),
            lhs_attr: "zip".into(),
            rhs_attr: "city".into(),
            row,
            lhs_value: "90004".into(),
            kind: ViolationKind::Variable {
                pattern: "[\\D{3}]\\D{2}".into(),
                key: "900".into(),
                majority: "Los Angeles".into(),
                found: Some("New York".into()),
                witnesses,
            },
            repair: Some(crate::detect::Repair {
                row,
                attr: "city".into(),
                from: Some("New York".into()),
                to: "Los Angeles".into(),
            }),
        }
    }

    #[test]
    fn remap_rewrites_live_rows_witnesses_and_repairs() {
        let mut ledger = ViolationLedger::new();
        ledger.create(variable_violation(4, vec![1, 3]));
        ledger.create(violation(3, "Los Angeles"));
        ledger.remap(&sample_remap());
        assert_eq!(ledger.epoch(), 1);
        let snap = ledger.snapshot();
        assert_eq!(snap.len(), 2);
        // Constant violation on old row 3 → new row 1.
        assert_eq!(snap[0].row, 1);
        // Variable violation on old row 4 → new row 2, witnesses 1,3 →
        // 0,1, repair follows the flagged row.
        assert_eq!(snap[1].row, 2);
        match &snap[1].kind {
            ViolationKind::Variable { witnesses, .. } => assert_eq!(witnesses, &vec![0, 1]),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(snap[1].repair.as_ref().unwrap().row, 2);
        // Liveness bookkeeping untouched: remap is silent.
        assert_eq!(ledger.created_total(), 2);
        assert_eq!(ledger.retracted_total(), 0);
        assert_eq!(ledger.live_count(), 2);
    }

    #[test]
    fn remap_preserves_refcounts_and_stamps_later_events() {
        let mut ledger = ViolationLedger::new();
        let v = violation(3, "Los Angeles");
        ledger.create(v.clone());
        ledger.create(v.clone()); // second implier: refcount 2
        ledger.remap(&sample_remap());
        // Retracting once keeps it live (refcount survived the remap) …
        let mut moved = violation(1, "Los Angeles");
        moved.repair = v.repair.clone();
        assert!(ledger.retract(&moved).is_none());
        assert_eq!(ledger.live_count(), 1);
        // … and the final retraction's event carries the new epoch.
        let ev = ledger.retract(&moved).expect("last refcount");
        assert_eq!(ev.epoch, 1);
        assert!(!ev.is_created());
        // New creations are stamped with the adopted epoch too.
        let ev = ledger.create(violation(0, "X")).expect("fresh");
        assert_eq!(ev.epoch, 1);
    }

    #[test]
    fn freeze_is_isolated_from_later_mutation() {
        let mut ledger = ViolationLedger::new();
        ledger.create(violation(1, "A"));
        let snap = ledger.freeze();
        assert_eq!(snap.live_count(), 1);
        // Mutate the live ledger every way it can move: create, retract,
        // remap. The frozen view must not see any of it.
        ledger.create(violation(3, "B"));
        ledger.retract(&violation(1, "A"));
        ledger.remap(&sample_remap());
        assert_eq!(snap.live_count(), 1);
        assert_eq!(snap.ledger().snapshot()[0].row, 1);
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.created_total(), 1);
        assert_eq!(snap.retracted_total(), 0);
        // The live ledger moved on.
        assert_eq!(ledger.live_count(), 1);
        assert_eq!(ledger.epoch(), 1);
        assert_eq!(ledger.snapshot()[0].row, 1, "old row 3 compacts to 1");
        assert_eq!(ledger.retracted_total(), 1);
    }
}
