//! Live violation bookkeeping with retraction support.
//!
//! Batch detection recomputes the full violation set per call; an
//! append-only stream instead maintains a *ledger* of live violations.
//! New rows can both **create** violations and **retract** earlier ones —
//! a late burst of agreeing rows can flip a block's majority RHS, turning
//! yesterday's "error" into today's consensus — so the ledger tracks
//! every live violation with a reference count (two rules can imply the
//! same violation; it stays live until the last implier retracts it) and
//! running created/retracted totals for monitoring.
//!
//! Identity is *structural*: two violations are the same ledger entry iff
//! their serialized forms agree (dependency, row, evidence, witnesses,
//! repair — everything). The incremental engine retracts exactly the
//! objects it previously created, so structural identity is both precise
//! and cheap.

use crate::detect::Violation;
use std::collections::BTreeMap;

/// A change to the set of live violations.
#[derive(Debug, Clone, PartialEq)]
pub enum LedgerEvent {
    /// A violation became live.
    Created(Violation),
    /// A previously live violation was withdrawn (e.g. the block majority
    /// flipped, or its witnesses changed).
    Retracted(Violation),
}

impl LedgerEvent {
    /// The violation the event concerns.
    #[must_use]
    pub fn violation(&self) -> &Violation {
        match self {
            LedgerEvent::Created(v) | LedgerEvent::Retracted(v) => v,
        }
    }

    /// Is this a creation?
    #[must_use]
    pub fn is_created(&self) -> bool {
        matches!(self, LedgerEvent::Created(_))
    }
}

/// The set of currently live violations, keyed structurally, with
/// reference counts and lifetime counters.
#[derive(Debug, Default)]
pub struct ViolationLedger {
    /// Canonical serialization → (refcount, violation). A `BTreeMap`
    /// keeps iteration deterministic.
    live: BTreeMap<String, (usize, Violation)>,
    created_total: usize,
    retracted_total: usize,
}

fn canonical_key(v: &Violation) -> String {
    serde_json::to_string(v).expect("violations serialize infallibly")
}

impl ViolationLedger {
    /// An empty ledger.
    #[must_use]
    pub fn new() -> ViolationLedger {
        ViolationLedger::default()
    }

    /// Record a violation. Returns the `Created` event if it was not
    /// already live (otherwise only the reference count grows).
    pub fn create(&mut self, violation: Violation) -> Option<LedgerEvent> {
        let key = canonical_key(&violation);
        let entry = self
            .live
            .entry(key)
            .or_insert_with(|| (0, violation.clone()));
        entry.0 += 1;
        if entry.0 == 1 {
            self.created_total += 1;
            Some(LedgerEvent::Created(violation))
        } else {
            None
        }
    }

    /// Withdraw a violation. Returns the `Retracted` event once the last
    /// reference is gone; `None` if other rules still imply it (or it was
    /// never live).
    pub fn retract(&mut self, violation: &Violation) -> Option<LedgerEvent> {
        let key = canonical_key(violation);
        let entry = self.live.get_mut(&key)?;
        entry.0 -= 1;
        if entry.0 > 0 {
            return None;
        }
        let (_, v) = self.live.remove(&key).expect("entry exists");
        self.retracted_total += 1;
        Some(LedgerEvent::Retracted(v))
    }

    /// The live violations, in deterministic (serialized-key) order.
    pub fn live(&self) -> impl Iterator<Item = &Violation> {
        self.live.values().map(|(_, v)| v)
    }

    /// The live violations sorted like [`crate::detect_all`] output:
    /// `(row, dependency)` first, then canonical form for total order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Violation> {
        let mut out: Vec<(&String, &Violation)> =
            self.live.iter().map(|(k, (_, v))| (k, v)).collect();
        out.sort_by(|(ka, a), (kb, b)| {
            a.row
                .cmp(&b.row)
                .then_with(|| a.dependency.cmp(&b.dependency))
                .then_with(|| ka.cmp(kb))
        });
        out.into_iter().map(|(_, v)| v.clone()).collect()
    }

    /// Number of currently live violations.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Is the ledger empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Violations ever created (distinct live transitions).
    #[must_use]
    pub fn created_total(&self) -> usize {
        self.created_total
    }

    /// Violations ever retracted.
    #[must_use]
    pub fn retracted_total(&self) -> usize {
        self.retracted_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::{Violation, ViolationKind};

    fn violation(row: usize, expected: &str) -> Violation {
        Violation {
            dependency: "zip → city".into(),
            lhs_attr: "zip".into(),
            rhs_attr: "city".into(),
            row,
            lhs_value: "90004".into(),
            kind: ViolationKind::Constant {
                pattern: "900\\D{2}".into(),
                expected: expected.into(),
                found: Some("New York".into()),
            },
            repair: None,
        }
    }

    #[test]
    fn create_and_retract_roundtrip() {
        let mut ledger = ViolationLedger::new();
        let v = violation(3, "Los Angeles");
        assert!(matches!(
            ledger.create(v.clone()),
            Some(LedgerEvent::Created(_))
        ));
        assert_eq!(ledger.live_count(), 1);
        assert!(matches!(
            ledger.retract(&v),
            Some(LedgerEvent::Retracted(_))
        ));
        assert!(ledger.is_empty());
        assert_eq!(ledger.created_total(), 1);
        assert_eq!(ledger.retracted_total(), 1);
    }

    #[test]
    fn refcount_suppresses_duplicate_events() {
        let mut ledger = ViolationLedger::new();
        let v = violation(3, "Los Angeles");
        assert!(ledger.create(v.clone()).is_some());
        // A second rule implying the identical violation: no new event.
        assert!(ledger.create(v.clone()).is_none());
        assert_eq!(ledger.live_count(), 1);
        // First retraction leaves it live; the second removes it.
        assert!(ledger.retract(&v).is_none());
        assert_eq!(ledger.live_count(), 1);
        assert!(ledger.retract(&v).is_some());
        assert!(ledger.is_empty());
    }

    #[test]
    fn retract_unknown_is_noop() {
        let mut ledger = ViolationLedger::new();
        assert!(ledger.retract(&violation(9, "X")).is_none());
        assert_eq!(ledger.retracted_total(), 0);
    }

    #[test]
    fn double_retract_is_a_noop() {
        let mut ledger = ViolationLedger::new();
        let v = violation(3, "Los Angeles");
        ledger.create(v.clone());
        assert!(ledger.retract(&v).is_some());
        // A second retraction of the same violation must change nothing:
        // no event, no counter movement, no underflow.
        assert!(ledger.retract(&v).is_none());
        assert!(ledger.retract(&v).is_none());
        assert_eq!(ledger.retracted_total(), 1);
        assert_eq!(ledger.created_total(), 1);
        assert!(ledger.is_empty());
    }

    #[test]
    fn retract_then_recreate_yields_a_fresh_event() {
        let mut ledger = ViolationLedger::new();
        let v = violation(3, "Los Angeles");
        assert!(matches!(
            ledger.create(v.clone()),
            Some(LedgerEvent::Created(_))
        ));
        ledger.retract(&v).unwrap();
        // Re-creating after a full retraction is a new lifecycle: a
        // fresh Created event, and both lifetime counters advance.
        assert!(matches!(
            ledger.create(v.clone()),
            Some(LedgerEvent::Created(_))
        ));
        assert_eq!(ledger.created_total(), 2);
        assert_eq!(ledger.retracted_total(), 1);
        assert_eq!(ledger.live_count(), 1);
    }

    #[test]
    fn snapshot_sorted_by_row_then_dependency() {
        let mut ledger = ViolationLedger::new();
        ledger.create(violation(5, "A"));
        ledger.create(violation(1, "B"));
        ledger.create(violation(1, "A"));
        let rows: Vec<usize> = ledger.snapshot().iter().map(|v| v.row).collect();
        assert_eq!(rows, vec![1, 1, 5]);
    }

    #[test]
    fn distinct_violations_tracked_separately() {
        let mut ledger = ViolationLedger::new();
        ledger.create(violation(3, "Los Angeles"));
        ledger.create(violation(3, "San Diego"));
        assert_eq!(ledger.live_count(), 2);
    }
}
