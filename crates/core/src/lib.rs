//! Pattern functional dependencies: model, discovery, error detection,
//! baselines and reporting.
//!
//! This crate is the primary contribution of the ANMAT paper (SIGMOD
//! 2019): it defines [`Pfd`] — a functional dependency whose tableau cells
//! are *constrained patterns* over partial attribute values — and
//! implements the two halves of the demo:
//!
//! * **Discovery** ([`discovery`]) — the algorithm of Figure 2: profile
//!   the table to prune candidates, build inverted lists over tokens /
//!   n-grams / prefixes, apply a decision function to each entry, and keep
//!   tableaux whose coverage passes the user's minimum-coverage threshold
//!   γ, tolerating the user's allowed-violation ratio.
//! * **Error detection** ([`detect`]) — constant PFDs are checked with a
//!   pattern-index-assisted scan; variable PFDs with lossless blocking on
//!   the constrained-capture key (avoiding the quadratic pair
//!   enumeration). Violations carry the cells involved and repair
//!   suggestions.
//!
//! [`baselines`] implements the prior art the paper positions against —
//! exact/approximate FD discovery (TANE-style partition refinement) and
//! constant CFD mining — so the "errors PFDs catch that FDs/CFDs cannot"
//! claim is reproducible. [`report`] renders the profiling, tableau and
//! violation views of Figures 3–5 as text.
//!
//! # Streaming architecture
//!
//! Detection is factored so batch and incremental execution share one
//! semantic core. [`detect::constant::violation_at`] decides a single
//! `(row, constant tuple)` pair and
//! [`detect::variable::flag_block_minority`] resolves a single block by
//! majority vote; `detect_all` drives them across a whole table, while
//! the `anmat-stream` crate's `StreamEngine` drives them per arriving
//! row against incrementally maintained `anmat-index` structures. The
//! [`ledger`] module holds the streaming side's state: a
//! [`ViolationLedger`] of live violations with reference counts and
//! retraction support, because an append can *withdraw* an earlier
//! violation (a late run of agreeing rows flips a block's majority RHS).
//! The shared primitives are what make the stream/batch equivalence
//! property — replay any table row-by-row and end in exactly the
//! `detect_all` violation set — hold by construction.
//!
//! # Quickstart
//!
//! ```
//! use anmat_core::prelude::*;
//! use anmat_table::{Schema, Table};
//!
//! // Table 1 of the paper: first name determines gender, with one error.
//! let table = Table::from_str_rows(
//!     Schema::new(["name", "gender"]).unwrap(),
//!     [
//!         ["John Charles", "M"],
//!         ["John Bosco", "M"],
//!         ["Susan Orlean", "F"],
//!         ["Susan Boyle", "M"], // ← the seeded error
//!     ],
//! )
//! .unwrap();
//!
//! let pfds = discover(&table, &DiscoveryConfig::default());
//! assert!(!pfds.is_empty());
//! let violations = detect_all(&table, &pfds);
//! assert!(violations.iter().any(|v| v.rows().contains(&3)));
//! ```

pub mod baselines;
pub mod detect;
pub mod discovery;
pub mod ledger;
pub mod pfd;
pub mod report;
pub mod store;

pub use detect::{
    apply_repairs, detect_all, detect_pfd, repair_to_fixpoint, Detector, Repair, RepairReport,
    Violation, ViolationKind,
};
pub use discovery::{discover, discover_pair, ContextStyle, DiscoveryConfig};
pub use ledger::{LedgerChange, LedgerEvent, LedgerSnapshot, ViolationLedger};
pub use pfd::{LhsCell, PatternTuple, Pfd, PfdKind, RhsCell};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::baselines::{cfd::CfdMiner, fd::FdMiner};
    pub use crate::detect::{
        apply_repairs, detect_all, detect_pfd, repair_to_fixpoint, Detector, RepairReport,
        Violation, ViolationKind,
    };
    pub use crate::discovery::{discover, discover_pair, ContextStyle, DiscoveryConfig};
    pub use crate::ledger::{LedgerChange, LedgerEvent, LedgerSnapshot, ViolationLedger};
    pub use crate::pfd::{LhsCell, PatternTuple, Pfd, PfdKind, RhsCell};
    pub use crate::report;
    pub use crate::store::{DatasetRecord, RuleStatus, RuleStore, StoredRule};
}
