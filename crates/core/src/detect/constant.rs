//! Constant-PFD violation detection.
//!
//! Per §3: "for each constant PFD, we simply scan the table and check, for
//! each tuple `t`, if `t[A] ⊨ tp[A]` and `t[B] ≠ tp[B]`, then there is a
//! violation. … For better performance, we create an index supporting
//! regular expressions for each column present on the LHS of the PFDs",
//! limiting the scan to tuples matching `tp[A]`.

use super::{Detector, Repair, Violation, ViolationKind};
use crate::pfd::{LhsCell, Pfd, RhsCell};
use anmat_table::{RowId, Table, ValueId, ValuePool};

/// Detect violations of the constant tuples of `pfd`.
pub(crate) fn detect(
    detector: &mut Detector<'_>,
    pfd: &Pfd,
    lhs: usize,
    rhs: usize,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let table = detector.table();
    for tuple in pfd.constant_tuples() {
        let RhsCell::Constant(expected) = &tuple.rhs else {
            continue;
        };
        let expected = ValuePool::intern(expected);
        let rows: Vec<usize> = match &tuple.lhs {
            LhsCell::Pattern(q) => {
                // The index limits the check to tuples matching tp[A].
                let index = detector.index_for(lhs);
                index.lookup(q.embedded())
            }
            // Live rows only: tombstoned slots can no longer violate.
            LhsCell::Wildcard => table.iter_live().collect(),
        };
        let pattern_display = match &tuple.lhs {
            LhsCell::Pattern(q) => q.to_string(),
            LhsCell::Wildcard => "⊥".to_string(),
        };
        for row in rows {
            out.extend(violation_at(
                table,
                pfd,
                &pattern_display,
                expected,
                lhs,
                rhs,
                row,
            ));
        }
    }
    out
}

/// Check one row against one constant tableau tuple.
///
/// The single source of truth for constant-tuple semantics (shared with
/// the incremental `anmat-stream` engine): a non-null LHS row whose RHS
/// differs from `expected` is a violation; the suggested repair assumes
/// the LHS is correct and sets the RHS to `tp[B]`. The caller guarantees
/// the row's LHS matches the tuple pattern. The agreement check is an
/// interned-id comparison, so the hot path never touches string bytes.
#[must_use]
pub fn violation_at(
    table: &Table,
    pfd: &Pfd,
    pattern_display: &str,
    expected: ValueId,
    lhs: usize,
    rhs: usize,
    row: RowId,
) -> Option<Violation> {
    let lhs_value = table.cell_str(row, lhs)?;
    let found = table.cell_id(row, rhs);
    if found == expected {
        return None;
    }
    let found = found.as_str();
    Some(Violation {
        dependency: pfd.embedded_fd(),
        lhs_attr: pfd.lhs_attr.clone(),
        rhs_attr: pfd.rhs_attr.clone(),
        row,
        lhs_value: lhs_value.to_string(),
        kind: ViolationKind::Constant {
            pattern: pattern_display.to_string(),
            expected: expected.render().to_string(),
            found: found.map(str::to_string),
        },
        repair: Some(Repair {
            row,
            attr: pfd.rhs_attr.clone(),
            from: found.map(str::to_string),
            to: expected.render().to_string(),
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pfd::PatternTuple;
    use anmat_pattern::ConstrainedPattern;
    use anmat_table::{Schema, Table};

    fn zip_pfd() -> Pfd {
        // λ3: 900\D{2} → Los Angeles.
        Pfd::new(
            "Zip",
            "zip",
            "city",
            vec![PatternTuple::constant(
                ConstrainedPattern::unconstrained("900\\D{2}".parse().unwrap()),
                "Los Angeles",
            )],
        )
    }

    fn zip_table() -> Table {
        Table::from_str_rows(
            Schema::new(["zip", "city"]).unwrap(),
            [
                ["90001", "Los Angeles"],
                ["90002", "Los Angeles"],
                ["90003", "Los Angeles"],
                ["90004", "New York"],
                ["10001", "New York"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn lambda3_detects_s4() {
        let t = zip_table();
        let violations = super::super::detect_pfd(&t, &zip_pfd());
        assert_eq!(violations.len(), 1);
        let v = &violations[0];
        assert_eq!(v.row, 3);
        assert_eq!(v.lhs_value, "90004");
        match &v.kind {
            ViolationKind::Constant {
                expected, found, ..
            } => {
                assert_eq!(expected, "Los Angeles");
                assert_eq!(found.as_deref(), Some("New York"));
            }
            other => panic!("expected constant violation, got {other:?}"),
        }
        // Repair: assume LHS correct, set RHS to tp[B].
        let r = v.repair.as_ref().unwrap();
        assert_eq!(r.to, "Los Angeles");
        assert_eq!(r.row, 3);
    }

    #[test]
    fn non_matching_lhs_not_flagged() {
        // 10001 is New York and does not match 900\D{2}: no violation.
        let t = zip_table();
        let violations = super::super::detect_pfd(&t, &zip_pfd());
        assert!(violations.iter().all(|v| v.row != 4));
    }

    #[test]
    fn null_rhs_is_a_violation() {
        let t = Table::from_str_rows(
            Schema::new(["zip", "city"]).unwrap(),
            [["90001", "Los Angeles"], ["90002", ""]],
        )
        .unwrap();
        let violations = super::super::detect_pfd(&t, &zip_pfd());
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].row, 1);
        match &violations[0].kind {
            ViolationKind::Constant { found, .. } => assert!(found.is_none()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn wildcard_lhs_checks_all_rows() {
        let pfd = Pfd::new(
            "R",
            "zip",
            "city",
            vec![PatternTuple {
                lhs: crate::pfd::LhsCell::Wildcard,
                rhs: crate::pfd::RhsCell::Constant("Los Angeles".into()),
            }],
        );
        let t = zip_table();
        let violations = super::super::detect_pfd(&t, &pfd);
        // Rows 3 and 4 are New York.
        assert_eq!(violations.len(), 2);
    }

    #[test]
    fn multiple_tuples_detect_independently() {
        let pfd = Pfd::new(
            "Zip",
            "zip",
            "city",
            vec![
                PatternTuple::constant(
                    ConstrainedPattern::unconstrained("900\\D{2}".parse().unwrap()),
                    "Los Angeles",
                ),
                PatternTuple::constant(
                    ConstrainedPattern::unconstrained("100\\D{2}".parse().unwrap()),
                    "Boston", // wrong on purpose
                ),
            ],
        );
        let t = zip_table();
        let violations = super::super::detect_pfd(&t, &pfd);
        assert_eq!(violations.len(), 2);
        assert!(violations.iter().any(|v| v.row == 3));
        assert!(violations.iter().any(|v| v.row == 4));
    }
}
