//! Variable-PFD violation detection.
//!
//! Per §3: for `tp[B] = ⊥` the brute-force approach enumerates all tuple
//! pairs `(ti, tj)` with `ti[A] ≡ tj[A] ≡ tp[A]` and `ti[B] ≠ tj[B]` —
//! quadratic. "The quadratic time complexity can be avoided using
//! blocking": rows are grouped by the constrained-capture key (exact for
//! `≡_Q`), and each block is resolved by majority vote — minority rows are
//! flagged, with majority rows as witnesses. The brute-force path is kept
//! for the E13 ablation and agrees with blocking on the flagged set.

use super::{Repair, Violation, ViolationKind};
use crate::pfd::{LhsCell, Pfd, RhsCell};
use anmat_index::BlockingIndex;
use anmat_table::{RowId, Table, ValueId};
use fxhash::FxHashMap;
use std::collections::HashMap;

/// Cap on stored witness rows per violation.
pub const MAX_WITNESSES: usize = 4;

/// Detect violations of the variable tuples of `pfd` via blocking.
pub(crate) fn detect(table: &Table, pfd: &Pfd, lhs: usize, rhs: usize) -> Vec<Violation> {
    let mut out = Vec::new();
    for tuple in pfd.variable_tuples() {
        let RhsCell::Wildcard = &tuple.rhs else {
            continue;
        };
        let LhsCell::Pattern(q) = &tuple.lhs else {
            // A wildcard LHS variable tuple is a plain FD on the whole
            // column; blocking key = whole value.
            out.extend(detect_whole_column(table, pfd, lhs, rhs));
            continue;
        };
        let blocks = BlockingIndex::block(table, lhs, q);
        for (key, rows) in &blocks.blocks {
            out.extend(flag_block_minority(
                table,
                pfd,
                lhs,
                rhs,
                &q.to_string(),
                key.render(),
                rows,
            ));
        }
    }
    out
}

/// Blocking on the whole value (wildcard-LHS fallback).
fn detect_whole_column(table: &Table, pfd: &Pfd, lhs: usize, rhs: usize) -> Vec<Violation> {
    let mut blocks: FxHashMap<ValueId, Vec<RowId>> = FxHashMap::default();
    for (row, v) in table.iter_column(lhs) {
        if !v.is_null() {
            blocks.entry(v).or_default().push(row);
        }
    }
    let mut keys: Vec<ValueId> = blocks.keys().copied().collect();
    keys.sort_by_cached_key(|k| k.render());
    let mut out = Vec::new();
    for key in keys {
        out.extend(flag_block_minority(
            table,
            pfd,
            lhs,
            rhs,
            "⊥",
            key.render(),
            &blocks[&key],
        ));
    }
    out
}

/// Flag the minority rows of one block.
///
/// This is the single source of truth for variable-PFD block semantics:
/// majority vote over non-null RHS values (ties break to the
/// lexicographically smallest value, independent of interning order),
/// null RHS rows flagged but never voting, up to [`MAX_WITNESSES`]
/// majority rows recorded as witnesses in row order. Both batch detection
/// and the incremental `anmat-stream` engine call it so their violation
/// sets agree exactly. The vote runs over interned ids; strings are only
/// touched to break ties and to render evidence.
pub fn flag_block_minority(
    table: &Table,
    pfd: &Pfd,
    lhs: usize,
    rhs: usize,
    pattern_display: &str,
    key: &str,
    rows: &[RowId],
) -> Vec<Violation> {
    if rows.len() < 2 {
        return Vec::new();
    }
    // RHS distribution (ValueId::NULL = null RHS participates as a
    // violation candidate but never as majority).
    let mut counts: FxHashMap<ValueId, usize> = FxHashMap::default();
    for &row in rows {
        *counts.entry(table.cell_id(row, rhs)).or_insert(0) += 1;
    }
    let distinct_non_null = counts.keys().filter(|k| !k.is_null()).count();
    if distinct_non_null <= 1 && !counts.contains_key(&ValueId::NULL) {
        return Vec::new(); // block agrees
    }
    let Some((majority, _)) = counts
        .iter()
        .filter_map(|(k, c)| (!k.is_null()).then_some((*k, *c)))
        .max_by(|(va, ca), (vb, cb)| ca.cmp(cb).then_with(|| vb.render().cmp(va.render())))
    else {
        return Vec::new(); // all RHS null: nothing to vote with
    };
    let witnesses: Vec<RowId> = rows
        .iter()
        .copied()
        .filter(|&r| table.cell_id(r, rhs) == majority)
        .take(MAX_WITNESSES)
        .collect();
    let mut out = Vec::new();
    for &row in rows {
        if table.cell_id(row, rhs) == majority {
            continue;
        }
        out.push(minority_violation(
            table,
            pfd,
            lhs,
            rhs,
            pattern_display,
            key,
            majority.render(),
            &witnesses,
            row,
        ));
    }
    out
}

/// Build the violation for one block-minority row.
///
/// Shared by [`flag_block_minority`] and the incremental engine's fast
/// path (append a minority row to a block whose majority and witnesses
/// are unchanged), so both construct bit-identical violations.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn minority_violation(
    table: &Table,
    pfd: &Pfd,
    lhs: usize,
    rhs: usize,
    pattern_display: &str,
    key: &str,
    majority: &str,
    witnesses: &[RowId],
    row: RowId,
) -> Violation {
    let found = table.cell_str(row, rhs);
    let lhs_value = table.cell_str(row, lhs).unwrap_or_default().to_string();
    Violation {
        dependency: pfd.embedded_fd(),
        lhs_attr: pfd.lhs_attr.clone(),
        rhs_attr: pfd.rhs_attr.clone(),
        row,
        lhs_value,
        kind: ViolationKind::Variable {
            pattern: pattern_display.to_string(),
            key: key.to_string(),
            majority: majority.to_string(),
            found: found.map(str::to_string),
            witnesses: witnesses.to_vec(),
        },
        repair: Some(Repair {
            row,
            attr: pfd.rhs_attr.clone(),
            from: found.map(str::to_string),
            to: majority.to_string(),
        }),
    }
}

/// Quadratic pair enumeration (the paper's brute-force description), for
/// the blocking ablation. Flags the same rows as [`detect`]: a row is
/// flagged iff it disagrees with the majority of its equivalence class.
pub(crate) fn detect_bruteforce(
    table: &Table,
    pfd: &Pfd,
    lhs: usize,
    rhs: usize,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for tuple in pfd.variable_tuples() {
        let LhsCell::Pattern(q) = &tuple.lhs else {
            continue;
        };
        // Materialize matches + keys once (the paper's index does the
        // same; capture extraction memoized per distinct LHS id), then
        // enumerate pairs explicitly.
        let mut key_cache: FxHashMap<ValueId, Option<ValueId>> = FxHashMap::default();
        let mut matched: Vec<(RowId, ValueId)> = Vec::new();
        for (row, v) in table.iter_column(lhs) {
            let Some(s) = v.as_str() else { continue };
            if let Some(key) = key_cache
                .entry(v)
                .or_insert_with(|| q.key(s).map(|k| anmat_table::ValuePool::intern(&k)))
            {
                matched.push((row, *key));
            }
        }
        // Pair scan: votes[row] = (agreements, disagreements) against every
        // equivalent row.
        let mut conflicts: HashMap<RowId, Vec<RowId>> = HashMap::new();
        for i in 0..matched.len() {
            for j in (i + 1)..matched.len() {
                let (ri, ki) = matched[i];
                let (rj, kj) = matched[j];
                if ki != kj {
                    continue;
                }
                let bi = table.cell_id(ri, rhs);
                let bj = table.cell_id(rj, rhs);
                if bi != bj {
                    conflicts.entry(ri).or_default().push(rj);
                    conflicts.entry(rj).or_default().push(ri);
                }
            }
        }
        // Resolve conflicts identically to blocking (majority vote per key).
        let mut by_key: FxHashMap<ValueId, Vec<RowId>> = FxHashMap::default();
        for &(row, key) in &matched {
            by_key.entry(key).or_default().push(row);
        }
        let mut keys: Vec<ValueId> = by_key.keys().copied().collect();
        keys.sort_by_cached_key(|k| k.render());
        for key in keys {
            let rows = &by_key[&key];
            if rows.iter().all(|r| !conflicts.contains_key(r)) {
                continue;
            }
            out.extend(flag_block_minority(
                table,
                pfd,
                lhs,
                rhs,
                &q.to_string(),
                key.render(),
                rows,
            ));
        }
    }
    out.sort_by_key(|v| v.row);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pfd::PatternTuple;
    use anmat_pattern::ConstrainedPattern;
    use anmat_table::Schema;

    fn lambda4() -> Pfd {
        Pfd::new(
            "Name",
            "name",
            "gender",
            vec![PatternTuple::variable(
                "[\\LU\\LL*\\ ]\\A*".parse::<ConstrainedPattern>().unwrap(),
            )],
        )
    }

    fn name_table() -> Table {
        // Table 1 with the r4 error.
        Table::from_str_rows(
            Schema::new(["name", "gender"]).unwrap(),
            [
                ["John Charles", "M"],
                ["John Bosco", "M"],
                ["Susan Orlean", "F"],
                ["Susan Boyle", "M"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn lambda4_detects_r4_with_witness() {
        let t = name_table();
        let violations = super::super::detect_pfd(&t, &lambda4());
        // The Susan block has a 1–1 tie; majority vote picks one side
        // deterministically, flagging exactly one of r3/r4.
        assert_eq!(violations.len(), 1);
        let v = &violations[0];
        assert!(v.row == 2 || v.row == 3);
        match &v.kind {
            ViolationKind::Variable { key, witnesses, .. } => {
                assert_eq!(key, "Susan ");
                assert_eq!(witnesses.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        // The violation spans four cells: both rows' name and gender.
        assert_eq!(v.cells().len(), 4);
    }

    #[test]
    fn majority_flags_minority_only() {
        let t = Table::from_str_rows(
            Schema::new(["name", "gender"]).unwrap(),
            [
                ["Susan Orlean", "F"],
                ["Susan Boyle", "F"],
                ["Susan Sarandon", "F"],
                ["Susan Smith", "M"], // minority
            ],
        )
        .unwrap();
        let violations = super::super::detect_pfd(&t, &lambda4());
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].row, 3);
        let r = violations[0].repair.as_ref().unwrap();
        assert_eq!(r.to, "F");
    }

    #[test]
    fn zip_prefix_variable_pfd() {
        // λ5 on Table 2: comparing s4 with s1–s3 catches the error.
        let pfd = Pfd::new(
            "Zip",
            "zip",
            "city",
            vec![PatternTuple::variable(
                "[\\D{3}]\\D{2}".parse::<ConstrainedPattern>().unwrap(),
            )],
        );
        let t = Table::from_str_rows(
            Schema::new(["zip", "city"]).unwrap(),
            [
                ["90001", "Los Angeles"],
                ["90002", "Los Angeles"],
                ["90003", "Los Angeles"],
                ["90004", "New York"],
            ],
        )
        .unwrap();
        let violations = super::super::detect_pfd(&t, &pfd);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].row, 3);
        match &violations[0].kind {
            ViolationKind::Variable { key, majority, .. } => {
                assert_eq!(key, "900");
                assert_eq!(majority, "Los Angeles");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bruteforce_agrees_with_blocking() {
        let t = name_table();
        let blocking = super::super::detect_pfd(&t, &lambda4());
        let mut detector = super::super::Detector::new(&t);
        let brute = detector.detect_variable_bruteforce(&lambda4());
        let rows_a: Vec<_> = blocking.iter().map(|v| v.row).collect();
        let rows_b: Vec<_> = brute.iter().map(|v| v.row).collect();
        assert_eq!(rows_a, rows_b);
    }

    #[test]
    fn null_rhs_flagged_against_majority() {
        let t = Table::from_str_rows(
            Schema::new(["name", "gender"]).unwrap(),
            [
                ["Susan Orlean", "F"],
                ["Susan Boyle", "F"],
                ["Susan Smith", ""],
            ],
        )
        .unwrap();
        let violations = super::super::detect_pfd(&t, &lambda4());
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].row, 2);
        match &violations[0].kind {
            ViolationKind::Variable { found, .. } => assert!(found.is_none()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn agreeing_blocks_produce_nothing() {
        let t = Table::from_str_rows(
            Schema::new(["name", "gender"]).unwrap(),
            [
                ["John Charles", "M"],
                ["John Bosco", "M"],
                ["Susan Orlean", "F"],
            ],
        )
        .unwrap();
        assert!(super::super::detect_pfd(&t, &lambda4()).is_empty());
    }
}
