//! Applying suggested repairs.
//!
//! The paper frames repairs as "if we assume that the LHS value is
//! correct then the RHS could \[be\] repaired by changing it to `tp[B]`"
//! (constant PFDs); for variable PFDs the block majority plays the role
//! of `tp[B]`. This module turns a violation list into table edits, with
//! conflict handling (two rules proposing different values for the same
//! cell leave it untouched — a human decision, as in the demo's
//! confirmation workflow) and an iterate-to-fixpoint driver for rule sets
//! whose repairs unlock further detections.

use super::{detect_all, Violation};
use crate::pfd::Pfd;
use anmat_table::{RowId, Table, Value};
use std::collections::HashMap;

/// Outcome of one repair pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairReport {
    /// Cells changed: `(row, column index, old, new)`.
    pub applied: Vec<(RowId, usize, Option<String>, String)>,
    /// Cells with conflicting proposals, left unchanged:
    /// `(row, column index, proposals)`.
    pub conflicts: Vec<(RowId, usize, Vec<String>)>,
    /// Violations that carried no repair suggestion.
    pub unrepairable: usize,
}

impl RepairReport {
    /// Number of cells changed.
    #[must_use]
    pub fn applied_count(&self) -> usize {
        self.applied.len()
    }
}

/// Apply the repairs suggested by `violations` to `table`.
///
/// Proposals are grouped per cell; a cell is edited only when every
/// proposal agrees. Returns what was changed and what conflicted.
pub fn apply_repairs(table: &mut Table, violations: &[Violation]) -> RepairReport {
    let mut proposals: HashMap<(RowId, usize), Vec<String>> = HashMap::new();
    let mut unrepairable = 0usize;
    for v in violations {
        let Some(repair) = &v.repair else {
            unrepairable += 1;
            continue;
        };
        let Some(col) = table.schema().index_of(&repair.attr) else {
            unrepairable += 1;
            continue;
        };
        proposals
            .entry((repair.row, col))
            .or_default()
            .push(repair.to.clone());
    }
    let mut applied = Vec::new();
    let mut conflicts = Vec::new();
    let mut cells: Vec<((RowId, usize), Vec<String>)> = proposals.into_iter().collect();
    cells.sort_by_key(|(k, _)| *k);
    for ((row, col), mut values) in cells {
        values.sort_unstable();
        values.dedup();
        if values.len() == 1 {
            let old = table.cell_str(row, col).map(str::to_string);
            let new = values.pop().expect("one value");
            if old.as_deref() != Some(new.as_str()) {
                table.set_cell(row, col, Value::text(new.clone()));
                applied.push((row, col, old, new));
            }
        } else {
            conflicts.push((row, col, values));
        }
    }
    RepairReport {
        applied,
        conflicts,
        unrepairable,
    }
}

/// Detect → repair → re-detect until no repair applies (or `max_rounds`).
///
/// Returns the per-round reports. The table converges when a round applies
/// nothing; with majority-vote repairs this terminates quickly in
/// practice, and `max_rounds` bounds pathological rule interactions.
pub fn repair_to_fixpoint(table: &mut Table, pfds: &[Pfd], max_rounds: usize) -> Vec<RepairReport> {
    let mut reports = Vec::new();
    for _ in 0..max_rounds {
        let violations = detect_all(table, pfds);
        let report = apply_repairs(table, &violations);
        let done = report.applied.is_empty();
        reports.push(report);
        if done {
            break;
        }
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pfd::PatternTuple;
    use anmat_pattern::ConstrainedPattern;
    use anmat_table::Schema;

    fn lambda3() -> Pfd {
        Pfd::new(
            "Zip",
            "zip",
            "city",
            vec![PatternTuple::constant(
                ConstrainedPattern::unconstrained("900\\D{2}".parse().unwrap()),
                "Los Angeles",
            )],
        )
    }

    fn dirty_zip_table() -> Table {
        Table::from_str_rows(
            Schema::new(["zip", "city"]).unwrap(),
            [
                ["90001", "Los Angeles"],
                ["90002", "Los Angeles"],
                ["90003", "Los Angeles"],
                ["90004", "New York"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn repairs_fix_the_paper_error() {
        let mut t = dirty_zip_table();
        let violations = super::super::detect_pfd(&t, &lambda3());
        let report = apply_repairs(&mut t, &violations);
        assert_eq!(report.applied_count(), 1);
        assert_eq!(t.cell_str(3, 1), Some("Los Angeles"));
        // Re-detection is clean.
        assert!(super::super::detect_pfd(&t, &lambda3()).is_empty());
    }

    #[test]
    fn conflicting_proposals_skip_cell() {
        // Two rules proposing different cities for the same rows.
        let pfd2 = Pfd::new(
            "Zip",
            "zip",
            "city",
            vec![PatternTuple::constant(
                ConstrainedPattern::unconstrained("9000\\D".parse().unwrap()),
                "Long Beach",
            )],
        );
        let mut t = dirty_zip_table();
        let mut violations = super::super::detect_pfd(&t, &lambda3());
        violations.extend(super::super::detect_pfd(&t, &pfd2));
        let report = apply_repairs(&mut t, &violations);
        // Row 3 gets two different proposals → conflict, untouched.
        assert!(report.conflicts.iter().any(|(row, _, _)| *row == 3));
        assert_eq!(t.cell_str(3, 1), Some("New York"));
    }

    #[test]
    fn fixpoint_converges_and_cleans() {
        let mut t = dirty_zip_table();
        let reports = repair_to_fixpoint(&mut t, &[lambda3()], 5);
        assert!(reports.len() >= 2, "one repairing round + one clean round");
        assert_eq!(reports.last().unwrap().applied_count(), 0);
        assert_eq!(t.cell_str(3, 1), Some("Los Angeles"));
    }

    #[test]
    fn variable_repairs_use_block_majority() {
        let pfd = Pfd::new(
            "Zip",
            "zip",
            "city",
            vec![PatternTuple::variable(
                "[\\D{3}]\\D{2}".parse::<ConstrainedPattern>().unwrap(),
            )],
        );
        let mut t = dirty_zip_table();
        let violations = super::super::detect_pfd(&t, &pfd);
        let report = apply_repairs(&mut t, &violations);
        assert_eq!(report.applied_count(), 1);
        assert_eq!(t.cell_str(3, 1), Some("Los Angeles"));
    }

    #[test]
    fn idempotent_on_clean_table() {
        let mut t = Table::from_str_rows(
            Schema::new(["zip", "city"]).unwrap(),
            [["90001", "Los Angeles"], ["90002", "Los Angeles"]],
        )
        .unwrap();
        let reports = repair_to_fixpoint(&mut t, &[lambda3()], 5);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].applied_count(), 0);
    }
}
