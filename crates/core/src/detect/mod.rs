//! Error detection with PFDs (§3 of the paper).
//!
//! * **Constant PFDs** — scan the tuples matching `tp[A]` (via the
//!   per-column [`PatternIndex`]) and flag those with `t[B] ≠ tp[B]`; the
//!   suggested repair, "if we assume that the LHS value is correct", is
//!   `tp[B]`.
//! * **Variable PFDs** — block rows by the constrained-capture key
//!   (lossless for `≡_Q`), then within each block flag the rows whose RHS
//!   disagrees with the block majority; the violation records the
//!   witnessing cells, four per conflicting pair in the paper's
//!   formulation. A brute-force pair enumeration
//!   ([`Detector::detect_variable_bruteforce`]) is kept for the
//!   blocking-vs-quadratic ablation.

pub mod constant;
pub mod repair_apply;
pub mod variable;

pub use repair_apply::{apply_repairs, repair_to_fixpoint, RepairReport};

use crate::pfd::{Pfd, PfdKind};
use anmat_index::PatternIndex;
use anmat_table::{RowId, Table};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A suggested cell repair.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Repair {
    /// The row to change.
    pub row: RowId,
    /// The attribute (RHS of the PFD).
    pub attr: String,
    /// Current (suspected-wrong) value.
    pub from: Option<String>,
    /// Proposed value.
    pub to: String,
}

/// What kind of evidence produced a violation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ViolationKind {
    /// A tuple matched a constant tableau pattern but disagreed with its
    /// constant RHS.
    Constant {
        /// The tableau pattern (display form) that matched.
        pattern: String,
        /// The expected RHS constant.
        expected: String,
        /// The RHS value found.
        found: Option<String>,
    },
    /// Rows equivalent under a variable tableau pattern disagreed on the
    /// RHS; the flagged row is in the minority.
    Variable {
        /// The tableau pattern (display form).
        pattern: String,
        /// The blocking key the rows agreed on.
        key: String,
        /// The block-majority RHS value the row disagreed with.
        majority: String,
        /// The RHS value found.
        found: Option<String>,
        /// Representative co-blocked rows holding the majority value
        /// (witnesses; capped).
        witnesses: Vec<RowId>,
    },
}

/// One detected violation: a suspected erroneous cell plus evidence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// The embedded FD, e.g. `zip → city`.
    pub dependency: String,
    /// LHS attribute name.
    pub lhs_attr: String,
    /// RHS attribute name.
    pub rhs_attr: String,
    /// The flagged row.
    pub row: RowId,
    /// The LHS value of the flagged row.
    pub lhs_value: String,
    /// Evidence.
    pub kind: ViolationKind,
    /// Suggested repair, when the evidence implies one.
    pub repair: Option<Repair>,
}

impl Violation {
    /// All rows involved: the flagged row plus any witnesses.
    #[must_use]
    pub fn rows(&self) -> Vec<RowId> {
        let mut out = vec![self.row];
        if let ViolationKind::Variable { witnesses, .. } = &self.kind {
            out.extend_from_slice(witnesses);
        }
        out
    }

    /// Rewrite every row reference (flagged row, witnesses, repair
    /// target) through a compaction [`RowIdRemap`] — the violation's
    /// side of the remap protocol. All referenced rows are live by
    /// construction (deleting any of them retracts or rewrites the
    /// violation first), so the translation is total; witness lists
    /// stay ascending because the remap is monotone.
    ///
    /// [`RowIdRemap`]: anmat_table::RowIdRemap
    pub fn remap(&mut self, remap: &anmat_table::RowIdRemap) {
        self.row = remap.live_id(self.row);
        if let ViolationKind::Variable { witnesses, .. } = &mut self.kind {
            remap.remap_sorted_in_place(witnesses);
        }
        if let Some(repair) = &mut self.repair {
            repair.row = remap.live_id(repair.row);
        }
    }

    /// The cells of the violation as `(row, attr)` pairs — four cells for
    /// a minimal variable-PFD violation, as in the paper's
    /// `(r3[name], r3[gender], r4[name], r4[gender])` example.
    #[must_use]
    pub fn cells(&self) -> Vec<(RowId, String)> {
        let mut out = vec![
            (self.row, self.lhs_attr.clone()),
            (self.row, self.rhs_attr.clone()),
        ];
        if let ViolationKind::Variable { witnesses, .. } = &self.kind {
            for &w in witnesses {
                out.push((w, self.lhs_attr.clone()));
                out.push((w, self.rhs_attr.clone()));
            }
        }
        out
    }
}

/// Detection engine with a per-column pattern-index cache, for running
/// many PFDs over one table.
pub struct Detector<'t> {
    table: &'t Table,
    index_cache: HashMap<usize, PatternIndex>,
}

impl<'t> Detector<'t> {
    /// Create a detector for a table.
    #[must_use]
    pub fn new(table: &'t Table) -> Detector<'t> {
        Detector {
            table,
            index_cache: HashMap::new(),
        }
    }

    /// The pattern index for a column, built on first use.
    pub fn index_for(&mut self, col: usize) -> &PatternIndex {
        self.index_cache
            .entry(col)
            .or_insert_with(|| PatternIndex::build(self.table, col))
    }

    /// Run one PFD, dispatching on tableau-tuple kind.
    pub fn detect(&mut self, pfd: &Pfd) -> Vec<Violation> {
        let mut out = Vec::new();
        let Some(lhs) = self.table.schema().index_of(&pfd.lhs_attr) else {
            return out;
        };
        let Some(rhs) = self.table.schema().index_of(&pfd.rhs_attr) else {
            return out;
        };
        match pfd.kind() {
            PfdKind::Constant => {
                out.extend(constant::detect(self, pfd, lhs, rhs));
            }
            PfdKind::Variable => {
                out.extend(variable::detect(self.table, pfd, lhs, rhs));
            }
            PfdKind::Mixed => {
                out.extend(constant::detect(self, pfd, lhs, rhs));
                out.extend(variable::detect(self.table, pfd, lhs, rhs));
            }
        }
        out.sort_by(|a, b| {
            a.row
                .cmp(&b.row)
                .then_with(|| a.dependency.cmp(&b.dependency))
        });
        out
    }

    /// Variable detection via explicit pair enumeration (quadratic) —
    /// kept for the blocking ablation (E13). Produces the same flagged
    /// rows as the blocking path.
    pub fn detect_variable_bruteforce(&mut self, pfd: &Pfd) -> Vec<Violation> {
        let Some(lhs) = self.table.schema().index_of(&pfd.lhs_attr) else {
            return Vec::new();
        };
        let Some(rhs) = self.table.schema().index_of(&pfd.rhs_attr) else {
            return Vec::new();
        };
        variable::detect_bruteforce(self.table, pfd, lhs, rhs)
    }

    /// The underlying table.
    #[must_use]
    pub fn table(&self) -> &'t Table {
        self.table
    }
}

/// Run one PFD over a table (convenience; builds indexes internally).
#[must_use]
pub fn detect_pfd(table: &Table, pfd: &Pfd) -> Vec<Violation> {
    Detector::new(table).detect(pfd)
}

/// Run a set of PFDs over a table, sharing per-column indexes.
#[must_use]
pub fn detect_all(table: &Table, pfds: &[Pfd]) -> Vec<Violation> {
    let mut detector = Detector::new(table);
    let mut out: Vec<Violation> = pfds.iter().flat_map(|p| detector.detect(p)).collect();
    out.sort_by(|a, b| {
        a.row
            .cmp(&b.row)
            .then_with(|| a.dependency.cmp(&b.dependency))
    });
    out.dedup();
    out
}
