//! Property tests for [`ViolationLedger`] retraction semantics: under
//! any interleaving of create/retract calls over a small violation
//! universe, the lifetime counters stay monotone and consistent, double
//! retracts never fire events, and live violations are exactly those
//! with a positive reference count.

use anmat_core::detect::{Violation, ViolationKind};
use anmat_core::ViolationLedger;
use proptest::prelude::*;

fn violation(row: usize, expected: u8) -> Violation {
    Violation {
        dependency: "zip → city".into(),
        lhs_attr: "zip".into(),
        rhs_attr: "city".into(),
        row,
        lhs_value: format!("9000{row}"),
        kind: ViolationKind::Constant {
            pattern: "900\\D{2}".into(),
            expected: format!("city-{expected}"),
            found: Some("elsewhere".into()),
        },
        repair: None,
    }
}

proptest! {
    /// `retracted_total` is monotone, never exceeds `created_total`, and
    /// `live = created − retracted` holds at every step of any
    /// create/retract interleaving (retracts of never-created or
    /// already-dead violations included).
    #[test]
    fn counters_stay_consistent_under_any_interleaving(
        script in prop::collection::vec((0usize..4, 0u8..3, any::<bool>()), 0..120)
    ) {
        let mut ledger = ViolationLedger::new();
        // Shadow refcounts to predict event emission exactly.
        let mut refs = std::collections::HashMap::<(usize, u8), usize>::new();
        let mut last_retracted = 0usize;
        for (row, expected, is_create) in script {
            let v = violation(row, expected);
            let key = (row, expected);
            if is_create {
                let emitted = ledger.create(v).is_some();
                let r = refs.entry(key).or_insert(0);
                *r += 1;
                prop_assert_eq!(emitted, *r == 1, "Created fires only on 0→1");
            } else {
                let emitted = ledger.retract(&v).is_some();
                let r = refs.entry(key).or_insert(0);
                let expected_event = *r == 1;
                *r = r.saturating_sub(1);
                prop_assert_eq!(emitted, expected_event, "Retracted fires only on 1→0");
            }
            // Monotonicity of the lifetime counter.
            prop_assert!(ledger.retracted_total() >= last_retracted);
            last_retracted = ledger.retracted_total();
            // Accounting invariants.
            prop_assert!(ledger.retracted_total() <= ledger.created_total());
            prop_assert_eq!(
                ledger.live_count(),
                ledger.created_total() - ledger.retracted_total()
            );
            let live_refs = refs.values().filter(|&&r| r > 0).count();
            prop_assert_eq!(ledger.live_count(), live_refs);
        }
    }

    /// Retract-then-recreate always yields a fresh `Created` event, and
    /// a retraction storm (more retracts than creates) bottoms out as a
    /// no-op instead of corrupting state.
    #[test]
    fn retraction_storms_bottom_out(extra_retracts in 1usize..10) {
        let mut ledger = ViolationLedger::new();
        let v = violation(1, 0);
        ledger.create(v.clone());
        assert!(ledger.retract(&v).is_some());
        for _ in 0..extra_retracts {
            prop_assert!(ledger.retract(&v).is_none());
        }
        prop_assert_eq!(ledger.retracted_total(), 1);
        let ev = ledger.create(v.clone());
        prop_assert!(ev.is_some_and(|e| e.is_created()), "recreate is a fresh event");
        prop_assert_eq!(ledger.created_total(), 2);
        prop_assert_eq!(ledger.live_count(), 1);
    }
}
